"""Shared timing and provenance plumbing for the benchmark scripts.

Every ``bench_*.py`` script used to carry its own copy of the
min-of-rounds timer and assembled its own metadata header; they now
share this module so each committed ``BENCH_*.json`` carries the same
environment stamp (host, platform, python, numpy, active kernel
backend) and the timing discipline cannot drift between scripts.

Not a pytest module (the leading underscore keeps it out of test
collection); imported by the sibling scripts, which run with the
``benchmarks/`` directory as ``sys.path[0]``.
"""

from __future__ import annotations

import json
import platform as platform_mod
import time
from datetime import datetime, timezone
from pathlib import Path


def best_of(fn, rounds: int, repeats: int) -> float:
    """Min-of-rounds mean latency of ``fn()`` in seconds.

    Runs ``rounds`` blocks of ``repeats`` calls and keeps the best
    per-call mean — robust to OS scheduler noise, the same discipline
    every benchmark in the repo uses.
    """
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, (time.perf_counter() - t0) / repeats)
    return best


def bench_env() -> dict:
    """Provenance stamp shared by every ``BENCH_*.json``."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # the numpy backend is optional by design
        numpy_version = None
    from repro.kernel.backends import current_backend_name

    return {
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": platform_mod.node(),
        "platform": platform_mod.platform(),
        "python": platform_mod.python_version(),
        "numpy": numpy_version,
        "backend": current_backend_name(),
    }


def write_result(path, result: dict) -> Path:
    """Stamp ``result`` with :func:`bench_env` and write it as JSON.

    Keys the script already set (e.g. an explicit ``backends`` list)
    win over the environment stamp.
    """
    result = {**bench_env(), **result}
    path = Path(path)
    path.write_text(json.dumps(result, indent=2) + "\n")
    return path
