"""Ablation: ILHA's chunk-size parameter B (paper Section 5.3).

The paper reports best B = 4 for LU (critical path urgency), B = 38 for
LAPLACE/FORK-JOIN/STENCIL (balance + communication elimination) and
B = 20 for DOOLITTLE/LDMt (a tradeoff), and notes the sensible range is
[p .. M] with M the perfect-balance count.  This bench sweeps B on the
two extreme testbeds and prints the sensitivity curve.
"""

import pytest

from repro.experiments import b_sensitivity, format_cells
from repro.graphs import laplace_graph, lu_graph

B_VALUES = [2, 4, 6, 10, 20, 38, 60]


@pytest.mark.parametrize(
    "name,graph,kwargs",
    [
        ("lu-50", lu_graph(50), {}),
        ("laplace-20", laplace_graph(20), {}),
    ],
    ids=["lu", "laplace"],
)
def test_b_sensitivity(benchmark, name, graph, kwargs):
    def sweep():
        return b_sensitivity(graph, B_VALUES, testbed=name, **kwargs)

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n{name}: ILHA speedup vs chunk size B")
    print(format_cells(cells))
    best = max(cells, key=lambda c: c.speedup)
    print(f"best B for {name}: {best.size} (speedup {best.speedup:.2f})")
    benchmark.extra_info["curve"] = [(c.size, round(c.speedup, 3)) for c in cells]
    benchmark.extra_info["best_b"] = best.size
    # the curve is not flat: B genuinely matters (the paper's point)
    speedups = [c.speedup for c in cells]
    assert max(speedups) > min(speedups) * 1.05
