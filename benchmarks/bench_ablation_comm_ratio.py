"""Ablation: the communication-to-computation ratio c.

The paper pins c = 10 ("slow Ethernet") to stress communications.  This
bench sweeps c and shows (i) speedups collapsing as messages get more
expensive — the one-port penalty — and (ii) ILHA's communication
avoidance mattering more at high c.
"""

from repro.experiments import comm_ratio_sweep, format_cells
from repro.graphs import laplace_graph

RATIOS = [0.0, 1.0, 5.0, 10.0, 20.0]


def test_comm_ratio_sweep(benchmark):
    def sweep():
        return comm_ratio_sweep(
            lambda c: laplace_graph(16, comm_ratio=c), RATIOS, b=38
        )

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nlaplace-16: speedup vs communication ratio c (paper uses c=10)")
    print(format_cells(cells))
    heft = {c.size: c.speedup for c in cells if c.heuristic == "heft"}
    benchmark.extra_info["heft_curve"] = {k: round(v, 3) for k, v in heft.items()}
    # more expensive messages, lower speedup (ends of the sweep)
    assert heft[0] > heft[20]
