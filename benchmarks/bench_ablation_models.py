"""Ablation: the communication models of Section 2.

Macro-dataflow (contention-free) vs the bi-directional one-port model
vs the two stricter variants the paper names but does not evaluate
(uni-directional ports; no communication/computation overlap).  Each
restriction removes concurrency, so makespans grow monotonically along
the chain for the same heuristic — this bench quantifies each step on a
communication-heavy testbed.
"""

from repro.experiments import format_cells, model_comparison
from repro.graphs import stencil_graph


def test_model_strictness_ladder(benchmark):
    graph = stencil_graph(14)

    def sweep():
        return model_comparison(graph, b=38)

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nstencil-14: HEFT/ILHA under every Section 2 model")
    print(format_cells(cells))
    heft = {c.heuristic.split("/")[1]: c.makespan for c in cells if c.heuristic.startswith("heft")}
    benchmark.extra_info["heft_makespans"] = {k: round(v, 1) for k, v in heft.items()}
    # the strictness ladder for the greedy heuristic
    assert heft["macro-dataflow"] <= heft["one-port"] + 1e-9
    assert heft["one-port"] <= heft["no-overlap"] + 1e-9
