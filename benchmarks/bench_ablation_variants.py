"""Ablation: the Section 4.4 ILHA refinements.

The paper sketches two refinements without evaluating them: the extra
scan for tasks placeable at the price of a single communication, and
the third-step greedy re-scheduling of the chunk's communications after
allocation.  This bench measures all four combinations on testbeds
where the refinements matter (multi-parent structures).
"""

import pytest

from repro.experiments import format_cells, ilha_variant_ablation
from repro.graphs import ldmt_graph, stencil_graph

CASES = [
    ("stencil-20", stencil_graph(20), 38),
    ("ldmt-30", ldmt_graph(30), 20),
]


@pytest.mark.parametrize("name,graph,b", CASES, ids=[c[0] for c in CASES])
def test_ilha_variants(benchmark, name, graph, b):
    def sweep():
        return ilha_variant_ablation(graph, b=b)

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n{name} (B={b}): Section 4.4 variant ablation")
    print(format_cells(cells))
    by = {c.heuristic: c for c in cells}
    benchmark.extra_info["speedups"] = {
        c.heuristic: round(c.speedup, 3) for c in cells
    }
    # the single-communication scan reduces message counts on these
    # multi-parent testbeds (its design goal)
    assert by["ilha-scan"].num_comms <= by["ilha-plain"].num_comms
