"""The prior-work comparison ([3]) re-run under the one-port model.

The paper's earlier study compared PCT, BIL, CPOP, GDL, HEFT and ILHA
under macro-dataflow and found HEFT/ILHA best.  None of the baselines
were designed for serialized communications; this bench runs the whole
field under both models on one testbed and prints the league table.
"""

import pytest

from repro.experiments import baseline_comparison, format_cells
from repro.graphs import laplace_graph


@pytest.mark.parametrize("model", ["macro-dataflow", "one-port"])
def test_baseline_league_table(benchmark, model):
    graph = laplace_graph(12)

    def sweep():
        return baseline_comparison(graph, model=model, b=38)

    cells = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nlaplace-12 under {model}:")
    print(format_cells(sorted(cells, key=lambda c: -c.speedup)))
    by = {c.heuristic: c.speedup for c in cells}
    benchmark.extra_info["speedups"] = {k: round(v, 3) for k, v in by.items()}
    # the paper's earlier finding: HEFT and ILHA lead the field
    best_two = sorted(by, key=by.get, reverse=True)[:3]
    assert "heft" in best_two or "ilha(B=38)" in best_two
