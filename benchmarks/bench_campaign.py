"""Campaign executor throughput: cells/s and occupancy per executor.

Standalone script (not a pytest-benchmark module) so CI can run it and
archive the result::

    python benchmarks/bench_campaign.py --quick --out BENCH_CAMPAIGN.json

Runs one fixed cold grid through each registered executor — ``serial``
(inline), ``process`` (local pool), ``spool`` (filesystem work-queue) —
and reports cells/second plus the ``campaign.occupancy`` gauge (sum of
cell runtimes over workers x wall time): occupancy near 1.0 means the
executor kept its workers busy, low occupancy exposes dispatch
overhead.  Executor invariance (identical metrics across executors) is
asserted on every pair, so a throughput run doubles as a correctness
sweep.

``--quick`` trims the grid and worker counts for CI smoke; the
committed ``BENCH_CAMPAIGN.json`` at the repo root is produced by a
full run and seeds the executor perf trajectory (regenerate and commit
alongside executor changes).  ``--baseline BENCH_CAMPAIGN.json`` turns
the run into a regression guard: every ``(executor, workers)`` row
shared with the baseline must stay at or above ``--min-ratio`` (default
0.7) of the committed cells/s, else the script exits nonzero.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _harness import write_result  # noqa: E402
from repro.campaign import CampaignSpec, HeuristicSpec, run_campaign  # noqa: E402
from repro.obs import collect  # noqa: E402


def grid(quick: bool) -> CampaignSpec:
    return CampaignSpec(
        name="bench",
        testbeds=["fork-join", "irregular"] if quick else
                 ["fork-join", "irregular", "lu"],
        sizes=[8, 12] if quick else [10, 16, 22],
        heuristics=[HeuristicSpec.of("heft"), HeuristicSpec.of("ilha", {"b": 8})],
        models=["one-port"],
        seeds=[0] if quick else [0, 1],
    )


def metrics_of(result):
    """Executor-invariant metric tuples (no runtime_s)."""
    return [
        (o.cell.key, o.result.makespan, o.result.speedup, o.result.num_comms)
        for o in result.outcomes
    ]


def bench_executor(spec: CampaignSpec, executor: str, workers: int) -> dict:
    options: dict = {}
    if executor == "spool":
        # an explicit throwaway dir keeps tempdir lifetime out of the
        # measurement; tight polling so dispatch, not sleeps, dominates
        options = {"dir": tempfile.mkdtemp(prefix="bench-spool-"),
                   "poll_s": 0.01, "worker_poll_s": 0.01}
    t0 = time.perf_counter()
    with collect() as stats:
        result = run_campaign(
            spec, workers=workers, executor=executor,
            executor_options=options or None,
        )
    wall_s = time.perf_counter() - t0
    if executor == "spool":
        import shutil

        shutil.rmtree(options["dir"], ignore_errors=True)
    cells = len(result.outcomes)
    row = {
        "executor": executor,
        "workers": workers,
        "cells": cells,
        "wall_s": round(wall_s, 4),
        "cells_per_s": round(cells / wall_s, 2),
        "occupancy": round(stats.gauges.get("campaign.occupancy", 0.0), 3),
        "cell_time_s": round(stats.timers.get("phase.cell", [0, 0.0])[1], 4),
    }
    print(
        f"{executor:<8} workers={workers}  {cells:>3} cells  "
        f"{row['wall_s']:7.2f} s  {row['cells_per_s']:8.2f} cells/s  "
        f"occupancy {row['occupancy']:.3f}"
    )
    return row, metrics_of(result)


def check_baseline(rows: list[dict], baseline_path: str, min_ratio: float) -> int:
    """Compare cells/s per (executor, workers) row against a committed run.

    Only rows present in both runs are compared — a ``--quick`` run
    checks its three plans against the full baseline.  Returns the
    number of regressions below ``min_ratio``.
    """
    committed = json.loads(Path(baseline_path).read_text())
    base = {
        (r["executor"], r["workers"]): r["cells_per_s"]
        for r in committed.get("executors", [])
    }
    regressions = 0
    for row in rows:
        ref = base.get((row["executor"], row["workers"]))
        if not ref:
            continue
        ratio = row["cells_per_s"] / ref
        verdict = "ok" if ratio >= min_ratio else "REGRESSION"
        print(
            f"baseline {row['executor']:<8} workers={row['workers']}  "
            f"{row['cells_per_s']:8.2f} vs {ref:8.2f} cells/s  "
            f"({ratio:.2f}x, floor {min_ratio:.2f}x)  {verdict}"
        )
        if ratio < min_ratio:
            regressions += 1
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small grid + fewer worker counts (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="write the JSON result here (e.g. "
                             "BENCH_CAMPAIGN.json)")
    parser.add_argument("--baseline", default=None,
                        help="committed BENCH_CAMPAIGN.json to guard "
                             "against; exit nonzero below --min-ratio")
    parser.add_argument("--min-ratio", type=float, default=0.7,
                        help="minimum cells/s ratio vs the baseline")
    args = parser.parse_args(argv)

    spec = grid(args.quick)
    plans = [("serial", 1), ("process", 2), ("spool", 1)]
    if not args.quick:
        plans += [("process", 4), ("spool", 2)]

    rows, baseline = [], None
    for executor, workers in plans:
        row, metrics = bench_executor(spec, executor, workers)
        rows.append(row)
        if baseline is None:
            baseline = metrics
        else:
            assert metrics == baseline, (
                f"executor {executor!r} drifted from serial metrics"
            )
    print(f"invariance: {len(plans)} executor runs, identical metrics")

    regressions = 0
    if args.baseline:
        regressions = check_baseline(rows, args.baseline, args.min_ratio)

    if args.out:
        path = write_result(args.out, {
            "benchmark": "campaign-executors",
            "quick": args.quick,
            "grid": {"testbeds": spec.testbeds, "sizes": spec.sizes,
                     "heuristics": [h.display for h in spec.heuristics],
                     "seeds": spec.seeds},
            "executors": rows,
        })
        print(f"wrote {path}")
    if regressions:
        print(f"FAIL: {regressions} executor(s) below the baseline floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
