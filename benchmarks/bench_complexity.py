"""Benchmarks for the Theorem 1/2 reduction machinery.

Times the full pipeline of each reduction — build the instance from a
2-PARTITION instance, solve the partition, construct the witness
schedule, validate it, and take the exact decision — demonstrating the
complexity module end to end.
"""

from repro.complexity import equal_cardinality_partition, two_partition
from repro.complexity import comm_sched, fork_sched
from repro.core import validate_schedule

A_BALANCED = [7, 3, 5, 5, 3, 7, 4, 6, 2, 8]  # sum 50, balanced halves exist


def test_fork_sched_pipeline(benchmark):
    def pipeline():
        inst = fork_sched.build_instance(A_BALANCED)
        side = equal_cardinality_partition(A_BALANCED)
        sched = fork_sched.schedule_from_partition(inst, side)
        return inst, sched, fork_sched.decide(inst)

    inst, sched, decision = benchmark(pipeline)
    validate_schedule(sched)
    print(
        f"\nFORK-SCHED: n={inst.n}, deadline T={inst.deadline:g}, witness "
        f"makespan {sched.makespan():g}, exact decision {decision}"
    )
    assert decision
    assert abs(sched.makespan() - inst.deadline) < 1e-9


def test_comm_sched_pipeline(benchmark):
    def pipeline():
        inst = comm_sched.build_instance(A_BALANCED)
        side = two_partition(A_BALANCED)
        sched = comm_sched.schedule_from_partition(inst, side)
        return inst, sched, comm_sched.decide(inst)

    inst, sched, decision = benchmark(pipeline)
    validate_schedule(sched)
    print(
        f"\nCOMM-SCHED: {inst.graph.num_tasks} tasks on "
        f"{inst.platform.num_processors} processors, deadline 2S = "
        f"{inst.deadline:g}, witness makespan {sched.makespan():g}, "
        f"decision {decision}"
    )
    assert decision
    assert sched.makespan() <= inst.deadline + 1e-9


def test_partition_dp_scaling(benchmark):
    """Pseudo-polynomial DP on a 24-element instance."""
    values = [(i * 37) % 50 + 1 for i in range(24)]

    def solve():
        return two_partition(values)

    benchmark(solve)
