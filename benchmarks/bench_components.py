"""Microbenchmarks of the scheduling substrates.

These are the hot paths of every heuristic (profiling-guided, per the
optimization workflow): timeline gap search, one-port joint fits through
overlays, bottom-level computation, and a full one-port EFT evaluation.
"""

import random

from repro.core import PortSet, Timeline, bottom_levels
from repro.core.ports import PortSetOverlay
from repro.experiments import paper_platform
from repro.graphs import lu_graph
from repro.heuristics.base import SchedulerState
from repro.models import OnePortModel


def test_timeline_next_fit(benchmark):
    """Gap search over a timeline with 1000 busy intervals."""
    t = Timeline()
    for i in range(1000):
        t.reserve(3.0 * i, 3.0 * i + 2.0, i)
    rng = random.Random(7)
    queries = [(rng.uniform(0, 3200), rng.uniform(0.5, 1.0)) for _ in range(200)]

    def search():
        return [t.next_fit(r, d) for r, d in queries]

    out = benchmark(search)
    assert len(out) == 200


def test_timeline_fill(benchmark):
    """Insertion-schedule 500 requests into an empty timeline."""
    rng = random.Random(3)
    reqs = [(rng.uniform(0, 500), rng.uniform(0.5, 3.0)) for _ in range(500)]

    def fill():
        t = Timeline()
        for ready, dur in reqs:
            start = t.next_fit(ready, dur)
            t.reserve(start, start + dur)
        return t

    t = benchmark(fill)
    assert len(t) == 500


def test_one_port_joint_fit(benchmark):
    """Tentative transfer placement through a port-set overlay."""
    ports = PortSet(10)
    rng = random.Random(11)
    for _ in range(400):
        q, r = rng.randrange(10), rng.randrange(10)
        if q == r:
            continue
        start = ports.earliest_transfer(q, r, rng.uniform(0, 300), 2.0)
        ports.reserve_transfer(q, r, start, 2.0)

    def trial():
        overlay = PortSetOverlay(ports)
        total = 0.0
        for i in range(50):
            q, r = i % 10, (i * 3 + 1) % 10
            if q == r:
                continue
            start = overlay.earliest_transfer(q, r, float(i), 2.0)
            overlay.reserve_transfer(q, r, start, 2.0)
            total += start
        return total

    benchmark(trial)


def test_bottom_levels_lu(benchmark):
    """Rank computation on a ~5000-task LU graph."""
    graph = lu_graph(100)
    platform = paper_platform()
    bl = benchmark(bottom_levels, graph, platform)
    assert len(bl) == graph.num_tasks


def test_eft_evaluation(benchmark):
    """One full one-port EFT evaluation round (10 processors)."""
    platform = paper_platform()
    graph = lu_graph(20)
    model = OnePortModel(platform)
    state = SchedulerState(graph, platform, model)
    order = graph.topological_order()
    for task in order[:100]:
        state.commit(state.best_candidate(task))
    target = order[100]

    def evaluate():
        return state.evaluate_all(target)

    candidates = benchmark(evaluate)
    assert len(candidates) == 10
