"""Paper Figure 1 / Section 2.3: the motivating fork example.

Regenerates the three headline numbers — macro-dataflow makespan 3, the
same allocation under one-port >= 6, one-port optimum 5 — and times the
exact fork solver that produces the optimum.
"""

import pytest

from repro import FixedAllocation, Platform, validate_schedule
from repro.complexity import optimal_fork_makespan
from repro.graphs import figure1_example

ALLOC = {"v0": 0, "v1": 0, "v2": 0, "v3": 1, "v4": 2, "v5": 3, "v6": 4}


@pytest.fixture(scope="module")
def platform():
    return Platform.homogeneous(5, cycle_time=1.0, link=1.0)


def test_fig01_numbers(benchmark, platform):
    graph = figure1_example()

    def run_all():
        macro = FixedAllocation(ALLOC).run(graph, platform, "macro-dataflow")
        oneport = FixedAllocation(ALLOC).run(graph, platform, "one-port")
        optimum, local = optimal_fork_makespan(1.0, [1.0] * 6, [1.0] * 6)
        return macro, oneport, optimum

    macro, oneport, optimum = benchmark.pedantic(run_all, rounds=1, iterations=1)
    validate_schedule(macro)
    validate_schedule(oneport)
    print(
        f"\nFig 1 example: macro-dataflow = {macro.makespan():g} (paper: 3), "
        f"same allocation one-port = {oneport.makespan():g} (paper: >= 6), "
        f"one-port optimum = {optimum:g} (paper: 5)"
    )
    benchmark.extra_info["macro"] = macro.makespan()
    benchmark.extra_info["one_port_same_alloc"] = oneport.makespan()
    benchmark.extra_info["one_port_optimum"] = optimum
    assert macro.makespan() == 3.0
    assert oneport.makespan() == 6.0
    assert optimum == 5.0


def test_exact_fork_solver_scaling(benchmark):
    """Subset enumeration over 14 children (2^14 candidate splits)."""
    weights = [float(1 + i % 5) for i in range(14)]

    def solve():
        return optimal_fork_makespan(1.0, weights, weights)

    makespan, _ = benchmark(solve)
    assert makespan > 0
