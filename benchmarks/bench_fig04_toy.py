"""Paper Figures 3-4: the HEFT vs ILHA toy example.

Regenerates the published schedules: HEFT (paper convention, no
insertion) makespan 6, ILHA (B >= 8) makespan 5 with only two messages.
"""

from repro import HEFT, ILHA, Platform, validate_schedule
from repro.graphs import toy_graph, toy_priority_key


def test_fig04_toy_example(benchmark):
    platform = Platform.homogeneous(2, cycle_time=1.0, link=1.0)
    graph = toy_graph()

    def run_both():
        heft = HEFT(insertion=False, priority_key=toy_priority_key).run(
            graph, platform, "one-port"
        )
        ilha = ILHA(b=8, priority_key=toy_priority_key).run(
            graph, platform, "one-port"
        )
        return heft, ilha

    heft, ilha = benchmark.pedantic(run_both, rounds=1, iterations=1)
    validate_schedule(heft)
    validate_schedule(ilha)
    print(
        f"\nFig 4 toy: HEFT makespan {heft.makespan():g} with "
        f"{heft.num_comms()} messages (paper: 6); ILHA makespan "
        f"{ilha.makespan():g} with {ilha.num_comms()} messages (paper: 5, "
        f"'dramatically reduced' messages)"
    )
    benchmark.extra_info["heft"] = (heft.makespan(), heft.num_comms())
    benchmark.extra_info["ilha"] = (ilha.makespan(), ilha.num_comms())
    assert heft.makespan() == 6.0
    assert ilha.makespan() == 5.0
    assert ilha.num_comms() == 2
