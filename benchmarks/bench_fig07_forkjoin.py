"""Paper Figure 7: FORK-JOIN, HEFT vs ILHA speedup over problem size.

Paper outcome: both heuristics identical, speedup ~1.53-1.58 (flat),
just under the analytic bound w*t_min/c + 1 = 1.6.  This figure uses the
paper's own size axis (100..500 interior tasks) since FORK-JOIN is
linear in the problem size.

The sweep drives through the campaign engine — the five sizes x two
heuristics are independent cells, so ``BENCH_WORKERS=4`` fans them over
a process pool (the default stays serial: on small machines a pool only
adds overhead to the measured wall-clock).
"""

from repro.graphs import fork_join_speedup_bound


def test_fig07_forkjoin(figure_bench):
    run = figure_bench("fig07")
    bound = fork_join_speedup_bound(1.0, 6.0, 10.0)
    print(f"analytic speedup bound (Section 5.3): {bound:g}")

    heft = dict(run.series("heft"))
    ilha = dict(run.series("ilha(B=38)"))
    for size in run.sizes():
        # both under the bound, both close to it, both nearly identical
        assert heft[size] <= bound + 1e-6
        assert ilha[size] <= bound + 1e-6
        assert heft[size] >= 1.45
        assert abs(heft[size] - ilha[size]) / heft[size] < 0.02
