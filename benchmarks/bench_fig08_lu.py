"""Paper Figure 8: LU decomposition, HEFT vs ILHA over problem size.

Paper outcome: speedups grow with size; HEFT and ILHA similar at the
smallest size with ILHA gaining as the problem grows (5.0 vs 4.5 at the
top); best B = 4.  The size axis here is scaled (30..110, i.e. up to
~6100 tasks) — see DESIGN.md; on our reconstruction the HEFT growth
trend reproduces cleanly while the ILHA-vs-HEFT gap fluctuates with
size (EXPERIMENTS.md discusses the deviation).

This is the most expensive figure, so the sweep drives through the
campaign engine (one cell per size x heuristic); set ``BENCH_WORKERS=4``
to fan the cells over a process pool on a machine with real cores.
"""


def test_fig08_lu(figure_bench):
    run = figure_bench("fig08")
    heft = run.series("heft")

    # the growth trend: speedup at the largest size clearly above the
    # smallest (paper: 3.8 -> 4.5 for HEFT)
    assert heft[-1][1] > heft[0][1]

    # everything stays under the platform ceiling
    for _, speedup in heft + run.series("ilha(B=4)"):
        assert speedup <= 7.6
