"""Paper Figure 9: LAPLACE solver, HEFT vs ILHA over problem size.

Paper outcome: ILHA ~10% above HEFT at every size, reaching 5.6; best
B = 38 because every node of the diamond DAG lies on a critical path,
so a large chunk both balances load and kills communications.
"""


def test_fig09_laplace(figure_bench):
    run = figure_bench("fig09")
    heft = dict(run.series("heft"))
    ilha = dict(run.series("ilha(B=38)"))

    # ILHA above HEFT at (almost) every size; clearly above at the top
    wins = sum(1 for size in run.sizes() if ilha[size] >= heft[size] - 1e-9)
    assert wins >= len(run.sizes()) - 1
    top = max(run.sizes())
    assert ilha[top] > heft[top] * 1.05
