"""Paper Figure 10: LDMt decomposition, HEFT vs ILHA over problem size.

Paper outcome: ILHA ~10% over HEFT, speedup up to 4.9; best B = 20.
The figure's ILHA uses the Section 4.4 single-communication scan (the
two-parent structure of the LDMt updates makes the one-message
placement the common case).
"""


def test_fig10_ldmt(figure_bench):
    run = figure_bench("fig10")
    heft = dict(run.series("heft"))
    ilha = dict(run.series("ilha(B=20)"))

    top = max(run.sizes())
    assert ilha[top] > heft[top] * 1.05
    wins = sum(1 for size in run.sizes() if ilha[size] >= heft[size] - 1e-9)
    assert wins >= len(run.sizes()) - 1
