"""Paper Figure 11: DOOLITTLE reduction, HEFT vs ILHA over problem size.

Paper outcome: ILHA ~10% over HEFT, speedup up to 4.4; best B = 20.
As with LU, the triangular structure makes the per-size ILHA-vs-HEFT
gap fluctuate on our reconstruction; the growth trend and the ceiling
hold, and the tuned-ILHA ablation (bench_tuned_ilha.py) shows the
paper's best-over-B methodology recovering the ILHA advantage.
"""


def test_fig11_doolittle(figure_bench):
    run = figure_bench("fig11")
    heft = run.series("heft")
    assert heft[-1][1] > heft[0][1]  # growth with size
    for _, speedup in heft + run.series("ilha(B=20)"):
        assert speedup <= 7.6
