"""Paper Figure 12: STENCIL, HEFT vs ILHA over problem size.

Paper outcome: the one testbed where speedup *decreases* as the problem
grows — the rows widen past the processor count and the cross-boundary
messages, serialized on the ports, become the bottleneck (ILHA ~2.7 vs
HEFT ~2.4).  The size axis is the row width of a fixed-height band.
"""


def test_fig12_stencil(figure_bench):
    run = figure_bench("fig12")
    heft = dict(run.series("heft"))
    ilha = dict(run.series("ilha(B=38)"))
    sizes = run.sizes()

    # ILHA above HEFT (the scan variant keeps stencil columns local)
    top = max(sizes)
    assert ilha[top] > heft[top]

    # the widening band does not keep improving the speedup the way the
    # other kernels do: the best size is NOT the largest
    assert max(ilha, key=ilha.get) != top or max(heft, key=heft.get) != top

    # and the serialized boundary messages keep speedups far from 7.6
    assert all(s < 4.5 for s in heft.values())
