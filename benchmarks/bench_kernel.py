"""Kernel performance trajectory: flat replay and incremental previews.

Standalone script (not a pytest-benchmark module) so CI can run it and
archive the result::

    python benchmarks/bench_kernel.py --quick --out BENCH_KERNEL.json

Measures, per testbed:

* **replay** — full :func:`repro.simulate.replay` (kernel-routed) vs
  the retained object-level :func:`repro.simulate.replay_object` on the
  same extracted decisions, reporting min-of-rounds latency and the
  speedup ratio.  The acceptance bar for the kernel PR is >= 5x at
  lu-20 with exact makespan agreement (asserted here on every pair).
* **previews** — :class:`repro.search.IncrementalEvaluator` load time
  and move-preview throughput (the ILS moves/second figure), to catch
  regressions of the search hot loop.

``--quick`` trims repetition counts and the testbed list for CI smoke;
the committed ``BENCH_KERNEL.json`` at the repo root is produced by a
full run and seeds the perf trajectory (append-style: regenerate and
commit alongside kernel changes).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _harness import best_of, write_result  # noqa: E402
from repro import HEFT  # noqa: E402
from repro.experiments import paper_platform  # noqa: E402
from repro.graphs import irregular_testbed, layered_testbed, lu_graph  # noqa: E402
from repro.search import IncrementalEvaluator, SearchPoint, propose  # noqa: E402
from repro.simulate import extract_decisions, replay, replay_object  # noqa: E402


def bench_replay(label: str, graph, plat, rounds: int, repeats: int) -> dict:
    schedule = HEFT().run(graph, plat, "one-port")
    decisions = extract_decisions(schedule)
    fast = replay(graph, plat, decisions)
    ref = replay_object(graph, plat, decisions)
    assert fast.makespan() == ref.makespan(), "kernel/legacy makespan drift"
    # interleave the two implementations inside each round so CPU-load
    # drift between measurement blocks cannot skew the ratio
    kernel_s = legacy_s = float("inf")
    legacy_repeats = max(1, repeats // 3)
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(repeats):
            replay(graph, plat, decisions)
        kernel_s = min(kernel_s, (time.perf_counter() - t0) / repeats)
        t0 = time.perf_counter()
        for _ in range(legacy_repeats):
            replay_object(graph, plat, decisions)
        legacy_s = min(legacy_s, (time.perf_counter() - t0) / legacy_repeats)
    row = {
        "testbed": label,
        "tasks": graph.num_tasks,
        "edges": graph.num_edges,
        "kernel_ms": round(kernel_s * 1e3, 4),
        "legacy_ms": round(legacy_s * 1e3, 4),
        "speedup": round(legacy_s / kernel_s, 2),
        "makespan": ref.makespan(),
    }
    print(
        f"replay   {label:<16} {row['tasks']:>5} tasks  "
        f"kernel {row['kernel_ms']:8.3f} ms  legacy {row['legacy_ms']:8.3f} ms  "
        f"x{row['speedup']:.2f}"
    )
    return row


def bench_previews(label: str, graph, plat, rounds: int, num_moves: int) -> dict:
    schedule = HEFT().run(graph, plat, "one-port")
    evaluator = IncrementalEvaluator(graph, plat)
    t0 = time.perf_counter()
    evaluator.load(SearchPoint.from_schedule(schedule))
    load_s = time.perf_counter() - t0
    rng = random.Random(0)
    moves = []
    while len(moves) < num_moves:
        move = propose(evaluator.point, plat, rng)
        if move is not None:
            moves.append(move)
    for move in moves[: min(20, num_moves)]:
        evaluator.preview(move)  # warm

    def preview_all():
        for move in moves:
            evaluator.preview(move)

    best = best_of(preview_all, rounds, 1)
    row = {
        "testbed": label,
        "tasks": graph.num_tasks,
        "load_ms": round(load_s * 1e3, 3),
        "moves_per_s": round(num_moves / best),
    }
    print(
        f"previews {label:<16} {row['tasks']:>5} tasks  "
        f"load {row['load_ms']:7.2f} ms  {row['moves_per_s']:>7} moves/s"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer rounds, smaller testbeds")
    parser.add_argument("--out", default="BENCH_KERNEL.json",
                        help="output JSON path (default: BENCH_KERNEL.json)")
    args = parser.parse_args(argv)

    plat = paper_platform()
    if args.quick:
        rounds, repeats = 5, 60
        replay_beds = [
            ("lu-20", lu_graph(20)),
            ("irregular-300", irregular_testbed(300, seed=0)),
        ]
        preview_beds = [("lu-20", lu_graph(20))]
        num_moves = 100
    else:
        rounds, repeats = 12, 150
        replay_beds = [
            ("lu-20", lu_graph(20)),
            ("lu-40", lu_graph(40)),
            ("layered-big", layered_testbed(160, seed=0, width=10, density=0.25)),
            ("irregular-1000", irregular_testbed(1000, seed=0)),
        ]
        preview_beds = [
            ("lu-20", lu_graph(20)),
            ("irregular-1000", irregular_testbed(1000, seed=0)),
        ]
        num_moves = 200

    replay_rows = [bench_replay(n, g, plat, rounds, repeats) for n, g in replay_beds]
    preview_rows = [
        bench_previews(n, g, plat, max(3, rounds // 3), num_moves)
        for n, g in preview_beds
    ]

    result = {
        "benchmark": "kernel",
        "quick": args.quick,
        "replay": replay_rows,
        "previews": preview_rows,
    }
    write_result(args.out, result)
    print(f"\nwrote {args.out}")

    lu20 = next(r for r in replay_rows if r["testbed"] == "lu-20")
    if lu20["speedup"] < 5.0 and not args.quick:
        print(f"WARNING: lu-20 replay speedup {lu20['speedup']}x is below the 5x target")
    return 0


if __name__ == "__main__":
    sys.exit(main())
