"""Online-engine trajectory: event throughput and the policy-vs-noise figure.

Standalone script (not a pytest-benchmark module) so CI can run it and
archive the result::

    python benchmarks/bench_online.py --quick --out BENCH_ONLINE.json

Measures:

* **throughput** — processed events per second on a Poisson stream of
  lu-20 jobs under the ``static`` policy with zero noise (best of
  several rounds, event logging off).  The acceptance bar for the
  online PR is >= 10k events/s.
* **policy-vs-noise** — the :func:`repro.experiments.online_policy_study`
  grid (mean flow / stretch per policy × noise cell), the dynamic
  analogue of the paper's figure sweeps.

``--quick`` trims job counts and the study grid for CI smoke; the
committed ``BENCH_ONLINE.json`` at the repo root is produced by a full
run and seeds the perf trajectory (regenerate and commit alongside
online-engine changes).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _harness import write_result  # noqa: E402
from repro.experiments import (  # noqa: E402
    format_online_study,
    online_policy_study,
    paper_platform,
)
from repro.online import make_workload, simulate_online  # noqa: E402

#: The PR's acceptance bar for event throughput.
TARGET_EVENTS_PER_S = 10_000


def bench_throughput(jobs: int, rounds: int) -> dict:
    plat = paper_platform()
    workload = make_workload("lu", 20, jobs, arrival="poisson:rate=0.001", seed=0)
    best = 0.0
    events = 0
    reference = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = simulate_online(
            workload, plat, policy="static", noise="exact", seed=0, log_events=False
        )
        wall = time.perf_counter() - t0
        events = result.events
        rate = events / wall
        if rate > best:
            best = rate
        agg = result.aggregate()
        snapshot = (agg["mean_flow"], agg["batch_makespan"], agg["events"])
        assert reference is None or snapshot == reference, "nondeterministic run"
        reference = snapshot
    row = {
        "testbed": "lu-20",
        "policy": "static",
        "jobs": jobs,
        "events": events,
        "events_per_s": round(best),
        "target": TARGET_EVENTS_PER_S,
    }
    print(
        f"throughput lu-20 static  {jobs} jobs  {events} events  "
        f"{row['events_per_s']:,} events/s (target {TARGET_EVENTS_PER_S:,})"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer jobs, smaller study grid")
    parser.add_argument("--out", default="BENCH_ONLINE.json",
                        help="output JSON path (default: BENCH_ONLINE.json)")
    args = parser.parse_args(argv)

    if args.quick:
        jobs, rounds = 12, 3
        study_kwargs = dict(
            testbed="lu", size=8, jobs=5, arrival="poisson:rate=0.005", seed=0,
            noises=("exact", "lognormal:sigma=0.3", "straggler"),
        )
    else:
        jobs, rounds = 40, 5
        study_kwargs = dict(
            testbed="lu", size=12, jobs=10, arrival="poisson:rate=0.002", seed=0,
        )

    throughput = bench_throughput(jobs, rounds)
    study = online_policy_study(**study_kwargs)
    print()
    print(format_online_study(study))

    result = {
        "benchmark": "online",
        "quick": args.quick,
        "throughput": throughput,
        "policy_vs_noise": study,
    }
    write_result(args.out, result)
    print(f"\nwrote {args.out}")

    if throughput["events_per_s"] < TARGET_EVENTS_PER_S:
        print(
            f"WARNING: {throughput['events_per_s']:,} events/s is below "
            f"the {TARGET_EVENTS_PER_S:,} events/s target"
        )
        return 0 if args.quick else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
