"""Benchmark of the replay simulator (independent timing reconstruction).

Times the constraint-DAG pass on a mid-size LU schedule and reports how
much slack the order-preserving compaction recovers from each heuristic
(a free post-pass: same decisions, tightest times).
"""

from repro import HEFT, ILHA, validate_schedule
from repro.experiments import paper_platform
from repro.graphs import lu_graph
from repro.simulate import replay_schedule


def test_replay_pass(benchmark):
    platform = paper_platform()
    graph = lu_graph(40)
    original = HEFT().run(graph, platform, "one-port")

    replayed = benchmark(replay_schedule, original)
    validate_schedule(replayed)
    gain = (1.0 - replayed.makespan() / original.makespan()) * 100.0
    print(
        f"\nlu-40 ({graph.num_tasks} tasks): heft makespan "
        f"{original.makespan():.0f} -> replay {replayed.makespan():.0f} "
        f"({gain:+.1f}% compaction)"
    )
    benchmark.extra_info["compaction_pct"] = round(gain, 2)
    assert replayed.makespan() <= original.makespan() + 1e-6


def test_replay_compaction_by_heuristic(benchmark):
    platform = paper_platform()
    graph = lu_graph(30)
    rows = []

    def sweep():
        out = []
        for name, sched in (
            ("heft", HEFT().run(graph, platform, "one-port")),
            ("ilha(B=4)", ILHA(b=4).run(graph, platform, "one-port")),
            ("ilha(B=38)", ILHA(b=38).run(graph, platform, "one-port")),
        ):
            tight = replay_schedule(sched)
            out.append((name, sched.makespan(), tight.makespan()))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nlu-30: slack recovered by order-preserving replay")
    for name, before, after in rows:
        print(f"  {name:<12} {before:9.0f} -> {after:9.0f} "
              f"({(1 - after / before) * 100:+.1f}%)")
        assert after <= before + 1e-6
