"""Benchmark of the Section 4.3 routing extension.

HEFT over a sparse ring topology with static store-and-forward routing,
against the fully connected platform — same graph, same speeds.  The
free scheduler mostly routes around the missing links (placing
communicating tasks on neighbours), so the measured penalty is small;
pinned cross-ring traffic (tested in the unit suite) pays the full
relay-serialization cost.
"""

import math

import numpy as np

from repro import HEFT, Platform, validate_schedule
from repro.graphs import laplace_graph
from repro.models import RoutedOnePortModel


def ring(p: int) -> Platform:
    mat = np.full((p, p), math.inf)
    np.fill_diagonal(mat, 0.0)
    for i in range(p):
        mat[i][(i + 1) % p] = 1.0
        mat[(i + 1) % p][i] = 1.0
    return Platform([1.0] * p, mat)


def test_heft_on_ring(benchmark):
    graph = laplace_graph(12, comm_ratio=3.0)
    topo = ring(8)
    model = RoutedOnePortModel(topo)

    def schedule():
        return HEFT().run(graph, topo, model)

    sched = benchmark(schedule)
    validate_schedule(sched)

    full = Platform.homogeneous(8, cycle_time=1.0, link=1.0)
    direct = HEFT().run(graph, full, "one-port")
    penalty = sched.makespan() / direct.makespan()
    hops = len(sched.comm_events)
    messages = len({(e.src_task, e.dst_task) for e in sched.comm_events})
    print(
        f"\nring-8 vs fully-connected: makespan {sched.makespan():.0f} vs "
        f"{direct.makespan():.0f} ({penalty:.2f}x), {messages} messages over "
        f"{hops} hops"
    )
    benchmark.extra_info["penalty"] = round(penalty, 3)
    assert sched.makespan() >= direct.makespan() * 0.99
