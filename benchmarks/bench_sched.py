"""Construction throughput: flat-kernel backends vs the object path.

Standalone script (not a pytest-benchmark module) so CI can run it and
archive the result::

    python benchmarks/bench_sched.py --quick --backend numpy --out BENCH_SCHED.json

Measures, per heuristic x testbed x kernel backend:

* **schedules/s** — full construction runs through the selected flat
  ``SchedulerState`` backend (``python`` scalar loops or ``numpy``
  fused sweeps + gap-indexed rows) vs the retained
  ``ObjectSchedulerState`` reference (forced with
  :func:`repro.heuristics.force_object_state`), interleaved inside each
  round so CPU-load drift cannot skew the ratio, with exact makespan
  agreement asserted across every backend pair.
* **candidate-evaluations/s** — the same latency expressed per
  (task, processor) EFT probe, the unit the paper's Section 4.3
  tentative-booking mechanism is invoked at.

The ``irregular-10000`` bed runs HEFT only and skips the (much slower)
object reference: it exists to show that a 10k-task random DAG is a
routine sub-second construction, not to re-measure the object ratio.

A **stage breakdown** (``--stages``, always on for full runs) re-runs
HEFT per backend under the opt-in ``repro.obs`` stage timers
(``stage.sweep`` / ``stage.seed`` / ``stage.gap`` / ``stage.commit`` /
``stage.journal``) and records per-stage ms/run, so a regression can
be attributed to seed resolution vs gap search vs commit vs journal
replay rather than re-profiled from scratch.

An **obs-overhead guard** times lu-20 HEFT with the ``repro.obs``
collector off and on: stats-off must stay at the committed
``BENCH_SCHED.json`` numbers and stats-on within
``OBS_OVERHEAD_LIMIT``; both violations print warnings.

``--baseline BENCH_SCHED.json`` turns the run into a regression guard:
every (testbed, heuristic, backend) row shared with the baseline must
stay at or above ``--min-ratio`` (default 0.7) of the committed
schedules/s, else the script exits nonzero.

``--quick`` trims repetition counts and the testbed list for CI smoke;
the committed ``BENCH_SCHED.json`` at the repo root is produced by a
full ``--backend all`` run and seeds the perf trajectory (regenerate
and commit alongside kernel changes).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _harness import best_of, write_result  # noqa: E402
from repro import HEFT, ILHA  # noqa: E402
from repro.experiments import paper_platform  # noqa: E402
from repro.graphs import irregular_testbed, layered_testbed, lu_graph  # noqa: E402
from repro.heuristics import force_object_state, get_scheduler  # noqa: E402
from repro.kernel.backends import use_backend  # noqa: E402
from repro.kernel.cext_backend import cext_available  # noqa: E402
from repro.obs import collect, stage_detail_scope  # noqa: E402

#: Acceptable stats-on construction slowdown per backend:
#: instrumentation is slot cached, so anything past this is a hot-loop
#: regression, not noise.  The compiled backend finishes 3-4x sooner
#: than the interpreted tiers, so the same absolute stats cost (the
#: per-commit counter drain + comm-event records) is a larger *ratio*;
#: its limit holds the absolute overhead to the interpreted budget.
OBS_OVERHEAD_LIMIT = {"python": 1.20, "numpy": 1.20, "cext": 1.50}

#: (label, factory) — representative constructions: the paper's two
#: protagonists (ILHA at its recommended default B and at a small B)
#: plus the classic insertion and non-insertion EFT baselines.
HEURISTICS = [
    ("heft", lambda: HEFT()),
    ("ilha", lambda: ILHA()),
    ("ilha:b=8", lambda: ILHA(b=8)),
    ("pct", lambda: get_scheduler("pct")),
]


def bench_cell(label, hname, scheduler, graph, plat, rounds, repeats, backends,
               with_object=True):
    # correctness gate before timing: every backend (and the object
    # reference, when it runs) must agree on the makespan exactly
    ref_makespan = None
    for be in backends:
        with use_backend(be):
            ms = scheduler.run(graph, plat, "one-port").makespan()
        if ref_makespan is None:
            ref_makespan = ms
        assert ms == ref_makespan, f"backend drift for {hname} on {label}"
    if with_object:
        with force_object_state():
            ms = scheduler.run(graph, plat, "one-port").makespan()
        assert ms == ref_makespan, f"flat/object drift for {hname} on {label}"

    flat_s = {be: float("inf") for be in backends}
    obj_s = float("inf")
    obj_repeats = max(1, repeats // 3)
    for _ in range(rounds):
        for be in backends:
            with use_backend(be):
                t0 = time.perf_counter()
                for _ in range(repeats):
                    scheduler.run(graph, plat, "one-port")
                flat_s[be] = min(flat_s[be], (time.perf_counter() - t0) / repeats)
        if with_object:
            t0 = time.perf_counter()
            with force_object_state():
                for _ in range(obj_repeats):
                    scheduler.run(graph, plat, "one-port")
            obj_s = min(obj_s, (time.perf_counter() - t0) / obj_repeats)

    # candidate probes: every task is evaluated on every processor by
    # the EFT sweep (upper bound for chunked ILHA, whose step-1 tasks
    # commit without a sweep — the ratio is unaffected)
    candidates = graph.num_tasks * plat.num_processors
    rows = []
    for be in backends:
        s = flat_s[be]
        row = {
            "testbed": label,
            "heuristic": hname,
            "backend": be,
            "tasks": graph.num_tasks,
            "edges": graph.num_edges,
            "flat_ms": round(s * 1e3, 4),
            "schedules_per_s": round(1.0 / s, 1),
            "cand_evals_per_s": round(candidates / s),
            "makespan": ref_makespan,
        }
        if with_object:
            row["object_ms"] = round(obj_s * 1e3, 4)
            row["speedup"] = round(obj_s / s, 2)
        rows.append(row)
        obj_part = (
            f"object {row['object_ms']:8.3f} ms  x{row['speedup']:<5.2f}"
            if with_object
            else " " * 26
        )
        print(
            f"{label:<16} {hname:<9} {be:<7} {row['tasks']:>5} tasks  "
            f"flat {row['flat_ms']:9.3f} ms  {obj_part} "
            f"{row['schedules_per_s']:>7.1f} sched/s  "
            f"{row['cand_evals_per_s']:>8} cand/s"
        )
    return rows


#: Stage timers reported by ``--stages`` (catalog order; the compiled
#: backend folds seed + gap into its C sweep, so those rows read 0.0).
STAGE_NAMES = ["stage.sweep", "stage.seed", "stage.gap",
               "stage.commit", "stage.journal"]


def bench_stages(beds, plat, backends, rounds) -> list[dict]:
    """Per-stage breakdown: HEFT per testbed x backend under the opt-in
    stage timers, reported as accumulated ms per construction run.

    ``stage.seed`` / ``stage.gap`` are nested inside ``stage.sweep`` on
    the interpreted backends; the cext backend performs them inside the
    compiled sweep, so only sweep / commit / journal are visible there.
    """
    scheduler = HEFT()
    rows = []
    for label, graph, repeats, _only, _with_object in beds:
        repeats = max(1, repeats // 2)
        for be in backends:
            best: dict[str, float] | None = None
            with use_backend(be):
                for _ in range(rounds):
                    with collect() as stats, stage_detail_scope():
                        t0 = time.perf_counter()
                        for _ in range(repeats):
                            scheduler.run(graph, plat, "one-port")
                        total = time.perf_counter() - t0
                    per_run = {
                        name: stats.timers.get(name, (0, 0.0))[1] / repeats
                        for name in STAGE_NAMES
                    }
                    per_run["total"] = total / repeats
                    if best is None or per_run["total"] < best["total"]:
                        best = per_run
            row = {
                "testbed": label,
                "heuristic": "heft",
                "backend": be,
                "total_ms": round(best["total"] * 1e3, 4),
            }
            for name in STAGE_NAMES:
                row[name.replace("stage.", "") + "_ms"] = round(
                    best[name] * 1e3, 4
                )
            rows.append(row)
            print(
                f"stages {label:<16} heft {be:<7} "
                f"total {row['total_ms']:8.3f} ms  "
                f"sweep {row['sweep_ms']:7.3f}  seed {row['seed_ms']:7.3f}  "
                f"gap {row['gap_ms']:7.3f}  commit {row['commit_ms']:7.3f}  "
                f"journal {row['journal_ms']:7.3f}"
            )
    return rows


def check_baseline(rows, baseline_path, min_ratio) -> int:
    """Regression guard: every (testbed, heuristic, backend) row shared
    with the committed baseline must keep at least ``min_ratio`` of its
    schedules/s.  Returns the number of regressed rows.
    """
    path = Path(baseline_path)
    if not path.exists():
        print(f"baseline {baseline_path} not found; guard skipped")
        return 0
    committed = {
        (r["testbed"], r["heuristic"], r["backend"]): r["flat_ms"]
        for r in json.loads(path.read_text()).get("construction", [])
    }
    regressions = 0
    shared = 0
    for row in rows:
        key = (row["testbed"], row["heuristic"], row["backend"])
        base_ms = committed.get(key)
        if base_ms is None:
            continue
        shared += 1
        ratio = base_ms / row["flat_ms"]  # >1 means faster than baseline
        if ratio < min_ratio:
            regressions += 1
            print(
                f"REGRESSION: {key[0]} {key[1]} [{key[2]}] "
                f"{row['flat_ms']} ms vs committed {base_ms} ms "
                f"(x{ratio:.2f} < x{min_ratio})"
            )
    print(
        f"baseline guard: {shared} shared rows, {regressions} regressions "
        f"(min-ratio x{min_ratio})"
    )
    return regressions


def bench_obs_overhead(plat, backends, rounds, repeats, baseline_path) -> list[dict]:
    """Guard the observability PR: stats-off must stay at the committed
    numbers and stats-on must cost at most ``OBS_OVERHEAD_LIMIT``.

    Times HEFT on lu-20 per backend with collection disabled and with
    an active collector; compares stats-off against the matching row of
    the committed ``BENCH_SCHED.json`` when one exists.
    """
    graph = lu_graph(20)
    scheduler = HEFT()
    committed: dict[str, float] = {}
    path = Path(baseline_path)
    if path.exists():
        for row in json.loads(path.read_text()).get("construction", []):
            if row["testbed"] == "lu-20" and row["heuristic"] == "heft":
                committed[row["backend"]] = row["flat_ms"]

    rows = []
    for be in backends:
        with use_backend(be):
            run = lambda: scheduler.run(graph, plat, "one-port")  # noqa: E731
            # interleaved off/on rounds, same discipline as bench_cell
            off_s = on_s = float("inf")
            for _ in range(rounds):
                off_s = min(off_s, best_of(run, 1, repeats))
                with collect():
                    on_s = min(on_s, best_of(run, 1, repeats))
        row = {
            "testbed": "lu-20",
            "heuristic": "heft",
            "backend": be,
            "off_ms": round(off_s * 1e3, 4),
            "on_ms": round(on_s * 1e3, 4),
            "overhead": round(on_s / off_s, 3),
        }
        if be in committed:
            row["committed_ms"] = committed[be]
        rows.append(row)
        print(
            f"obs-overhead lu-20 heft {be:<7} "
            f"off {row['off_ms']:8.3f} ms  on {row['on_ms']:8.3f} ms  "
            f"x{row['overhead']:.3f}"
        )
        limit = OBS_OVERHEAD_LIMIT[be]
        if row["overhead"] > limit:
            print(
                f"WARNING: stats-on overhead x{row['overhead']} on {be} "
                f"exceeds the x{limit} limit"
            )
        if be in committed and row["off_ms"] > 1.5 * committed[be]:
            print(
                f"WARNING: stats-off lu-20 heft on {be} "
                f"({row['off_ms']} ms) regressed vs the committed "
                f"{committed[be]} ms (>1.5x)"
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer rounds, smaller testbeds")
    parser.add_argument("--backend", default="all",
                        choices=["python", "numpy", "cext", "both", "all"],
                        help="kernel backend(s) to measure: both = python+numpy, "
                             "all = every available backend (default: all)")
    parser.add_argument("--stages", action="store_true",
                        help="per-stage breakdown (always on for full runs)")
    parser.add_argument("--baseline", default=None, metavar="JSON",
                        help="committed BENCH_SCHED.json to guard against; "
                             "shared rows below --min-ratio fail the run")
    parser.add_argument("--min-ratio", type=float, default=0.7,
                        help="minimum schedules/s vs baseline (default: 0.7)")
    parser.add_argument("--out", default="BENCH_SCHED.json",
                        help="output JSON path (default: BENCH_SCHED.json)")
    args = parser.parse_args(argv)

    if args.backend == "both":
        backends = ["python", "numpy"]
    elif args.backend == "all":
        backends = ["python", "numpy"]
        if cext_available():
            backends.append("cext")
        else:
            print("note: cext extension not built; measuring python+numpy "
                  "(build with: python setup.py build_ext --inplace)")
    else:
        backends = [args.backend]
    if "cext" in backends and not cext_available():
        print("error: --backend cext requested but the compiled extension "
              "is not importable; build it with "
              "'python setup.py build_ext --inplace'", file=sys.stderr)
        return 2

    plat = paper_platform()
    # (label, graph, repeats, heuristic filter, include object reference)
    if args.quick:
        rounds = 3
        beds = [
            ("lu-20", lu_graph(20), 10, None, True),
            ("irregular-300", irregular_testbed(300, seed=0), 4, None, True),
            ("irregular-10000", irregular_testbed(10000, seed=0), 1,
             {"heft"}, False),
        ]
    else:
        rounds = 6
        beds = [
            ("lu-20", lu_graph(20), 12, None, True),
            ("lu-40", lu_graph(40), 4, None, True),
            ("layered-big", layered_testbed(160, seed=0, width=10, density=0.25),
             4, None, True),
            ("irregular-1000", irregular_testbed(1000, seed=0), 4, None, True),
            ("irregular-10000", irregular_testbed(10000, seed=0), 2,
             {"heft"}, False),
        ]

    rows = [
        row
        for label, graph, repeats, only, with_object in beds
        for hname, factory in HEURISTICS
        if only is None or hname in only
        for row in bench_cell(label, hname, factory(), graph, plat, rounds,
                              repeats, backends, with_object)
    ]

    stage_rows = []
    if args.stages or not args.quick:
        print()
        stage_rows = bench_stages(
            [bed for bed in beds if bed[0] != "irregular-10000"],
            plat, backends, max(2, rounds // 2),
        )

    print()
    overhead_rows = bench_obs_overhead(
        plat, backends, rounds, 10 if args.quick else 12, args.out
    )

    result = {
        "benchmark": "sched-construction",
        "quick": args.quick,
        "backends": backends,
        "construction": rows,
        "stages": stage_rows,
        "obs_overhead": overhead_rows,
    }
    write_result(args.out, result)
    print(f"\nwrote {args.out}")

    if args.baseline is not None and check_baseline(
        rows, args.baseline, args.min_ratio
    ):
        return 1

    if not args.quick:
        for bed in ("lu-20", "lu-40", "irregular-1000"):
            worst = min(
                (r["speedup"] for r in rows
                 if r["testbed"] == bed and "speedup" in r),
                default=0.0,
            )
            if worst < 3.0:
                print(
                    f"WARNING: {bed} construction speedup {worst}x is below "
                    f"the 3x target"
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())
