"""Construction throughput: the flat builder EFT engine vs the object path.

Standalone script (not a pytest-benchmark module) so CI can run it and
archive the result::

    python benchmarks/bench_sched.py --quick --out BENCH_SCHED.json

Measures, per heuristic x testbed:

* **schedules/s** — full construction runs through the default flat
  ``SchedulerState`` vs the retained ``ObjectSchedulerState`` reference
  (forced with :func:`repro.heuristics.force_object_state`), interleaved
  inside each round so CPU-load drift cannot skew the ratio, with exact
  makespan agreement asserted on every pair.
* **candidate-evaluations/s** — the same latency expressed per
  (task, processor) EFT probe, the unit the paper's Section 4.3
  tentative-booking mechanism is invoked at.

The acceptance bar for the builder PR is >= 3x on lu-20, lu-40 and
irregular-1000.  ``--quick`` trims repetition counts and the testbed
list for CI smoke; the committed ``BENCH_SCHED.json`` at the repo root
is produced by a full run and seeds the perf trajectory (regenerate and
commit alongside builder changes).
"""

from __future__ import annotations

import argparse
import json
import platform as platform_mod
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import HEFT, ILHA  # noqa: E402
from repro.experiments import paper_platform  # noqa: E402
from repro.graphs import irregular_testbed, layered_testbed, lu_graph  # noqa: E402
from repro.heuristics import force_object_state, get_scheduler  # noqa: E402

#: (label, factory) — representative constructions: the paper's two
#: protagonists (ILHA at its recommended default B and at a small B)
#: plus the classic insertion and non-insertion EFT baselines.
HEURISTICS = [
    ("heft", lambda: HEFT()),
    ("ilha", lambda: ILHA()),
    ("ilha:b=8", lambda: ILHA(b=8)),
    ("pct", lambda: get_scheduler("pct")),
]


def bench_cell(label, hname, scheduler, graph, plat, rounds, repeats):
    flat_sched = scheduler.run(graph, plat, "one-port")
    with force_object_state():
        ref_sched = scheduler.run(graph, plat, "one-port")
    assert flat_sched.makespan() == ref_sched.makespan(), (
        f"flat/object drift for {hname} on {label}"
    )

    flat_s = obj_s = float("inf")
    obj_repeats = max(1, repeats // 3)
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(repeats):
            scheduler.run(graph, plat, "one-port")
        flat_s = min(flat_s, (time.perf_counter() - t0) / repeats)
        t0 = time.perf_counter()
        with force_object_state():
            for _ in range(obj_repeats):
                scheduler.run(graph, plat, "one-port")
        obj_s = min(obj_s, (time.perf_counter() - t0) / obj_repeats)

    # candidate probes: every task is evaluated on every processor by
    # the EFT sweep (upper bound for chunked ILHA, whose step-1 tasks
    # commit without a sweep — the ratio is unaffected)
    candidates = graph.num_tasks * plat.num_processors
    row = {
        "testbed": label,
        "heuristic": hname,
        "tasks": graph.num_tasks,
        "edges": graph.num_edges,
        "flat_ms": round(flat_s * 1e3, 4),
        "object_ms": round(obj_s * 1e3, 4),
        "speedup": round(obj_s / flat_s, 2),
        "schedules_per_s": round(1.0 / flat_s, 1),
        "cand_evals_per_s": round(candidates / flat_s),
        "makespan": ref_sched.makespan(),
    }
    print(
        f"{label:<16} {hname:<9} {row['tasks']:>5} tasks  "
        f"flat {row['flat_ms']:8.3f} ms  object {row['object_ms']:8.3f} ms  "
        f"x{row['speedup']:<5.2f} {row['schedules_per_s']:>7.1f} sched/s  "
        f"{row['cand_evals_per_s']:>8} cand/s"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: fewer rounds, smaller testbeds")
    parser.add_argument("--out", default="BENCH_SCHED.json",
                        help="output JSON path (default: BENCH_SCHED.json)")
    args = parser.parse_args(argv)

    plat = paper_platform()
    if args.quick:
        rounds = 3
        beds = [
            ("lu-20", lu_graph(20), 10),
            ("irregular-300", irregular_testbed(300, seed=0), 4),
        ]
    else:
        rounds = 6
        beds = [
            ("lu-20", lu_graph(20), 12),
            ("lu-40", lu_graph(40), 4),
            ("layered-big", layered_testbed(160, seed=0, width=10, density=0.25), 4),
            ("irregular-1000", irregular_testbed(1000, seed=0), 4),
        ]

    rows = [
        bench_cell(label, hname, factory(), graph, plat, rounds, repeats)
        for label, graph, repeats in beds
        for hname, factory in HEURISTICS
    ]

    result = {
        "benchmark": "sched-construction",
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform_mod.python_version(),
        "quick": args.quick,
        "construction": rows,
    }
    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if not args.quick:
        for bed in ("lu-20", "lu-40", "irregular-1000"):
            worst = min(
                (r["speedup"] for r in rows if r["testbed"] == bed), default=0.0
            )
            if worst < 3.0:
                print(
                    f"WARNING: {bed} construction speedup {worst}x is below "
                    f"the 3x target"
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())
