"""Benchmarks of the iterated-local-search subsystem.

Tracks the two numbers the search layer promises: improvement over the
base heuristic on the seeded random testbeds, and move-evaluation
throughput (moves/second) of the incremental evaluator — including the
speedup of an incremental preview over a from-scratch ``replay()`` and
over rescheduling with the base heuristic.
"""

import random
import time

from repro import HEFT, validate_schedule
from repro.experiments import paper_platform
from repro.graphs import irregular_testbed, layered_testbed, lu_graph
from repro.heuristics import IteratedLocalSearch
from repro.search import IncrementalEvaluator, SearchPoint, propose
from repro.simulate import replay


def test_ils_improvement_over_heft(benchmark):
    """ils(heft) on the seeded layered/irregular testbeds: improvement
    and throughput of one full budgeted search per graph."""
    platform = paper_platform()
    cases = [
        ("layered-8/s1", layered_testbed(8, seed=1)),
        ("irregular-60/s0", irregular_testbed(60, seed=0)),
        ("irregular-60/s1", irregular_testbed(60, seed=1)),
    ]

    def sweep():
        rows = []
        for name, graph in cases:
            base_ms = HEFT().run(graph, platform, "one-port").makespan()
            t0 = time.perf_counter()
            out = IteratedLocalSearch(base="heft", budget=3000, seed=0).run(
                graph, platform, "one-port"
            )
            elapsed = time.perf_counter() - t0
            validate_schedule(out)
            stats = out.search_stats
            rows.append((name, base_ms, out.makespan(), stats["evals"] / elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nils(heft), budget 3000:")
    for name, base_ms, ils_ms, rate in rows:
        gain = (1.0 - ils_ms / base_ms) * 100.0
        print(
            f"  {name:<16} heft {base_ms:9.1f} -> ils {ils_ms:9.1f} "
            f"({gain:+5.1f}%)  {rate:6.0f} moves/s"
        )
        benchmark.extra_info[name] = {
            "improvement_pct": round(gain, 2),
            "moves_per_s": round(rate),
        }


def test_incremental_preview_vs_full_replay(benchmark):
    """Throughput of preview() against a from-scratch replay of the
    same mutated decisions, and against rescheduling with HEFT."""
    platform = paper_platform()
    graph = lu_graph(20)
    sched = HEFT().run(graph, platform, "one-port")
    evaluator = IncrementalEvaluator(graph, platform)
    evaluator.load(SearchPoint.from_schedule(sched))
    rng = random.Random(0)
    moves = []
    while len(moves) < 200:
        move = propose(evaluator.point, platform, rng)
        if move is not None:
            moves.append(move)

    def preview_all():
        for move in moves:
            evaluator.preview(move)

    benchmark.pedantic(preview_all, rounds=1, iterations=1)
    t0 = time.perf_counter()
    preview_all()
    incremental_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for move in moves:
        replay(
            graph, platform, move.apply(evaluator.point).to_decisions(platform.processors)
        )
    full_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(10):
        HEFT().run(graph, platform, "one-port")
    reschedule_s = (time.perf_counter() - t0) * len(moves) / 10

    print(
        f"\nlu-20 ({graph.num_tasks} tasks), {len(moves)} move evaluations:\n"
        f"  incremental preview : {incremental_s:7.3f}s "
        f"({len(moves) / incremental_s:7.0f}/s)\n"
        f"  full replay         : {full_s:7.3f}s "
        f"(x{full_s / incremental_s:4.1f} slower)\n"
        f"  reschedule with heft: {reschedule_s:7.3f}s "
        f"(x{reschedule_s / incremental_s:4.1f} slower)"
    )
    benchmark.extra_info["speedup_vs_replay"] = round(full_s / incremental_s, 1)
    benchmark.extra_info["speedup_vs_reschedule"] = round(
        reschedule_s / incremental_s, 1
    )
    assert full_s > incremental_s  # previews must beat from-scratch replay
