"""The paper's actual ILHA methodology: best over several values of B.

Section 5.3: "the best results for ILHA have been obtained by trying
several values for B".  This bench applies that tuning (plus the
Section 4.4 variants) on one mid-size instance of each testbed and
compares against HEFT — the tuned ILHA matches or beats HEFT on every
testbed, which is the paper's core claim.
"""

import pytest

from repro import HEFT, TunedILHA, validate_schedule
from repro.experiments import paper_platform
from repro.graphs import make_testbed

CASES = [
    ("fork-join", 300),
    ("lu", 50),
    ("laplace", 24),
    ("ldmt", 38),
    ("doolittle", 50),
    ("stencil", 24),
]


@pytest.mark.parametrize("testbed,size", CASES, ids=[c[0] for c in CASES])
def test_tuned_ilha_vs_heft(benchmark, testbed, size):
    platform = paper_platform()
    graph = make_testbed(testbed, size)

    def run_both():
        heft = HEFT().run(graph, platform, "one-port")
        tuned = TunedILHA().run(graph, platform, "one-port")
        return heft, tuned

    heft, tuned = benchmark.pedantic(run_both, rounds=1, iterations=1)
    validate_schedule(heft)
    validate_schedule(tuned)
    gain = (tuned.speedup() / heft.speedup() - 1.0) * 100.0
    print(
        f"\n{testbed}-{size}: heft {heft.speedup():.2f} vs {tuned.heuristic} "
        f"{tuned.speedup():.2f} ({gain:+.1f}%)"
    )
    benchmark.extra_info["heft_speedup"] = round(heft.speedup(), 3)
    benchmark.extra_info["tuned_speedup"] = round(tuned.speedup(), 3)
    benchmark.extra_info["winning_config"] = tuned.heuristic
    # the paper's claim: tuned ILHA matches (fork-join) or beats HEFT
    assert tuned.makespan() <= heft.makespan() * 1.02
