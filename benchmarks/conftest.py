"""Shared helpers for the benchmark suite.

Every ``bench_figXX`` module regenerates one figure of the paper: it
runs the figure's (size x heuristic) sweep exactly once under
``pytest-benchmark`` (pedantic mode — these are macro-benchmarks, not
microbenchmarks), prints the same speedup series the paper plots, and
stores the series in ``benchmark.extra_info`` so it survives in the
JSON output.

Figure sweeps execute on the campaign engine; pass ``workers`` to fan
the cells over a process pool, or set ``BENCH_WORKERS`` in the
environment to parallelize every figure benchmark at once.  Exports
``BENCH_CACHE_DIR`` to reuse a warm content-addressed cache across
benchmark invocations (cells then measure cache latency, not
scheduling!).

Run with output visible::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import format_comparison, format_run, run_figure
from repro.experiments.harness import ExperimentRun


def _default_workers() -> int:
    return int(os.environ.get("BENCH_WORKERS", "1"))


def _default_cache_dir() -> str | None:
    return os.environ.get("BENCH_CACHE_DIR") or None


def run_figure_benchmark(
    benchmark,
    figure: str,
    sizes=None,
    tuned: bool = False,
    workers: int | None = None,
    cache_dir: str | None = None,
) -> ExperimentRun:
    """Execute one figure sweep once on the engine, print + stash the series."""
    result: dict[str, ExperimentRun] = {}
    workers = workers if workers is not None else _default_workers()
    cache_dir = cache_dir if cache_dir is not None else _default_cache_dir()

    def sweep():
        result["run"] = run_figure(
            figure, sizes=sizes, tuned=tuned, workers=workers, cache=cache_dir
        )
        return result["run"]

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    run = result["run"]
    report = format_run(run) + "\n\n" + format_comparison(run)
    print(f"\n{report}")
    benchmark.extra_info["figure"] = figure
    benchmark.extra_info["workers"] = workers
    for heuristic in run.heuristics():
        benchmark.extra_info[heuristic] = [
            (size, round(speedup, 3)) for size, speedup in run.series(heuristic)
        ]
    return run


@pytest.fixture
def figure_bench(benchmark):
    """Fixture form of :func:`run_figure_benchmark`."""

    def runner(
        figure: str,
        sizes=None,
        tuned: bool = False,
        workers: int | None = None,
        cache_dir: str | None = None,
    ) -> ExperimentRun:
        return run_figure_benchmark(benchmark, figure, sizes, tuned, workers, cache_dir)

    return runner
