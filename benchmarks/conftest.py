"""Shared helpers for the benchmark suite.

Every ``bench_figXX`` module regenerates one figure of the paper: it
runs the figure's (size x heuristic) sweep exactly once under
``pytest-benchmark`` (pedantic mode — these are macro-benchmarks, not
microbenchmarks), prints the same speedup series the paper plots, and
stores the series in ``benchmark.extra_info`` so it survives in the
JSON output.

Run with output visible::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments import format_comparison, format_run, run_figure
from repro.experiments.harness import ExperimentRun


def run_figure_benchmark(benchmark, figure: str, sizes=None, tuned: bool = False) -> ExperimentRun:
    """Execute one figure sweep once, print + stash the series."""
    result: dict[str, ExperimentRun] = {}

    def sweep():
        result["run"] = run_figure(figure, sizes=sizes, tuned=tuned)
        return result["run"]

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    run = result["run"]
    report = format_run(run) + "\n\n" + format_comparison(run)
    print(f"\n{report}")
    benchmark.extra_info["figure"] = figure
    for heuristic in run.heuristics():
        benchmark.extra_info[heuristic] = [
            (size, round(speedup, 3)) for size, speedup in run.series(heuristic)
        ]
    return run


@pytest.fixture
def figure_bench(benchmark):
    """Fixture form of :func:`run_figure_benchmark`."""

    def runner(figure: str, sizes=None, tuned: bool = False) -> ExperimentRun:
        return run_figure_benchmark(benchmark, figure, sizes, tuned)

    return runner
