#!/usr/bin/env python
"""Diagnosing schedules: is the makespan compute- or communication-bound?

The paper explains STENCIL's poor speedup qualitatively ("many
communications to be done sequentially, and these become the
bottleneck").  The analysis package makes that quantitative: it walks
the *scheduled critical chain* — the zero-slack sequence of task
executions and port transfers ending at the makespan — and reports how
much of it is computation vs serialized communication.

This example contrasts a compute-bound kernel (LU on few messages) with
the communication-bound STENCIL, and shows the replay simulator
confirming the schedules carry no timing slack.

Run:  python examples/bottleneck_analysis.py
"""

from repro import HEFT, ILHA
from repro.analysis import bottleneck_report, compare_schedules, scheduled_critical_path
from repro.experiments import paper_platform
from repro.graphs import lu_graph, stencil_graph
from repro.simulate import replay_schedule


def diagnose(name: str, schedule) -> None:
    report = bottleneck_report(schedule)
    print(f"{name}: makespan {report['makespan']:.0f} — "
          f"compute {report['compute']:.0f}, "
          f"serialized comm {report['comm']:.0f} "
          f"({report['comm_fraction']:.0%} of the critical chain)")
    chain = scheduled_critical_path(schedule)
    head = chain[: min(4, len(chain))]
    for node in head:
        print(f"    [{node.start:7.1f} {node.finish:7.1f}] {node.kind:<5} "
              f"{node.label}  <- {node.released_by}")
    print(f"    ... {len(chain)} activities on the chain\n")


def main() -> None:
    platform = paper_platform()

    # a compute-heavy kernel with cheap messages
    lu = lu_graph(15, comm_ratio=1.0)
    lu_sched = HEFT().run(lu, platform, "one-port")
    diagnose("LU (c=1)", lu_sched)

    # the paper's communication-bound case
    stencil = stencil_graph(10, comm_ratio=10.0)
    stencil_sched = HEFT().run(stencil, platform, "one-port")
    diagnose("STENCIL (c=10)", stencil_sched)

    # ILHA attacks exactly the comm share
    ilha_sched = ILHA(b=38, single_comm_scan=True).run(stencil, platform, "one-port")
    diagnose("STENCIL with ILHA", ilha_sched)

    print(compare_schedules([stencil_sched, ilha_sched]))

    # the replay simulator re-derives every time from the decisions alone;
    # zero compaction means the greedy engines left no slack
    tight = replay_schedule(stencil_sched)
    print(f"\nreplay cross-check: {stencil_sched.makespan():.0f} -> "
          f"{tight.makespan():.0f} "
          f"(slack recovered: {stencil_sched.makespan() - tight.makespan():.0f})")


if __name__ == "__main__":
    main()
