#!/usr/bin/env python
"""Beyond the paper's testbed: sparse topologies and routed messages.

Section 4.3 remarks that the one-port model extends to platforms where
some processor pairs have no direct link — messages are then routed
through intermediate processors, each hop individually subject to the
one-port rule.  This example builds a 6-processor *ring* (each
processor only talks to its neighbours), lets the library compute the
static routing tables, and compares HEFT schedules on the ring against
the fully-connected platform: same graph, same speeds, but multi-hop
messages and port contention on the relays stretch the makespan.

Run:  python examples/custom_platform.py
"""

import math

import numpy as np

from repro import (FixedAllocation, HEFT, Platform, RoutedOnePortModel, TaskGraph,
                   validate_schedule)
from repro.graphs import laplace_graph
from repro.models import build_routing_table


def ring_platform(p: int, cycle_time: float = 1.0, link: float = 1.0) -> Platform:
    """A bidirectional ring: finite links only between neighbours."""
    mat = np.full((p, p), math.inf)
    np.fill_diagonal(mat, 0.0)
    for i in range(p):
        mat[i][(i + 1) % p] = link
        mat[(i + 1) % p][i] = link
    return Platform([cycle_time] * p, mat)


def main() -> None:
    p = 6
    full = Platform.homogeneous(p, cycle_time=1.0, link=1.0)
    ring = ring_platform(p)
    routes = build_routing_table(ring)
    longest = max(len(route) - 1 for route in routes.values())
    print(f"ring of {p}: longest route {longest} hops "
          f"(e.g. P0 -> P3 via {routes[(0, 3)]})\n")

    # (a) Cross-ring traffic that *must* share relays: three independent
    # transfers s_i -> r_i pinned to opposite sides of the ring.  On the
    # full network the sender/receiver pairs are disjoint, so the three
    # messages fly in parallel (the one-port rule allows disjoint pairs).
    # On the ring, their routes overlap on the relays, whose single send
    # and receive ports serialize the store-and-forward traffic.
    graph = TaskGraph(name="cross-ring-pairs")
    alloc: dict[str, int] = {}
    for i in range(3):
        graph.add_task(f"s{i}", 0.5)
        graph.add_task(f"r{i}", 0.5)
        graph.add_dependency(f"s{i}", f"r{i}", 6.0)
        alloc[f"s{i}"] = i          # senders on P0, P1, P2
        alloc[f"r{i}"] = i + 3      # receivers opposite: P3, P4, P5
    direct = FixedAllocation(alloc).run(graph, full, "one-port")
    validate_schedule(direct)
    routed = FixedAllocation(alloc).run(graph, ring, RoutedOnePortModel(ring))
    validate_schedule(routed)
    hops = len(routed.comm_events)
    edges = len({(e.src_task, e.dst_task) for e in routed.comm_events})
    print("three cross-ring transfers, pinned allocation:")
    print(f"  fully connected : makespan {direct.makespan():7.1f}  "
          f"({direct.num_comms()} messages, all direct and parallel)")
    print(f"  ring, routed    : makespan {routed.makespan():7.1f}  "
          f"({edges} messages over {hops} hops)  "
          f"-> {routed.makespan() / direct.makespan():.2f}x slower\n")

    # (b) A free scheduler adapts: HEFT on the ring keeps neighbours
    # talking and pays almost nothing for the missing links.
    wave = laplace_graph(10, comm_ratio=2.0)
    free_full = HEFT().run(wave, full, "one-port")
    free_ring = HEFT().run(wave, ring, RoutedOnePortModel(ring))
    validate_schedule(free_full)
    validate_schedule(free_ring)
    print("wavefront graph, HEFT free to place tasks:")
    print(f"  fully connected : makespan {free_full.makespan():7.1f}")
    print(f"  ring, routed    : makespan {free_ring.makespan():7.1f}  "
          f"-> HEFT routes around the topology "
          f"({free_ring.makespan() / free_full.makespan():.2f}x)")


if __name__ == "__main__":
    main()
