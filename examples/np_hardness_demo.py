#!/usr/bin/env python
"""The NP-completeness constructions of Theorems 1 and 2, end to end.

Takes a small 2-PARTITION instance, runs both of the paper's reductions,
and shows each direction concretely:

* **FORK-SCHED** (Theorem 1): the constructed fork graph, its deadline
  ``T``, the schedule built from a balanced partition meeting ``T``
  exactly, and the exact solver confirming no schedule beats ``T`` when
  the instance is perturbed to kill the partition;
* **COMM-SCHED** (Theorem 2, Appendix): the bipartite instance with its
  fixed allocation, and the deadline-meeting communication schedule
  derived from the partition (with the published ``T = S`` corrected to
  ``2S`` — see DESIGN.md).

Run:  python examples/np_hardness_demo.py
"""

from repro import validate_schedule
from repro.complexity import (
    comm_sched,
    equal_cardinality_partition,
    fork_sched,
    optimal_fork_makespan,
    two_partition,
)


def main() -> None:
    a = [3, 1, 1, 2, 2, 3]  # sum 12 -> S = 6; balanced halves exist
    print(f"2-PARTITION instance: {a} (half sum {sum(a) // 2})")
    side = equal_cardinality_partition(a)
    print(f"equal-cardinality partition: indices {side} "
          f"-> values {[a[i] for i in side]}\n")

    # ---- Theorem 1: FORK-SCHED ----------------------------------------
    inst = fork_sched.build_instance(a)
    print(f"FORK-SCHED: {inst.num_children} children, "
          f"weights {[int(w) for w in inst.child_weights]}, deadline T = {inst.deadline:g}")
    schedule = fork_sched.schedule_from_partition(inst, side)
    validate_schedule(schedule)
    print(f"  schedule from partition: makespan {schedule.makespan():g} "
          f"(= T: {abs(schedule.makespan() - inst.deadline) < 1e-9})")
    optimum, local = optimal_fork_makespan(
        inst.parent_weight, inst.child_weights, inst.child_data
    )
    print(f"  exact optimum: {optimum:g}  (children kept on P0: {sorted(local)})")

    bad = [3, 1, 1, 2, 2, 4]  # odd total -> no partition at all
    inst_bad = fork_sched.build_instance(bad)
    optimum_bad, _ = optimal_fork_makespan(
        inst_bad.parent_weight, inst_bad.child_weights, inst_bad.child_data
    )
    print(f"  no-partition instance {bad}: optimum {optimum_bad:g} > "
          f"T = {inst_bad.deadline:g} -> decision is NO\n")

    # ---- Theorem 2: COMM-SCHED ----------------------------------------
    cinst = comm_sched.build_instance(a)
    print(f"COMM-SCHED: {cinst.graph.num_tasks} zero-weight tasks on "
          f"{cinst.platform.num_processors} processors, deadline 2S = {cinst.deadline:g}")
    plain = two_partition(a)
    cschedule = comm_sched.schedule_from_partition(cinst, plain)
    validate_schedule(cschedule)
    print(f"  schedule from partition: makespan {cschedule.makespan():g} "
          f"(deadline met: {cschedule.makespan() <= cinst.deadline + 1e-9})")
    print(f"  closed-form decision: {comm_sched.decide(cinst)}; "
          f"brute force over send orders: {comm_sched.decide_by_enumeration(cinst)}")


if __name__ == "__main__":
    main()
