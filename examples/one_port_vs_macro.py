#!/usr/bin/env python
"""The paper's Figure 1 example: why the one-port model matters.

A seven-task fork (one parent, six unit children, unit messages) on five
identical processors:

* under the macro-dataflow model the parent broadcasts all messages in
  parallel, so keeping two children local reaches makespan **3**;
* the *same allocation* under the one-port model serializes the four
  messages on the parent's send port: makespan **6**;
* the one-port *optimum* keeps three children local and uses one fewer
  processor: makespan **5**.

This script reproduces all three numbers with the library's fixed-
allocation scheduler and the exact fork solver, and prints the Gantt
charts so the serialized port is visible.

Run:  python examples/one_port_vs_macro.py
"""

from repro import FixedAllocation, Platform, validate_schedule
from repro.complexity import build_fork_schedule, optimal_fork_makespan
from repro.graphs import figure1_example


def main() -> None:
    graph = figure1_example()
    platform = Platform.homogeneous(5, cycle_time=1.0, link=1.0)

    # The macro-dataflow allocation of Section 2.3: parent + first two
    # children on P0, one remaining child on each other processor.
    alloc = {"v0": 0, "v1": 0, "v2": 0, "v3": 1, "v4": 2, "v5": 3, "v6": 4}

    macro = FixedAllocation(alloc).run(graph, platform, "macro-dataflow")
    validate_schedule(macro)
    print(f"macro-dataflow, paper allocation : makespan {macro.makespan():g}")

    one_port = FixedAllocation(alloc).run(graph, platform, "one-port")
    validate_schedule(one_port)
    print(f"one-port, same allocation        : makespan {one_port.makespan():g}")

    optimum, local = optimal_fork_makespan(1.0, [1.0] * 6, [1.0] * 6)
    print(f"one-port optimum (exact solver)  : makespan {optimum:g} "
          f"(children kept local: {len(local)})")

    exact = build_fork_schedule(1.0, [1.0] * 6, [1.0] * 6, local)
    validate_schedule(exact)

    print("\nSame allocation under one-port (messages serialize on P0's port):")
    print(one_port.gantt(width=72))
    print("\nOne-port optimal schedule:")
    print(exact.gantt(width=72))


if __name__ == "__main__":
    main()
