#!/usr/bin/env python
"""The paper's Figures 3-4 toy example: HEFT vs ILHA side by side.

Two fork roots ``a0`` and ``b0`` share two children; everything costs 1.
On two identical processors, scheduling greedily task by task (HEFT)
ships private children across the network, while ILHA's chunked Step 1
keeps each root's private children at home — a smaller makespan *and*
dramatically fewer messages (Section 4.4's design goal).

With the paper's tie-break order and non-insertion slots, HEFT lands on
the published makespan 6; the (classical) insertion-based HEFT finds 5
by filling an idle gap — both are shown.  ILHA reaches 5 with only two
messages either way.

Run:  python examples/paper_toy_example.py
"""

from repro import HEFT, ILHA, Platform, validate_schedule
from repro.graphs import toy_graph, toy_priority_key


def show(label: str, schedule) -> None:
    validate_schedule(schedule)
    print(f"{label}: makespan {schedule.makespan():g}, "
          f"{schedule.num_comms()} messages")
    print(schedule.gantt(width=64))
    print()


def main() -> None:
    graph = toy_graph()
    platform = Platform.homogeneous(2, cycle_time=1.0, link=1.0)

    heft_paper = HEFT(insertion=False, priority_key=toy_priority_key).run(
        graph, platform, "one-port"
    )
    show("HEFT, paper convention (no insertion)", heft_paper)

    heft_insert = HEFT(priority_key=toy_priority_key).run(graph, platform, "one-port")
    show("HEFT, insertion-based", heft_insert)

    ilha = ILHA(b=8, priority_key=toy_priority_key).run(graph, platform, "one-port")
    show("ILHA (B >= 8)", ilha)

    print(
        "ILHA keeps a1-a3 with a0 and b1-b3 with b0 (zero-communication\n"
        "Step 1), so only the two shared children ab1/ab2 ever cross the\n"
        "network - the 'dramatically reduced' communication count of §4.4."
    )


if __name__ == "__main__":
    main()
