#!/usr/bin/env python
"""Quickstart: schedule a task graph under the one-port model.

Builds a small LU-decomposition task graph, schedules it with HEFT and
ILHA on the paper's 10-processor heterogeneous platform under both the
classical macro-dataflow model and the realistic bi-directional one-port
model, validates every schedule, and prints the comparison plus a Gantt
chart.

Run:  python examples/quickstart.py
"""

from repro import HEFT, ILHA, Platform, validate_schedule
from repro.core import makespan_lower_bound
from repro.graphs import lu_graph


def main() -> None:
    # The paper's platform: five cycle-time-6 processors, three of 10,
    # two of 15, on a homogeneous unit-cost network (Section 5.2).
    platform = Platform.from_groups([(5, 6), (3, 10), (2, 15)])
    print(f"platform: {platform.num_processors} processors, "
          f"speedup bound {platform.speedup_bound():.1f}")

    # An LU elimination DAG with the paper's weight rule (level k costs
    # N - k) and communication volumes 10x the source task's weight.
    graph = lu_graph(20, comm_ratio=10.0)
    print(f"graph: {graph.name}, {graph.num_tasks} tasks, {graph.num_edges} edges")
    print(f"makespan lower bound: {makespan_lower_bound(graph, platform):.1f}\n")

    header = f"{'heuristic':<12} {'model':<16} {'makespan':>10} {'speedup':>8} {'messages':>9}"
    print(header)
    print("-" * len(header))
    for model in ("macro-dataflow", "one-port"):
        for name, scheduler in (("heft", HEFT()), ("ilha(B=4)", ILHA(b=4))):
            schedule = scheduler.run(graph, platform, model)
            validate_schedule(schedule)  # independent rule checker
            print(
                f"{name:<12} {model:<16} {schedule.makespan():>10.1f} "
                f"{schedule.speedup():>8.2f} {schedule.num_comms():>9}"
            )

    # Show where every task runs: the ASCII Gantt chart of the one-port
    # ILHA schedule (processor rows, then port rows per processor pair).
    schedule = ILHA(b=4).run(graph, platform, "one-port")
    print("\nOne-port ILHA schedule (compute rows only):")
    print("\n".join(schedule.gantt(width=76).splitlines()[: platform.num_processors + 1]))


if __name__ == "__main__":
    main()
