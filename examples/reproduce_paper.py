#!/usr/bin/env python
"""Regenerate the paper's evaluation figures (Figures 7-12) from the CLI.

Examples
--------
All figures at the default (scaled) sizes::

    python examples/reproduce_paper.py

One figure, custom sizes, with the tuned-ILHA series and CSV output::

    python examples/reproduce_paper.py --figures fig08 --sizes 30 60 90 \
        --tuned --csv results.csv

The default sizes keep each figure to seconds of pure-Python scheduling;
the paper's own axes (problem size 100-500, up to ~125k tasks per cell
for LU) work too if you have the patience — the code is the same.

Sweeps drive through the campaign engine: ``--workers N`` fans the
(size x heuristic) cells over a process pool, and ``--cache-dir DIR``
makes repeated regenerations incremental (only never-seen cells are
scheduled; see ``repro.campaign`` for the content-hash scheme)::

    python examples/reproduce_paper.py --workers 4 --cache-dir .repro-cache
"""

import argparse
import sys

from repro.experiments import (
    available_figures,
    format_comparison,
    format_run,
    run_figure,
    write_csv,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--figures",
        nargs="+",
        default=available_figures(),
        choices=available_figures(),
        metavar="FIG",
        help=f"figures to run (default: all of {', '.join(available_figures())})",
    )
    parser.add_argument(
        "--sizes",
        nargs="+",
        type=int,
        default=None,
        help="override the problem-size axis (applies to every selected figure)",
    )
    parser.add_argument(
        "--tuned",
        action="store_true",
        help="add the ilha-tuned series (best over several B, as the paper did)",
    )
    parser.add_argument("--csv", default=None, help="also write all cells to this CSV file")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="campaign-engine process-pool size (default: run in-process)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="content-addressed result cache; re-runs only schedule new cells",
    )
    args = parser.parse_args(argv)

    progress = None if args.quiet else lambda msg: print(f"  .. {msg}", file=sys.stderr)
    all_cells = []
    for fig in args.figures:
        run = run_figure(
            fig,
            sizes=args.sizes,
            tuned=args.tuned,
            progress=progress,
            workers=args.workers,
            cache=args.cache_dir,
        )
        all_cells.extend(run.cells)
        print()
        print(f"== {fig} ==")
        print(format_run(run))
        print()
        print(format_comparison(run))
    if args.csv:
        path = write_csv(all_cells, args.csv)
        print(f"\nwrote {len(all_cells)} cells to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
