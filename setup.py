"""Packaging for the ``repro`` distribution.

Metadata lives here (no ``pyproject.toml``: the execution environment
is offline and has no ``wheel`` package, so PEP 517 builds that
download a backend or build a wheel are unavailable; the classic
``setup.py`` path works everywhere).

The compiled kernel backend (``repro.kernel._cext``) is built
*opportunistically*: the extension is declared ``optional``, and the
``build_ext`` subclass below downgrades any compiler failure — no C
toolchain, missing Python headers, broken flags — to a warning.  An
sdist or ``pip install`` on a machine without a compiler therefore
succeeds with the pure-Python package; the ``cext`` backend then
reports unavailable and scheduling falls back to the interpreted
state classes (see ``repro/kernel/cext_backend.py``).  Build it
explicitly with::

    python setup.py build_ext --inplace
"""

import re
from pathlib import Path

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


def _version() -> str:
    text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
    return re.search(r'^__version__ = "([^"]+)"', text, re.M).group(1)


class optional_build_ext(build_ext):
    """Build the C engine if we can; continue without it if we cannot."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # no compiler / toolchain at all
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # compile or link failure
            self._skip(exc)

    def _skip(self, exc) -> None:
        print(
            f"WARNING: building repro.kernel._cext failed ({exc}); "
            "installing the pure-Python package — the 'cext' kernel "
            "backend will fall back to the interpreted state classes."
        )


setup(
    name="repro-ipps-beaumont",
    version=_version(),
    description=(
        "Reproduction of the IPDPS one-port scheduling heuristics paper: "
        "flat-kernel schedulers, campaign runner, observability stack"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # numpy/networkx are optional accelerators: the package degrades to
    # pure-Python paths without them, so they are not hard requirements.
    extras_require={
        "accel": ["numpy"],
        "graphs": ["networkx"],
        "test": ["pytest", "hypothesis"],
    },
    ext_modules=[
        Extension(
            "repro.kernel._cext",
            sources=["src/repro/kernel/_cextmodule.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
