"""Setuptools shim.

The execution environment is offline and has no ``wheel`` package, so
PEP 517 editable installs (which build a wheel) are unavailable; this
shim lets ``pip install -e .`` take the classic ``setup.py develop``
path with the metadata from ``pyproject.toml``.
"""

from setuptools import setup

setup()
