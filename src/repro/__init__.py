"""repro — one-port task-graph scheduling for heterogeneous processors.

A full reproduction of Beaumont, Boudet & Robert, *A Realistic Model and
an Efficient Heuristic for Scheduling with Heterogeneous Processors*
(IPDPS 2002): the bi-directional one-port communication model, the
one-port adaptations of HEFT and the ILHA heuristic, the six classical
testbeds of the evaluation, and the NP-completeness reductions.

Quickstart
----------
>>> from repro import Platform, HEFT, ILHA
>>> from repro.graphs import lu_graph
>>> platform = Platform.from_groups([(5, 6), (3, 10), (2, 15)])  # the paper's
>>> graph = lu_graph(20, comm_ratio=10.0)
>>> heft = HEFT().run(graph, platform, model="one-port")
>>> ilha = ILHA(b=4).run(graph, platform, model="one-port")
>>> ilha.speedup() >= 1.0
True
"""

from .core import (
    MACRO_DATAFLOW,
    ONE_PORT,
    Platform,
    Schedule,
    TaskGraph,
    is_valid,
    makespan_lower_bound,
    validate_schedule,
)
from .heuristics import (
    BIL,
    CPOP,
    GDL,
    HEFT,
    ILHA,
    PCT,
    FixedAllocation,
    ILHAClassic,
    IteratedLocalSearch,
    MaxMin,
    MinMin,
    RandomMapper,
    Serial,
    TunedILHA,
    available_schedulers,
    get_scheduler,
)
from .models import MacroDataflowModel, OnePortModel, RoutedOnePortModel

__version__ = "1.0.0"

__all__ = [
    "BIL",
    "CPOP",
    "FixedAllocation",
    "GDL",
    "HEFT",
    "ILHA",
    "ILHAClassic",
    "IteratedLocalSearch",
    "MACRO_DATAFLOW",
    "MacroDataflowModel",
    "MaxMin",
    "MinMin",
    "ONE_PORT",
    "OnePortModel",
    "PCT",
    "Platform",
    "RandomMapper",
    "RoutedOnePortModel",
    "Schedule",
    "Serial",
    "TaskGraph",
    "TunedILHA",
    "available_schedulers",
    "get_scheduler",
    "is_valid",
    "makespan_lower_bound",
    "validate_schedule",
    "__version__",
]
