"""Schedule analytics: idle profiles, port loads, bottleneck attribution."""

from .bottleneck import (
    ScheduledNode,
    bottleneck_report,
    scheduled_critical_path,
)
from .stats import (
    comm_matrix,
    compare_schedules,
    idle_profile,
    port_busy_times,
    processor_profile,
)

__all__ = [
    "ScheduledNode",
    "bottleneck_report",
    "comm_matrix",
    "compare_schedules",
    "idle_profile",
    "port_busy_times",
    "processor_profile",
    "scheduled_critical_path",
]
