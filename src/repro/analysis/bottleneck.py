"""Bottleneck attribution: *why* is the makespan what it is?

The makespan of a one-port schedule is determined by a chain of
activities (task executions and message transfers) in which each
activity starts exactly when its tightest constraint releases it:

* a *dependence* constraint — a predecessor task or the previous hop of
  the same message finished just then;
* a *resource* constraint — the same processor (or the same send /
  receive port) was occupied until then.

:func:`scheduled_critical_path` walks this chain backwards from the
activity that finishes at the makespan, classifying every link, and
:func:`bottleneck_report` aggregates the chain into "how much of the
critical chain is computation vs communication vs idle", which makes
statements like the paper's STENCIL diagnosis ("many communications to
be done sequentially, and these become the bottleneck") quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..core.schedule import CommEvent, Schedule, TaskPlacement
from ..core.tolerance import time_tol

NodeKind = Literal["task", "comm"]


@dataclass(frozen=True)
class ScheduledNode:
    """One activity on the scheduled critical chain."""

    kind: NodeKind
    label: str
    start: float
    finish: float
    #: How this activity was released: what its start time was waiting on.
    released_by: str

    @property
    def duration(self) -> float:
        return self.finish - self.start


def _activities(schedule: Schedule):
    tasks = list(schedule.placements.values())
    comms = list(schedule.comm_events)
    return tasks, comms


def _tight(a_finish: float, b_start: float) -> bool:
    return abs(a_finish - b_start) <= time_tol(a_finish, b_start)


def scheduled_critical_path(schedule: Schedule) -> list[ScheduledNode]:
    """The zero-slack chain ending at the makespan (see module docstring).

    Walks backwards greedily: from the latest-finishing activity, find
    any activity whose finish coincides with the current start and which
    constrains it (dependence or shared resource); prefer dependence
    explanations over resource ones, and larger activities over smaller,
    so the chain is informative and deterministic.  Gaps (start released
    by nothing that finishes there — e.g. an entry task at time 0) end
    the walk.
    """
    tasks, comms = _activities(schedule)
    if not tasks:
        return []

    graph = schedule.graph
    current: TaskPlacement | CommEvent = max(
        tasks + comms, key=lambda a: (a.finish, a.duration)
    )
    chain: list[ScheduledNode] = []

    def node_for(act, reason: str) -> ScheduledNode:
        if isinstance(act, TaskPlacement):
            return ScheduledNode("task", f"{act.task!r}@P{act.proc}", act.start, act.finish, reason)
        return ScheduledNode(
            "comm",
            f"{act.src_task!r}->{act.dst_task!r} P{act.src_proc}->P{act.dst_proc}",
            act.start,
            act.finish,
            reason,
        )

    def predecessors_of(act):
        """(candidate, reason, priority) triples; lower priority wins."""
        out = []
        if isinstance(act, TaskPlacement):
            for parent in graph.predecessors(act.task):
                p = schedule.placements[parent]
                if p.proc == act.proc and _tight(p.finish, act.start):
                    out.append((p, "dependence (local parent)", 0))
            for e in comms:
                if e.dst_task == act.task and _tight(e.finish, act.start):
                    # only the final hop of this task's messages
                    if schedule.proc_of(act.task) == e.dst_proc:
                        out.append((e, "dependence (message arrival)", 0))
            for p in tasks:
                if p.proc == act.proc and p is not act and _tight(p.finish, act.start):
                    out.append((p, f"resource (P{act.proc} busy)", 1))
        else:
            src = schedule.placements.get(act.src_task)
            if act.hop == 0 and src is not None and _tight(src.finish, act.start):
                out.append((src, "dependence (source finished)", 0))
            for e in comms:
                if (
                    e.src_task == act.src_task
                    and e.dst_task == act.dst_task
                    and e.hop == act.hop - 1
                    and _tight(e.finish, act.start)
                ):
                    out.append((e, "dependence (previous hop)", 0))
            for e in comms:
                if e is act:
                    continue
                if e.src_proc == act.src_proc and _tight(e.finish, act.start):
                    out.append((e, f"resource (P{act.src_proc} send port)", 1))
                if e.dst_proc == act.dst_proc and _tight(e.finish, act.start):
                    out.append((e, f"resource (P{act.dst_proc} recv port)", 1))
        return out

    reason = "makespan"
    seen = set()
    while True:
        chain.append(node_for(current, reason))
        key = id(current)
        if key in seen:  # safety against pathological zero-duration loops
            break
        seen.add(key)
        candidates = predecessors_of(current)
        if not candidates:
            break
        candidates.sort(key=lambda item: (item[2], -item[0].duration, item[0].start))
        current, reason, _ = candidates[0]
    chain.reverse()
    return chain


def bottleneck_report(schedule: Schedule) -> dict[str, float]:
    """Aggregate the critical chain into compute/comm/gap fractions.

    ``compute`` + ``comm`` + ``gap`` == makespan (gap is time on the
    chain covered by neither — release jitter between activities).  A
    large ``comm`` share means serialized transfers bound the schedule,
    the regime the paper identifies on STENCIL.
    """
    ms = schedule.makespan()
    chain = scheduled_critical_path(schedule)
    compute = sum(n.duration for n in chain if n.kind == "task")
    comm = sum(n.duration for n in chain if n.kind == "comm")
    return {
        "makespan": ms,
        "chain_length": float(len(chain)),
        "compute": compute,
        "comm": comm,
        "gap": max(0.0, ms - compute - comm),
        "comm_fraction": comm / ms if ms > 0 else 0.0,
    }
