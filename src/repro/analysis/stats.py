"""Descriptive statistics over schedules.

These are the quantities the paper's discussion reasons about — per-
processor load (Section 5.2's balance analysis), serialized port traffic
(the STENCIL bottleneck of Figure 12), and message counts (ILHA's design
goal) — exposed as plain dictionaries for reports and tests.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..core.schedule import Schedule


def processor_profile(schedule: Schedule) -> dict[int, dict[str, float]]:
    """Per-processor busy/idle breakdown over the makespan window."""
    ms = schedule.makespan()
    out: dict[int, dict[str, float]] = {}
    for proc in schedule.platform.processors:
        busy = schedule.proc_busy_time(proc)
        tasks = schedule.tasks_on(proc)
        out[proc] = {
            "busy": busy,
            "idle": max(0.0, ms - busy),
            "tasks": float(len(tasks)),
            "utilization": busy / ms if ms > 0 else 1.0,
        }
    return out


def idle_profile(schedule: Schedule) -> dict[str, float]:
    """Aggregate idle statistics (min/max/mean utilization)."""
    profile = processor_profile(schedule)
    utils = [row["utilization"] for row in profile.values()]
    return {
        "min_utilization": min(utils),
        "max_utilization": max(utils),
        "mean_utilization": sum(utils) / len(utils),
        "total_idle": sum(row["idle"] for row in profile.values()),
    }


def port_busy_times(schedule: Schedule) -> dict[int, dict[str, float]]:
    """Per-processor send/receive port occupation.

    Under the one-port model these are serialized resources; a port busy
    for most of the makespan is the communication bottleneck the paper
    identifies on STENCIL ("these become the bottleneck").
    """
    out = {
        proc: {"send": 0.0, "recv": 0.0} for proc in schedule.platform.processors
    }
    for e in schedule.comm_events:
        out[e.src_proc]["send"] += e.duration
        out[e.dst_proc]["recv"] += e.duration
    return out


def comm_matrix(schedule: Schedule) -> np.ndarray:
    """``p x p`` matrix of total transfer time between processor pairs."""
    p = schedule.platform.num_processors
    mat = np.zeros((p, p))
    for e in schedule.comm_events:
        mat[e.src_proc, e.dst_proc] += e.duration
    return mat


def compare_schedules(schedules: Iterable[Schedule]) -> str:
    """Aligned comparison table of several schedules' headline metrics."""
    rows = []
    for s in schedules:
        idle = idle_profile(s) if s.placements else None
        rows.append(
            (
                s.heuristic or "?",
                s.model,
                s.makespan(),
                s.speedup(),
                s.num_comms(),
                s.total_comm_time(),
                idle["mean_utilization"] if idle else 0.0,
            )
        )
    header = (
        f"{'heuristic':<20} {'model':<16} {'makespan':>10} {'speedup':>8} "
        f"{'#msg':>6} {'commtime':>10} {'util':>6}"
    )
    lines = [header, "-" * len(header)]
    for name, model, ms, sp, nc, ct, util in rows:
        lines.append(
            f"{name:<20} {model:<16} {ms:>10.1f} {sp:>8.2f} {nc:>6} "
            f"{ct:>10.1f} {util:>6.2f}"
        )
    return "\n".join(lines)
