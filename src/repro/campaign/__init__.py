"""Parallel, resumable, content-addressed experiment campaigns.

A campaign is a declarative grid — testbeds × sizes × platforms ×
models × heuristics × seeds (:class:`CampaignSpec`) — expanded into
independent cells, triaged against an append-only JSONL cache
(:class:`ResultCache`), executed by a pluggable executor
(:func:`run_campaign`), and reduced back into the same
``ExperimentRun`` series the figure pipeline consumes
(:func:`experiment_runs`).  Execution is layered: cell triage
(:mod:`~repro.campaign.triage`), an executor registry
(:mod:`~repro.campaign.executors` — ``serial`` inline, ``process``
local pool, ``spool`` filesystem work-queue shared by workers on any
host; :mod:`~repro.campaign.spool`), and deterministic reassembly
(:mod:`~repro.campaign.reassembly`), so the aggregated result is
byte-identical across executors, worker counts, and cache
temperatures.  The CLI front end is ``python -m repro campaign
{run,status,export,worker,cache}``.

Cell-key hashing scheme
-----------------------
Every cell is identified by the SHA-256 hex digest of the canonical
JSON (sorted keys, fixed separators — see
:func:`repro.core.serialization.stable_digest`) of this payload::

    {
      "v": 1,                      # KEY_SCHEMA_VERSION; bump to invalidate
      "graph": {                   # declarative graph spec
        "testbed": "lu",           #   registry name
        "size": 30,                #   natural size parameter
        "comm_ratio": 10.0,        #   source-proportional comm ratio
        "params": {"seed": 1}      #   extra generator kwargs; ``seed``
      },                           #   only for seeded generators
      "platform": {                # resolved content, not labels:
        "cycle_times": [6.0, ...], #   two differently-labelled specs of
        "link": 1.0                #   the same machine share entries
      },
      "model": "one-port",         # communication model name
      "heuristic": {               # registry name + constructor kwargs
        "name": "ilha",
        "kwargs": {"b": 4}
      }
    }

The key covers exactly the inputs that determine a cell's metrics and
nothing presentational: campaign names, series labels, worker counts,
executor choice, and the ``validate`` flag do not perturb it.  The
``improve`` axis is resolved *before* hashing — an improved cell is
keyed by its expanded ``ils`` heuristic payload (base + search
parameters), so improved and unimproved cells of the same base cache
independently.  Scheduling is deterministic given these inputs, so
equal keys imply equal metrics — which is what makes the cache safe to
share across campaigns, figures, benchmark runs, and spool workers on
different hosts (shards merge with :func:`merge_caches`).  Keys are
stable across processes and Python versions (no ``hash()``
randomization); any change to the payload layout must bump
:data:`~repro.campaign.spec.KEY_SCHEMA_VERSION`.
"""

from .aggregate import (
    cached_cells,
    campaign_status,
    experiment_runs,
    format_status,
    mean_series,
)
from .cache import ResultCache, merge_caches
from .dashboard import dashboard_model, render_dashboard
from .executors import (
    available_executors,
    make_executor,
    register_executor,
)
from .runner import CampaignRunResult, CellOutcome, execute_task, run_campaign
from .spec import (
    KEY_SCHEMA_VERSION,
    CampaignCell,
    CampaignSpec,
    HeuristicSpec,
    PlatformSpec,
)
from .spool import Spool, run_worker
from .triage import TriagedCells, triage_cells

__all__ = [
    "KEY_SCHEMA_VERSION",
    "CampaignCell",
    "CampaignRunResult",
    "CampaignSpec",
    "CellOutcome",
    "HeuristicSpec",
    "PlatformSpec",
    "ResultCache",
    "Spool",
    "TriagedCells",
    "available_executors",
    "cached_cells",
    "campaign_status",
    "dashboard_model",
    "execute_task",
    "experiment_runs",
    "format_status",
    "make_executor",
    "mean_series",
    "merge_caches",
    "register_executor",
    "render_dashboard",
    "run_campaign",
    "run_worker",
    "triage_cells",
]
