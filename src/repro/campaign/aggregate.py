"""Reduction of campaign outcomes back into experiment-level series.

:func:`experiment_runs` folds a :class:`~repro.campaign.runner.CampaignRunResult`
into one :class:`~repro.experiments.harness.ExperimentRun` per
(testbed, platform, model) combination, so everything written for the
figure pipeline — ``format_run``, ``format_comparison``, CSV/JSON
export — consumes campaign output unchanged.  :func:`mean_series`
averages a seed sweep's points per size.  :func:`campaign_status`
answers "how much of this grid is already in the cache" without
executing anything.
"""

from __future__ import annotations

from ..experiments.harness import CellResult, ExperimentRun
from .cache import ResultCache
from .runner import CampaignRunResult
from .spec import CampaignSpec


def experiment_runs(result: CampaignRunResult) -> list[ExperimentRun]:
    """One ``ExperimentRun`` per (testbed, platform, model), expansion order.

    The run's ``figure`` is the campaign name, suffixed with whichever
    of testbed / platform / model actually vary so single-combination
    campaigns keep clean labels.
    """
    spec = result.spec
    multi_testbed = len(spec.testbeds) > 1
    multi_platform = len(spec.platforms) > 1
    multi_model = len(spec.models) > 1

    runs: dict[tuple, ExperimentRun] = {}
    for outcome in result.outcomes:
        cell = outcome.cell
        # group by platform *content*, not label: two distinct machines
        # sharing a label must not be merged into one mixed series
        group = (cell.testbed, cell.platform.content_key, cell.model)
        run = runs.get(group)
        if run is None:
            parts = [spec.name]
            if multi_testbed:
                parts.append(cell.testbed)
            if multi_platform:
                parts.append(cell.platform.label)
            if multi_model:
                parts.append(cell.model)
            figure = "/".join(parts)
            taken = {r.figure for r in runs.values()}
            if figure in taken:  # distinct platforms under one label
                n = 2
                while f"{figure}#{n}" in taken:
                    n += 1
                figure = f"{figure}#{n}"
            run = ExperimentRun(
                figure=figure,
                description=(
                    f"campaign {spec.name}: {cell.testbed} on "
                    f"{cell.platform.label} under {cell.model}"
                ),
                platform=cell.platform.build(),
            )
            runs[group] = run
        run.cells.append(outcome.result)
    return list(runs.values())


def mean_series(run: ExperimentRun, heuristic: str) -> list[tuple[int, float]]:
    """Per-size mean speedup of one heuristic (collapses seed sweeps)."""
    by_size: dict[int, list[float]] = {}
    for cell in run.cells:
        if cell.heuristic == heuristic:
            by_size.setdefault(cell.size, []).append(cell.speedup)
    return [(size, sum(v) / len(v)) for size, v in sorted(by_size.items())]


def campaign_status(spec: CampaignSpec, cache: ResultCache | None) -> dict:
    """Cache coverage of a spec's grid: totals plus per-testbed breakdown."""
    cells = spec.expand()
    unique: dict[str, object] = {}
    for cell in cells:
        unique.setdefault(cell.key, cell)
    cached = {key for key in unique if cache is not None and key in cache}
    by_testbed: dict[str, dict[str, int]] = {}
    for key, cell in unique.items():
        row = by_testbed.setdefault(cell.testbed, {"total": 0, "cached": 0})
        row["total"] += 1
        if key in cached:
            row["cached"] += 1
    return {
        "campaign": spec.name,
        "cells": len(cells),
        "unique": len(unique),
        "cached": len(cached),
        "missing": len(unique) - len(cached),
        "by_testbed": by_testbed,
    }


def format_status(status: dict) -> str:
    """Human-readable summary of :func:`campaign_status`."""
    lines = [
        f"campaign {status['campaign']}: {status['cells']} cells "
        f"({status['unique']} unique), {status['cached']} cached, "
        f"{status['missing']} to run",
    ]
    for testbed, row in sorted(status["by_testbed"].items()):
        lines.append(f"  {testbed:>12}: {row['cached']}/{row['total']} cached")
    return "\n".join(lines)


def cached_cells(spec: CampaignSpec, cache: ResultCache) -> list[CellResult]:
    """Cells of the grid already present in the cache, expansion order.

    Like the runner, this restamps the presentational fields (figure,
    series label) from the *requesting* spec: the shared cache may have
    been filled by a differently-named campaign.
    """
    out: list[CellResult] = []
    seen: set[str] = set()
    for cell in spec.expand():
        if cell.key in seen:
            continue
        seen.add(cell.key)
        hit = cache.get(cell.key)
        if hit is not None:
            out.append(
                CellResult(
                    **{
                        **hit,
                        "figure": cell.campaign,
                        "heuristic": cell.heuristic.display,
                    }
                )
            )
    return out
