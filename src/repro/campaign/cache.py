"""Content-addressed result cache persisted as append-only JSONL.

One record per line::

    {"key": "<sha256>", "cell": {...CellResult fields...}, "payload": {...}}

The ``payload`` copy of the hashed content makes the artifact
self-describing — a cache can be audited or re-aggregated without the
spec that produced it.  Records are appended as cells complete, so an
interrupted campaign resumes from exactly the cells it finished; on
load, a torn final line (crash mid-write) is skipped and later rewrites
of a key win (last-writer-wins lets ``--refresh`` supersede old rows
without compaction).
"""

from __future__ import annotations

import json
from pathlib import Path

CACHE_FILENAME = "cells.jsonl"


class ResultCache:
    """Keyed store of completed cell metrics under one directory."""

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._path = self._root / CACHE_FILENAME
        self._cells: dict[str, dict] = {}
        self._needs_newline = False
        self._load()

    def _load(self) -> None:
        if not self._path.exists():
            return
        raw = self._path.read_bytes()
        # a torn tail (crash mid-append) has no trailing newline; the
        # next append must not glue a fresh record onto the torn line
        self._needs_newline = bool(raw) and not raw.endswith(b"\n")
        with self._path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from an interrupted run
                key = record.get("key")
                cell = record.get("cell")
                if isinstance(key, str) and isinstance(cell, dict):
                    self._cells[key] = cell

    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        return self._root

    @property
    def path(self) -> Path:
        return self._path

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def keys(self) -> set[str]:
        return set(self._cells)

    def get(self, key: str) -> dict | None:
        """CellResult fields stored for ``key``, or ``None``."""
        return self._cells.get(key)

    def put(self, key: str, cell: dict, payload: dict | None = None) -> None:
        """Record one completed cell (appends + flushes immediately)."""
        record = {"key": key, "cell": cell}
        if payload is not None:
            record["payload"] = payload
        with self._path.open("a") as fh:
            if self._needs_newline:
                fh.write("\n")
                self._needs_newline = False
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._cells[key] = cell

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self._path)!r}, {len(self._cells)} cells)"
