"""Content-addressed result cache persisted as append-only JSONL.

One record per line::

    {"key": "<sha256>", "cell": {...CellResult fields...}, "payload": {...}}

The ``payload`` copy of the hashed content makes the artifact
self-describing — a cache can be audited or re-aggregated without the
spec that produced it.  Records are appended as cells complete, so an
interrupted campaign resumes from exactly the cells it finished; on
load, a torn final line (crash mid-write) is skipped and later rewrites
of a key win (last-writer-wins lets ``--refresh`` supersede old rows
without compaction).

Writes go through one held ``O_APPEND`` handle (opened lazily, one
unbuffered write per record), so appending N cells costs N writes, not
N opens, and concurrent writers — two campaigns sharing a directory,
or spool shard merges — interleave whole records rather than bytes.
:meth:`ResultCache.compact` rewrites the file last-writer-wins
(dropping superseded and torn lines) and :func:`merge_caches` folds
several cache directories into one — the audit/merge half of
multi-host sharding.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Iterator
from pathlib import Path

CACHE_FILENAME = "cells.jsonl"


def _iter_records(path: Path) -> Iterator[tuple[str, dict]]:
    """Yield ``(key, record)`` for every well-formed line of a cache
    file, skipping blank, torn, and malformed lines."""
    if not path.exists():
        return
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from an interrupted run
            key = record.get("key")
            if isinstance(key, str) and isinstance(record.get("cell"), dict):
                yield key, record


class ResultCache:
    """Keyed store of completed cell metrics under one directory."""

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._path = self._root / CACHE_FILENAME
        self._cells: dict[str, dict] = {}
        self._needs_newline = False
        self._fh = None
        self._load()

    def _load(self) -> None:
        if not self._path.exists():
            return
        raw = self._path.read_bytes()
        # a torn tail (crash mid-append) has no trailing newline; the
        # next append must not glue a fresh record onto the torn line
        self._needs_newline = bool(raw) and not raw.endswith(b"\n")
        for key, record in _iter_records(self._path):
            self._cells[key] = record["cell"]

    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        return self._root

    @property
    def path(self) -> Path:
        return self._path

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: str) -> bool:
        return key in self._cells

    def keys(self) -> set[str]:
        return set(self._cells)

    def get(self, key: str) -> dict | None:
        """CellResult fields stored for ``key``, or ``None``."""
        return self._cells.get(key)

    def _writer(self):
        """The held append handle (unbuffered: one write per record)."""
        if self._fh is None or self._fh.closed:
            self._fh = self._path.open("ab", buffering=0)
        return self._fh

    def put(self, key: str, cell: dict, payload: dict | None = None) -> None:
        """Record one completed cell (one durable append per record)."""
        record = {"key": key, "cell": cell}
        if payload is not None:
            record["payload"] = payload
        data = (json.dumps(record, sort_keys=True) + "\n").encode()
        if self._needs_newline:
            # heal a torn tail in the same single write as the record
            data = b"\n" + data
            self._needs_newline = False
        self._writer().write(data)  # O_APPEND, unbuffered: atomic-ish line
        self._cells[key] = cell

    def close(self) -> None:
        """Release the held append handle (reopened lazily on demand)."""
        if self._fh is not None and not self._fh.closed:
            self._fh.close()
        self._fh = None

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self) -> dict:
        """Rewrite the file last-writer-wins, dropping superseded,
        duplicate, and torn lines.  Atomic (temp + rename); returns
        ``{"kept": n, "dropped": m}``."""
        records: dict[str, dict] = {}
        total = 0
        for key, record in _iter_records(self._path):
            records[key] = record
            total += 1
        raw_lines = (
            sum(1 for line in self._path.read_text().splitlines() if line.strip())
            if self._path.exists()
            else 0
        )
        self.close()
        tmp = self._path.with_name(f".{self._path.name}.compact-{os.getpid()}")
        with tmp.open("w") as fh:
            for key in sorted(records):
                fh.write(json.dumps(records[key], sort_keys=True) + "\n")
        os.replace(tmp, self._path)
        self._needs_newline = False
        self._cells = {key: rec["cell"] for key, rec in records.items()}
        return {"kept": len(records), "dropped": raw_lines - len(records)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self._path)!r}, {len(self._cells)} cells)"


def merge_caches(out: str | Path, sources: Iterable[str | Path]) -> dict:
    """Merge cache directories into ``out`` (created if missing).

    Records are folded in order — ``out``'s existing rows first, then
    each source — with last-writer-wins per key, then written compactly
    and atomically.  Torn and malformed lines are dropped.  Returns
    ``{"cells": total, "sources": n, "added": new-to-out}``.
    """
    out_cache = ResultCache(out)
    before = out_cache.keys()
    records: dict[str, dict] = {}
    for key, record in _iter_records(out_cache.path):
        records[key] = record
    n_sources = 0
    for src in sources:
        n_sources += 1
        for key, record in _iter_records(Path(src) / CACHE_FILENAME):
            records[key] = record
    out_cache.close()
    tmp = out_cache.path.with_name(f".{CACHE_FILENAME}.merge-{os.getpid()}")
    with tmp.open("w") as fh:
        for key in sorted(records):
            fh.write(json.dumps(records[key], sort_keys=True) + "\n")
    os.replace(tmp, out_cache.path)
    return {
        "cells": len(records),
        "sources": n_sources,
        "added": len(set(records) - before),
    }
