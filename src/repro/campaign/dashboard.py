"""Live terminal dashboard over a spool directory and its journal.

``repro campaign status --spool-dir D --watch`` renders campaign
progress — cells done/running/queued, per-worker heartbeat age,
cells/s throughput, an ETA, and the most recent errors — purely from
filesystem reads (the ``tasks``/``leases``/``done`` shards plus the
event journal), so it runs on any host sharing the directory, with or
without the campaign parent alive, and keeps working on the journal of
a campaign that already finished.

The model/render split keeps everything testable: :func:`dashboard_model`
folds one snapshot into a plain dict, :func:`render_dashboard` turns it
into text, and :func:`watch` loops until the campaign is finished.
"""

from __future__ import annotations

import time

from ..obs.export import journal_summary
from ..obs.journal import read_journal


def dashboard_model(
    status: dict | None,
    records: list[dict],
    now: float | None = None,
) -> dict:
    """One dashboard frame from a spool status + journal records.

    ``status`` is :meth:`~repro.campaign.spool.Spool.status` output (or
    ``None`` when only the journal is available); live spool counts
    override journal reconstruction where both exist.
    """
    now = time.time() if now is None else now
    summary = journal_summary(records)
    done_walls = sorted(
        r["wall"] for r in records
        if r.get("ev") in ("completed", "settled", "cached")
        and isinstance(r.get("wall"), (int, float))
    )
    rate = 0.0
    if len(done_walls) >= 2 and done_walls[-1] > done_walls[0]:
        rate = (len(done_walls) - 1) / (done_walls[-1] - done_walls[0])
    cells = dict(summary["cells"])
    if status is not None:
        cells["queued"] = status.get("pending", cells["queued"])
        cells["running"] = status.get("leased", cells["running"])
    remaining = cells["queued"] + cells["running"]
    eta_s = round(remaining / rate, 1) if rate > 0 and remaining else None

    workers: dict[str, dict] = {}
    for rec in records:
        w = rec.get("worker")
        if not isinstance(w, str) or w == "parent":
            continue
        ent = workers.setdefault(w, {
            "done": 0, "errors": 0, "last_event_age_s": None,
            "heartbeat_age_s": None, "stale": False, "current": None,
        })
        wall = rec.get("wall")
        if isinstance(wall, (int, float)):
            age = round(max(now - wall, 0.0), 3)
            if ent["last_event_age_s"] is None or age < ent["last_event_age_s"]:
                ent["last_event_age_s"] = age
        ev = rec.get("ev")
        if ev == "claimed":
            ent["current"] = rec.get("key")
        elif ev == "completed":
            ent["done"] += 1
            if "error" in rec:
                ent["errors"] += 1
            if ent["current"] == rec.get("key"):
                ent["current"] = None
        elif ev == "worker_exit":
            ent["current"] = None
    if status is not None:
        for w, health in (status.get("worker_health") or {}).items():
            ent = workers.setdefault(w, {
                "done": health.get("done", 0), "errors": 0,
                "last_event_age_s": None, "heartbeat_age_s": None,
                "stale": False, "current": None,
            })
            ent["heartbeat_age_s"] = health.get("heartbeat_age_s")
            ent["stale"] = bool(health.get("stale"))

    errors = [
        {"key": r.get("key"), "worker": r.get("worker"), "error": r.get("error")}
        for r in records
        if r.get("ev") == "completed" and "error" in r
    ][-3:]

    drained = status is None or (
        status.get("pending", 0) == 0 and status.get("leased", 0) == 0
    )
    finished = drained and summary["state"] == "finished"
    return {
        "campaign": summary["campaign"],
        "state": "finished" if finished else summary["state"],
        "finished": finished,
        "cells": cells,
        "rate_cells_s": round(rate, 3),
        "eta_s": eta_s,
        "elapsed_s": round(summary["elapsed_s"], 3),
        "workers": dict(sorted(workers.items())),
        "errors": errors,
    }


def render_dashboard(model: dict) -> str:
    """Render one dashboard frame as a small fixed-layout text block."""
    cells = model["cells"]
    lines = [
        f"campaign {model['campaign'] or '?'} — {model['state']} "
        f"(elapsed {model['elapsed_s']:.1f}s)",
        f"  cells: {cells['done']} done"
        + (f" ({cells['failed']} failed)" if cells["failed"] else "")
        + f", {cells['running']} running, {cells['queued']} queued",
        f"  rate : {model['rate_cells_s']:.2f} cells/s"
        + (f", ETA {model['eta_s']:.0f}s" if model["eta_s"] is not None
           else ""),
    ]
    if model["workers"]:
        lines.append("  workers:")
        width = max(len(w) for w in model["workers"])
        for w, ent in model["workers"].items():
            hb = ent.get("heartbeat_age_s")
            if hb is None:
                hb = ent.get("last_event_age_s")
            beat = f"  hb {hb:.1f}s ago" if hb is not None else ""
            stale = "  [stale]" if ent.get("stale") else ""
            current = f"  on {ent['current'][:12]}" if ent.get("current") else ""
            lines.append(
                f"    {w:<{width}}  {ent['done']} done{beat}{current}{stale}"
            )
    if model["errors"]:
        lines.append("  recent errors:")
        for err in model["errors"]:
            lines.append(
                f"    {str(err['key'] or '?')[:12]} [{err['worker']}] "
                f"{err['error']}"
            )
    return "\n".join(lines)


def watch(
    root,
    interval_s: float = 2.0,
    out=print,
    clear: bool = False,
    max_frames: int | None = None,
) -> int:
    """Render the dashboard every ``interval_s`` until the campaign ends.

    Exits 0 once the journal records ``campaign_end`` and the spool is
    drained — so on an already-finished campaign it renders one frame
    and returns.  ``max_frames`` bounds the loop for tests and
    one-shot invocations.
    """
    from .spool import Spool

    frames = 0
    while True:
        status = Spool(root).status()
        records = read_journal(root)
        model = dashboard_model(status, records)
        text = render_dashboard(model)
        out("\x1b[2J\x1b[H" + text if clear else text)
        frames += 1
        if model["finished"]:
            return 0
        if max_frames is not None and frames >= max_frames:
            return 0
        time.sleep(interval_s)
