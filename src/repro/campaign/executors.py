"""Pluggable cell executors: how a campaign's pending cells get run.

:func:`~repro.campaign.runner.run_campaign` triages cells against the
cache and hands the misses to an :class:`Executor`, which owns *where*
they execute — everything else (triage, settling, cache writes,
deterministic reassembly) is executor-independent, so every executor
yields byte-identical aggregated results for a fixed spec.

Registered executors:

``serial``
    Inline in the calling process; the graph memo is shared across
    cells, so small sweeps avoid all process overhead.
``process``
    The classic :mod:`multiprocessing` pool (behavior-preserving:
    ``workers=1`` or a single task still runs inline).
``spool``
    A filesystem work-queue (:mod:`repro.campaign.spool`): cells are
    sharded by content hash into ``tasks/``, claimed under leases by
    independent ``repro campaign worker`` processes — spawned locally
    and/or joining from any host that shares the directory — and the
    parent polls the ``done/`` shards, merges per-worker stats
    payloads, expires dead workers' leases, and retries their cells
    with bounded backoff.

The executor contract is one method::

    execute(tasks, settle)   # call settle(key, cell_dict, stats|None)
                             # exactly once per task, any order

``tasks`` are the self-contained JSON payloads of
:meth:`~repro.campaign.spec.CampaignCell.task_payload`; ``settle`` is
supplied by the runner and is not thread/process safe — call it from
the parent only.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable

from ..core.exceptions import CampaignError, ConfigurationError
from ..obs import current as _obs_current
from .spool import Spool, run_worker

SettleFn = Callable[[str, dict, dict | None], None]
ProgressFn = Callable[[str], None]

_EXECUTORS: dict[str, type] = {}


def register_executor(name: str):
    """Class decorator: register an executor under ``name``."""

    def deco(cls):
        cls.name = name
        _EXECUTORS[name] = cls
        return cls

    return deco


def available_executors() -> list[str]:
    """Sorted names of every registered executor."""
    return sorted(_EXECUTORS)


def make_executor(name: str, **options) -> "Executor":
    """Instantiate a registered executor with its options."""
    cls = _EXECUTORS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown executor {name!r}; available: {available_executors()}"
        )
    try:
        return cls(**options)
    except TypeError as exc:
        raise ConfigurationError(f"bad options for executor {name!r}: {exc}") from None


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits imports), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@register_executor("serial")
class SerialExecutor:
    """Execute every cell inline in the calling process."""

    def __init__(self, workers: int = 1) -> None:
        self.workers = workers  # accepted for interface uniformity

    def execute(self, tasks: list[dict], settle: SettleFn) -> None:
        from .runner import execute_task

        for task in tasks:
            settle(*execute_task(task))


@register_executor("process")
class ProcessExecutor:
    """Execute cells on a local :mod:`multiprocessing` pool."""

    def __init__(self, workers: int = 2) -> None:
        self.workers = workers

    def execute(self, tasks: list[dict], settle: SettleFn) -> None:
        from .runner import execute_task

        if self.workers <= 1 or len(tasks) <= 1:
            # a pool of one is pure overhead; keep the classic inline path
            SerialExecutor().execute(tasks, settle)
            return
        ctx = _pool_context()
        with ctx.Pool(processes=min(self.workers, len(tasks))) as pool:
            for key, cell_dict, cell_stats in pool.imap_unordered(
                execute_task, tasks, chunksize=1
            ):
                settle(key, cell_dict, cell_stats)


@register_executor("spool")
class SpoolExecutor:
    """Execute cells through a shared filesystem work-queue.

    Parameters
    ----------
    workers:
        Local worker processes to spawn (``0`` = publish and poll
        only; external ``repro campaign worker`` processes do the
        work).
    dir:
        Spool directory.  ``None`` creates a temporary one that is
        removed after a successful run; an explicit directory is
        adopted (pre-published tasks and done records are honored —
        that is what lets a crashed campaign resume) and kept.
    lease_ttl:
        Seconds a claim stays valid without heartbeat renewal; a
        worker that dies stops renewing and its cells are retried
        after at most this long.
    poll_s:
        Parent polling period over the ``done/`` shards.
    max_retries:
        Lease-expiry retries per cell before the campaign fails with
        an explicit error (deterministic worker errors fail fast and
        are never retried).
    retry_backoff_s:
        Base backoff before a retried cell is claimable again; grows
        linearly with the attempt number.
    """

    def __init__(
        self,
        workers: int = 1,
        dir: str | None = None,
        lease_ttl: float = 30.0,
        poll_s: float = 0.05,
        max_retries: int = 2,
        retry_backoff_s: float = 0.5,
        worker_poll_s: float = 0.05,
    ) -> None:
        if workers < 0:
            raise ConfigurationError(f"spool workers must be >= 0, got {workers}")
        self.workers = workers
        self.dir = dir
        self.lease_ttl = lease_ttl
        self.poll_s = poll_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.worker_poll_s = worker_poll_s

    # ------------------------------------------------------------------
    def _spawn(self, ctx, root: str) -> multiprocessing.Process:
        proc = ctx.Process(
            target=run_worker,
            kwargs={
                "root": root,
                "lease_ttl": self.lease_ttl,
                "poll_s": self.worker_poll_s,
            },
            daemon=True,
        )
        proc.start()
        return proc

    def execute(self, tasks: list[dict], settle: SettleFn) -> None:
        import tempfile

        ephemeral = self.dir is None
        root = self.dir or tempfile.mkdtemp(prefix="repro-spool-")
        spool = Spool(root, create=True)
        spool.clear_stop()
        stats = _obs_current()
        wanted = {task["key"]: task for task in tasks}
        for task in wanted.values():
            spool.publish(task)  # idempotent: adopts pre-published spools

        ctx = _pool_context()
        procs = [self._spawn(ctx, str(root)) for _ in range(self.workers)]
        respawns_left = self.max_retries if self.workers else 0
        attempts: dict[str, int] = {}
        holds: dict[str, float] = {}  # key -> claimable-again time
        settled: set[str] = set()
        cursor: dict[str, int] = {}
        try:
            while len(settled) < len(wanted):
                progressed = False
                for record in spool.read_done(cursor):
                    key = record["key"]
                    if key not in wanted or key in settled:
                        continue  # other campaign's leftovers / duplicate
                    error = record.get("error")
                    if error is not None:
                        raise CampaignError(
                            f"spool cell {key} failed in worker "
                            f"{record.get('worker', '?')}: {error}"
                        )
                    settled.add(key)
                    settle(key, record["cell"], record.get("stats"))
                    progressed = True
                now = time.time()
                for key, eligible_at in list(holds.items()):
                    if key in settled:
                        del holds[key]
                    elif now >= eligible_at:
                        spool.release(key)  # backoff over: claimable again
                        del holds[key]
                for key in wanted:
                    if key in settled or key in holds:
                        continue
                    info = spool.lease_info(key)
                    if info is None or not spool.lease_expired(
                        info, self.lease_ttl, now
                    ):
                        continue
                    # a worker died holding this cell (or a previous
                    # campaign left a stale lease): expire and retry
                    if stats is not None:
                        stats.inc("campaign.leases_expired")
                    spool.journal.emit(
                        "expired", key=key,
                        lease_worker=info.get("worker", "?"),
                    )
                    attempts[key] = attempts.get(key, 0) + 1
                    if attempts[key] > self.max_retries:
                        raise CampaignError(
                            f"spool cell {key} lost its lease "
                            f"{attempts[key]} time(s) and exhausted "
                            f"{self.max_retries} retries"
                        )
                    if stats is not None:
                        stats.inc("campaign.retries")
                    backoff = self.retry_backoff_s * attempts[key]
                    spool.journal.emit(
                        "retried", key=key, attempt=attempts[key],
                        backoff_s=backoff,
                    )
                    if backoff > 0:
                        spool.hold(key, now + backoff)
                        holds[key] = now + backoff
                    else:
                        spool.release(key)
                if stats is not None:
                    stats.inc("campaign.spool_poll")
                if progressed:
                    continue
                procs = [p for p in procs if p.is_alive()]
                if self.workers and len(procs) < self.workers and respawns_left > 0:
                    # a local worker died (crash/OOM): replace it, bounded
                    respawns_left -= 1
                    procs.append(self._spawn(ctx, str(root)))
                elif (
                    self.workers
                    and not procs
                    and not spool.leased_keys()
                    and not any(k not in settled for k in holds)
                ):
                    raise CampaignError(
                        "all local spool workers died and no external worker "
                        f"holds a lease; {len(wanted) - len(settled)} cell(s) "
                        f"unfinished in {root}"
                    )
                time.sleep(self.poll_s)
        finally:
            spool.request_stop()
            deadline = time.time() + max(2.0, 10 * self.poll_s)
            for proc in procs:
                proc.join(timeout=max(deadline - time.time(), 0.1))
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=1.0)
        if ephemeral:
            import shutil

            shutil.rmtree(root, ignore_errors=True)
