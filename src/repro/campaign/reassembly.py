"""Deterministic reassembly of settled cells into campaign outcomes.

The last of the three campaign layers (triage → executor →
reassembly): fold the key-addressed result rows back into the spec's
expansion order and restamp presentation, so the aggregated output is
byte-identical whatever executor, worker count, or cache temperature
produced the rows (only each fresh cell's measured ``runtime_s``
varies).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..experiments.harness import CellResult
from .spec import CampaignCell, CampaignSpec


@dataclass(frozen=True)
class CellOutcome:
    """One expanded cell with its metrics and provenance."""

    cell: CampaignCell
    result: CellResult
    from_cache: bool


@dataclass
class CampaignRunResult:
    """Everything one :func:`~repro.campaign.runner.run_campaign` produced."""

    spec: CampaignSpec
    outcomes: list[CellOutcome]
    workers: int
    elapsed_s: float
    #: Merged obs payload (counters/timers/gauges across all workers)
    #: when the run executed under an active collector, else ``None``.
    stats: dict | None = None
    #: Name of the executor that ran the pending cells.
    executor: str = "serial"

    @property
    def cells(self) -> list[CellResult]:
        return [o.result for o in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.from_cache)

    @property
    def executed(self) -> int:
        return len({o.cell.key for o in self.outcomes if not o.from_cache})

    def runs(self):
        """Aggregate back into ``ExperimentRun``-compatible series."""
        from .aggregate import experiment_runs

        return experiment_runs(self)


def reassemble(
    cells: list[CampaignCell],
    results: dict[str, dict],
    cached_keys: set[str],
) -> list[CellOutcome]:
    """Rebuild outcomes in expansion order from key-addressed rows."""
    outcomes = []
    for cell in cells:
        # The key deliberately excludes presentation (campaign name,
        # series label), so a cache hit may carry another campaign's
        # figure/heuristic strings: restamp them from THIS spec's cell
        # or warm-cache aggregation would file series under stale labels.
        row = {
            **results[cell.key],
            "figure": cell.campaign,
            "heuristic": cell.heuristic.display,
        }
        outcomes.append(CellOutcome(cell, CellResult(**row), cell.key in cached_keys))
    return outcomes
