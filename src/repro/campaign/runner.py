"""Campaign orchestration: triage → executor → deterministic reassembly.

:func:`run_campaign` expands a spec, serves every cell it can from the
:class:`~repro.campaign.cache.ResultCache`
(:mod:`~repro.campaign.triage`), hands the misses to a pluggable
:class:`~repro.campaign.executors.Executor` — ``serial`` (inline),
``process`` (local pool), or ``spool`` (filesystem work-queue shared
by workers on any host) — and reassembles the outcomes in expansion
order (:mod:`~repro.campaign.reassembly`), so the aggregated result is
byte-identical whatever the executor, worker count, or cache
temperature (only the measured ``runtime_s`` of each fresh cell
varies).

Workers receive pure-JSON task payloads and rebuild graph, platform,
scheduler, and model themselves (:func:`execute_task` is the
module-level entry point so it pickles under both fork and spawn, and
doubles as the spool workers' execution contract).  Results stream
back to the parent, which is the cache's only writer — completed cells
are persisted as they arrive, so killing a campaign loses at most the
cells in flight.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path

from ..core.serialization import canonical_json, platform_from_dict
from ..experiments.harness import run_cell
from ..graphs import make_testbed
from ..heuristics import get_scheduler
from ..obs import collect as _obs_collect
from ..obs import current as _obs_current
from ..obs.journal import JOURNAL_FILENAME, Journal
from .cache import ResultCache
from .executors import ProgressFn, make_executor
from .reassembly import CampaignRunResult, CellOutcome, reassemble
from .spec import CampaignCell, CampaignSpec
from .triage import triage_cells

__all__ = [
    "CampaignRunResult",
    "CellOutcome",
    "execute_task",
    "run_campaign",
]


#: Per-process LRU memo of built graphs: consecutive cells of one
#: campaign typically share a graph across heuristics/models, and
#: rebuilding a several-thousand-task testbed per cell dominates serial
#: sweeps.  Hits refresh recency, so interleaved sweeps keep their
#: hottest graphs even when the working set brushes the limit.
_GRAPH_MEMO: OrderedDict[str, object] = OrderedDict()
_GRAPH_MEMO_LIMIT = 16


def _build_graph(graph_spec: dict):
    memo_key = canonical_json(graph_spec)
    graph = _GRAPH_MEMO.get(memo_key)
    if graph is not None:
        _GRAPH_MEMO.move_to_end(memo_key)  # LRU, not FIFO: keep hot graphs
        return graph
    graph = make_testbed(
        graph_spec["testbed"],
        graph_spec["size"],
        comm_ratio=graph_spec["comm_ratio"],
        **graph_spec["params"],
    )
    while len(_GRAPH_MEMO) >= _GRAPH_MEMO_LIMIT:
        _GRAPH_MEMO.popitem(last=False)
    _GRAPH_MEMO[memo_key] = graph
    return graph


def execute_task(task: dict) -> tuple[str, dict, dict | None]:
    """Execute one cell from its JSON payload.

    Returns ``(key, cell dict, stats payload)`` — the stats payload is
    the cell's :class:`~repro.obs.registry.Stats` snapshot when the
    parent requested collection (``task["collect_stats"]``), else
    ``None``.  This is the worker entry point shared by every executor
    (pool workers and spool workers alike): everything is rebuilt from
    the payload (per-worker scheduler instantiation, memoized graph
    construction), nothing is shared with the parent, and the returned
    dicts are JSON-able for the cache / pool / spool transport.
    """
    if task.get("collect_stats"):
        # a fresh per-cell collector: worker processes (and the inline
        # path) ship the payload back instead of sharing a scope
        with _obs_collect() as stats:
            key, cell_dict, _ = execute_task({**task, "collect_stats": False})
        return key, cell_dict, stats.payload()
    graph_spec = task["graph"]
    graph = _build_graph(graph_spec)
    platform = platform_from_dict(task["platform"])
    if task.get("online") is not None:
        # dynamic-workload cell: simulate the job stream instead of
        # scheduling the graph once (same JSON-in, JSON-out contract)
        from ..online import run_online_cell

        return task["key"], run_online_cell(task, graph, platform), None
    heuristic = task["heuristic"]
    scheduler = get_scheduler(heuristic["name"], **heuristic["kwargs"])
    cell, _ = run_cell(
        figure=task["campaign"],
        testbed=graph_spec["testbed"],
        size=graph_spec["size"],
        graph=graph,
        scheduler=scheduler,
        label=task["label"],
        platform=platform,
        model=task["model"],
        validate=task["validate"],
    )
    return task["key"], cell.as_dict(), None


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    cache: ResultCache | str | None = None,
    progress: ProgressFn | None = None,
    refresh: bool = False,
    executor: str | None = None,
    executor_options: dict | None = None,
    journal: Journal | str | Path | None = None,
    snapshot_interval_s: float | None = None,
    snapshot_path: str | Path | None = None,
) -> CampaignRunResult:
    """Run every cell of ``spec``, reusing and feeding ``cache``.

    Parameters
    ----------
    workers:
        Worker count for the cells that miss the cache.  For the
        ``serial``/``process`` executors ``1`` executes inline in this
        process; for ``spool`` it is the number of *local* worker
        processes to spawn (``0`` = publish and poll only, external
        ``repro campaign worker`` processes do the work).
    cache:
        A :class:`ResultCache` or a directory path for one; ``None``
        disables persistence (cells are still deduplicated by key within
        the run).
    progress:
        Optional callback receiving one human-readable line per settled
        cell (cached or freshly computed).
    refresh:
        Recompute every cell even on a cache hit, overwriting the
        cached rows.
    executor:
        Registered executor name (``serial``, ``process``, ``spool``);
        ``None`` picks the classic behavior — ``process`` when
        ``workers > 1``, inline otherwise.
    executor_options:
        Extra constructor options for the executor (e.g. the spool's
        ``dir``, ``lease_ttl``, ``max_retries``).
    journal:
        A :class:`~repro.obs.journal.Journal` (or a path for one) the
        run records lifecycle events into — ``campaign_start``,
        ``cached`` per warm cell, ``settled`` per fresh cell (non-spool
        executors; spool workers journal their own ``completed``
        records), ``snapshot``, ``campaign_end``.  Defaults to
        ``<spool dir>/journal.jsonl`` when the spool executor runs
        with an explicit directory, else no journal.  Strictly
        decision-neutral: schedules and cache keys are bit-identical
        with it on or off.
    snapshot_interval_s:
        With an active collector, a daemon thread emits a journal
        ``snapshot`` event (and atomically rewrites
        ``snapshot_path``, when given) with the merged payload every
        this many seconds — rolling metrics for dashboards and
        scrapers while the campaign runs.
    """
    min_workers = 0 if executor == "spool" else 1
    if workers < min_workers:
        raise ValueError(f"workers must be >= {min_workers}, got {workers}")
    if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
        cache = ResultCache(cache)
    # campaign-level observability: when a collector is active, workers
    # collect per-cell stats into fresh scopes and ship the payloads
    # back; the parent merges them here, so multiprocessing cannot
    # bleed scopes and the merged result is worker-count independent
    stats = _obs_current()
    t0 = time.perf_counter()

    executor_name = executor or ("process" if workers > 1 else "serial")
    # the journal is decision-neutral bookkeeping: spool runs with an
    # explicit directory get one there by default (workers append to
    # the same file), other executors only journal when asked
    owns_journal = False
    if journal is None and executor_name == "spool":
        spool_dir = (executor_options or {}).get("dir")
        if spool_dir is not None:
            journal = Path(spool_dir) / JOURNAL_FILENAME
    if journal is not None and not isinstance(journal, Journal):
        journal = Journal(journal)
        owns_journal = True

    on_hit = None
    if progress is not None:
        def on_hit(cell, hit, done, total):
            progress(_line(cell, hit, done, total, cached=True))

    triaged = triage_cells(
        spec, cache, refresh=refresh, on_hit=on_hit, journal=journal
    )
    results = triaged.results
    by_key = triaged.by_key
    total = triaged.total
    pending = triaged.pending
    if journal is not None:
        journal.emit(
            "campaign_start", name=spec.name, cells=total,
            cached=len(triaged.cached_keys), pending=len(pending),
            executor=executor_name, workers=workers,
        )
    # spool workers journal their own `completed` records; for the
    # in-process executors the parent's `settled` event is the only
    # per-cell completion a journal consumer will see
    journal_settles = journal is not None and executor_name != "spool"

    def settle(key: str, cell_dict: dict, cell_stats: dict | None) -> None:
        results[key] = cell_dict
        if stats is not None:
            if cell_stats is not None:
                stats.merge(cell_stats)
            stats.add_time("phase.cell", cell_dict.get("runtime_s", 0.0))
        if cache is not None:
            cache.put(key, cell_dict, by_key[key].key_payload())
        if journal_settles:
            journal.emit("settled", key=key, runtime_s=cell_dict.get("runtime_s"))
        if progress is not None:
            progress(_line(by_key[key], cell_dict, len(results), total, cached=False))

    snap_halt = snap_thread = None
    if (
        snapshot_interval_s
        and stats is not None
        and (journal is not None or snapshot_path is not None)
    ):
        snap_halt = threading.Event()

        def _snapshot_loop():
            while not snap_halt.wait(snapshot_interval_s):
                try:
                    payload = stats.payload()
                except RuntimeError:  # settle() mutated a dict mid-copy
                    continue
                stats.inc("campaign.snapshots")
                if journal is not None:
                    journal.emit("snapshot", stats=payload)
                if snapshot_path is not None:
                    try:
                        from .spool import _atomic_write_json

                        _atomic_write_json(Path(snapshot_path), payload)
                    except OSError:  # pragma: no cover - fs race
                        pass

        snap_thread = threading.Thread(
            target=_snapshot_loop, daemon=True, name="obs-snapshot"
        )
        snap_thread.start()

    try:
        if pending:
            tasks = [
                cell.task_payload(collect_stats=stats is not None)
                for cell in pending
            ]
            engine = make_executor(
                executor_name, workers=workers, **(executor_options or {})
            )
            engine.execute(tasks, settle)
    finally:
        if snap_halt is not None:
            snap_halt.set()
            snap_thread.join(timeout=(snapshot_interval_s or 0.0) + 1.0)

    outcomes = reassemble(triaged.cells, results, triaged.cached_keys)
    elapsed_s = time.perf_counter() - t0
    if stats is not None:
        stats.inc("campaign.cells", total)
        stats.inc("campaign.cache_hits", len(triaged.cached_keys))
        stats.inc("campaign.executed", len(pending))
        stats.gauge("campaign.workers", workers)
        cell_time = stats.timers.get("phase.cell", [0, 0.0])[1]
        if elapsed_s > 0 and workers > 0:
            stats.gauge(
                "campaign.occupancy", cell_time / (workers * elapsed_s)
            )
        stats.add_time("phase.campaign.run", elapsed_s)
    if journal is not None:
        end_fields: dict = {
            "name": spec.name, "cells": total,
            "cached": len(triaged.cached_keys), "executed": len(pending),
            "elapsed_s": elapsed_s,
        }
        if stats is not None:
            end_fields["stats"] = stats.payload()
        journal.emit("campaign_end", **end_fields)
        if owns_journal:
            journal.close()
    return CampaignRunResult(
        spec=spec,
        outcomes=outcomes,
        workers=workers,
        elapsed_s=elapsed_s,
        stats=stats.payload() if stats is not None else None,
        executor=executor_name,
    )


def _line(cell: CampaignCell, result: dict, done: int, total: int, cached: bool) -> str:
    seed = f" seed={cell.seed}" if cell.seed is not None else ""
    suffix = " [cached]" if cached else f" ({result.get('runtime_s', 0.0):.2f}s)"
    extra = result.get("extra") or {}
    if extra.get("online"):
        # dynamic-workload cells carry their metrics in ``extra`` —
        # render those instead of the offline speedup/num_comms fields
        body = (
            f"flow={extra.get('mean_flow', float('nan')):.1f} "
            f"stretch={extra.get('mean_stretch', float('nan')):.2f} "
            f"events={extra.get('events', 0)}"
        )
    else:
        speedup = result.get("speedup")
        num_comms = result.get("num_comms")
        body = (
            f"speedup={speedup:.2f}" if isinstance(speedup, (int, float))
            else "speedup=?"
        ) + (
            f" msgs={num_comms}" if isinstance(num_comms, (int, float)) else " msgs=?"
        )
    return (
        f"[{done}/{total}] {cell.testbed} size={cell.size}{seed} "
        f"{cell.heuristic.display} {cell.model}: {body}{suffix}"
    )
