"""Campaign execution: cache triage, worker pool, deterministic reassembly.

:func:`run_campaign` expands a spec, serves every cell it can from the
:class:`~repro.campaign.cache.ResultCache`, executes the rest — inline
for ``workers=1``, on a :mod:`multiprocessing` pool otherwise — and
reassembles the outcomes in expansion order, so the aggregated result is
byte-identical whatever the worker count or cache temperature (only the
measured ``runtime_s`` of each fresh cell varies).

Workers receive pure-JSON task payloads and rebuild graph, platform,
scheduler, and model themselves (:func:`execute_task` is the module-level
entry point so it pickles under both fork and spawn).  Results stream
back to the parent, which is the cache's only writer — completed cells
are persisted as they arrive, so killing a campaign loses at most the
cells in flight.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Callable
from dataclasses import dataclass

from ..core.serialization import canonical_json, platform_from_dict
from ..experiments.harness import CellResult, run_cell
from ..graphs import make_testbed
from ..heuristics import get_scheduler
from ..obs import collect as _obs_collect
from ..obs import current as _obs_current
from .cache import ResultCache
from .spec import CampaignCell, CampaignSpec

ProgressFn = Callable[[str], None]


#: Per-process memo of built graphs: consecutive cells of one campaign
#: typically share a graph across heuristics/models, and rebuilding a
#:  several-thousand-task testbed per cell dominates serial sweeps.
_GRAPH_MEMO: dict[str, object] = {}
_GRAPH_MEMO_LIMIT = 16


def _build_graph(graph_spec: dict):
    memo_key = canonical_json(graph_spec)
    graph = _GRAPH_MEMO.get(memo_key)
    if graph is None:
        graph = make_testbed(
            graph_spec["testbed"],
            graph_spec["size"],
            comm_ratio=graph_spec["comm_ratio"],
            **graph_spec["params"],
        )
        while len(_GRAPH_MEMO) >= _GRAPH_MEMO_LIMIT:
            _GRAPH_MEMO.pop(next(iter(_GRAPH_MEMO)))
        _GRAPH_MEMO[memo_key] = graph
    return graph


def execute_task(task: dict) -> tuple[str, dict, dict | None]:
    """Execute one cell from its JSON payload.

    Returns ``(key, cell dict, stats payload)`` — the stats payload is
    the cell's :class:`~repro.obs.registry.Stats` snapshot when the
    parent requested collection (``task["collect_stats"]``), else
    ``None``.  This is the worker entry point: everything is rebuilt
    from the payload (per-worker scheduler instantiation, memoized
    graph construction), nothing is shared with the parent, and the
    returned dicts are JSON-able for the cache / pool transport.
    """
    if task.get("collect_stats"):
        # a fresh per-cell collector: worker processes (and the inline
        # path) ship the payload back instead of sharing a scope
        with _obs_collect() as stats:
            key, cell_dict, _ = execute_task({**task, "collect_stats": False})
        return key, cell_dict, stats.payload()
    graph_spec = task["graph"]
    graph = _build_graph(graph_spec)
    platform = platform_from_dict(task["platform"])
    if task.get("online") is not None:
        # dynamic-workload cell: simulate the job stream instead of
        # scheduling the graph once (same JSON-in, JSON-out contract)
        from ..online import run_online_cell

        return task["key"], run_online_cell(task, graph, platform), None
    heuristic = task["heuristic"]
    scheduler = get_scheduler(heuristic["name"], **heuristic["kwargs"])
    cell, _ = run_cell(
        figure=task["campaign"],
        testbed=graph_spec["testbed"],
        size=graph_spec["size"],
        graph=graph,
        scheduler=scheduler,
        label=task["label"],
        platform=platform,
        model=task["model"],
        validate=task["validate"],
    )
    return task["key"], cell.as_dict(), None


@dataclass(frozen=True)
class CellOutcome:
    """One expanded cell with its metrics and provenance."""

    cell: CampaignCell
    result: CellResult
    from_cache: bool


@dataclass
class CampaignRunResult:
    """Everything one :func:`run_campaign` invocation produced."""

    spec: CampaignSpec
    outcomes: list[CellOutcome]
    workers: int
    elapsed_s: float
    #: Merged obs payload (counters/timers/gauges across all workers)
    #: when the run executed under an active collector, else ``None``.
    stats: dict | None = None

    @property
    def cells(self) -> list[CellResult]:
        return [o.result for o in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.from_cache)

    @property
    def executed(self) -> int:
        return len({o.cell.key for o in self.outcomes if not o.from_cache})

    def runs(self):
        """Aggregate back into ``ExperimentRun``-compatible series."""
        from .aggregate import experiment_runs

        return experiment_runs(self)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits imports), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    cache: ResultCache | str | None = None,
    progress: ProgressFn | None = None,
    refresh: bool = False,
) -> CampaignRunResult:
    """Run every cell of ``spec``, reusing and feeding ``cache``.

    Parameters
    ----------
    workers:
        Pool size for the cells that miss the cache; ``1`` executes
        inline in this process.
    cache:
        A :class:`ResultCache` or a directory path for one; ``None``
        disables persistence (cells are still deduplicated by key within
        the run).
    progress:
        Optional callback receiving one human-readable line per settled
        cell (cached or freshly computed).
    refresh:
        Recompute every cell even on a cache hit, overwriting the
        cached rows.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
        cache = ResultCache(cache)
    # campaign-level observability: when a collector is active, workers
    # collect per-cell stats into fresh scopes and ship the payloads
    # back; the parent merges them here, so multiprocessing cannot
    # bleed scopes and the merged result is worker-count independent
    stats = _obs_current()
    t0 = time.perf_counter()

    cells = spec.expand()
    by_key: dict[str, CampaignCell] = {}
    for cell in cells:
        by_key.setdefault(cell.key, cell)
    total = len(by_key)

    results: dict[str, dict] = {}
    cached_keys: set[str] = set()
    if cache is not None and not refresh:
        for key, cell in by_key.items():
            hit = cache.get(key)
            if hit is not None:
                results[key] = hit
                cached_keys.add(key)
                if progress is not None:
                    progress(_line(cell, hit, len(results), total, cached=True))

    pending = [cell for key, cell in by_key.items() if key not in results]

    def settle(key: str, cell_dict: dict, cell_stats: dict | None) -> None:
        results[key] = cell_dict
        if stats is not None:
            if cell_stats is not None:
                stats.merge(cell_stats)
            stats.add_time("phase.cell", cell_dict.get("runtime_s", 0.0))
        if cache is not None:
            cache.put(key, cell_dict, by_key[key].key_payload())
        if progress is not None:
            progress(_line(by_key[key], cell_dict, len(results), total, cached=False))

    if pending:
        tasks = [cell.task_payload() for cell in pending]
        if stats is not None:
            tasks = [{**task, "collect_stats": True} for task in tasks]
        if workers > 1 and len(tasks) > 1:
            ctx = _pool_context()
            with ctx.Pool(processes=min(workers, len(tasks))) as pool:
                for key, cell_dict, cell_stats in pool.imap_unordered(
                    execute_task, tasks, chunksize=1
                ):
                    settle(key, cell_dict, cell_stats)
        else:
            for task in tasks:
                key, cell_dict, cell_stats = execute_task(task)
                settle(key, cell_dict, cell_stats)

    outcomes = []
    for cell in cells:
        # The key deliberately excludes presentation (campaign name,
        # series label), so a cache hit may carry another campaign's
        # figure/heuristic strings: restamp them from THIS spec's cell
        # or warm-cache aggregation would file series under stale labels.
        row = {
            **results[cell.key],
            "figure": cell.campaign,
            "heuristic": cell.heuristic.display,
        }
        outcomes.append(CellOutcome(cell, CellResult(**row), cell.key in cached_keys))
    elapsed_s = time.perf_counter() - t0
    if stats is not None:
        executed = len(pending)
        stats.inc("campaign.cells", total)
        stats.inc("campaign.cache_hits", len(cached_keys))
        stats.inc("campaign.executed", executed)
        stats.gauge("campaign.workers", workers)
        cell_time = stats.timers.get("phase.cell", [0, 0.0])[1]
        if elapsed_s > 0:
            stats.gauge(
                "campaign.occupancy", cell_time / (workers * elapsed_s)
            )
        stats.add_time("phase.campaign.run", elapsed_s)
    return CampaignRunResult(
        spec=spec,
        outcomes=outcomes,
        workers=workers,
        elapsed_s=elapsed_s,
        stats=stats.payload() if stats is not None else None,
    )


def _line(cell: CampaignCell, result: dict, done: int, total: int, cached: bool) -> str:
    seed = f" seed={cell.seed}" if cell.seed is not None else ""
    suffix = " [cached]" if cached else f" ({result['runtime_s']:.2f}s)"
    return (
        f"[{done}/{total}] {cell.testbed} size={cell.size}{seed} "
        f"{cell.heuristic.display} {cell.model}: "
        f"speedup={result['speedup']:.2f} msgs={result['num_comms']}{suffix}"
    )
