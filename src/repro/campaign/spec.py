"""Declarative campaign grids and their expansion into cells.

A :class:`CampaignSpec` names a full cartesian sweep — testbeds ×
sizes × platforms × models × heuristics × seeds — without building any
graph or scheduler.  :meth:`CampaignSpec.expand` materializes the grid
as :class:`CampaignCell` values, each carrying exactly the JSON-able
payload a worker process needs to reconstruct and execute the cell, and
each identified by a content-addressed key (see the package docstring
for the hashing scheme).

Seeds only multiply cells of testbeds whose generator actually accepts
a ``seed`` parameter (the random families); the deterministic paper
testbeds are emitted once per (size, platform, model, heuristic) so a
seed sweep never schedules identical graphs under distinct keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path

from ..core.exceptions import ConfigurationError
from ..core.platform import Platform
from ..core.serialization import platform_from_dict, platform_to_dict, stable_digest
from ..experiments.config import PAPER_PROCESSOR_GROUPS
from ..graphs import available_testbeds, generator_params
from ..graphs.base import PAPER_COMM_RATIO
from ..heuristics import available_schedulers
from ..models import available_models

#: Version of the cell-key payload schema; bump to invalidate old caches
#: when the payload layout changes.
KEY_SCHEMA_VERSION = 1

#: The paper's Section 5.2 processor groups (``paper`` platform shorthand).
PAPER_GROUPS = tuple(tuple(g) for g in PAPER_PROCESSOR_GROUPS)

#: The paper's communication-to-computation ratio.
DEFAULT_COMM_RATIO = PAPER_COMM_RATIO

#: Communication-model names :func:`repro.models.make_model` accepts —
#: the models registry is the single resolution path shared with the
#: heuristics and the CLI.
KNOWN_MODELS = tuple(available_models())

#: ``ils`` parameters an ``improve`` stage entry may set.
IMPROVE_PARAMS = frozenset(
    {"budget", "seed", "kick", "patience", "critical_bias", "sideways"}
)

#: Keys an ``online`` axis entry may set (see :mod:`repro.online`).
ONLINE_PARAMS = frozenset({"policy", "arrival", "noise", "jobs", "seed"})


def _online_policy_name(entry: dict) -> str:
    """Registry name of an online entry's policy spec."""
    policy = entry.get("policy", "static")
    if isinstance(policy, dict):
        return policy.get("name", "?")
    return policy.partition(":")[0]


@dataclass(frozen=True)
class PlatformSpec:
    """A platform as data: ``(count, cycle_time)`` groups + link cost."""

    label: str = "paper"
    groups: tuple[tuple[int, float], ...] = PAPER_GROUPS
    link: float = 1.0

    def build(self) -> Platform:
        return Platform.from_groups(self.groups, self.link)

    @cached_property
    def _content(self) -> dict:
        # cached_property writes to __dict__ directly, which a frozen
        # dataclass permits; every cell of a grid shares this instance,
        # so the Platform is built once, not once per key access
        return platform_to_dict(self.build())

    def payload(self) -> dict:
        """Content payload for hashing: resolved cycle times, not labels.

        Two specs that describe the same processors under different
        labels or group orderings share cache entries.  The returned
        dict is cached and shared — treat it as read-only.
        """
        return self._content

    @cached_property
    def content_key(self) -> str:
        """Canonical-JSON text of :meth:`payload` (cheap group key)."""
        from ..core.serialization import canonical_json

        return canonical_json(self.payload())

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "groups": [list(g) for g in self.groups],
            "link": self.link,
        }

    @classmethod
    def from_dict(cls, payload: dict | str) -> "PlatformSpec":
        if isinstance(payload, str):
            if payload != "paper":
                raise ConfigurationError(
                    f"unknown platform shorthand {payload!r}; only 'paper' is built in"
                )
            return cls()
        groups = payload.get("groups")
        return cls(
            label=payload.get("label", "custom" if groups else "paper"),
            groups=tuple(tuple(g) for g in groups) if groups else PAPER_GROUPS,
            link=payload.get("link", 1.0),
        )


@dataclass(frozen=True)
class HeuristicSpec:
    """A scheduler as data: registry name + JSON-able constructor kwargs."""

    name: str
    kwargs: tuple[tuple[str, object], ...] = ()
    label: str | None = None

    @classmethod
    def of(cls, name: str, kwargs: dict | None = None, label: str | None = None):
        return cls(name, tuple(sorted((kwargs or {}).items())), label)

    @property
    def display(self) -> str:
        """Series label: explicit label, else name plus non-default kwargs."""
        if self.label:
            return self.label
        if not self.kwargs:
            return self.name
        args = ",".join(f"{k}={v}" for k, v in self.kwargs)
        return f"{self.name}({args})"

    def payload(self) -> dict:
        return {"name": self.name, "kwargs": dict(self.kwargs)}

    def to_dict(self) -> dict:
        out: dict = {"name": self.name}
        if self.kwargs:
            out["kwargs"] = dict(self.kwargs)
        if self.label:
            out["label"] = self.label
        return out

    @classmethod
    def from_dict(cls, payload: dict | str) -> "HeuristicSpec":
        if isinstance(payload, str):
            return cls.of(payload)
        return cls.of(payload["name"], payload.get("kwargs"), payload.get("label"))


@dataclass(frozen=True)
class CampaignCell:
    """One fully specified unit of work: graph × platform × model × heuristic."""

    campaign: str
    testbed: str
    size: int
    seed: int | None
    params: tuple[tuple[str, object], ...]
    comm_ratio: float
    platform: PlatformSpec
    model: str
    heuristic: HeuristicSpec
    validate: bool = True
    #: Online-axis entry: ``None`` for an offline cell, else the
    #: dynamic-workload config (policy, arrival, noise, jobs, seed).
    online: dict | None = None

    def graph_payload(self) -> dict:
        params = dict(self.params)
        if self.seed is not None:
            params["seed"] = self.seed
        return {
            "testbed": self.testbed,
            "size": self.size,
            "comm_ratio": self.comm_ratio,
            "params": params,
        }

    def key_payload(self) -> dict:
        """The hashed content — everything that determines the metrics.

        The ``online`` block is added only when set, so every offline
        cell key (and with it every existing cache) is unchanged.
        """
        heuristic = self.heuristic.payload()
        if self.online is not None and _online_policy_name(self.online) == "ready-dispatch":
            # ready-dispatch never consults a planner: canonicalize so
            # the key is independent of the grid's heuristic axis
            heuristic = {"name": "ready-dispatch", "kwargs": {}}
        out = {
            "v": KEY_SCHEMA_VERSION,
            "graph": self.graph_payload(),
            "platform": self.platform.payload(),
            "model": self.model,
            "heuristic": heuristic,
        }
        if self.online is not None:
            out["online"] = self.online
        return out

    @cached_property
    def key(self) -> str:
        # accessed several times per cell (dedup, task payload, outcome
        # reassembly); hash once per cell, not per access
        return stable_digest(self.key_payload())

    def task_payload(self, collect_stats: bool = False) -> dict:
        """Everything a worker needs: the key payload plus presentation.

        The payload is fully self-contained and JSON-round-trip stable
        (``json.loads(json.dumps(p)) == p``): a worker in another
        process — or on another host, via the spool work-queue — can
        execute the cell from the payload alone, with no shared state.
        ``collect_stats`` asks the worker to ship back its per-cell
        obs payload alongside the result.
        """
        return {
            "key": self.key,
            "campaign": self.campaign,
            "label": self.heuristic.display,
            "validate": self.validate,
            "collect_stats": bool(collect_stats),
            **self.key_payload(),
        }


@dataclass
class CampaignSpec:
    """A declarative grid of scheduling experiments.

    The optional ``improve`` axis sweeps local-search post-passes over
    the heuristic axis: each entry is either ``None`` (keep the base
    heuristic as-is) or a dict of ``ils`` parameters (``budget``,
    ``seed``, ...), and every heuristic of the grid is expanded once
    per entry — wrapped as ``ils(base)`` for dict entries.  Keys hash
    the *expanded* heuristic payload, so improved and unimproved cells
    cache independently and base-heuristic × search-budget grids are
    resumable like any other campaign.

    The optional ``online`` axis turns cells into dynamic-workload
    simulations (:mod:`repro.online`): each entry is either ``None``
    (keep the cell offline) or a dict of online parameters —
    ``policy``, ``arrival``, ``noise``, ``jobs``, ``seed`` — and every
    cell of the grid is expanded once per entry, with the cell's
    heuristic serving as the policy's planner.  Online entries are
    hashed into the cell key, so policy × arrival × noise sweeps cache
    and resume like any other campaign.
    """

    name: str
    testbeds: list[str]
    sizes: list[int]
    heuristics: list[HeuristicSpec]
    models: list[str] = field(default_factory=lambda: ["one-port"])
    platforms: list[PlatformSpec] = field(default_factory=lambda: [PlatformSpec()])
    seeds: list[int] = field(default_factory=lambda: [0])
    comm_ratio: float = DEFAULT_COMM_RATIO
    graph_params: dict[str, dict] = field(default_factory=dict)
    improve: list[dict | None] = field(default_factory=list)
    online: list[dict | None] = field(default_factory=list)
    validate: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a campaign needs a name")
        for req, what in (
            (self.testbeds, "testbeds"),
            (self.sizes, "sizes"),
            (self.heuristics, "heuristics"),
            (self.models, "models"),
            (self.platforms, "platforms"),
            (self.seeds, "seeds"),
        ):
            if not req:
                raise ConfigurationError(f"campaign {self.name!r}: empty {what}")
        known = set(available_testbeds())
        for t in self.testbeds:
            if t not in known:
                raise ConfigurationError(
                    f"campaign {self.name!r}: unknown testbed {t!r}; "
                    f"available: {sorted(known)}"
                )
        # fail fast here rather than mid-campaign inside a worker pool
        schedulers = set(available_schedulers())
        for h in self.heuristics:
            if h.name not in schedulers:
                raise ConfigurationError(
                    f"campaign {self.name!r}: unknown heuristic {h.name!r}; "
                    f"available: {sorted(schedulers)}"
                )
        for m in self.models:
            if m not in KNOWN_MODELS:
                raise ConfigurationError(
                    f"campaign {self.name!r}: unknown model {m!r}; "
                    f"available: {list(KNOWN_MODELS)}"
                )
        for t, params in self.graph_params.items():
            accepted = generator_params(t)
            unknown = set(params) - accepted
            if unknown:
                raise ConfigurationError(
                    f"campaign {self.name!r}: testbed {t!r} does not accept "
                    f"{sorted(unknown)}; accepted: {sorted(accepted)}"
                )
            if "seed" in params:
                # expand() would silently clobber it with the seeds axis
                raise ConfigurationError(
                    f"campaign {self.name!r}: set seeds for {t!r} via the "
                    f"'seeds' axis, not graph_params"
                )
        for entry in self.improve:
            if entry is None:
                continue
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"campaign {self.name!r}: improve entries must be None or "
                    f"a dict of ils parameters, got {entry!r}"
                )
            unknown = set(entry) - IMPROVE_PARAMS
            if unknown:
                raise ConfigurationError(
                    f"campaign {self.name!r}: improve entry sets {sorted(unknown)}; "
                    f"accepted: {sorted(IMPROVE_PARAMS)}"
                )
            try:
                # the ils constructor owns the parameter constraints
                # (budget >= 0, probabilities in [0, 1], ...); fail here,
                # not mid-campaign inside a worker
                from ..heuristics import get_scheduler

                get_scheduler("ils", **entry)
            except (ConfigurationError, TypeError) as exc:
                raise ConfigurationError(
                    f"campaign {self.name!r}: bad improve entry {entry!r}: {exc}"
                ) from None
        for entry in self.online:
            if entry is None:
                continue
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"campaign {self.name!r}: online entries must be None or "
                    f"a dict of online parameters, got {entry!r}"
                )
            unknown = set(entry) - ONLINE_PARAMS
            if unknown:
                raise ConfigurationError(
                    f"campaign {self.name!r}: online entry sets {sorted(unknown)}; "
                    f"accepted: {sorted(ONLINE_PARAMS)}"
                )
            jobs = entry.get("jobs", 8)
            if not isinstance(jobs, int) or jobs < 1:
                raise ConfigurationError(
                    f"campaign {self.name!r}: online 'jobs' must be a "
                    f"positive int, got {jobs!r}"
                )
            try:
                # the online registries own the parameter constraints;
                # fail here, not mid-campaign inside a worker
                from ..online import make_arrivals, make_noise, make_policy

                make_policy(entry.get("policy", "static"))
                make_noise(entry.get("noise", "exact"))
                make_arrivals(entry.get("arrival", "poisson"), 0)
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"campaign {self.name!r}: bad online entry {entry!r}: {exc}"
                ) from None
        if any(isinstance(entry, dict) for entry in self.online):
            not_one_port = [m for m in self.models if m != "one-port"]
            if not_one_port:
                # the online engine shares the one-port platform; other
                # models have no port semantics to simulate
                raise ConfigurationError(
                    f"campaign {self.name!r}: the online axis requires the "
                    f"one-port model, but the grid also sweeps {not_one_port}"
                )
            if any(isinstance(entry, dict) for entry in self.improve):
                raise ConfigurationError(
                    f"campaign {self.name!r}: the online and improve axes "
                    f"cannot be combined in one grid"
                )
        if any(isinstance(entry, dict) for entry in self.improve):
            # only dict entries generate ils cells; improve=[None] is a
            # no-op axis and must not trip the search-specific guards
            if any(h.name == "ils" for h in self.heuristics):
                raise ConfigurationError(
                    f"campaign {self.name!r}: an improve axis cannot wrap 'ils' "
                    f"heuristics again; list the bases instead"
                )
            not_one_port = [m for m in self.models if m != "one-port"]
            if not_one_port:
                # ils cells would reject these models at worker run time
                raise ConfigurationError(
                    f"campaign {self.name!r}: the improve axis requires the "
                    f"one-port model, but the grid also sweeps {not_one_port}"
                )

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def expanded_heuristics(self) -> list[HeuristicSpec]:
        """The heuristic axis crossed with the ``improve`` axis."""
        if not self.improve:
            return list(self.heuristics)
        from ..search import IteratedLocalSearch

        out = []
        for heuristic in self.heuristics:
            for entry in self.improve:
                if entry is None:
                    out.append(heuristic)
                    continue
                kwargs: dict = {"base": heuristic.name, **entry}
                if heuristic.kwargs:
                    kwargs["base_kwargs"] = dict(heuristic.kwargs)
                label = IteratedLocalSearch.format_label(heuristic.display, **entry)
                out.append(HeuristicSpec.of("ils", kwargs, label))
        return out

    @staticmethod
    def _online_label(heuristic: HeuristicSpec, entry: dict) -> str:
        """Series label of one (heuristic, online entry) pair.

        Distinct policies / noises over the same planner must land in
        distinct series, so the label spells out the whole scenario
        (except the planner for ready-dispatch, which has none).
        """
        policy = entry.get("policy", "static")
        pol = policy if isinstance(policy, str) else policy.get("name", "?")
        if _online_policy_name(entry) == "ready-dispatch":
            parts = [pol]
        else:
            parts = [f"{pol}[{heuristic.display}]"]
        noise = entry.get("noise", "exact")
        if noise != "exact":
            parts.append(noise if isinstance(noise, str) else noise.get("name", "?"))
        arrival = entry.get("arrival", "poisson")
        parts.append(arrival if isinstance(arrival, str) else arrival.get("kind", "?"))
        return " ".join(parts)

    def expand(self) -> list[CampaignCell]:
        """Materialize the grid in deterministic order.

        Order: testbed, size, seed, platform, model, heuristic×improve,
        online — the same nesting a handwritten sweep loop would use,
        so progress output reads naturally.
        """
        heuristics = self.expanded_heuristics()
        online_axis: list[dict | None] = list(self.online) or [None]
        cells: list[CampaignCell] = []
        for testbed in self.testbeds:
            seeded = "seed" in generator_params(testbed)
            seeds: list[int | None] = list(self.seeds) if seeded else [None]
            params = tuple(sorted(self.graph_params.get(testbed, {}).items()))
            for size in self.sizes:
                for seed in seeds:
                    for platform in self.platforms:
                        for model in self.models:
                            for hix, heuristic in enumerate(heuristics):
                                for entry in online_axis:
                                    label = heuristic
                                    if entry is not None:
                                        if (
                                            hix
                                            and _online_policy_name(entry)
                                            == "ready-dispatch"
                                        ):
                                            # planner-free: one cell per
                                            # grid point, not one per
                                            # heuristic
                                            continue
                                        label = HeuristicSpec(
                                            heuristic.name,
                                            heuristic.kwargs,
                                            self._online_label(heuristic, entry),
                                        )
                                    cells.append(
                                        CampaignCell(
                                            campaign=self.name,
                                            testbed=testbed,
                                            size=size,
                                            seed=seed,
                                            params=params,
                                            comm_ratio=self.comm_ratio,
                                            platform=platform,
                                            model=model,
                                            heuristic=label,
                                            validate=self.validate,
                                            online=entry,
                                        )
                                    )
        return cells

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "testbeds": list(self.testbeds),
            "sizes": list(self.sizes),
            "heuristics": [h.to_dict() for h in self.heuristics],
            "models": list(self.models),
            "platforms": [p.to_dict() for p in self.platforms],
            "seeds": list(self.seeds),
            "comm_ratio": self.comm_ratio,
            "graph_params": {k: dict(v) for k, v in self.graph_params.items()},
            "improve": [None if e is None else dict(e) for e in self.improve],
            "online": [None if e is None else dict(e) for e in self.online],
            "validate": self.validate,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        try:
            return cls(
                name=payload["name"],
                testbeds=list(payload["testbeds"]),
                sizes=[int(s) for s in payload["sizes"]],
                heuristics=[HeuristicSpec.from_dict(h) for h in payload["heuristics"]],
                models=list(payload.get("models", ["one-port"])),
                platforms=[
                    PlatformSpec.from_dict(p)
                    for p in payload.get("platforms", ["paper"])
                ],
                seeds=[int(s) for s in payload.get("seeds", [0])],
                comm_ratio=float(payload.get("comm_ratio", DEFAULT_COMM_RATIO)),
                graph_params=dict(payload.get("graph_params", {})),
                improve=[
                    None if e is None else dict(e)
                    for e in payload.get("improve", [])
                ],
                online=[
                    None if e is None else dict(e)
                    for e in payload.get("online", [])
                ],
                validate=bool(payload.get("validate", True)),
            )
        except KeyError as exc:
            raise ConfigurationError(f"campaign spec missing field {exc}") from None

    def to_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def from_json(cls, path: str | Path) -> "CampaignSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))
