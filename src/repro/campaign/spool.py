"""Filesystem work-queue: spool directories and the worker loop.

A *spool* shards the pending cells of a campaign by content hash into a
directory any number of independent worker processes — on any host that
shares the filesystem — can drain concurrently::

    spool.json            manifest (schema version, creation stamp)
    tasks/<key>.json      published cell payloads, one file per cell key
    leases/<key>.json     claim files (worker id, acquired/renewed, ttl)
    done/<worker>.jsonl   completion shards, one O_APPEND record per cell
    journal.jsonl         shared event journal (repro.obs.journal)
    stop                  sentinel: drain what is claimable, then exit

Protocol
--------
* **Publish** is an atomic temp+rename of ``tasks/<key>.json``; a key
  that is already published is left alone, so re-publishing (parent
  restart, resume) is idempotent.
* **Claim** is an ``O_CREAT | O_EXCL`` create of ``leases/<key>.json``
  — exactly one worker wins.  The winner renews the lease (atomic
  replace) every ``ttl / 3`` seconds from a heartbeat thread; a worker
  that is SIGKILLed simply stops renewing.
* **Complete** appends one JSON line to the worker's own
  ``done/<worker>.jsonl`` shard with a single ``O_APPEND`` write —
  multi-writer safe, and a crash mid-write leaves at most one torn
  tail line which readers skip.  Completion happens *before* the task
  file and lease are removed, so a crash between the two re-executes
  an already-recorded cell at worst — execution is deterministic and
  the parent settles each key once, so duplicates are harmless.
* **Workers never steal leases.**  Only the parent
  (:class:`~repro.campaign.executors.SpoolExecutor`) expires them:
  when ``renewed + ttl`` passes without a completion it removes the
  lease (after a retry backoff), letting a surviving worker re-claim
  the still-published task.

The worker entry point is :func:`run_worker` (CLI:
``repro campaign worker <dir>``).  Cells are executed through the
ordinary :func:`~repro.campaign.runner.execute_task` payload contract,
so a spool cell computes exactly what a serial or pool cell computes.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path

from ..core.exceptions import ConfigurationError
from ..obs.journal import JOURNAL_FILENAME, Journal

SPOOL_SCHEMA_VERSION = 1

#: Lease owner the parent uses to hold a retried cell back during the
#: retry backoff window (workers cannot claim a held key; only the
#: parent removes holds).
HOLD_WORKER = "__hold__"

MANIFEST = "spool.json"
STOP = "stop"


def default_worker_id() -> str:
    """Filename-safe unique-ish worker identity: ``<host>-<pid>``."""
    host = "".join(
        ch if ch.isalnum() or ch in "._-" else "-" for ch in socket.gethostname()
    )
    return f"{host}-{os.getpid()}"


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)


class Spool:
    """One spool directory: publish, claim, complete, observe."""

    def __init__(self, root: str | Path, create: bool = False) -> None:
        self.root = Path(root)
        self.tasks_dir = self.root / "tasks"
        self.leases_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        self._journal: Journal | None = None
        if create:
            for d in (self.tasks_dir, self.leases_dir, self.done_dir):
                d.mkdir(parents=True, exist_ok=True)
            manifest = self.root / MANIFEST
            if not manifest.exists():
                _atomic_write_json(manifest, {"v": SPOOL_SCHEMA_VERSION})
        elif not self.tasks_dir.is_dir():
            raise ConfigurationError(
                f"{self.root} is not a spool directory (no tasks/ inside); "
                f"create one with 'repro campaign run --executor spool "
                f"--spool-dir {self.root}' or pass create=True"
            )

    @property
    def journal(self) -> Journal:
        """Event journal at ``<root>/journal.jsonl`` (lazy, shared file).

        Every participant — the publishing parent, each worker, the
        expiring executor — appends lifecycle events here, so the
        spool directory carries a durable record of the campaign that
        outlives every process (``repro obs trace`` / ``repro campaign
        status --watch`` read it back).
        """
        if self._journal is None:
            self._journal = Journal(self.root / JOURNAL_FILENAME)
        return self._journal

    # ------------------------------------------------------------------
    # tasks
    # ------------------------------------------------------------------
    def publish(self, task: dict, attempt: int = 0) -> bool:
        """Publish one task payload under its key; no-op if present."""
        path = self.tasks_dir / f"{task['key']}.json"
        if path.exists():
            return False
        _atomic_write_json(path, {"attempt": attempt, "task": task})
        self.journal.emit("published", key=task["key"], attempt=attempt)
        return True

    def scan_tasks(self):
        """Yield ``(key, attempt, task)`` for every published task.

        Sorted by key — the content hash — so every worker walks the
        shard space in the same order and claim races spread cells
        across workers.  Files that vanish mid-scan (another worker
        completed them) are skipped.
        """
        for path in sorted(self.tasks_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # claimed-and-removed underneath us, or torn
            task = record.get("task")
            if isinstance(task, dict) and task.get("key") == path.stem:
                yield path.stem, int(record.get("attempt", 0)), task

    def has_tasks(self) -> bool:
        return any(self.tasks_dir.glob("*.json"))

    def remove_task(self, key: str) -> None:
        (self.tasks_dir / f"{key}.json").unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------
    def _lease_path(self, key: str) -> Path:
        return self.leases_dir / f"{key}.json"

    def claim(self, key: str, worker: str, ttl: float) -> bool:
        """Try to acquire ``key``; exactly one claimer wins (O_EXCL)."""
        now = time.time()
        data = json.dumps(
            {"worker": worker, "acquired": now, "renewed": now, "ttl": ttl},
            sort_keys=True,
        )
        try:
            fd = os.open(
                self._lease_path(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        try:
            os.write(fd, data.encode())
        finally:
            os.close(fd)
        self.journal.emit("claimed", worker=worker, key=key, ttl=ttl)
        return True

    def renew(self, key: str, worker: str, ttl: float) -> None:
        """Heartbeat: atomically refresh the lease's ``renewed`` stamp."""
        info = self.lease_info(key)
        if info is None or info.get("worker") != worker:
            return  # expired underneath us; the parent re-queued the cell
        info["renewed"] = time.time()
        info["ttl"] = ttl
        _atomic_write_json(self._lease_path(key), info)
        self.journal.emit("heartbeat", worker=worker, key=key)

    def release(self, key: str) -> None:
        self._lease_path(key).unlink(missing_ok=True)

    def lease_info(self, key: str) -> dict | None:
        """Parsed lease file, or ``None``.  A claim caught mid-write
        (unparsable) falls back to the file's mtime as its stamp."""
        path = self._lease_path(key)
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            try:
                return {"worker": "?", "renewed": path.stat().st_mtime, "ttl": None}
            except OSError:
                return None

    def leased_keys(self) -> list[str]:
        return sorted(p.stem for p in self.leases_dir.glob("*.json"))

    def lease_expired(self, info: dict, default_ttl: float, now: float | None = None) -> bool:
        """Whether a lease stopped being renewed for longer than its ttl."""
        now = time.time() if now is None else now
        ttl = info.get("ttl") or default_ttl
        return now > float(info.get("renewed", 0.0)) + float(ttl)

    def hold(self, key: str, until_s: float) -> None:
        """Parent-side backoff: park ``key`` behind a hold lease that
        workers cannot claim; the parent releases it at ``until_s``."""
        now = time.time()
        _atomic_write_json(
            self._lease_path(key),
            {"worker": HOLD_WORKER, "acquired": now, "renewed": now,
             "ttl": max(until_s - now, 0.0)},
        )

    # ------------------------------------------------------------------
    # completion shards
    # ------------------------------------------------------------------
    def complete(
        self,
        worker: str,
        key: str,
        attempt: int,
        cell: dict | None = None,
        stats: dict | None = None,
        error: str | None = None,
    ) -> None:
        """Append one completion record to this worker's done shard.

        The record is written with a single ``O_APPEND`` write so
        shards tolerate concurrent writers and crashes leave at most a
        torn tail.
        """
        record: dict = {"key": key, "attempt": attempt, "worker": worker}
        if error is not None:
            record["error"] = error
        else:
            record["cell"] = cell
            if stats is not None:
                record["stats"] = stats
        line = (json.dumps(record, sort_keys=True) + "\n").encode()
        fd = os.open(
            self.done_dir / f"{worker}.jsonl",
            os.O_CREAT | os.O_WRONLY | os.O_APPEND,
            0o644,
        )
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        jfields: dict = {"worker": worker, "key": key, "attempt": attempt}
        if error is not None:
            jfields["error"] = error
        elif isinstance(cell, dict):
            jfields["runtime_s"] = cell.get("runtime_s")
            if "testbed" in cell:
                jfields["label"] = (
                    f"{cell.get('testbed')}-{cell.get('size')} "
                    f"{cell.get('heuristic')}"
                )
            if stats is not None:
                jfields["stats"] = stats
        self.journal.emit("completed", **jfields)

    def read_done(self, cursor: dict[str, int] | None = None) -> list[dict]:
        """New completion records across every shard since ``cursor``.

        ``cursor`` maps shard filename -> consumed byte offset and is
        advanced in place only past complete (newline-terminated)
        records, so a torn tail is re-read once its writer finishes it.
        """
        records: list[dict] = []
        cursor = {} if cursor is None else cursor
        for path in sorted(self.done_dir.glob("*.jsonl")):
            pos = cursor.get(path.name, 0)
            try:
                if path.stat().st_size <= pos:
                    continue
                with path.open("rb") as fh:
                    fh.seek(pos)
                    data = fh.read()
            except OSError:
                continue
            end = data.rfind(b"\n")
            if end < 0:
                continue  # torn tail only: wait for the writer
            cursor[path.name] = pos + end + 1
            for line in data[:end].split(b"\n"):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn record from a crashed writer
                if isinstance(record, dict) and isinstance(record.get("key"), str):
                    records.append(record)
        return records

    # ------------------------------------------------------------------
    # lifecycle / observation
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        (self.root / STOP).touch()

    def clear_stop(self) -> None:
        (self.root / STOP).unlink(missing_ok=True)

    def stop_requested(self) -> bool:
        return (self.root / STOP).exists()

    def status(self, default_ttl: float = 30.0) -> dict:
        """Machine-readable snapshot of the spool's progress."""
        now = time.time()
        pending = [key for key, _, _ in self.scan_tasks()]
        leases: dict[str, dict] = {}
        expired = 0
        for key in self.leased_keys():
            info = self.lease_info(key)
            if info is None:
                continue
            stale = self.lease_expired(info, default_ttl, now)
            expired += stale
            leases[key] = {
                "worker": info.get("worker", "?"),
                "age_s": round(now - float(info.get("acquired", now)), 3),
                "heartbeat_age_s": round(
                    now - float(info.get("renewed", info.get("acquired", now))), 3
                ),
                "expired": bool(stale),
            }
        done_keys: set[str] = set()
        failed: list[str] = []
        workers: dict[str, int] = {}
        for record in self.read_done({}):
            done_keys.add(record["key"])
            workers[record.get("worker", "?")] = (
                workers.get(record.get("worker", "?"), 0) + 1
            )
            if "error" in record:
                failed.append(record["key"])
        # per-worker health: completion counts folded with live-lease
        # heartbeat ages, so `campaign status --json` shows which
        # workers are alive and which stopped renewing
        worker_health: dict[str, dict] = {
            worker: {
                "done": count,
                "leases": 0,
                "oldest_lease_age_s": None,
                "heartbeat_age_s": None,
                "stale": False,
            }
            for worker, count in workers.items()
        }
        for lease in leases.values():
            ent = worker_health.setdefault(lease["worker"], {
                "done": 0, "leases": 0, "oldest_lease_age_s": None,
                "heartbeat_age_s": None, "stale": False,
            })
            ent["leases"] += 1
            hb = lease["heartbeat_age_s"]
            if ent["heartbeat_age_s"] is None or hb < ent["heartbeat_age_s"]:
                ent["heartbeat_age_s"] = hb
            age = lease["age_s"]
            if ent["oldest_lease_age_s"] is None or age > ent["oldest_lease_age_s"]:
                ent["oldest_lease_age_s"] = age
            ent["stale"] = ent["stale"] or lease["expired"]
        return {
            "root": str(self.root),
            "pending": len(pending),
            "leased": len(leases),
            "leases_expired": expired,
            "done": len(done_keys),
            "failed": sorted(set(failed)),
            "workers": dict(sorted(workers.items())),
            "worker_health": dict(sorted(worker_health.items())),
            "leases": leases,
            "stop_requested": self.stop_requested(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Spool({str(self.root)!r})"


class _Heartbeat(threading.Thread):
    """Renews one lease every ``ttl / 3`` seconds until stopped.

    A daemon thread: SIGKILL takes it down with the worker, which is
    exactly what lets the parent detect the death by lease expiry.
    """

    def __init__(self, spool: Spool, key: str, worker: str, ttl: float) -> None:
        super().__init__(daemon=True, name=f"lease-{key[:8]}")
        self._spool = spool
        self._key = key
        self._worker = worker
        self._ttl = ttl
        # NB: not "_stop" — that would shadow threading.Thread's internal
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self._ttl / 3.0):
            self._spool.renew(self._key, self._worker, self._ttl)

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=self._ttl)


def run_worker(
    root: str | Path,
    worker: str | None = None,
    lease_ttl: float = 30.0,
    poll_s: float = 0.2,
    idle_timeout_s: float | None = None,
    once: bool = False,
    progress=None,
) -> dict:
    """Claim-and-execute loop of one spool worker.

    Sweeps the task shards in key order, claims what it can, executes
    each claimed cell via :func:`~repro.campaign.runner.execute_task`,
    records the completion, and repeats.  Exits when a sweep claims
    nothing and either ``once`` is set, the spool's stop sentinel
    exists, or ``idle_timeout_s`` elapses without a claim.

    Returns ``{"worker": id, "executed": n, "errors": n}``.
    """
    from .runner import execute_task

    spool = Spool(root, create=True)
    worker = worker or default_worker_id()
    spool.journal.emit("worker_start", worker=worker, ttl=lease_ttl)
    executed = errors = 0
    idle_since: float | None = None
    while True:
        claimed = 0
        for key, attempt, task in spool.scan_tasks():
            if not spool.claim(key, worker, lease_ttl):
                continue
            claimed += 1
            heartbeat = _Heartbeat(spool, key, worker, lease_ttl)
            heartbeat.start()
            try:
                _, cell, stats = execute_task(task)
                spool.complete(worker, key, attempt, cell=cell, stats=stats)
                executed += 1
                if progress is not None:
                    progress(f"[{worker}] {key[:12]} done (attempt {attempt})")
            except Exception as exc:  # noqa: BLE001 - shipped to the parent
                # deterministic cell failures are recorded, not retried:
                # the parent fails the campaign with this message
                spool.complete(
                    worker, key, attempt, error=f"{type(exc).__name__}: {exc}"
                )
                errors += 1
                if progress is not None:
                    progress(f"[{worker}] {key[:12]} FAILED: {exc}")
            finally:
                heartbeat.stop()
            # completion is durable; now retire the task and the lease
            # (idempotent — the parent may race us on either)
            spool.remove_task(key)
            spool.release(key)
        if claimed:
            idle_since = None
            continue
        if once or spool.stop_requested():
            break
        now = time.time()
        idle_since = idle_since if idle_since is not None else now
        if idle_timeout_s is not None and now - idle_since >= idle_timeout_s:
            break
        time.sleep(poll_s)
    spool.journal.emit(
        "worker_exit", worker=worker, executed=executed, errors=errors
    )
    return {"worker": worker, "executed": executed, "errors": errors}
