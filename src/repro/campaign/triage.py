"""Cell triage: expansion, key dedup, and cache-hit resolution.

The first of the three campaign layers (triage → executor →
reassembly): expand the spec into cells, collapse duplicate keys, and
serve every cell the cache already holds, leaving the executor exactly
the cells that need computing.  Pure bookkeeping — nothing here builds
a graph or schedules anything — so it runs identically whatever
executor follows.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from .cache import ResultCache
from .spec import CampaignCell, CampaignSpec

#: Callback for a cache hit: ``(cell, cached row, settled, total)``.
HitFn = Callable[[CampaignCell, dict, int, int], None]


@dataclass
class TriagedCells:
    """Everything downstream layers need about one expansion."""

    #: Full expansion, original order (including duplicate keys) — the
    #: reassembly layer walks this to rebuild outcomes.
    cells: list[CampaignCell]
    #: First cell per unique key, expansion order.
    by_key: dict[str, CampaignCell]
    #: Settled rows so far (cache hits; executors add the rest).
    results: dict[str, dict]
    #: Keys that were served from the cache.
    cached_keys: set[str] = field(default_factory=set)

    @property
    def total(self) -> int:
        return len(self.by_key)

    @property
    def pending(self) -> list[CampaignCell]:
        """Unique cells still needing execution, expansion order."""
        return [
            cell for key, cell in self.by_key.items() if key not in self.results
        ]


def triage_cells(
    spec: CampaignSpec,
    cache: ResultCache | None = None,
    refresh: bool = False,
    on_hit: HitFn | None = None,
    journal=None,
) -> TriagedCells:
    """Expand ``spec`` and resolve what the cache already answers.

    ``journal`` is an optional :class:`~repro.obs.journal.Journal`;
    each cache hit is recorded as a ``cached`` event so journal
    consumers count warm cells toward campaign progress.
    """
    cells = spec.expand()
    by_key: dict[str, CampaignCell] = {}
    for cell in cells:
        by_key.setdefault(cell.key, cell)
    triaged = TriagedCells(cells=cells, by_key=by_key, results={})
    if cache is not None and not refresh:
        for key, cell in by_key.items():
            hit = cache.get(key)
            if hit is not None:
                triaged.results[key] = hit
                triaged.cached_keys.add(key)
                if journal is not None:
                    journal.emit("cached", key=key)
                if on_hit is not None:
                    on_hit(cell, hit, len(triaged.results), triaged.total)
    return triaged
