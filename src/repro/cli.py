"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``info``
    Paper platform constants (speedup bound, perfect-balance B, shares).
``schedule``
    Schedule one testbed with one heuristic and print the metrics and an
    optional Gantt chart.
``figures``
    Regenerate the paper's Figures 7-12 series (same engine as
    ``examples/reproduce_paper.py``).
``compare``
    Run every baseline heuristic on one testbed under one model.
``bottleneck``
    Print the scheduled critical chain of a heuristic's schedule — what
    the makespan was waiting on, activity by activity.
``search``
    Improve a heuristic's schedule with iterated local search over its
    decisions (``repro.search``): prints base/tightened/final makespans
    and the search counters.
``campaign``
    Declarative experiment grids on the parallel campaign engine:
    ``campaign run`` executes through a pluggable executor (``serial``
    inline, ``process`` local pool, ``spool`` filesystem work-queue
    shared by workers on any host) behind a content-addressed cache,
    ``campaign worker`` runs one spool worker against a shared
    directory, ``campaign status`` reports cache coverage (or, with
    ``--spool-dir``, live spool progress), ``campaign export`` writes
    cached cells as CSV/JSON, and ``campaign cache {compact,merge}``
    audits and merges cache directories.  ``--improve-budgets`` sweeps
    an ``ils`` post-pass over the heuristic axis; ``--online-policies``
    (crossed with ``--online-arrivals``/``--online-noises``) turns the
    grid into dynamic-workload simulations.
``online``
    Event-driven dynamic-workload simulation (``repro.online``): a
    seeded stream of jobs arriving over time, executed under a noise
    model by a rescheduling policy; prints per-job flow/stretch and
    platform aggregates (``--json`` for machines).
``trace``
    Export a Chrome ``trace_event`` JSON file (``repro.obs``): a static
    schedule as processor/port tracks, or (``--online``) an engine run
    with activity tracks, counters, and replan markers.  Open the file
    at https://ui.perfetto.dev.
``obs``
    Consumers of the campaign event journal: ``obs export`` renders a
    journal (or a saved metrics payload) as JSON or Prometheus text
    exposition, ``obs trace`` converts a journal into a campaign-wide
    Perfetto timeline (one track per worker, lease expiries and retries
    as instants).

The global ``--profile`` flag runs any subcommand under an active
metrics collector and prints the counter/timer table afterwards.  The
``REPRO_LOG`` environment variable sets the level of the ``repro``
logger (e.g. ``REPRO_LOG=debug``).
"""

from __future__ import annotations

import argparse
import ast
import sys

from .analysis import bottleneck_report, compare_schedules, scheduled_critical_path
from .campaign import (
    CampaignSpec,
    HeuristicSpec,
    ResultCache,
    available_executors,
    cached_cells,
    campaign_status,
    format_status,
    merge_caches,
    run_campaign,
)
from .core import validate_schedule
from .core.exceptions import ConfigurationError
from .core.loadbalance import optimal_distribution, weight_shares
from .experiments import (
    available_figures,
    baseline_comparison,
    format_cells,
    format_comparison,
    format_run,
    paper_platform,
    run_figure,
)
from .experiments.config import PAPER_BEST_B, PAPER_COMM_RATIO
from .graphs import available_testbeds, make_testbed
from .heuristics import available_schedulers, get_scheduler
from .kernel.backends import (
    BACKEND_ENV,
    available_backends,
    current_backend_name,
    set_backend,
)
from .kernel.cext_backend import (
    cext_available,
    cext_build_info,
    cext_import_error,
)
from .models import available_models
from .obs import (
    JOURNAL_FILENAME,
    JOURNAL_SCHEMA_VERSION,
    LOG_ENV_VAR,
    collect,
    configure_logging,
    enabled as obs_enabled,
    metric_names,
    online_trace,
    schedule_trace,
    validate_trace,
    write_trace,
)


def _cmd_info(args) -> int:
    import json

    from .online import available_arrivals, available_noise_models, available_policies

    plat = paper_platform()
    if getattr(args, "json", False):
        payload = {
            "platform": {
                "processors": plat.num_processors,
                "cycle_times": list(plat.cycle_times),
                "speedup_bound": plat.speedup_bound(),
                "perfect_balance": plat.perfect_balance_count(),
                "weight_shares": weight_shares(plat.cycle_times),
            },
            "paper": {
                "best_b": PAPER_BEST_B,
                "comm_ratio": PAPER_COMM_RATIO,
            },
            "registries": {
                "testbeds": available_testbeds(),
                "schedulers": available_schedulers(),
                "models": available_models(),
                "figures": available_figures(),
                "policies": available_policies(),
                "noise_models": available_noise_models(),
                "arrivals": available_arrivals(),
                "backends": available_backends(),
            },
            "backend": current_backend_name(),
            "backends": {
                "registered": available_backends(),
                "active": current_backend_name(),
                "cext": {
                    "available": cext_available(),
                    "import_error": cext_import_error(),
                    "build_info": cext_build_info(),
                },
            },
            "obs": {
                "enabled": obs_enabled(),
                "metrics": metric_names(),
                "log_env": LOG_ENV_VAR,
                "journal": {
                    "filename": JOURNAL_FILENAME,
                    "schema_version": JOURNAL_SCHEMA_VERSION,
                },
                "export_formats": ["json", "prometheus"],
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("paper platform (Section 5.2)")
    print(f"  processors        : {plat.num_processors} {plat.cycle_times}")
    print(f"  speedup bound     : {plat.speedup_bound():.2f}")
    print(f"  perfect balance B : {plat.perfect_balance_count()}")
    shares = weight_shares(plat.cycle_times)
    print(f"  weight shares     : {[round(c, 4) for c in shares]}")
    print(f"  38-task counts    : {optimal_distribution(38, plat.cycle_times)}")
    print(f"  best B per testbed: {PAPER_BEST_B}")
    print(f"  testbeds          : {', '.join(available_testbeds())}")
    print(f"  schedulers        : {', '.join(available_schedulers())}")
    print(f"  policies          : {', '.join(available_policies())}")
    print(f"  noise models      : {', '.join(available_noise_models())}")
    print(f"  arrivals          : {', '.join(available_arrivals())}")
    print(
        f"  kernel backends   : {', '.join(available_backends())}"
        f" (active: {current_backend_name()})"
    )
    if cext_available():
        info = cext_build_info() or {}
        built = info.get("compiler") or "compiled"
        print(f"  cext engine       : available ({built})")
    else:
        print(f"  cext engine       : not built ({cext_import_error()})")
    print(
        f"  obs metrics       : {len(metric_names())} registered "
        f"(collect with --profile)"
    )
    print(
        f"  obs journal       : {JOURNAL_FILENAME} v{JOURNAL_SCHEMA_VERSION} "
        f"(export: json, prometheus; {LOG_ENV_VAR}=debug for logs)"
    )
    return 0


def _make(args):
    graph = make_testbed(args.testbed, args.size, comm_ratio=args.comm_ratio)
    platform = paper_platform()
    return graph, platform


def _cmd_schedule(args) -> int:
    graph, platform = _make(args)
    kwargs = {}
    if args.b is not None:
        kwargs["b"] = args.b
    scheduler = get_scheduler(args.heuristic, **kwargs)
    sched = scheduler.run(graph, platform, args.model)
    validate_schedule(sched)
    for key, value in sched.summary().items():
        print(f"{key:>16}: {value}")
    if args.gantt:
        print()
        print(sched.gantt(width=args.gantt))
    return 0


def _cmd_figures(args) -> int:
    for fig in args.figures:
        run = run_figure(fig, sizes=args.sizes, tuned=args.tuned)
        print(f"\n== {fig} ==")
        print(format_run(run))
        print()
        print(format_comparison(run))
    return 0


def _cmd_compare(args) -> int:
    graph, platform = _make(args)
    cells = baseline_comparison(graph, platform, model=args.model)
    print(format_cells(cells))
    return 0


#: CLI conveniences for testbed names (the registry uses hyphens).
_TESTBED_ALIASES = {"forkjoin": "fork-join"}


def _cmd_search(args) -> int:
    from .heuristics import IteratedLocalSearch

    testbed = _TESTBED_ALIASES.get(args.testbed, args.testbed)
    base = _parse_heuristic(args.base)
    bases = [n for n in available_schedulers() if n != "ils"]
    if base.name not in bases:
        raise SystemExit(
            f"unknown base heuristic {base.name!r}; available: {', '.join(bases)}"
        )
    try:
        # fail on bad base kwargs here, with argparse-style cleanliness,
        # not with a TypeError traceback mid-search
        get_scheduler(base.name, **dict(base.kwargs))
    except (ConfigurationError, TypeError) as exc:
        raise SystemExit(f"bad base heuristic {args.base!r}: {exc}") from None
    params = {}
    if args.graph_seed is not None:
        from .graphs import generator_params

        if "seed" not in generator_params(testbed):
            print(f"testbed {testbed!r} is deterministic; --graph-seed ignored")
        else:
            params["seed"] = args.graph_seed
    graph = make_testbed(testbed, args.size, comm_ratio=args.comm_ratio, **params)
    platform = paper_platform()
    scheduler = IteratedLocalSearch(
        base=base.name,
        base_kwargs=dict(base.kwargs),
        budget=args.budget,
        seed=args.search_seed,
    )
    sched = scheduler.run(graph, platform, "one-port")
    validate_schedule(sched)
    stats = sched.search_stats
    print(f"{'base':>12}: {stats['base']}  makespan {stats['base_makespan']:.1f}")
    print(f"{'tightened':>12}: {stats['tightened_makespan']:.1f}")
    print(
        f"{'ils':>12}: {stats['final_makespan']:.1f} "
        f"({stats['improvement_pct']:+.2f}% vs base)"
    )
    print(
        f"{'search':>12}: {stats['evals']} evaluations, "
        f"{stats['accepted']} accepted, {stats['kicks']} kicks, "
        f"{stats['rounds']} round(s), budget {stats['budget']}, "
        f"seed {stats['seed']}"
    )
    print(f"{'speedup':>12}: {sched.speedup():.2f}")
    if args.gantt:
        print()
        print(sched.gantt(width=args.gantt))
    return 0


def _cmd_online(args) -> int:
    import json

    from .online import (
        check_execution,
        format_jobs,
        make_policy,
        make_workload,
        simulate_online,
    )
    from .online.harness import online_result_summary

    testbed = _TESTBED_ALIASES.get(args.testbed, args.testbed)
    heuristic = _parse_heuristic(args.heuristic)
    overrides = {}
    if args.policy.partition(":")[0] != "ready-dispatch":
        overrides = {
            "heuristic": heuristic.name,
            "heuristic_kwargs": dict(heuristic.kwargs),
        }
    try:
        policy = make_policy(args.policy, **overrides)
        workload = make_workload(
            testbed,
            args.size,
            args.jobs,
            arrival=args.arrival,
            seed=args.seed,
            comm_ratio=args.comm_ratio,
            vary_graphs=args.vary_graphs,
        )
        result = simulate_online(
            workload,
            paper_platform(),
            policy=policy,
            noise=args.noise,
            seed=args.seed,
            log_events=False,
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    check_execution(result)
    if args.json:
        print(json.dumps(online_result_summary(result), indent=2))
        return 0
    planner = f" (planner {heuristic.display})" if overrides else ""
    print(
        f"policy {args.policy}{planner}  "
        f"noise {args.noise}  arrival {args.arrival}  seed {args.seed}"
    )
    print(format_jobs(result))
    print(f"throughput: {result.events_per_s:,.0f} events/s")
    return 0


def _cmd_trace(args) -> int:
    from .obs import current as obs_current
    from .obs.registry import Stats

    testbed = _TESTBED_ALIASES.get(args.testbed, args.testbed)
    heuristic = _parse_heuristic(args.heuristic)
    # ensure phase spans even without --profile: reuse the ambient
    # collector when one is active, otherwise open a local scope
    stats = obs_current()
    with collect(stats if stats is not None else Stats()) as stats:
        if args.online:
            from .online import make_policy, make_workload, simulate_online

            overrides = {}
            if args.policy.partition(":")[0] != "ready-dispatch":
                overrides = {
                    "heuristic": heuristic.name,
                    "heuristic_kwargs": dict(heuristic.kwargs),
                }
            try:
                policy = make_policy(args.policy, **overrides)
                workload = make_workload(
                    testbed,
                    args.size,
                    args.jobs,
                    arrival=args.arrival,
                    seed=args.seed,
                    comm_ratio=args.comm_ratio,
                )
                result = simulate_online(
                    workload,
                    paper_platform(),
                    policy=policy,
                    noise=args.noise,
                    seed=args.seed,
                    log_events=True,
                )
            except ConfigurationError as exc:
                raise SystemExit(str(exc)) from None
            trace = online_trace(result, stats)
        else:
            graph = make_testbed(testbed, args.size, comm_ratio=args.comm_ratio)
            try:
                scheduler = get_scheduler(heuristic.name, **dict(heuristic.kwargs))
            except (ConfigurationError, TypeError) as exc:
                raise SystemExit(f"bad heuristic {args.heuristic!r}: {exc}") from None
            sched = scheduler.run(graph, paper_platform(), args.model)
            validate_schedule(sched)
            trace = schedule_trace(sched, stats)
    summary = validate_trace(trace)
    path = write_trace(trace, args.out)
    view = trace["metadata"]["view"]
    print(
        f"wrote {view} trace: {summary['events']} events on "
        f"{summary['tracks']} tracks -> {path}"
    )
    print("open it at https://ui.perfetto.dev ('Open trace file')")
    return 0


def _cmd_obs_export(args) -> int:
    import json

    from .obs import journal_summary, prometheus_text, read_journal

    if (args.journal is None) == (args.metrics is None):
        print("obs export needs exactly one of --journal / --metrics")
        return 1
    summary = None
    if args.journal is not None:
        records = read_journal(args.journal)
        if not records:
            print(f"no journal records under {args.journal}")
            return 1
        summary = journal_summary(records)
        payload = summary["stats"]
    else:
        with open(args.metrics) as fh:
            payload = json.load(fh)
    if args.format == "json":
        body = json.dumps(
            summary if summary is not None else payload,
            indent=2, sort_keys=True,
        ) + "\n"
    else:
        body = prometheus_text(payload)
    if args.out == "-":
        sys.stdout.write(body)
    else:
        with open(args.out, "w") as fh:
            fh.write(body)
        print(f"wrote {args.format} metrics to {args.out}")
    return 0


def _cmd_obs_trace(args) -> int:
    from .obs import campaign_trace, read_journal

    records = read_journal(args.journal)
    if not records:
        print(f"no journal records under {args.journal}")
        return 1
    trace = campaign_trace(records)
    summary = validate_trace(trace)
    path = write_trace(trace, args.out)
    meta = trace["metadata"]
    print(
        f"wrote campaign trace: {summary['events']} events, "
        f"{len(meta['workers'])} worker track(s), {meta['cells_done']} cell(s) "
        f"-> {path}"
    )
    print("open it at https://ui.perfetto.dev ('Open trace file')")
    return 0


def _cmd_bottleneck(args) -> int:
    graph, platform = _make(args)
    scheduler = get_scheduler(args.heuristic, **({"b": args.b} if args.b else {}))
    sched = scheduler.run(graph, platform, args.model)
    validate_schedule(sched)
    report = bottleneck_report(sched)
    print(f"makespan {report['makespan']:.1f}: "
          f"compute {report['compute']:.1f}, comm {report['comm']:.1f}, "
          f"gap {report['gap']:.1f} "
          f"(comm fraction {report['comm_fraction']:.0%})")
    print("\ncritical chain (earliest first):")
    for node in scheduled_critical_path(sched):
        print(
            f"  [{node.start:9.1f} {node.finish:9.1f}] {node.kind:<5} "
            f"{node.label:<40} <- {node.released_by}"
        )
    return 0


def _parse_heuristic(text: str) -> HeuristicSpec:
    """Parse ``name`` or ``name:key=val,key=val`` into a HeuristicSpec.

    Values go through ``ast.literal_eval`` so ``b=4`` is an int and
    ``single_comm_scan=True`` a bool; unparsable values stay strings.
    """
    name, _, rest = text.partition(":")
    kwargs = {}
    if rest:
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            if not sep:
                raise SystemExit(f"bad heuristic kwarg {pair!r} in {text!r} (want key=value)")
            try:
                kwargs[key] = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                kwargs[key] = value
    return HeuristicSpec.of(name, kwargs)


def _campaign_spec(args) -> CampaignSpec:
    """Build a spec from ``--spec FILE`` or the inline grid flags."""
    if args.spec is not None:
        return CampaignSpec.from_json(args.spec)
    improve: list[dict | None] = []
    for budget in args.improve_budgets or []:
        if budget == 0:
            improve.append(None)
        else:
            improve.append({"budget": budget, "seed": args.improve_seed})
    online: list[dict | None] = []
    for policy in args.online_policies or []:
        for arrival in args.online_arrivals:
            for noise in args.online_noises:
                online.append(
                    {
                        "policy": policy,
                        "arrival": arrival,
                        "noise": noise,
                        "jobs": args.online_jobs,
                        "seed": args.online_seed,
                    }
                )
    return CampaignSpec(
        name=args.name,
        testbeds=args.testbeds,
        sizes=args.sizes,
        heuristics=[_parse_heuristic(h) for h in args.heuristics],
        models=args.models,
        seeds=args.seeds,
        comm_ratio=args.comm_ratio,
        improve=improve,
        online=online,
    )


def _campaign_cache(args) -> ResultCache | None:
    return None if args.no_cache else ResultCache(args.cache_dir)


def _cmd_campaign_run(args) -> int:
    import contextlib
    import json

    from .experiments import format_comparison, format_run, write_csv, write_json
    from .obs import current as obs_current

    spec = _campaign_spec(args)
    cache = _campaign_cache(args)
    progress = None if args.quiet else print
    executor_options = None
    if args.executor == "spool":
        executor_options = {
            "dir": args.spool_dir,
            "lease_ttl": args.lease_ttl,
            "max_retries": args.max_retries,
        }
    # --metrics / --metrics-interval need an active collector; reuse
    # --profile's when present
    scope = (
        collect()
        if (args.metrics or args.metrics_interval) and obs_current() is None
        else contextlib.nullcontext()
    )
    with scope:
        result = run_campaign(
            spec,
            workers=args.workers,
            cache=cache,
            progress=progress,
            refresh=args.refresh,
            executor=args.executor,
            executor_options=executor_options,
            journal=args.journal,
            snapshot_interval_s=args.metrics_interval,
            snapshot_path=args.metrics if args.metrics_interval else None,
        )
    if args.metrics:
        with open(args.metrics, "w") as fh:
            json.dump(result.stats, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote campaign metrics to {args.metrics}")
    print(
        f"\ncampaign {spec.name}: {len(result.outcomes)} cells "
        f"({result.cache_hits} cached, {result.executed} executed) "
        f"in {result.elapsed_s:.1f}s with {result.workers} worker(s) "
        f"via {result.executor}"
    )
    for run in result.runs():
        print(f"\n== {run.figure} ==")
        print(format_run(run))
        if len(run.heuristics()) > 1 and "heft" in run.heuristics():
            print()
            print(format_comparison(run))
    if args.export:
        writer = write_json if args.export.endswith(".json") else write_csv
        path = writer(result.cells, args.export)
        print(f"\nexported {len(result.cells)} cells to {path}")
    return 0


def _cmd_campaign_status(args) -> int:
    import json

    if args.spool_dir is not None:
        from .campaign import Spool

        if args.watch:
            from .campaign.dashboard import watch

            try:
                return watch(
                    args.spool_dir,
                    interval_s=args.interval,
                    clear=sys.stdout.isatty(),
                )
            except ConfigurationError as exc:
                raise SystemExit(str(exc)) from None
            except KeyboardInterrupt:  # pragma: no cover - interactive
                return 0
        try:
            status = Spool(args.spool_dir).status()
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print(
                f"spool {status['root']}: {status['pending']} pending, "
                f"{status['leased']} leased "
                f"({status['leases_expired']} expired), "
                f"{status['done']} done, {len(status['failed'])} failed"
            )
            for worker, health in status["worker_health"].items():
                hb = health.get("heartbeat_age_s")
                beat = f", heartbeat {hb:.1f}s ago" if hb is not None else ""
                stale = " [stale]" if health.get("stale") else ""
                print(
                    f"  {worker:>24}: {health['done']} cell(s), "
                    f"{health['leases']} lease(s){beat}{stale}"
                )
            if status["stop_requested"]:
                print("  stop requested: workers are draining")
        return 0
    status = campaign_status(_campaign_spec(args), _campaign_cache(args))
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(format_status(status))
    return 0


def _cmd_campaign_worker(args) -> int:
    from .campaign import run_worker

    summary = run_worker(
        args.dir,
        worker=args.worker_id,
        lease_ttl=args.lease_ttl,
        poll_s=args.poll,
        idle_timeout_s=args.idle_timeout,
        once=args.once,
        progress=None if args.quiet else print,
    )
    print(
        f"worker {summary['worker']}: {summary['executed']} cell(s) executed, "
        f"{summary['errors']} error(s)"
    )
    return 1 if summary["errors"] else 0


def _cmd_campaign_cache(args) -> int:
    if args.cache_command == "compact":
        cache = ResultCache(args.cache_dir)
        report = cache.compact()
        print(
            f"compacted {cache.path}: {report['kept']} cell(s) kept, "
            f"{report['dropped']} line(s) dropped"
        )
        return 0
    report = merge_caches(args.out, args.sources)
    print(
        f"merged {report['sources']} cache(s) into {args.out}: "
        f"{report['cells']} cell(s) total, {report['added']} new"
    )
    return 0


def _cmd_campaign_export(args) -> int:
    from .experiments import write_csv, write_json

    spec = _campaign_spec(args)
    cache = _campaign_cache(args)
    if cache is None:
        print("campaign export needs a cache (remove --no-cache)")
        return 1
    cells = cached_cells(spec, cache)
    status = campaign_status(spec, cache)
    writer = write_json if args.out.endswith(".json") else write_csv
    try:
        path = writer(cells, args.out, overwrite=args.force)
    except FileExistsError:
        print(f"refusing to overwrite {args.out} (pass --force)")
        return 1
    print(f"exported {len(cells)} cached cells to {path}")
    if status["missing"]:
        print(f"warning: {status['missing']} cells of the grid are not cached yet")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="kernel backend (default: $REPRO_BACKEND or 'python'); "
        "exported to campaign worker processes",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect repro.obs metrics around the subcommand and print "
        "the counter/timer table afterwards",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="paper constants and registries")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON instead of the text report")
    p.set_defaults(fn=_cmd_info)

    def add_graph_args(p):
        p.add_argument("--testbed", default="lu", choices=available_testbeds())
        p.add_argument("--size", type=int, default=20)
        p.add_argument("--comm-ratio", type=float, default=PAPER_COMM_RATIO)
        p.add_argument("--model", default="one-port",
                       choices=available_models())

    p = sub.add_parser("schedule", help="run one heuristic on one testbed")
    add_graph_args(p)
    p.add_argument("--heuristic", default="ilha", choices=available_schedulers())
    p.add_argument("--b", type=int, default=None, help="ILHA chunk size")
    p.add_argument("--gantt", type=int, nargs="?", const=78, default=None,
                   help="print an ASCII Gantt chart (optional width)")
    p.set_defaults(fn=_cmd_schedule)

    p = sub.add_parser("figures", help="regenerate paper figures")
    p.add_argument("--figures", nargs="+", default=available_figures(),
                   choices=available_figures())
    p.add_argument("--sizes", nargs="+", type=int, default=None)
    p.add_argument("--tuned", action="store_true")
    p.set_defaults(fn=_cmd_figures)

    p = sub.add_parser("compare", help="all baselines on one testbed")
    add_graph_args(p)
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("search", help="iterated local search over a schedule")
    p.add_argument("--graph", "--testbed", dest="testbed", default="lu",
                   choices=sorted([*available_testbeds(), *_TESTBED_ALIASES]),
                   help="testbed name (accepts 'forkjoin' for 'fork-join')")
    p.add_argument("--size", type=int, default=20)
    p.add_argument("--comm-ratio", type=float, default=PAPER_COMM_RATIO)
    p.add_argument("--graph-seed", type=int, default=None,
                   help="seed for the seeded (random) testbeds")
    p.add_argument("--base", default="heft",
                   help="base heuristic, optionally name:key=val,key=val")
    p.add_argument("--budget", type=int, default=4000,
                   help="move-evaluation budget of the search")
    p.add_argument("--search-seed", type=int, default=0)
    p.add_argument("--gantt", type=int, nargs="?", const=78, default=None)
    p.set_defaults(fn=_cmd_search)

    p = sub.add_parser("online", help="dynamic-workload simulation")
    p.add_argument("--testbed", default="lu",
                   choices=sorted([*available_testbeds(), *_TESTBED_ALIASES]),
                   help="job template (accepts 'forkjoin' for 'fork-join')")
    p.add_argument("--size", type=int, default=10)
    p.add_argument("--comm-ratio", type=float, default=PAPER_COMM_RATIO)
    p.add_argument("--jobs", type=int, default=8, help="number of jobs in the stream")
    p.add_argument("--arrival", default="poisson:rate=0.002",
                   help="arrival process, e.g. poisson:rate=0.01, "
                        "burst:size=4,gap=500, trace:0,100,250")
    p.add_argument("--noise", default="exact",
                   help="duration noise, e.g. lognormal:sigma=0.3, "
                        "straggler:prob=0.05,factor=5")
    p.add_argument("--policy", default="static",
                   help="rescheduling policy: static, periodic:period=T, "
                        "reactive:threshold=X, ready-dispatch")
    p.add_argument("--heuristic", default="heft",
                   help="planning heuristic of the policy, "
                        "optionally name:key=val,key=val")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for arrivals, noise, and seeded testbeds")
    p.add_argument("--vary-graphs", action="store_true",
                   help="derive a distinct graph seed per job "
                        "(seeded testbeds only)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON instead of the table")
    p.set_defaults(fn=_cmd_online)

    p = sub.add_parser("trace", help="export a Chrome/Perfetto trace")
    p.add_argument("--testbed", default="lu",
                   choices=sorted([*available_testbeds(), *_TESTBED_ALIASES]),
                   help="testbed name (accepts 'forkjoin' for 'fork-join')")
    p.add_argument("--size", type=int, default=20)
    p.add_argument("--comm-ratio", type=float, default=PAPER_COMM_RATIO)
    p.add_argument("--model", default="one-port", choices=available_models())
    p.add_argument("--heuristic", default="heft",
                   help="heuristic (static) or planner of the policy "
                        "(--online), optionally name:key=val,key=val")
    p.add_argument("--online", action="store_true",
                   help="trace a dynamic-workload engine run instead of "
                        "a static schedule")
    p.add_argument("--jobs", type=int, default=8, help="jobs (--online)")
    p.add_argument("--arrival", default="poisson:rate=0.002",
                   help="arrival process (--online)")
    p.add_argument("--noise", default="exact", help="duration noise (--online)")
    p.add_argument("--policy", default="static",
                   help="rescheduling policy (--online)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for arrivals and noise (--online)")
    p.add_argument("--out", default="trace.json",
                   help="output path of the trace JSON")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "obs", help="journal consumers: metrics export and campaign traces"
    )
    osub = p.add_subparsers(dest="obs_command", required=True)
    op = osub.add_parser(
        "export",
        help="export merged metrics as Prometheus text or JSON",
    )
    op.add_argument("--journal", default=None,
                    help="campaign journal file or spool directory")
    op.add_argument("--metrics", default=None,
                    help="metrics JSON payload (from campaign run --metrics)")
    op.add_argument("--format", choices=["prometheus", "json"],
                    default="prometheus")
    op.add_argument("--out", default="-",
                    help="output path ('-' = stdout)")
    op.set_defaults(fn=_cmd_obs_export)
    op = osub.add_parser(
        "trace",
        help="render a campaign journal as a validated Perfetto trace",
    )
    op.add_argument("--journal", required=True,
                    help="campaign journal file or spool directory")
    op.add_argument("--out", default="campaign-trace.json",
                    help="output path of the trace JSON")
    op.set_defaults(fn=_cmd_obs_trace)

    p = sub.add_parser("bottleneck", help="critical-chain attribution")
    add_graph_args(p)
    p.add_argument("--heuristic", default="heft", choices=available_schedulers())
    p.add_argument("--b", type=int, default=None)
    p.set_defaults(fn=_cmd_bottleneck)

    p = sub.add_parser("campaign", help="parallel cached experiment grids")
    csub = p.add_subparsers(dest="campaign_command", required=True)

    def add_campaign_args(cp):
        cp.add_argument("--spec", default=None,
                        help="JSON CampaignSpec file (overrides the grid flags)")
        cp.add_argument("--name", default="adhoc", help="campaign name (grid mode)")
        cp.add_argument("--testbeds", nargs="+", default=["lu"],
                        choices=available_testbeds())
        cp.add_argument("--sizes", nargs="+", type=int, default=[10, 20])
        cp.add_argument("--heuristics", nargs="+", default=["heft", "ilha"],
                        help="registry names, optionally name:key=val,key=val")
        cp.add_argument("--models", nargs="+", default=["one-port"],
                        choices=available_models())
        cp.add_argument("--seeds", nargs="+", type=int, default=[0],
                        help="seeds for the seeded (random) testbeds")
        cp.add_argument("--comm-ratio", type=float, default=PAPER_COMM_RATIO)
        cp.add_argument("--improve-budgets", nargs="+", type=int, default=None,
                        help="sweep an ils post-pass per heuristic; 0 = no search")
        cp.add_argument("--improve-seed", type=int, default=0,
                        help="search seed for the --improve-budgets entries")
        cp.add_argument("--online-policies", nargs="+", default=None,
                        help="turn cells into dynamic-workload simulations "
                             "with these policies (crossed with the arrival "
                             "and noise lists)")
        cp.add_argument("--online-arrivals", nargs="+",
                        default=["poisson:rate=0.002"],
                        help="arrival specs of the online axis")
        cp.add_argument("--online-noises", nargs="+", default=["exact"],
                        help="noise specs of the online axis")
        cp.add_argument("--online-jobs", type=int, default=8,
                        help="jobs per online cell")
        cp.add_argument("--online-seed", type=int, default=0,
                        help="engine seed of the online cells")
        cp.add_argument("--cache-dir", default=".repro-cache",
                        help="content-addressed result cache directory")
        cp.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the cache")

    cp = csub.add_parser("run", help="execute the grid (executor + cache)")
    add_campaign_args(cp)
    cp.add_argument("--workers", type=int, default=1,
                    help="worker count (spool: local workers to spawn; "
                         "0 = rely on external 'campaign worker' processes)")
    cp.add_argument("--executor", default=None, choices=available_executors(),
                    help="cell executor (default: process when --workers > 1, "
                         "else inline)")
    cp.add_argument("--spool-dir", default=None,
                    help="spool directory of the 'spool' executor "
                         "(default: a temporary one)")
    cp.add_argument("--lease-ttl", type=float, default=30.0,
                    help="spool lease time-to-live in seconds")
    cp.add_argument("--max-retries", type=int, default=2,
                    help="lease-expiry retries per spool cell before the "
                         "campaign fails")
    cp.add_argument("--refresh", action="store_true",
                    help="recompute cells even on cache hits")
    cp.add_argument("--export", default=None,
                    help="also write the cells to this .csv/.json path")
    cp.add_argument("--metrics", default=None,
                    help="write the merged obs payload (counters/timers "
                         "across all workers) to this JSON path")
    cp.add_argument("--metrics-interval", type=float, default=None,
                    help="also snapshot rolling metrics every N seconds "
                         "(to --metrics and the journal)")
    cp.add_argument("--journal", default=None,
                    help="event-journal JSONL path (default: "
                         "<spool-dir>/journal.jsonl for the spool executor)")
    cp.add_argument("--quiet", action="store_true", help="no per-cell progress")
    cp.set_defaults(fn=_cmd_campaign_run)

    cp = csub.add_parser("status", help="cache coverage of the grid, or "
                                        "(--spool-dir) live spool progress")
    add_campaign_args(cp)
    cp.add_argument("--spool-dir", default=None,
                    help="report a spool directory instead of the grid's "
                         "cache coverage")
    cp.add_argument("--json", action="store_true",
                    help="machine-readable JSON instead of the text report")
    cp.add_argument("--watch", action="store_true",
                    help="live dashboard (--spool-dir only): refresh until "
                         "the campaign finishes")
    cp.add_argument("--interval", type=float, default=2.0,
                    help="refresh period of --watch in seconds")
    cp.set_defaults(fn=_cmd_campaign_status)

    cp = csub.add_parser(
        "worker",
        help="spool worker: claim and execute cells from a shared directory",
    )
    cp.add_argument("dir", help="spool directory (created if missing)")
    cp.add_argument("--worker-id", default=None,
                    help="lease/shard identity (default: <host>-<pid>)")
    cp.add_argument("--lease-ttl", type=float, default=30.0,
                    help="seconds a claim survives without heartbeat renewal")
    cp.add_argument("--poll", type=float, default=0.2,
                    help="idle polling period in seconds")
    cp.add_argument("--idle-timeout", type=float, default=None,
                    help="exit after this many idle seconds (default: wait "
                         "for the stop sentinel)")
    cp.add_argument("--once", action="store_true",
                    help="drain what is claimable now, then exit")
    cp.add_argument("--quiet", action="store_true", help="no per-cell lines")
    cp.set_defaults(fn=_cmd_campaign_worker)

    cp = csub.add_parser("cache", help="audit and merge result caches")
    ccsub = cp.add_subparsers(dest="cache_command", required=True)
    ccp = ccsub.add_parser(
        "compact",
        help="rewrite a cache last-writer-wins, dropping superseded/torn rows",
    )
    ccp.add_argument("--cache-dir", default=".repro-cache")
    ccp.set_defaults(fn=_cmd_campaign_cache)
    ccp = ccsub.add_parser(
        "merge", help="fold several cache directories into one (last wins)"
    )
    ccp.add_argument("sources", nargs="+", help="cache directories to fold in")
    ccp.add_argument("--out", required=True, help="destination cache directory")
    ccp.set_defaults(fn=_cmd_campaign_cache)

    cp = csub.add_parser("export", help="write cached cells as CSV/JSON")
    add_campaign_args(cp)
    cp.add_argument("--out", required=True, help="output .csv/.json path")
    cp.add_argument("--force", action="store_true",
                    help="overwrite an existing output file")
    cp.set_defaults(fn=_cmd_campaign_export)
    return parser


def main(argv: list[str] | None = None) -> int:
    configure_logging()
    args = build_parser().parse_args(argv)
    if args.backend is not None:
        import os

        # the env var is the cross-process channel: campaign workers
        # inherit it; set_backend covers this process immediately
        os.environ[BACKEND_ENV] = args.backend
        set_backend(args.backend)
    if args.profile:
        with collect() as stats:
            rc = args.fn(args)
        print("\n-- profile " + "-" * 45)
        print(stats.table())
        return rc
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
