"""Complexity results: reductions of Theorems 1 & 2 and exact solvers."""

from . import comm_sched, fork_sched
from .exact_fork import (
    brute_force_fork_makespan,
    build_fork_schedule,
    fork_makespan_for_subset,
    jackson_remote_makespan,
    optimal_fork_makespan,
)
from .partition import (
    equal_cardinality_partition,
    is_partition,
    subset_with_sum,
    two_partition,
)

__all__ = [
    "brute_force_fork_makespan",
    "build_fork_schedule",
    "comm_sched",
    "equal_cardinality_partition",
    "fork_makespan_for_subset",
    "fork_sched",
    "is_partition",
    "jackson_remote_makespan",
    "optimal_fork_makespan",
    "subset_with_sum",
    "two_partition",
]
