"""Theorem 2 (Appendix): the COMM-SCHED reduction from 2-PARTITION.

COMM-SCHED: tasks are *already allocated* to processors; only the
communications (and the zero-cost executions) remain to be timed under
the one-port model.  The construction, for integers ``a_1..a_n`` of sum
``2S``:

* a fork ``v_0 -> v_i`` (``i = 1..n``) with message volumes ``a_i``;
* ``n`` independent pairs ``v_{2n+i} -> v_{n+i}`` with volume ``S``;
* ``2n + 1`` unit-speed processors on a homogeneous unit network;
* allocation: ``v_0`` on ``P_0``; ``v_i`` and ``v_{n+i}`` on ``P_i``;
  ``v_{2n+i}`` on ``P_{n+i}``; every task has weight 0.

``P_0`` must push ``2S`` worth of messages through its send port, and
each ``P_i`` must *also* receive an ``S``-long message from ``P_{n+i}``
on its receive port.  Within a deadline of ``2S``, ``P_0``'s sends are
back-to-back and each message must fit entirely inside ``[0, S]`` or
``[S, 2S]`` — i.e. some prefix of the send order sums to exactly ``S``:
a 2-PARTITION.

**Published typo**: the paper states the deadline ``T = S``, but ``P_0``
alone needs ``Σ a_i = 2S`` time to send everything, and the proof's own
schedule finishes at ``2S`` ("then, at time-step S, it sends messages to
nodes v_i such that i ∈ A2"); both directions of the argument are
consistent with ``T = 2S``, which is what this module implements.  See
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from itertools import permutations

from ..core.exceptions import ConfigurationError
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from .partition import _check_values, two_partition


def task(i: int) -> str:
    """Task ids ``v0 .. v{3n}`` matching the paper's Figure 13."""
    return f"v{i}"


@dataclass(frozen=True)
class CommSchedInstance:
    """A COMM-SCHED instance produced by the Theorem 2 construction."""

    a_values: tuple[int, ...]
    graph: TaskGraph
    platform: Platform
    alloc: dict[str, int]
    deadline: float

    @property
    def n(self) -> int:
        return len(self.a_values)

    @property
    def half_sum(self) -> int:
        return sum(self.a_values) // 2


def build_instance(a_values: Sequence[int]) -> CommSchedInstance:
    """Apply the Theorem 2 construction (with the ``T = 2S`` fix)."""
    values = _check_values(a_values)
    if not values:
        raise ConfigurationError("need at least one value")
    total = sum(values)
    if total % 2 != 0:
        # The decision answer is trivially "no", but the instance is
        # still well-formed; S is the rounded-up half for the volumes.
        raise ConfigurationError(
            "Theorem 2 instances need an even total (odd totals are trivial no-instances)"
        )
    s = total // 2
    n = len(values)

    g = TaskGraph(name=f"comm-sched-{n}")
    for i in range(3 * n + 1):
        g.add_task(task(i), 0.0)
    for i in range(1, n + 1):
        g.add_dependency(task(0), task(i), float(values[i - 1]))
    for i in range(1, n + 1):
        g.add_dependency(task(2 * n + i), task(n + i), float(s))

    platform = Platform.homogeneous(2 * n + 1, cycle_time=1.0, link=1.0)
    alloc = {task(0): 0}
    for i in range(1, n + 1):
        alloc[task(i)] = i
        alloc[task(n + i)] = i
        alloc[task(2 * n + i)] = n + i
    return CommSchedInstance(
        a_values=tuple(values),
        graph=g,
        platform=platform,
        alloc=alloc,
        deadline=2.0 * s,
    )


def schedule_from_partition(
    instance: CommSchedInstance, side: Sequence[int]
) -> Schedule:
    """The forward-direction schedule for partition side ``side`` (0-based).

    ``P_0`` sends the ``side`` messages back-to-back in ``[0, S]`` and
    the others in ``[S, 2S]``; pair messages fill the complementary
    window of each ``P_i``'s receive port.  Valid and deadline-meeting
    whenever ``side`` is one half of a 2-PARTITION.
    """
    n = instance.n
    s = float(instance.half_sum)
    a = instance.a_values
    chosen = set(side)
    if any(not (0 <= i < n) for i in chosen):
        raise ConfigurationError(f"side indices out of range: {sorted(chosen)}")

    sched = Schedule(
        instance.graph, instance.platform, model="one-port", heuristic="comm-sched"
    )
    sched.place(task(0), 0, 0.0, 0.0)
    for i in range(1, n + 1):
        sched.place(task(2 * n + i), n + i, 0.0, 0.0)

    t = 0.0
    order = sorted(chosen) + sorted(set(range(n)) - chosen)
    for idx in order:
        i = idx + 1  # child index in the paper's numbering
        dur = float(a[idx])
        sched.record_comm(task(0), task(i), 0, i, t, dur, dur)
        sched.place(task(i), i, t + dur, t + dur)
        if idx in chosen:
            # P_i's receive port is busy [t, t+dur] ⊂ [0, S]; the S-long
            # pair message takes the suffix window [S, 2S].
            sched.record_comm(task(2 * n + i), task(n + i), n + i, i, s, s, s)
            sched.place(task(n + i), i, 2.0 * s, 2.0 * s)
        else:
            # P_0's message lands in [S, 2S]; the pair message takes the
            # prefix window [0, S].
            sched.record_comm(task(2 * n + i), task(n + i), n + i, i, 0.0, s, s)
            sched.place(task(n + i), i, s, s)
        t += dur
    return sched


def decide(instance: CommSchedInstance) -> bool:
    """Exact COMM-SCHED decision via the converse argument.

    A deadline-``2S`` schedule exists iff some subset of the ``a_i``
    sums to ``S`` (see the module docstring); that subset-sum is solved
    pseudo-polynomially.  :func:`decide_by_enumeration` cross-checks
    this closed form on small instances.
    """
    return two_partition(list(instance.a_values)) is not None


def decide_by_enumeration(instance: CommSchedInstance, max_n: int = 8) -> bool:
    """Brute force over ``P_0`` send orders (small instances only).

    Within deadline ``2S`` the sends are back-to-back; an order is
    feasible iff no message straddles time ``S`` (each ``P_i`` needs a
    contiguous ``S``-window left on its receive port).
    """
    n = instance.n
    if n > max_n:
        raise ConfigurationError(f"enumeration limited to n <= {max_n}")
    s = instance.half_sum
    a = instance.a_values
    for order in permutations(range(n)):
        t = 0
        ok = True
        for idx in order:
            if t < s < t + a[idx]:
                ok = False
                break
            t += a[idx]
        if ok:
            return True
    return False
