"""Exact one-port scheduling of fork graphs on unlimited processors.

FORK-SCHED (Definition 1 of the paper) is NP-complete in the number of
children, but for a *given* instance the optimum has enough structure to
be computed exactly by subset enumeration, which the reduction tests and
the Figure 1 example rely on:

1. **Only the local/remote split matters.**  With unlimited identical
   processors, putting two remote children on the *same* processor never
   helps: every message still serializes on the parent's send port, and
   sharing a processor can only delay one child's execution behind the
   other's.  So an optimal schedule keeps some set ``A`` of children on
   the parent's processor ``P0`` and gives every other child its own
   processor.  (``test_exact_fork.py`` cross-checks this lemma by brute
   force over groupings on small instances.)

2. **Jackson's rule orders the messages.**  Given the remote set, the
   parent sends one message per remote child back-to-back (its send port
   is the bottleneck); child ``j`` then computes for ``w_j * t``.  This
   is single-machine scheduling with delivery tails, solved exactly by
   sending in non-increasing tail order (exchange argument; brute-forced
   in the tests as well).

3. The optimum is the minimum over the ``2^n`` subsets of
   ``max(local compute, parent finish + best remote timing)``.

All functions take the parent weight ``w0``, child weights ``w`` and
message volumes ``d``; processors have cycle time ``cycle_time`` and
links cost ``link`` per data item (homogeneous, as in Theorem 1).
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import permutations

from ..core.exceptions import ConfigurationError
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..graphs.fork import PARENT, child, fork_graph

#: Refuse subset enumeration beyond this many children (2^n blow-up).
MAX_EXACT_CHILDREN = 22


def jackson_remote_makespan(jobs: Sequence[tuple[float, float]]) -> float:
    """Optimal remote finishing time for ``(send_duration, exec_duration)`` jobs.

    All messages leave one send port sequentially starting at time 0;
    job ``j`` then runs for its exec duration on a dedicated processor.
    Jackson's rule (longest tail first) minimizes the maximum completion.
    """
    ordered = sorted(jobs, key=lambda sd: -sd[1])
    t = 0.0
    out = 0.0
    for send, execd in ordered:
        t += send
        out = max(out, t + execd)
    return out


def remote_makespan_for_order(
    jobs: Sequence[tuple[float, float]], order: Sequence[int]
) -> float:
    """Remote finishing time for an explicit send order (for brute force)."""
    t = 0.0
    out = 0.0
    for i in order:
        send, execd = jobs[i]
        t += send
        out = max(out, t + execd)
    return out


def fork_makespan_for_subset(
    w0: float,
    weights: Sequence[float],
    datas: Sequence[float],
    local: frozenset[int] | set[int],
    cycle_time: float = 1.0,
    link: float = 1.0,
) -> float:
    """Best makespan keeping children ``local`` (0-based) on ``P0``."""
    local_work = (w0 + sum(weights[i] for i in local)) * cycle_time
    remote_jobs = [
        (datas[i] * link, weights[i] * cycle_time)
        for i in range(len(weights))
        if i not in local
    ]
    remote = w0 * cycle_time + jackson_remote_makespan(remote_jobs)
    return max(local_work, remote if remote_jobs else 0.0)


def optimal_fork_makespan(
    w0: float,
    weights: Sequence[float],
    datas: Sequence[float],
    cycle_time: float = 1.0,
    link: float = 1.0,
) -> tuple[float, frozenset[int]]:
    """Exact optimum over all local subsets; returns (makespan, local set).

    Ties prefer larger local sets then lexicographically smaller ones,
    so the result is deterministic.
    """
    n = len(weights)
    if len(datas) != n:
        raise ConfigurationError("weights and datas must have equal length")
    if n > MAX_EXACT_CHILDREN:
        raise ConfigurationError(
            f"refusing exact enumeration for n={n} > {MAX_EXACT_CHILDREN}"
        )
    best: tuple[float, int, tuple[int, ...]] | None = None
    best_set: frozenset[int] = frozenset()
    for mask in range(1 << n):
        local = frozenset(i for i in range(n) if mask >> i & 1)
        ms = fork_makespan_for_subset(w0, weights, datas, local, cycle_time, link)
        key = (ms, n - len(local), tuple(sorted(local)))
        if best is None or key < best:
            best = key
            best_set = local
    assert best is not None
    return best[0], best_set


def brute_force_fork_makespan(
    w0: float,
    weights: Sequence[float],
    datas: Sequence[float],
    cycle_time: float = 1.0,
    link: float = 1.0,
    max_children: int = 8,
) -> float:
    """Optimum over subsets x *all* send orders (validates Jackson's rule)."""
    n = len(weights)
    if n > max_children:
        raise ConfigurationError(f"brute force limited to {max_children} children")
    best = float("inf")
    for mask in range(1 << n):
        local = {i for i in range(n) if mask >> i & 1}
        remote = [i for i in range(n) if i not in local]
        local_work = (w0 + sum(weights[i] for i in local)) * cycle_time
        jobs = [(datas[i] * link, weights[i] * cycle_time) for i in remote]
        if jobs:
            remote_best = min(
                remote_makespan_for_order(jobs, order)
                for order in permutations(range(len(jobs)))
            )
            ms = max(local_work, w0 * cycle_time + remote_best)
        else:
            ms = local_work
        best = min(best, ms)
    return best


def build_fork_schedule(
    w0: float,
    weights: Sequence[float],
    datas: Sequence[float],
    local: frozenset[int] | set[int],
    cycle_time: float = 1.0,
    link: float = 1.0,
    send_order: Sequence[int] | None = None,
) -> Schedule:
    """Materialize the subset solution as a validated one-port schedule.

    ``P0`` executes the parent then its local children back-to-back;
    remote children get processors ``1, 2, ...`` in send order (Jackson
    order unless ``send_order`` gives explicit 0-based child indices).
    The schedule passes :func:`repro.core.validation.validate_schedule`.
    """
    n = len(weights)
    graph: TaskGraph = fork_graph(list(weights), list(datas), parent_weight=w0)
    remote = [i for i in range(n) if i not in local]
    if send_order is None:
        remote.sort(key=lambda i: (-weights[i], i))
    else:
        if sorted(send_order) != sorted(remote):
            raise ConfigurationError("send_order must enumerate exactly the remote children")
        remote = list(send_order)
    platform = Platform.homogeneous(max(1 + len(remote), 1), cycle_time, link)
    schedule = Schedule(graph, platform, model="one-port", heuristic="exact-fork")

    t = w0 * cycle_time
    schedule.place(PARENT, 0, 0.0, t)
    local_t = t
    for i in sorted(local):
        dur = weights[i] * cycle_time
        schedule.place(child(i + 1), 0, local_t, local_t + dur)
        local_t += dur
    send_t = t
    for rank, i in enumerate(remote):
        proc = rank + 1
        dur = datas[i] * link
        schedule.record_comm(PARENT, child(i + 1), 0, proc, send_t, dur, datas[i])
        arrive = send_t + dur
        schedule.place(child(i + 1), proc, arrive, arrive + weights[i] * cycle_time)
        send_t = arrive
    return schedule
