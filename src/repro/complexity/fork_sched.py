"""Theorem 1: the FORK-SCHED reduction from 2-PARTITION.

Given integers ``a_1..a_n`` (sum ``2S``, max ``M``, min ``m``), the paper
builds a fork with ``N = n + 3`` children:

* parent weight ``w_0 = 0``;
* child ``i <= n`` has weight ``w_i = 10 (M + a_i + 1)``;
* three extra children of weight ``w_min = 10 (M + m) + 1`` — the unique
  minimal weight, and the only weight ``≡ 1 (mod 10)``;
* message volumes ``d_i = w_i``;
* the deadline ``T = (1/2) Σ_{i<=n} w_i + 2 w_min``.

A schedule meeting ``T`` forces (paper's converse argument) the parent's
processor load ``A`` and the last remote completion ``B`` to satisfy
``A = B = T`` with the last message going to a minimal-weight child, and
the mod-10 structure pins exactly two of the three special children on
``P0``.  Splitting off those special children, ``A = B`` reads
``|A1| (M+1) + Σ_{A1} a = |A2| (M+1) + Σ_{A2} a`` — the construction
therefore decides 2-PARTITION *with equal cardinalities* (plain
2-PARTITION does not force ``|A1| = |A2|``; DESIGN.md discusses this
published edge case).  The test-suite verifies both directions against
:func:`repro.complexity.partition.equal_cardinality_partition` and the
exact solver of :mod:`repro.complexity.exact_fork`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..core.exceptions import ConfigurationError
from ..core.schedule import Schedule
from .exact_fork import build_fork_schedule, optimal_fork_makespan
from .partition import _check_values


@dataclass(frozen=True)
class ForkSchedInstance:
    """A FORK-SCHED instance produced by the Theorem 1 construction."""

    a_values: tuple[int, ...]
    parent_weight: float
    child_weights: tuple[float, ...]
    child_data: tuple[float, ...]
    deadline: float

    @property
    def n(self) -> int:
        """Number of original 2-PARTITION values."""
        return len(self.a_values)

    @property
    def num_children(self) -> int:
        return len(self.child_weights)

    @property
    def w_min(self) -> float:
        return min(self.child_weights)


def build_instance(a_values: Sequence[int]) -> ForkSchedInstance:
    """Apply the Theorem 1 construction to a 2-PARTITION instance."""
    values = _check_values(a_values)
    if not values:
        raise ConfigurationError("need at least one value")
    m_max = max(values)
    m_min = min(values)
    weights = [10.0 * (m_max + a + 1) for a in values]
    w_min = 10.0 * (m_max + m_min) + 1.0
    weights.extend([w_min, w_min, w_min])
    deadline = 0.5 * sum(weights[: len(values)]) + 2.0 * w_min
    return ForkSchedInstance(
        a_values=tuple(values),
        parent_weight=0.0,
        child_weights=tuple(weights),
        child_data=tuple(weights),
        deadline=deadline,
    )


def schedule_from_partition(
    instance: ForkSchedInstance, side: Sequence[int]
) -> Schedule:
    """The paper's forward-direction schedule for partition side ``side``.

    ``side`` holds 0-based indices into ``a_values`` (the set ``A1`` kept
    on ``P0``).  Following the proof, ``P0`` additionally executes the
    parent and two of the three minimal children; every other child gets
    its own processor, messages sent by increasing index so the last
    message reaches the remaining minimal child.
    """
    n = instance.n
    chosen = set(side)
    if any(not (0 <= i < n) for i in chosen):
        raise ConfigurationError(f"side indices out of range: {sorted(chosen)}")
    local = frozenset(chosen | {n, n + 1})  # two of the three special children
    remote = [i for i in range(instance.num_children) if i not in local]
    # "by increasing values of the index i": the last message goes to the
    # third special child (index n + 2), which has the minimal weight.
    return build_fork_schedule(
        instance.parent_weight,
        instance.child_weights,
        instance.child_data,
        local,
        send_order=sorted(remote),
    )


def decide(instance: ForkSchedInstance) -> bool:
    """Exact FORK-SCHED decision: optimum makespan within the deadline."""
    makespan, _ = optimal_fork_makespan(
        instance.parent_weight, instance.child_weights, instance.child_data
    )
    return makespan <= instance.deadline + 1e-9
