"""2-PARTITION solvers (the source problem of both reductions).

2-PARTITION [Garey & Johnson]: given positive integers ``a_1..a_n``,
decide whether some subset sums to exactly half the total.  NP-complete,
but solvable in pseudo-polynomial time ``O(n * S)`` by subset-sum
dynamic programming — which is what lets the test-suite verify the
paper's reductions on concrete instances.

Theorem 1's construction additionally requires the two sides to have
*equal cardinality* (its child weights ``w_i = 10(M + a_i + 1)`` carry a
per-element constant, see DESIGN.md), so the equal-cardinality variant
— also NP-complete — is provided too.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.exceptions import ConfigurationError


def _check_values(values: Sequence[int]) -> list[int]:
    out = []
    for v in values:
        if v != int(v) or v <= 0:
            raise ConfigurationError(f"2-PARTITION values must be positive integers, got {v}")
        out.append(int(v))
    return out


def subset_with_sum(values: Sequence[int], target: int) -> list[int] | None:
    """Indices of a subset summing to ``target``, or ``None``.

    Subset-sum DP over achievable sums with parent pointers for
    reconstruction: ``O(n * target)`` time and space.
    """
    values = _check_values(values)
    if target < 0:
        return None
    if target == 0:
        return []
    # parent[s] = (previous sum, index used), set the first time s is hit.
    parent: dict[int, tuple[int, int]] = {0: (-1, -1)}
    sums = [0]
    for i, v in enumerate(values):
        new_sums = []
        for s in sums:
            t = s + v
            if t <= target and t not in parent:
                parent[t] = (s, i)
                new_sums.append(t)
        sums.extend(new_sums)
        if target in parent:
            break
    if target not in parent:
        return None
    out = []
    s = target
    while s != 0:
        prev, idx = parent[s]
        out.append(idx)
        s = prev
    out.reverse()
    return out


def two_partition(values: Sequence[int]) -> list[int] | None:
    """Indices of one side of a 2-PARTITION, or ``None`` when impossible."""
    values = _check_values(values)
    total = sum(values)
    if total % 2 != 0:
        return None
    return subset_with_sum(values, total // 2)


def equal_cardinality_partition(values: Sequence[int]) -> list[int] | None:
    """A 2-PARTITION with both sides of size ``n/2``, or ``None``.

    DP over (subset size, sum) pairs with parent pointers; requires even
    ``n``.  This is the predicate Theorem 1's construction actually
    decides (see :mod:`repro.complexity.fork_sched`).
    """
    values = _check_values(values)
    n = len(values)
    total = sum(values)
    if n % 2 != 0 or total % 2 != 0:
        return None
    half_n, half_s = n // 2, total // 2
    # parent[(k, s)] = (index used to reach this state from (k-1, s - v)).
    parent: dict[tuple[int, int], int] = {}
    reachable: set[tuple[int, int]] = {(0, 0)}
    for i, v in enumerate(values):
        additions = []
        for k, s in reachable:
            state = (k + 1, s + v)
            if state[0] <= half_n and state[1] <= half_s and state not in reachable:
                if state not in parent:
                    parent[state] = i
                    additions.append(state)
        reachable.update(additions)
    if (half_n, half_s) not in reachable:
        return None
    out = []
    k, s = half_n, half_s
    while k > 0:
        i = parent[(k, s)]
        out.append(i)
        k, s = k - 1, s - values[i]
    out.reverse()
    return out


def is_partition(values: Sequence[int], side: Sequence[int]) -> bool:
    """Whether the index set ``side`` splits ``values`` into equal sums."""
    values = _check_values(values)
    chosen = set(side)
    if len(chosen) != len(side) or any(not (0 <= i < len(values)) for i in chosen):
        return False
    left = sum(values[i] for i in chosen)
    return 2 * left == sum(values)
