"""Core substrates: task graphs, platforms, timelines, schedules, ranks."""

from .bounds import (
    critical_path_lower_bound,
    makespan_lower_bound,
    work_lower_bound,
)
from .exceptions import (
    ConfigurationError,
    GraphError,
    PlatformError,
    ReproError,
    SchedulingError,
    TimelineError,
    ValidationError,
)
from .loadbalance import (
    ChunkLoadTracker,
    b_candidates,
    distribution_makespan,
    optimal_distribution,
    perfect_balance_count,
    share_limits,
    weight_shares,
)
from .platform import Platform
from .ports import PortSet, PortSetOverlay
from .ranking import (
    bottom_levels,
    critical_path,
    critical_path_length,
    priority_order,
    top_levels,
)
from .schedule import CommEvent, Schedule, TaskPlacement
from .serialization import (
    canonical_json,
    graph_from_dict,
    graph_to_dict,
    load_schedule,
    platform_from_dict,
    platform_to_dict,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
    stable_digest,
)
from .taskgraph import TaskGraph
from .timeline import Timeline, TimelineOverlay, earliest_joint_fit
from .tolerance import TIME_EPS, time_tol
from .validation import MACRO_DATAFLOW, ONE_PORT, is_valid, validate_schedule

__all__ = [
    "ChunkLoadTracker",
    "CommEvent",
    "ConfigurationError",
    "GraphError",
    "MACRO_DATAFLOW",
    "ONE_PORT",
    "Platform",
    "PlatformError",
    "PortSet",
    "PortSetOverlay",
    "ReproError",
    "Schedule",
    "SchedulingError",
    "TIME_EPS",
    "TaskGraph",
    "TaskPlacement",
    "Timeline",
    "TimelineError",
    "TimelineOverlay",
    "ValidationError",
    "b_candidates",
    "bottom_levels",
    "critical_path",
    "critical_path_length",
    "critical_path_lower_bound",
    "makespan_lower_bound",
    "work_lower_bound",
    "distribution_makespan",
    "earliest_joint_fit",
    "canonical_json",
    "graph_from_dict",
    "graph_to_dict",
    "is_valid",
    "load_schedule",
    "platform_from_dict",
    "platform_to_dict",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
    "stable_digest",
    "time_tol",
    "optimal_distribution",
    "perfect_balance_count",
    "priority_order",
    "share_limits",
    "top_levels",
    "validate_schedule",
    "weight_shares",
]
