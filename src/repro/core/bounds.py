"""Makespan lower bounds — sanity anchors for every heuristic.

No valid schedule can beat either of these, whatever the communication
model (communications only add constraints):

* **work bound** — the total computation weight shared perfectly among
  all processors: ``sum(w) / sum(1/t_i)``;
* **critical-path bound** — the longest chain of the graph executed
  entirely on the fastest processor with *zero* communication cost:
  ``max over paths of (sum of w along path) * min(t_i)``.

The test-suite asserts ``lower_bound <= makespan`` for every heuristic
on every generated graph, and the experiment report prints the bound
next to the measured speedups (the paper's 7.6 speedup ceiling is the
work bound in disguise).
"""

from __future__ import annotations

from .platform import Platform
from .ranking import bottom_levels_from
from .taskgraph import TaskGraph


def work_lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """Total weight divided by the aggregate speed ``sum(1/t_i)``."""
    return graph.total_weight() / platform.aggregate_speed()


def critical_path_lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """Longest weight-chain on the fastest processor, communications free."""
    tmin = platform.min_cycle_time()
    node_cost = {v: graph.weight(v) * tmin for v in graph.tasks()}
    edge_cost = {e: 0.0 for e in graph.edges()}
    bl = bottom_levels_from(graph, node_cost, edge_cost)
    return max(bl.values(), default=0.0)


def makespan_lower_bound(graph: TaskGraph, platform: Platform) -> float:
    """The larger of the work and critical-path bounds."""
    return max(work_lower_bound(graph, platform), critical_path_lower_bound(graph, platform))
