"""Exception hierarchy for the :mod:`repro` scheduling library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated Python
errors.  Validation failures carry enough context (task, processor,
time window) to diagnose an invalid schedule directly from the message.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """The task graph is malformed (cycle, unknown node, bad weight...)."""


class PlatformError(ReproError):
    """The platform description is malformed (bad cycle time, link matrix...)."""


class TimelineError(ReproError):
    """A resource timeline operation is invalid (overlapping reservation...)."""


class SchedulingError(ReproError):
    """A heuristic could not produce a schedule (e.g. unschedulable input)."""


class ValidationError(ReproError):
    """A schedule violates the scheduling rules of the chosen model."""


class ConfigurationError(ReproError):
    """An experiment or heuristic was configured inconsistently."""


class CampaignError(ReproError):
    """A campaign could not complete (failed cell, dead workers...)."""
