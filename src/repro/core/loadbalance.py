"""Proportional load balancing across different-speed processors.

This implements Section 4.2 of the paper (and its reference [2]):

* the *continuous* share of processor ``P_i`` in a pool of total weight
  ``W`` is ``c_i = (1/t_i) / sum_j (1/t_j)`` — every processor then
  finishes its fraction ``c_i * W`` at the same instant;
* because tasks are indivisible, the *optimal distribution* algorithm
  rounds the shares down and then hands out the remaining tasks one by
  one, each to the processor whose completion time after one more task
  is smallest.  This minimizes ``max_i t_i * n_i`` over all integer
  distributions of ``n`` equal-size tasks (the greedy step is exchange-
  optimal, which the test-suite cross-checks by brute force);
* the smallest ``n`` for which the continuous shares are all integral is
  ``lcm(t_1..t_p) * sum_i (1/t_i)`` — the paper's perfect-balance chunk
  size ``B = 38`` for the 6/10/15 platform.

ILHA uses these primitives twice: the one-port variant bounds each
processor's *weight* within a chunk by ``c_i * W``; the macro-dataflow
variant distributes task *counts* with the integer algorithm.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from .exceptions import ConfigurationError


def weight_shares(cycle_times: Sequence[float]) -> list[float]:
    """Continuous shares ``c_i = (1/t_i) / sum(1/t_j)``; sums to 1."""
    if not cycle_times:
        raise ConfigurationError("weight_shares needs at least one processor")
    if any(t <= 0 for t in cycle_times):
        raise ConfigurationError("cycle times must be > 0")
    inv = [1.0 / t for t in cycle_times]
    total = sum(inv)
    return [x / total for x in inv]


def share_limits(total_weight: float, cycle_times: Sequence[float]) -> list[float]:
    """Per-processor weight budgets ``c_i * W`` for a chunk of weight ``W``."""
    if total_weight < 0:
        raise ConfigurationError(f"total weight must be >= 0, got {total_weight}")
    return [c * total_weight for c in weight_shares(cycle_times)]


def optimal_distribution(n: int, cycle_times: Sequence[float]) -> list[int]:
    """Distribute ``n`` equal-size tasks minimizing ``max_i t_i * n_i``.

    The paper's two-phase algorithm: start from the floored continuous
    shares, then repeatedly give one more task to the processor ``k``
    minimizing ``t_k * (c_k + 1)`` until all ``n`` tasks are assigned
    (ties go to the lowest index, making the result deterministic).
    """
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    shares = weight_shares(cycle_times)
    counts = [math.floor(c * n) for c in shares]
    p = len(cycle_times)
    while sum(counts) < n:
        k = min(range(p), key=lambda i: (cycle_times[i] * (counts[i] + 1), i))
        counts[k] += 1
    return counts


def distribution_makespan(counts: Sequence[int], cycle_times: Sequence[float]) -> float:
    """Completion time of a count distribution: ``max_i t_i * n_i``."""
    if len(counts) != len(cycle_times):
        raise ConfigurationError("counts and cycle_times must have equal length")
    return max((t * c for t, c in zip(cycle_times, counts)), default=0.0)


def is_count_distribution_optimal(counts: Sequence[int], cycle_times: Sequence[float]) -> bool:
    """Exchange-optimality check: no single task move can lower the max.

    A distribution is optimal for this min-max objective iff moving one
    task from any processor attaining the max to any other processor does
    not reduce the makespan.  (Global optimality follows because the
    objective is an order statistic of independent per-processor loads;
    the tests also brute-force small instances.)
    """
    ms = distribution_makespan(counts, cycle_times)
    p = len(cycle_times)
    for i in range(p):
        if counts[i] == 0 or cycle_times[i] * counts[i] < ms:
            continue
        for j in range(p):
            if i == j:
                continue
            moved = list(counts)
            moved[i] -= 1
            moved[j] += 1
            if distribution_makespan(moved, cycle_times) < ms:
                return False
    return True


def perfect_balance_count(cycle_times: Sequence[float]) -> int:
    """Smallest ``n`` whose continuous shares are all integers.

    ``n = lcm(t_1..t_p) * sum(1/t_i)`` for integer cycle times — the
    paper's recommended upper end for sampling the ILHA parameter ``B``
    (Section 5.3).  38 for the paper's 6/10/15 platform.
    """
    ints = []
    for t in cycle_times:
        if abs(t - round(t)) > 1e-12 or t <= 0:
            raise ConfigurationError("perfect_balance_count needs positive integer cycle times")
        ints.append(round(t))
    lcm = 1
    for t in ints:
        lcm = math.lcm(lcm, t)
    return sum(lcm // t for t in ints)


def b_candidates(cycle_times: Sequence[float], num_processors: int | None = None) -> list[int]:
    """Sensible values of ILHA's chunk parameter ``B`` to sample.

    Section 5.3: ``B`` must be at least the number of processors (else
    some processor is forcibly idle) and at most the perfect-balance
    count ``M``, beyond which larger chunks cannot balance better.  The
    returned list covers ``[p, M]`` with the paper's observed optima
    (4, 20, 38 on the paper platform) included when in range.
    """
    p = num_processors if num_processors is not None else len(cycle_times)
    m = perfect_balance_count(cycle_times)
    lo = min(p, m)
    candidates = {lo, m}
    step = max(1, (m - lo) // 4)
    candidates.update(range(lo, m + 1, step))
    return sorted(candidates)


class ChunkLoadTracker:
    """Running per-processor load against the ``c_i * W`` budgets.

    ILHA's Step 1 (Section 4.4) allocates a zero-communication task to
    processor ``P_i`` only while ``load_i + w(T) <= c_i * W``.  This
    object tracks the loads of one chunk.
    """

    __slots__ = ("limits", "loads")

    def __init__(self, total_weight: float, cycle_times: Sequence[float]) -> None:
        self.limits = share_limits(total_weight, cycle_times)
        self.loads = [0.0] * len(self.limits)

    def fits(self, proc: int, weight: float, slack: float = 1e-12) -> bool:
        """Whether ``proc`` can absorb ``weight`` within its budget."""
        return self.loads[proc] + weight <= self.limits[proc] + slack

    def add(self, proc: int, weight: float) -> None:
        self.loads[proc] += weight

    def remaining(self, proc: int) -> float:
        return self.limits[proc] - self.loads[proc]
