"""Heterogeneous computing platforms: processors and communication links.

This implements the target model of the paper (Section 2.1): a set
``P = {P_0, ..., P_{p-1}}`` of processors where each ``P_i`` has a
*cycle time* ``t_i`` (the inverse of its relative speed — executing task
``v`` on ``P_i`` takes ``w(v) * t_i`` time units), together with a
``p x p`` communication matrix ``link`` giving the time to transfer one
data item between each processor pair (zero diagonal).

The module also provides the heterogeneous *averages* the paper uses to
compute bottom levels (Section 4.1):

* the average execution time of a task of weight ``w`` over the whole
  platform is ``w * p / sum(1/t_i)`` — i.e. ``w`` times the harmonic mean
  of the cycle times;
* the average communication factor replaces ``link(q, r)`` by the inverse
  of the harmonic mean of the link bandwidths, which is the arithmetic
  mean of the off-diagonal ``link`` entries.

Finally :meth:`Platform.speedup_bound` reproduces the paper's Section 5.2
upper bound (7.6 for the paper platform).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from .exceptions import PlatformError

#: Index of a processor inside a :class:`Platform`.
ProcId = int


def _lcm_of(values: Iterable[int]) -> int:
    out = 1
    for v in values:
        out = math.lcm(out, v)
    return out


class Platform:
    """A set of heterogeneous processors joined by a communication network.

    Parameters
    ----------
    cycle_times:
        Sequence of per-processor cycle times ``t_i`` (strictly positive).
        Identical processors all use ``t_i = 1``.
    link:
        Either a scalar (fully homogeneous network: every off-diagonal
        entry equals the scalar) or a full ``p x p`` matrix with zero
        diagonal and non-negative entries.  ``link[q][r]`` is the time to
        ship one data item from ``P_q`` to ``P_r``.  An entry of
        ``math.inf`` means "no direct link" (used by the routing model).

    Notes
    -----
    Instances are immutable — and the immutability is *enforced*:
    attribute assignment raises after construction, the link matrix is
    a read-only ndarray, and :meth:`link_rows` returns immutable
    tuples.  Compiled statics (:mod:`repro.kernel.statics`) and flat
    kernels hold direct references to these tables, so a mutable
    platform would silently poison every schedule built after the
    mutation; mutating experiments must build new platforms.
    """

    __slots__ = ("_cycle_times", "_link", "_link_rows", "_p", "_frozen")

    def __init__(self, cycle_times: Sequence[float], link: float | Sequence[Sequence[float]] = 1.0):
        cts = tuple(float(t) for t in cycle_times)
        if not cts:
            raise PlatformError("a platform needs at least one processor")
        for i, t in enumerate(cts):
            if not (t > 0) or t == float("inf"):
                raise PlatformError(f"processor {i}: cycle time must be finite and > 0, got {t}")
        self._cycle_times = cts
        self._p = len(cts)

        if isinstance(link, (int, float)):
            scalar = float(link)
            if scalar < 0:
                raise PlatformError(f"link cost must be >= 0, got {scalar}")
            mat = np.full((self._p, self._p), scalar, dtype=float)
            np.fill_diagonal(mat, 0.0)
        else:
            mat = np.asarray(link, dtype=float)
            if mat.shape != (self._p, self._p):
                raise PlatformError(
                    f"link matrix must be {self._p}x{self._p}, got shape {mat.shape}"
                )
            if np.any(np.diagonal(mat) != 0.0):
                raise PlatformError("link matrix diagonal must be zero")
            if np.any(mat < 0):
                raise PlatformError("link matrix entries must be >= 0")
        mat.setflags(write=False)
        self._link = mat
        # Immutable mirror of the link matrix: hot loops (kernel replay,
        # one-port trial bookings) index it without numpy scalar boxing,
        # and compiled statics share the reference — tuples make any
        # attempted in-place mutation an immediate TypeError.
        self._link_rows: tuple[tuple[float, ...], ...] = tuple(
            tuple(float(x) for x in row) for row in mat
        )
        self._frozen = True

    def __setattr__(self, name: str, value) -> None:
        if getattr(self, "_frozen", False):
            raise PlatformError(
                f"Platform is frozen: cannot set {name!r}. Compiled statics "
                "and flat kernels cache platform-derived tables; build a new "
                "Platform instead of mutating this one."
            )
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_processors(self) -> int:
        return self._p

    def __len__(self) -> int:
        return self._p

    @property
    def processors(self) -> range:
        """Processor indices ``0 .. p-1``."""
        return range(self._p)

    @property
    def cycle_times(self) -> tuple[float, ...]:
        return self._cycle_times

    def cycle_time(self, proc: ProcId) -> float:
        """Cycle time ``t_proc`` (inverse relative speed)."""
        self._check_proc(proc)
        return self._cycle_times[proc]

    def speed(self, proc: ProcId) -> float:
        """Relative speed ``1 / t_proc``."""
        return 1.0 / self.cycle_time(proc)

    @property
    def link_matrix(self) -> np.ndarray:
        """Read-only ``p x p`` matrix of per-item transfer times."""
        return self._link

    def link(self, src: ProcId, dst: ProcId) -> float:
        """Per-item transfer time from ``src`` to ``dst`` (0 when equal)."""
        self._check_proc(src)
        self._check_proc(dst)
        return self._link_rows[src][dst]

    def link_rows(self) -> tuple[tuple[float, ...], ...]:
        """The ``p x p`` link matrix as nested tuples (immutable)."""
        return self._link_rows

    def has_link(self, src: ProcId, dst: ProcId) -> bool:
        """Whether a direct (finite-cost) link exists from ``src`` to ``dst``."""
        return src == dst or math.isfinite(self._link[src, dst])

    def is_fully_connected(self) -> bool:
        """True when every processor pair has a direct finite link."""
        off = ~np.eye(self._p, dtype=bool)
        return bool(np.all(np.isfinite(self._link[off])))

    def _check_proc(self, proc: ProcId) -> None:
        if not (0 <= proc < self._p):
            raise PlatformError(f"processor index {proc} out of range [0, {self._p})")

    # ------------------------------------------------------------------
    # costs
    # ------------------------------------------------------------------
    def exec_time(self, weight: float, proc: ProcId) -> float:
        """Time to execute a task of computation cost ``weight`` on ``proc``."""
        return weight * self.cycle_time(proc)

    def comm_time(self, data: float, src: ProcId, dst: ProcId) -> float:
        """Time to transfer ``data`` items from ``src`` to ``dst``.

        Zero when ``src == dst`` (memory accesses are neglected, as in the
        paper).  Raises if the processors are not directly linked — the
        routing model handles multi-hop paths.
        """
        if src == dst:
            return 0.0
        if src < 0 or dst < 0:
            self._check_proc(src)
            self._check_proc(dst)
        try:
            cost = self._link_rows[src][dst]
        except IndexError:
            self._check_proc(src)
            self._check_proc(dst)
            raise  # pragma: no cover - _check_proc raised first
        if not math.isfinite(cost):
            raise PlatformError(f"no direct link from P{src} to P{dst}")
        return data * cost

    # ------------------------------------------------------------------
    # heterogeneous averages (Section 4.1)
    # ------------------------------------------------------------------
    def aggregate_speed(self) -> float:
        """``sum(1/t_i)`` — the platform's total relative speed."""
        return sum(1.0 / t for t in self._cycle_times)

    def average_cycle_time(self) -> float:
        """Harmonic mean of the cycle times: ``p / sum(1/t_i)``.

        The paper estimates the weight of a task as
        ``p * w(T) / sum(1/t_i)`` when computing bottom levels; that is
        ``w(T) * average_cycle_time()``.
        """
        return self._p / self.aggregate_speed()

    def average_link_time(self) -> float:
        """Average per-item communication time over distinct pairs.

        The paper replaces ``link(q, r)`` by "the inverse of the harmonic
        mean" of the link bandwidths.  With bandwidth ``b = 1/link``, the
        harmonic mean of the bandwidths over the ``p(p-1)`` ordered pairs
        is ``p(p-1) / sum(link)``... inverted, this is the arithmetic mean
        of the ``link`` entries.  For a single processor there are no
        links and the average is 0.
        """
        if self._p == 1:
            return 0.0
        off = ~np.eye(self._p, dtype=bool)
        vals = self._link[off]
        finite = vals[np.isfinite(vals)]
        if finite.size == 0:
            return 0.0
        return float(np.mean(finite))

    def fastest_processor(self) -> ProcId:
        """Index of a processor with the minimal cycle time (lowest index wins)."""
        return min(self.processors, key=lambda i: (self._cycle_times[i], i))

    def min_cycle_time(self) -> float:
        return min(self._cycle_times)

    def sequential_time(self, total_weight: float) -> float:
        """Time to run ``total_weight`` of work on one fastest processor.

        This is the paper's sequential reference (Section 5.2 computes
        ``38 * 6 = 228`` for 38 unit tasks on a cycle-time-6 processor).
        """
        return total_weight * self.min_cycle_time()

    def speedup_bound(self) -> float:
        """Paper Section 5.2 upper bound on the achievable speedup.

        Ignoring communications and dependences, work distributed
        proportionally to speeds completes ``sum(1/t_i)`` units of weight
        per time unit, while the fastest sequential processor completes
        ``1/min(t_i)``; the ratio is ``min(t_i) * sum(1/t_i)``.  For the
        paper platform: ``6 * (5/6 + 3/10 + 2/15) = 7.6``.
        """
        return self.min_cycle_time() * self.aggregate_speed()

    def perfect_balance_count(self) -> int:
        """Smallest number of equal-size tasks that balances perfectly.

        Section 5.2: ``B = lcm(t_1..t_p) * sum(1/t_i)`` when the cycle
        times are integers (38 for the paper platform).  Raises
        :class:`PlatformError` when cycle times are not integral, since
        the lcm construction is only meaningful for integers.
        """
        ints = []
        for t in self._cycle_times:
            if abs(t - round(t)) > 1e-12:
                raise PlatformError("perfect_balance_count needs integer cycle times")
            ints.append(round(t))
        lcm = _lcm_of(ints)
        total = sum(lcm // t for t in ints)
        return int(total)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(cls, count: int, cycle_time: float = 1.0, link: float = 1.0) -> "Platform":
        """``count`` identical processors on a fully homogeneous network."""
        if count < 1:
            raise PlatformError(f"count must be >= 1, got {count}")
        return cls([cycle_time] * count, link)

    @classmethod
    def from_groups(
        cls, groups: Sequence[tuple[int, float]], link: float | Sequence[Sequence[float]] = 1.0
    ) -> "Platform":
        """Build from ``(count, cycle_time)`` groups.

        ``Platform.from_groups([(5, 6), (3, 10), (2, 15)])`` is the paper
        platform: five cycle-time-6, three cycle-time-10, two cycle-time-15
        processors.
        """
        cts: list[float] = []
        for count, ct in groups:
            if count < 0:
                raise PlatformError(f"group count must be >= 0, got {count}")
            cts.extend([ct] * count)
        return cls(cts, link)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Platform(p={self._p}, cycle_times={self._cycle_times})"
