"""Per-processor communication ports for the bi-directional one-port model.

Under the paper's model (Section 2.3) each processor owns exactly one
*send* port and one *receive* port: at any instant it is sending to at
most one processor and receiving from at most one processor, while
computation proceeds independently.  A transfer from ``q`` to ``r``
therefore books the same window on ``q``'s send timeline and ``r``'s
receive timeline.

:class:`PortSet` owns the committed state; :class:`PortSetOverlay` gives
heuristics a scratch view (lazily created :class:`TimelineOverlay` per
port) for evaluating one candidate placement, which is either discarded
or committed atomically.
"""

from __future__ import annotations

from typing import Any

from .exceptions import TimelineError
from .timeline import Timeline, TimelineOverlay, earliest_joint_fit

#: Direction constants for port lookups.
SEND = "send"
RECV = "recv"


class PortSet:
    """Committed send/receive port timelines for every processor."""

    __slots__ = ("send", "recv")

    def __init__(self, num_processors: int) -> None:
        if num_processors < 1:
            raise TimelineError("PortSet needs at least one processor")
        self.send = [Timeline() for _ in range(num_processors)]
        self.recv = [Timeline() for _ in range(num_processors)]

    @property
    def num_processors(self) -> int:
        return len(self.send)

    def earliest_transfer(self, src: int, dst: int, ready: float, duration: float) -> float:
        """Earliest start of a ``duration``-long transfer ``src -> dst``.

        The window must be free on ``src``'s send port and ``dst``'s
        receive port simultaneously, and start no earlier than ``ready``
        (typically the source task's completion time).
        """
        if src == dst:
            return ready
        return earliest_joint_fit([self.send[src], self.recv[dst]], ready, duration)

    def reserve_transfer(
        self, src: int, dst: int, start: float, duration: float, tag: Any = None
    ) -> None:
        """Commit a transfer window on both ports (no-op when ``src == dst``)."""
        if src == dst:
            return
        self.send[src].reserve(start, start + duration, tag)
        self.recv[dst].reserve(start, start + duration, tag)

    def copy(self) -> "PortSet":
        dup = PortSet(self.num_processors)
        dup.send = [t.copy() for t in self.send]
        dup.recv = [t.copy() for t in self.recv]
        return dup


class PortSetOverlay:
    """Tentative view over a :class:`PortSet`.

    Overlays are created lazily per (processor, direction) so evaluating
    a candidate that touches only two ports costs two small objects.
    """

    __slots__ = ("_base", "_send", "_recv")

    def __init__(self, base: PortSet) -> None:
        self._base = base
        self._send: dict[int, TimelineOverlay] = {}
        self._recv: dict[int, TimelineOverlay] = {}

    def _send_view(self, proc: int) -> TimelineOverlay:
        view = self._send.get(proc)
        if view is None:
            view = self._send[proc] = TimelineOverlay(self._base.send[proc])
        return view

    def _recv_view(self, proc: int) -> TimelineOverlay:
        view = self._recv.get(proc)
        if view is None:
            view = self._recv[proc] = TimelineOverlay(self._base.recv[proc])
        return view

    def earliest_transfer(self, src: int, dst: int, ready: float, duration: float) -> float:
        if src == dst:
            return ready
        return earliest_joint_fit(
            [self._send_view(src), self._recv_view(dst)], ready, duration
        )

    def reserve_transfer(
        self, src: int, dst: int, start: float, duration: float, tag: Any = None
    ) -> None:
        if src == dst:
            return
        self._send_view(src).reserve(start, start + duration, tag)
        self._recv_view(dst).reserve(start, start + duration, tag)

    def commit(self) -> None:
        """Replay every tentative transfer onto the base port set."""
        for view in self._send.values():
            view.commit()
        for view in self._recv.values():
            view.commit()
        self._send.clear()
        self._recv.clear()
