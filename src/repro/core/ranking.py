"""Task priorities: bottom levels, top levels, and critical paths.

Section 4.1 of the paper defines the *bottom level* of a task as the
length of the longest path from the task to an exit node, where with
heterogeneous processors:

* a task of weight ``w`` counts for ``p * w / sum(1/t_i)`` time units —
  ``w`` times the harmonic mean of the cycle times;
* an edge of volume ``d`` counts for ``d`` times the average link time;
* **all** communication costs are included (it is conservatively assumed
  that communications cannot be avoided by co-locating endpoints).

Bottom levels drive the priority queues of HEFT and ILHA; top levels
define the iso-level decomposition of the first ILHA variant.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Mapping

from .platform import Platform
from .taskgraph import TaskGraph

TaskId = Hashable


def averaged_weights(graph: TaskGraph, platform: Platform) -> dict[TaskId, float]:
    """Per-task execution estimate ``w(v) * harmonic_mean(t_i)``."""
    factor = platform.average_cycle_time()
    return {v: graph.weight(v) * factor for v in graph.tasks()}


def averaged_comms(graph: TaskGraph, platform: Platform) -> dict[tuple[TaskId, TaskId], float]:
    """Per-edge communication estimate ``data(u,v) * average_link``."""
    factor = platform.average_link_time()
    return {(u, v): graph.data(u, v) * factor for u, v in graph.edges()}


def bottom_levels_from(
    graph: TaskGraph,
    node_cost: Mapping[TaskId, float],
    edge_cost: Mapping[tuple[TaskId, TaskId], float],
) -> dict[TaskId, float]:
    """Generic bottom levels from explicit per-node / per-edge costs.

    ``bl(v) = node_cost(v) + max over successors s of
    (edge_cost(v, s) + bl(s))``, with the max taken as 0 for exit tasks.
    Computed in one reverse topological sweep — O(V + E).
    """
    bl: dict[TaskId, float] = {}
    for v in reversed(graph.topological_order()):
        succs = graph.successors(v)
        tail = max((edge_cost[(v, s)] + bl[s] for s in succs), default=0.0)
        bl[v] = node_cost[v] + tail
    return bl


def top_levels_from(
    graph: TaskGraph,
    node_cost: Mapping[TaskId, float],
    edge_cost: Mapping[tuple[TaskId, TaskId], float],
) -> dict[TaskId, float]:
    """Generic top levels: longest-path length *arriving at* each task.

    ``tl(v) = max over predecessors u of (tl(u) + node_cost(u) +
    edge_cost(u, v))``, 0 for entry tasks.  ``tl(v)`` is the earliest
    time ``v`` could start on an idealized platform.
    """
    tl: dict[TaskId, float] = {}
    for v in graph.topological_order():
        preds = graph.predecessors(v)
        tl[v] = max((tl[u] + node_cost[u] + edge_cost[(u, v)] for u in preds), default=0.0)
    return tl


def bottom_levels(graph: TaskGraph, platform: Platform) -> dict[TaskId, float]:
    """Paper Section 4.1 bottom levels with heterogeneous averaging."""
    return bottom_levels_from(graph, averaged_weights(graph, platform), averaged_comms(graph, platform))


def top_levels(graph: TaskGraph, platform: Platform) -> dict[TaskId, float]:
    """Top levels with the same heterogeneous averaging as bottom levels."""
    return top_levels_from(graph, averaged_weights(graph, platform), averaged_comms(graph, platform))


def critical_path_length(graph: TaskGraph, platform: Platform) -> float:
    """Length of the longest path through the averaged graph.

    Equals the maximum bottom level over entry tasks (and the maximum of
    ``tl(v) + w̄(v)`` over exit tasks).
    """
    bl = bottom_levels(graph, platform)
    return max((bl[v] for v in graph.tasks()), default=0.0)


def critical_path(graph: TaskGraph, platform: Platform) -> list[TaskId]:
    """One maximal-length path, following the highest-bottom-level child.

    Used by CPOP-style heuristics; ties are broken by task insertion
    index so the path is deterministic.
    """
    if graph.num_tasks == 0:
        return []
    bl = bottom_levels(graph, platform)
    edge = averaged_comms(graph, platform)
    index = graph.task_index()
    node = max(graph.entry_tasks(), key=lambda v: (bl[v], -index[v]))
    path = [node]
    while graph.out_degree(node) > 0:
        node = max(
            graph.successors(node),
            key=lambda s: (edge[(node, s)] + bl[s], -index[s]),
        )
        path.append(node)
    return path


def priority_order(
    graph: TaskGraph,
    platform: Platform,
    key: Callable[[TaskId], tuple] | None = None,
) -> list[TaskId]:
    """All tasks sorted by decreasing bottom level (HEFT's priority list).

    The default tie-break is the task insertion index, which makes every
    heuristic built on this order deterministic.  Pass ``key`` to override
    the full sort key (used to reproduce the paper's toy example, which
    fixes a specific tie order).
    """
    if key is None:
        bl = bottom_levels(graph, platform)
        index = graph.task_index()
        key = lambda v: (-bl[v], index[v])  # noqa: E731
    return sorted(graph.tasks(), key=key)
