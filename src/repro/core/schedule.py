"""Schedules: task placements, communication events, and derived metrics.

A :class:`Schedule` is the output of every heuristic: an assignment of
each task to a processor with a start time (``sigma`` and ``alloc`` in
the paper's notation) together with the explicit communication events
that one-port heuristics book on the ports.  The class is model-agnostic;
:mod:`repro.core.validation` checks a schedule against the rules of a
specific communication model.

Metrics offered here mirror the paper's evaluation: makespan (scheduling
length), speedup versus the fastest-processor sequential time, processor
utilization, and communication statistics (ILHA's design goal is fewer
communications — Section 4.4's toy example counts them).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field
from typing import Any, NamedTuple

from .exceptions import SchedulingError
from .platform import Platform
from .taskgraph import TaskGraph

TaskId = Hashable


class TaskPlacement(NamedTuple):
    """Execution of one task: processor, start and finish time.

    A :class:`~typing.NamedTuple` rather than a frozen dataclass: replay
    and the campaign engine construct hundreds of thousands of these,
    and tuple construction skips the per-field ``object.__setattr__``
    of frozen dataclasses (~4x faster) while staying immutable.
    """

    task: TaskId
    proc: int
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


class CommEvent(NamedTuple):
    """One message transfer booked on the network.

    ``src_task -> dst_task`` is the task-graph edge served; ``src_proc ->
    dst_proc`` are the endpoints of this (possibly intermediate) hop.  For
    directly-connected platforms there is one event per remote edge with
    ``hop == 0``; the routing model emits one event per hop.
    """

    src_task: TaskId
    dst_task: TaskId
    src_proc: int
    dst_proc: int
    start: float
    finish: float
    data: float
    hop: int = 0

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class Schedule:
    """A complete mapping + timing of a task graph onto a platform."""

    graph: TaskGraph
    platform: Platform
    model: str = "macro-dataflow"
    heuristic: str = ""
    placements: dict[TaskId, TaskPlacement] = field(default_factory=dict)
    comm_events: list[CommEvent] = field(default_factory=list)
    #: Which scheduler-state implementation produced this schedule
    #: ("flat-python", "flat-numpy", "object"; "" when hand-built) —
    #: surfaced so cross-backend comparisons can't silently compare
    #: different code paths.
    state_impl: str = ""

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def place(self, task: TaskId, proc: int, start: float, finish: float) -> TaskPlacement:
        """Record the execution of ``task``; each task placed exactly once."""
        if task in self.placements:
            raise SchedulingError(f"task {task!r} placed twice")
        if task not in self.graph:
            raise SchedulingError(f"task {task!r} is not in the graph")
        placement = TaskPlacement(task, proc, start, finish)
        self.placements[task] = placement
        return placement

    def record_comm(
        self,
        src_task: TaskId,
        dst_task: TaskId,
        src_proc: int,
        dst_proc: int,
        start: float,
        duration: float,
        data: float,
        hop: int = 0,
    ) -> CommEvent:
        event = CommEvent(
            src_task, dst_task, src_proc, dst_proc, start, start + duration, data, hop
        )
        self.comm_events.append(event)
        return event

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def proc_of(self, task: TaskId) -> int:
        """``alloc(task)`` — the processor executing ``task``."""
        return self.placements[task].proc

    def start_of(self, task: TaskId) -> float:
        """``sigma(task)`` — the start time of ``task``."""
        return self.placements[task].start

    def finish_of(self, task: TaskId) -> float:
        return self.placements[task].finish

    def is_complete(self) -> bool:
        """Whether every task of the graph has been placed."""
        return len(self.placements) == self.graph.num_tasks

    def tasks_on(self, proc: int) -> list[TaskPlacement]:
        """Placements on ``proc`` sorted by start time."""
        out = [p for p in self.placements.values() if p.proc == proc]
        out.sort(key=lambda p: (p.start, p.finish))
        return out

    def comms_between(self, edge: tuple[TaskId, TaskId]) -> list[CommEvent]:
        """All hops serving task-graph edge ``edge`` in hop order."""
        src, dst = edge
        events = [e for e in self.comm_events if e.src_task == src and e.dst_task == dst]
        events.sort(key=lambda e: e.hop)
        return events

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def makespan(self) -> float:
        """Scheduling length: ``max(sigma(v) + w(v) * t_alloc(v))``."""
        if not self.placements:
            return 0.0
        return max(p.finish for p in self.placements.values())

    def sequential_time(self) -> float:
        """Reference time on one fastest processor (paper Section 5.2)."""
        return self.platform.sequential_time(self.graph.total_weight())

    def speedup(self) -> float:
        """``sequential_time / makespan`` — the paper's reported ratio."""
        ms = self.makespan()
        if ms == 0.0:
            return float("inf")
        return self.sequential_time() / ms

    def num_comms(self) -> int:
        """Number of remote messages booked (hop events counted once each)."""
        return len(self.comm_events)

    def total_comm_time(self) -> float:
        return sum(e.duration for e in self.comm_events)

    def proc_busy_time(self, proc: int) -> float:
        return sum(p.duration for p in self.placements.values() if p.proc == proc)

    def utilization(self) -> float:
        """Average fraction of the makespan each processor spends computing."""
        ms = self.makespan()
        if ms == 0.0:
            return 1.0
        p = self.platform.num_processors
        busy = sum(pl.duration for pl in self.placements.values())
        return busy / (p * ms)

    def processors_used(self) -> set[int]:
        return {p.proc for p in self.placements.values()}

    def summary(self) -> dict[str, Any]:
        """Headline metrics as a plain dict (used by the harness/report)."""
        return {
            "heuristic": self.heuristic,
            "model": self.model,
            "tasks": self.graph.num_tasks,
            "processors": self.platform.num_processors,
            "makespan": self.makespan(),
            "speedup": self.speedup(),
            "num_comms": self.num_comms(),
            "total_comm_time": self.total_comm_time(),
            "utilization": self.utilization(),
            "state_impl": self.state_impl,
        }

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def gantt(self, width: int = 78, labels: bool = True) -> str:
        """ASCII Gantt chart of compute rows (one per processor).

        Each processor row shows task executions scaled to ``width``
        columns; communication rows (``q->r``) are added when the schedule
        has comm events.  Intended for examples and debugging, not parsing.
        """
        ms = self.makespan()
        if ms <= 0:
            return "(empty schedule)"
        scale = width / ms

        def bar(segments: Iterable[tuple[float, float, str]]) -> str:
            row = [" "] * width
            for s, e, label in segments:
                lo = min(width - 1, int(s * scale))
                hi = min(width, max(lo + 1, int(e * scale)))
                for i in range(lo, hi):
                    row[i] = "#"
                if labels and label:
                    text = label[: hi - lo]
                    for i, ch in enumerate(text):
                        row[lo + i] = ch
            return "".join(row)

        lines = [f"makespan = {ms:g}"]
        for proc in self.platform.processors:
            segs = [(p.start, p.finish, str(p.task)) for p in self.tasks_on(proc)]
            lines.append(f"P{proc:<3}|{bar(segs)}|")
        pairs = sorted({(e.src_proc, e.dst_proc) for e in self.comm_events})
        for q, r in pairs:
            segs = [
                (e.start, e.finish, str(e.dst_task))
                for e in self.comm_events
                if e.src_proc == q and e.dst_proc == r
            ]
            lines.append(f"{q}->{r:<2}|{bar(segs)}|")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule(heuristic={self.heuristic!r}, model={self.model!r}, "
            f"tasks={len(self.placements)}/{self.graph.num_tasks}, "
            f"makespan={self.makespan():g})"
        )
