"""Schedule persistence: JSON-compatible round-trips.

Schedules carry non-JSON task ids (tuples, arbitrary hashables), so the
format stores ``repr`` strings and resolves them against the graph's
tasks on load — a schedule is always deserialized *against* the graph
and platform it was computed for, which also re-validates the pairing.
"""

from __future__ import annotations

import json
from collections.abc import Hashable
from pathlib import Path

from .exceptions import SchedulingError
from .platform import Platform
from .schedule import Schedule
from .taskgraph import TaskGraph

TaskId = Hashable


def schedule_to_dict(schedule: Schedule) -> dict:
    """JSON-compatible dict of a schedule's decisions and times."""
    return {
        "heuristic": schedule.heuristic,
        "model": schedule.model,
        "placements": [
            {
                "task": repr(p.task),
                "proc": p.proc,
                "start": p.start,
                "finish": p.finish,
            }
            for p in schedule.placements.values()
        ],
        "comm_events": [
            {
                "src_task": repr(e.src_task),
                "dst_task": repr(e.dst_task),
                "src_proc": e.src_proc,
                "dst_proc": e.dst_proc,
                "start": e.start,
                "finish": e.finish,
                "data": e.data,
                "hop": e.hop,
            }
            for e in schedule.comm_events
        ],
    }


def schedule_from_dict(
    payload: dict, graph: TaskGraph, platform: Platform
) -> Schedule:
    """Rebuild a schedule against its graph and platform.

    Task references are matched by ``repr``; unknown or ambiguous
    references raise :class:`~repro.core.exceptions.SchedulingError`.
    """
    by_repr: dict[str, TaskId] = {}
    for task in graph.tasks():
        key = repr(task)
        if key in by_repr:
            raise SchedulingError(f"ambiguous task repr {key!r} in graph")
        by_repr[key] = task

    def resolve(key: str) -> TaskId:
        try:
            return by_repr[key]
        except KeyError:
            raise SchedulingError(f"schedule references unknown task {key!r}") from None

    schedule = Schedule(
        graph,
        platform,
        model=payload.get("model", "one-port"),
        heuristic=payload.get("heuristic", ""),
    )
    for row in payload["placements"]:
        schedule.place(resolve(row["task"]), row["proc"], row["start"], row["finish"])
    for row in payload["comm_events"]:
        schedule.record_comm(
            resolve(row["src_task"]),
            resolve(row["dst_task"]),
            row["src_proc"],
            row["dst_proc"],
            row["start"],
            row["finish"] - row["start"],
            row["data"],
            row.get("hop", 0),
        )
    return schedule


def save_schedule(schedule: Schedule, path: str | Path) -> Path:
    """Write a schedule as JSON."""
    path = Path(path)
    path.write_text(json.dumps(schedule_to_dict(schedule), indent=2))
    return path


def load_schedule(path: str | Path, graph: TaskGraph, platform: Platform) -> Schedule:
    """Read a schedule written by :func:`save_schedule`."""
    return schedule_from_dict(json.loads(Path(path).read_text()), graph, platform)
