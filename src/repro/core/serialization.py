"""Persistence: JSON-compatible round-trips and stable content digests.

Schedules carry non-JSON task ids (tuples, arbitrary hashables), so the
format stores ``repr`` strings and resolves them against the graph's
tasks on load — a schedule is always deserialized *against* the graph
and platform it was computed for, which also re-validates the pairing.

The module also provides the canonical-JSON machinery the campaign
engine builds its content-addressed cell keys on:

* :func:`canonical_json` — deterministic JSON text (sorted keys, no
  whitespace, tuples collapsed to lists);
* :func:`stable_digest` — SHA-256 of the canonical JSON, stable across
  processes and Python invocations (unlike ``hash()``);
* :func:`graph_to_dict` / :func:`graph_from_dict` and
  :func:`platform_to_dict` / :func:`platform_from_dict` — full-content
  round trips so a campaign cell can be reconstructed anywhere.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections.abc import Hashable
from pathlib import Path

from .exceptions import SchedulingError
from .platform import Platform
from .schedule import Schedule
from .taskgraph import TaskGraph

TaskId = Hashable


# ----------------------------------------------------------------------
# canonical JSON and content digests
# ----------------------------------------------------------------------
def canonical_json(payload) -> str:
    """Deterministic JSON text of a JSON-able payload.

    Keys are sorted and separators fixed so two structurally equal
    payloads always serialize to the same bytes; tuples become lists
    (``json`` does this natively) so dataclass ``astuple``-style
    payloads hash identically to their list forms.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def stable_digest(payload) -> str:
    """Hex SHA-256 of :func:`canonical_json` — a process-stable content key."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# graph and platform round-trips
# ----------------------------------------------------------------------
def graph_to_dict(graph: TaskGraph) -> dict:
    """Full-content dict of a task graph (tasks, weights, edges, volumes).

    Task ids are stored as ``repr`` strings, matching the schedule
    format; :func:`graph_from_dict` rebuilds string/int/tuple ids via
    ``ast.literal_eval``.  Rows are emitted in topological-insertion
    order so the output is deterministic for a deterministically built
    graph.
    """
    return {
        "name": graph.name,
        "tasks": [[repr(v), graph.weight(v)] for v in graph.tasks()],
        "edges": [[repr(u), repr(v), graph.data(u, v)] for u, v in graph.edges()],
    }


def graph_from_dict(payload: dict) -> TaskGraph:
    """Rebuild a graph written by :func:`graph_to_dict`."""
    from ast import literal_eval

    g = TaskGraph(name=payload.get("name", "taskgraph"))
    for key, weight in payload["tasks"]:
        g.add_task(literal_eval(key), weight)
    for src, dst, data in payload["edges"]:
        g.add_dependency(literal_eval(src), literal_eval(dst), data)
    return g


def platform_to_dict(platform: Platform) -> dict:
    """Full-content dict of a platform (cycle times + link matrix).

    A fully homogeneous network is collapsed to its scalar link cost;
    otherwise the full matrix is stored (``inf`` entries as the string
    ``"inf"`` since JSON has no infinity).
    """
    mat = platform.link_matrix
    off = [
        mat[q][r]
        for q in platform.processors
        for r in platform.processors
        if q != r
    ]
    if off and all(x == off[0] and math.isfinite(x) for x in off):
        link = float(off[0])
    elif not off:
        link = 1.0
    else:
        link = [
            [("inf" if not math.isfinite(x) else float(x)) for x in row]
            for row in mat.tolist()
        ]
    return {"cycle_times": list(platform.cycle_times), "link": link}


def platform_from_dict(payload: dict) -> Platform:
    """Rebuild a platform written by :func:`platform_to_dict`."""
    link = payload.get("link", 1.0)
    if isinstance(link, list):
        link = [[math.inf if x == "inf" else float(x) for x in row] for row in link]
    return Platform(payload["cycle_times"], link)


def schedule_to_dict(schedule: Schedule) -> dict:
    """JSON-compatible dict of a schedule's decisions and times."""
    return {
        "heuristic": schedule.heuristic,
        "model": schedule.model,
        "placements": [
            {
                "task": repr(p.task),
                "proc": p.proc,
                "start": p.start,
                "finish": p.finish,
            }
            for p in schedule.placements.values()
        ],
        "comm_events": [
            {
                "src_task": repr(e.src_task),
                "dst_task": repr(e.dst_task),
                "src_proc": e.src_proc,
                "dst_proc": e.dst_proc,
                "start": e.start,
                "finish": e.finish,
                "data": e.data,
                "hop": e.hop,
            }
            for e in schedule.comm_events
        ],
    }


def schedule_from_dict(
    payload: dict, graph: TaskGraph, platform: Platform
) -> Schedule:
    """Rebuild a schedule against its graph and platform.

    Task references are matched by ``repr``; unknown or ambiguous
    references raise :class:`~repro.core.exceptions.SchedulingError`.
    """
    by_repr: dict[str, TaskId] = {}
    for task in graph.tasks():
        key = repr(task)
        if key in by_repr:
            raise SchedulingError(f"ambiguous task repr {key!r} in graph")
        by_repr[key] = task

    def resolve(key: str) -> TaskId:
        try:
            return by_repr[key]
        except KeyError:
            raise SchedulingError(f"schedule references unknown task {key!r}") from None

    schedule = Schedule(
        graph,
        platform,
        model=payload.get("model", "one-port"),
        heuristic=payload.get("heuristic", ""),
    )
    for row in payload["placements"]:
        schedule.place(resolve(row["task"]), row["proc"], row["start"], row["finish"])
    for row in payload["comm_events"]:
        schedule.record_comm(
            resolve(row["src_task"]),
            resolve(row["dst_task"]),
            row["src_proc"],
            row["dst_proc"],
            row["start"],
            row["finish"] - row["start"],
            row["data"],
            row.get("hop", 0),
        )
    return schedule


def save_schedule(schedule: Schedule, path: str | Path) -> Path:
    """Write a schedule as JSON."""
    path = Path(path)
    path.write_text(json.dumps(schedule_to_dict(schedule), indent=2))
    return path


def load_schedule(path: str | Path, graph: TaskGraph, platform: Platform) -> Schedule:
    """Read a schedule written by :func:`save_schedule`."""
    return schedule_from_dict(json.loads(Path(path).read_text()), graph, platform)
