"""Directed acyclic task graphs with computation and communication costs.

This module implements the application model of the paper (Section 2.1):
a directed vertex-weighted edge-weighted acyclic graph ``G = (V, E, w, c)``
where ``w(v)`` is the number of computation cycles of task ``v`` and
``data(u, v)`` is the number of data items sent from ``u`` to ``v`` once
``u`` completes.

The class wraps :class:`networkx.DiGraph` so users can interoperate with
the networkx ecosystem (drawing, graph algorithms) while the scheduling
code gets a stable, validated interface with cached traversal orders.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any, NamedTuple

import networkx as nx

from .exceptions import GraphError

#: Node attribute storing the computation cost of a task.
WEIGHT_KEY = "weight"
#: Edge attribute storing the communication volume of a dependence.
DATA_KEY = "data"

TaskId = Hashable


class GraphMaps(NamedTuple):
    """Plain-dict snapshot of a task graph for tight scheduling loops.

    Heuristics iterate over parents/children of thousands of tasks;
    going through networkx attribute dictionaries each time dominates
    the profile, so :meth:`TaskGraph.as_maps` exposes the graph as flat
    dictionaries built once (and invalidated on mutation).
    """

    weight: dict[TaskId, float]
    data: dict[tuple[TaskId, TaskId], float]
    preds: dict[TaskId, tuple[TaskId, ...]]
    succs: dict[TaskId, tuple[TaskId, ...]]
    index: dict[TaskId, int]


class TaskGraph:
    """A weighted DAG of tasks.

    Parameters
    ----------
    graph:
        Optional existing :class:`networkx.DiGraph` whose nodes carry a
        ``weight`` attribute and whose edges carry a ``data`` attribute.
        The graph is copied, validated, and frozen inside this wrapper.
    name:
        Optional human-readable name (testbed generators set this).

    Notes
    -----
    * Task identifiers may be any hashable object; generators in
      :mod:`repro.graphs` use strings or tuples.
    * Weights must be non-negative finite numbers.  Zero-weight tasks are
      allowed — the COMM-SCHED reduction of the paper's appendix uses them.
    * The graph must be acyclic; this is checked once at construction.
    """

    __slots__ = ("_g", "_name", "_topo", "_index", "_maps", "_kernel_cache")

    def __init__(self, graph: nx.DiGraph | None = None, name: str = "taskgraph"):
        self._g = nx.DiGraph()
        self._name = name
        self._topo: tuple[TaskId, ...] | None = None
        self._index: dict[TaskId, int] | None = None
        self._maps: GraphMaps | None = None
        #: Per-platform :class:`repro.kernel.KernelStatics` cache, owned
        #: by :func:`repro.kernel.compile_statics`; cleared on mutation.
        self._kernel_cache: dict | None = None
        if graph is not None:
            for node, attrs in graph.nodes(data=True):
                self.add_task(node, attrs.get(WEIGHT_KEY, 1.0))
            for u, v, attrs in graph.edges(data=True):
                self.add_dependency(u, v, attrs.get(DATA_KEY, 0.0))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: TaskId, weight: float = 1.0) -> TaskId:
        """Add a task with computation cost ``weight``; returns the id."""
        weight = float(weight)
        if weight < 0 or weight != weight or weight == float("inf"):
            raise GraphError(f"task {task!r}: weight must be finite and >= 0, got {weight}")
        if task in self._g:
            raise GraphError(f"duplicate task id {task!r}")
        self._g.add_node(task, **{WEIGHT_KEY: weight})
        self._invalidate()
        return task

    def add_dependency(self, src: TaskId, dst: TaskId, data: float = 0.0) -> None:
        """Add a precedence edge ``src -> dst`` carrying ``data`` items."""
        data = float(data)
        if data < 0 or data != data or data == float("inf"):
            raise GraphError(f"edge {src!r}->{dst!r}: data must be finite and >= 0, got {data}")
        for node in (src, dst):
            if node not in self._g:
                raise GraphError(f"unknown task {node!r} in edge {src!r}->{dst!r}")
        if src == dst:
            raise GraphError(f"self-loop on task {src!r}")
        if self._g.has_edge(src, dst):
            raise GraphError(f"duplicate edge {src!r}->{dst!r}")
        self._g.add_edge(src, dst, **{DATA_KEY: data})
        self._invalidate()

    def set_weight(self, task: TaskId, weight: float) -> None:
        """Replace the computation cost of ``task``."""
        if task not in self._g:
            raise GraphError(f"unknown task {task!r}")
        if weight < 0:
            raise GraphError(f"task {task!r}: weight must be >= 0, got {weight}")
        self._g.nodes[task][WEIGHT_KEY] = float(weight)
        self._invalidate()

    def set_data(self, src: TaskId, dst: TaskId, data: float) -> None:
        """Replace the communication volume of edge ``src -> dst``."""
        if not self._g.has_edge(src, dst):
            raise GraphError(f"unknown edge {src!r}->{dst!r}")
        if data < 0:
            raise GraphError(f"edge {src!r}->{dst!r}: data must be >= 0, got {data}")
        self._g.edges[src, dst][DATA_KEY] = float(data)
        self._invalidate()

    def scale_data(self, factor: float) -> "TaskGraph":
        """Multiply every edge's data volume by ``factor`` (in place)."""
        if factor < 0:
            raise GraphError(f"scale factor must be >= 0, got {factor}")
        for u, v in self._g.edges:
            self._g.edges[u, v][DATA_KEY] *= factor
        self._invalidate()
        return self

    def _invalidate(self) -> None:
        self._topo = None
        self._index = None
        self._maps = None
        self._kernel_cache = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def num_tasks(self) -> int:
        return self._g.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._g.number_of_edges()

    def __len__(self) -> int:
        return self._g.number_of_nodes()

    def __contains__(self, task: TaskId) -> bool:
        return task in self._g

    def __iter__(self) -> Iterator[TaskId]:
        return iter(self._g.nodes)

    def tasks(self) -> Iterator[TaskId]:
        """Iterate over task identifiers (insertion order)."""
        return iter(self._g.nodes)

    def edges(self) -> Iterator[tuple[TaskId, TaskId]]:
        """Iterate over dependence edges."""
        return iter(self._g.edges)

    def weight(self, task: TaskId) -> float:
        """Computation cost ``w(task)``."""
        try:
            return self._g.nodes[task][WEIGHT_KEY]
        except KeyError:
            raise GraphError(f"unknown task {task!r}") from None

    def data(self, src: TaskId, dst: TaskId) -> float:
        """Communication volume ``data(src, dst)``."""
        try:
            return self._g.edges[src, dst][DATA_KEY]
        except KeyError:
            raise GraphError(f"unknown edge {src!r}->{dst!r}") from None

    def has_edge(self, src: TaskId, dst: TaskId) -> bool:
        return self._g.has_edge(src, dst)

    def predecessors(self, task: TaskId) -> list[TaskId]:
        """Immediate predecessors (parents) of ``task``."""
        if task not in self._g:
            raise GraphError(f"unknown task {task!r}")
        return list(self._g.predecessors(task))

    def successors(self, task: TaskId) -> list[TaskId]:
        """Immediate successors (children) of ``task``."""
        if task not in self._g:
            raise GraphError(f"unknown task {task!r}")
        return list(self._g.successors(task))

    def in_degree(self, task: TaskId) -> int:
        return self._g.in_degree(task)

    def out_degree(self, task: TaskId) -> int:
        return self._g.out_degree(task)

    def entry_tasks(self) -> list[TaskId]:
        """Tasks with no predecessor, in insertion order."""
        return [v for v in self._g.nodes if self._g.in_degree(v) == 0]

    def exit_tasks(self) -> list[TaskId]:
        """Tasks with no successor, in insertion order."""
        return [v for v in self._g.nodes if self._g.out_degree(v) == 0]

    def total_weight(self) -> float:
        """Sum of all task weights (the paper's ``W`` for the whole graph)."""
        return sum(self._g.nodes[v][WEIGHT_KEY] for v in self._g.nodes)

    def total_data(self) -> float:
        """Sum of all edge data volumes."""
        return sum(self._g.edges[e][DATA_KEY] for e in self._g.edges)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`GraphError` unless the graph is a DAG."""
        if not nx.is_directed_acyclic_graph(self._g):
            cycle = nx.find_cycle(self._g)
            raise GraphError(f"task graph contains a cycle: {cycle}")

    def topological_order(self) -> tuple[TaskId, ...]:
        """A deterministic topological order (cached).

        Uses lexicographic-by-insertion-index Kahn's algorithm so repeated
        calls — and therefore every heuristic built on top — are fully
        deterministic regardless of hash randomization.
        """
        if self._topo is None:
            order = {v: i for i, v in enumerate(self._g.nodes)}
            try:
                self._topo = tuple(
                    nx.lexicographical_topological_sort(self._g, key=order.__getitem__)
                )
            except nx.NetworkXUnfeasible:
                raise GraphError("task graph contains a cycle") from None
        return self._topo

    def task_index(self) -> Mapping[TaskId, int]:
        """Stable integer index of each task (insertion order); cached."""
        if self._index is None:
            self._index = {v: i for i, v in enumerate(self._g.nodes)}
        return self._index

    def as_maps(self) -> GraphMaps:
        """Flat-dict snapshot for tight loops (cached; see :class:`GraphMaps`)."""
        if self._maps is None:
            g = self._g
            self._maps = GraphMaps(
                weight={v: g.nodes[v][WEIGHT_KEY] for v in g.nodes},
                data={(u, v): g.edges[u, v][DATA_KEY] for u, v in g.edges},
                preds={v: tuple(g.predecessors(v)) for v in g.nodes},
                succs={v: tuple(g.successors(v)) for v in g.nodes},
                index={v: i for i, v in enumerate(g.nodes)},
            )
        return self._maps

    def levels(self) -> list[list[TaskId]]:
        """Iso-levels: groups of tasks sharing the same *depth*.

        The depth of a task is the length (in edges) of the longest path
        from any entry task.  This is the "same top-level" level
        decomposition used by the first version of ILHA (Section 4.2):
        level 0 holds the entry tasks, level ``i+1`` the tasks that become
        ready once level ``i`` completes.
        """
        depth: dict[TaskId, int] = {}
        for v in self.topological_order():
            preds = list(self._g.predecessors(v))
            depth[v] = 0 if not preds else 1 + max(depth[p] for p in preds)
        if not depth:
            return []
        buckets: list[list[TaskId]] = [[] for _ in range(max(depth.values()) + 1)]
        for v in self.topological_order():
            buckets[depth[v]].append(v)
        return buckets

    # ------------------------------------------------------------------
    # interoperability
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying :class:`networkx.DiGraph`."""
        return self._g.copy()

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible serialization (ids converted to strings)."""
        return {
            "name": self._name,
            "tasks": [{"id": repr(v), "weight": self.weight(v)} for v in self._g.nodes],
            "edges": [
                {"src": repr(u), "dst": repr(v), "data": self.data(u, v)}
                for u, v in self._g.edges
            ],
        }

    @classmethod
    def from_specs(
        cls,
        tasks: Iterable[tuple[TaskId, float]],
        edges: Iterable[tuple[TaskId, TaskId, float]],
        name: str = "taskgraph",
    ) -> "TaskGraph":
        """Build a graph from ``(id, weight)`` and ``(src, dst, data)`` specs."""
        g = cls(name=name)
        for task, weight in tasks:
            g.add_task(task, weight)
        for src, dst, data in edges:
            g.add_dependency(src, dst, data)
        g.validate()
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskGraph(name={self._name!r}, tasks={self.num_tasks}, "
            f"edges={self.num_edges}, total_weight={self.total_weight():g})"
        )
