"""Resource timelines: sorted busy intervals with earliest-gap search.

A :class:`Timeline` records the busy intervals ``[start, end)`` of one
exclusive resource — a processor's compute unit, a send port, or a
receive port.  The two operations every scheduling heuristic needs are:

* :meth:`Timeline.next_fit` — the earliest time ``>= ready`` at which a
  window of a given duration is entirely free (insertion scheduling);
* :meth:`Timeline.reserve` — book a window, failing loudly on overlap.

:class:`TimelineOverlay` layers *tentative* reservations over a base
timeline without mutating it.  Heuristics use overlays to evaluate a
candidate processor (which may involve several interacting communication
reservations) and either discard the overlay or :meth:`~TimelineOverlay.commit`
it.  :func:`earliest_joint_fit` finds the earliest window simultaneously
free on several timelines — the primitive behind the one-port rule, where
a transfer must fit the sender's send port *and* the receiver's receive
port at the same instant.

Implementation notes
--------------------
Intervals are kept in parallel sorted lists (starts / ends / tags) and
searched with :mod:`bisect`, so ``next_fit`` is ``O(log n + k)`` where
``k`` is the number of intervals skipped, and ``reserve`` is ``O(n)`` in
the worst case (list insert) but ``O(1)`` amortized for the common
append-at-end pattern of list scheduling.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections.abc import Iterable, Sequence
from typing import Any

from .exceptions import TimelineError
from .tolerance import guard_tol

# Overlap slack comes from repro.core.tolerance: every reserve check
# calls guard_tol() — 1e-9 at magnitude <= 1 (the historical epsilon),
# 1e-9 *relative* above, so exact float chains never trip it at any
# scale while genuine double-booking still fails loudly.


class Timeline:
    """Busy intervals of one exclusive resource."""

    __slots__ = ("_starts", "_ends", "_tags")

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._ends: list[float] = []
        self._tags: list[Any] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._starts)

    def is_empty(self) -> bool:
        return not self._starts

    def last_end(self) -> float:
        """End of the latest reservation (0.0 when empty)."""
        return self._ends[-1] if self._ends else 0.0

    def intervals(self) -> list[tuple[float, float, Any]]:
        """All reservations as ``(start, end, tag)``, sorted by start."""
        return list(zip(self._starts, self._ends, self._tags))

    def busy_time(self) -> float:
        """Total reserved duration."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def is_free(self, start: float, end: float) -> bool:
        """Whether ``[start, end)`` overlaps no reservation."""
        if end < start:
            raise TimelineError(f"invalid window [{start}, {end})")
        return self.next_fit(start, end - start) <= start

    # ------------------------------------------------------------------
    # gap search
    # ------------------------------------------------------------------
    def next_fit(self, ready: float, duration: float) -> float:
        """Earliest ``t >= ready`` such that ``[t, t + duration)`` is free.

        Zero-length windows conflict with nothing (the COMM-SCHED
        reduction schedules zero-weight tasks), so ``duration == 0``
        returns ``ready`` unchanged.
        """
        if duration < 0:
            raise TimelineError(f"duration must be >= 0, got {duration}")
        if duration == 0:
            return ready
        t = ready
        starts = self._starts
        ends = self._ends
        i = bisect_right(starts, t) - 1
        if i >= 0 and ends[i] > t:
            t = ends[i]
        i += 1
        n = len(starts)
        while i < n and starts[i] < t + duration:
            if ends[i] > t:
                t = ends[i]
            i += 1
        return t

    def next_after_last(self, ready: float) -> float:
        """Earliest start with *no insertion*: after every reservation."""
        return max(ready, self.last_end())

    def gaps(self, horizon: float) -> list[tuple[float, float]]:
        """Free intervals within ``[0, horizon)``."""
        out: list[tuple[float, float]] = []
        t = 0.0
        for s, e in zip(self._starts, self._ends):
            if s >= horizon:
                break
            if s > t:
                out.append((t, min(s, horizon)))
            t = max(t, e)
        if t < horizon:
            out.append((t, horizon))
        return out

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def reserve(self, start: float, end: float, tag: Any = None) -> None:
        """Book ``[start, end)``; raises :class:`TimelineError` on overlap.

        Zero-length reservations conflict with nothing and are not
        stored (storing them would break the disjoint-sorted invariant
        the gap search relies on).
        """
        if end < start:
            raise TimelineError(f"invalid reservation [{start}, {end})")
        if start != start or end != end:  # NaN guard
            raise TimelineError(f"NaN reservation endpoints [{start}, {end})")
        if end == start:
            return
        pos = bisect_right(self._starts, start)
        if pos > 0 and self._ends[pos - 1] > start + guard_tol(start, self._ends[pos - 1]):
            prev = (self._starts[pos - 1], self._ends[pos - 1], self._tags[pos - 1])
            raise TimelineError(
                f"reservation [{start}, {end}) tag={tag!r} overlaps {prev}"
            )
        if pos < len(self._starts) and self._starts[pos] < end - guard_tol(end, self._starts[pos]):
            nxt = (self._starts[pos], self._ends[pos], self._tags[pos])
            raise TimelineError(
                f"reservation [{start}, {end}) tag={tag!r} overlaps {nxt}"
            )
        self._starts.insert(pos, start)
        self._ends.insert(pos, end)
        self._tags.insert(pos, tag)

    def copy(self) -> "Timeline":
        dup = Timeline()
        dup._starts = list(self._starts)
        dup._ends = list(self._ends)
        dup._tags = list(self._tags)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeline({len(self._starts)} intervals, last_end={self.last_end():g})"


class TimelineOverlay:
    """Tentative reservations layered over a base :class:`Timeline`.

    The overlay answers :meth:`next_fit` against the union of the base's
    intervals and the locally added ones, but only mutates its own local
    store.  Call :meth:`commit` to replay the local reservations onto the
    base (after the heuristic picks this candidate) or simply drop the
    overlay to discard them.
    """

    __slots__ = ("_base", "_starts", "_ends", "_tags")

    def __init__(self, base: Timeline) -> None:
        self._base = base
        self._starts: list[float] = []
        self._ends: list[float] = []
        self._tags: list[Any] = []

    @property
    def base(self) -> Timeline:
        return self._base

    def added(self) -> list[tuple[float, float, Any]]:
        """Locally added reservations (sorted by start)."""
        return list(zip(self._starts, self._ends, self._tags))

    def _local_next_fit(self, ready: float, duration: float) -> float:
        if duration == 0:
            return ready
        t = ready
        starts = self._starts
        ends = self._ends
        i = bisect_right(starts, t) - 1
        if i >= 0 and ends[i] > t:
            t = ends[i]
        i += 1
        n = len(starts)
        while i < n and starts[i] < t + duration:
            if ends[i] > t:
                t = ends[i]
            i += 1
        return t

    def next_fit(self, ready: float, duration: float) -> float:
        """Earliest window free in *both* the base and the local layer."""
        if duration < 0:
            raise TimelineError(f"duration must be >= 0, got {duration}")
        if duration == 0:
            return ready
        t = ready
        while True:
            t1 = self._base.next_fit(t, duration)
            t2 = self._local_next_fit(t1, duration)
            if t2 == t1:
                return t1
            t = t2

    def next_after_last(self, ready: float) -> float:
        last_local = self._ends[-1] if self._ends else 0.0
        return max(ready, self._base.last_end(), last_local)

    def last_end(self) -> float:
        return max(self._base.last_end(), self._ends[-1] if self._ends else 0.0)

    def reserve(self, start: float, end: float, tag: Any = None) -> None:
        """Book ``[start, end)`` locally; checks both layers for overlap."""
        if end < start:
            raise TimelineError(f"invalid reservation [{start}, {end})")
        if start != start or end != end:  # NaN guard
            raise TimelineError(f"NaN reservation endpoints [{start}, {end})")
        if end == start:
            return
        if self._base.next_fit(start, end - start) > start + guard_tol(start, end):
            raise TimelineError(
                f"tentative reservation [{start}, {end}) tag={tag!r} "
                f"overlaps the base timeline"
            )
        if self._local_next_fit(start, end - start) > start + guard_tol(start, end):
            raise TimelineError(
                f"tentative reservation [{start}, {end}) tag={tag!r} "
                f"overlaps a tentative interval"
            )
        pos = bisect_right(self._starts, start)
        self._starts.insert(pos, start)
        self._ends.insert(pos, end)
        self._tags.insert(pos, tag)

    def commit(self) -> None:
        """Replay every local reservation onto the base timeline."""
        for s, e, tag in zip(self._starts, self._ends, self._tags):
            self._base.reserve(s, e, tag)
        self._starts.clear()
        self._ends.clear()
        self._tags.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimelineOverlay({len(self._starts)} tentative over {self._base!r})"


def earliest_joint_fit(
    views: Sequence[Timeline | TimelineOverlay], ready: float, duration: float
) -> float:
    """Earliest ``t >= ready`` with ``[t, t + duration)`` free on *all* views.

    Alternates ``next_fit`` across the views until a fixed point: each
    call only moves ``t`` forward, and past the last reservation of every
    view any ``t`` fits, so the loop terminates.  This is the one-port
    primitive: a message from ``q`` to ``r`` needs a window free on
    ``q``'s send port and ``r``'s receive port simultaneously.
    """
    if not views:
        raise TimelineError("earliest_joint_fit needs at least one view")
    t = ready
    while True:
        moved = False
        for view in views:
            t2 = view.next_fit(t, duration)
            if t2 != t:
                t = t2
                moved = True
        if not moved:
            return t


def merge_busy(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge possibly-touching intervals into maximal disjoint ones."""
    items = sorted(intervals)
    out: list[tuple[float, float]] = []
    for s, e in items:
        if out and s <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], e))
        else:
            out.append((s, e))
    return out
