"""The shared floating-point tolerance for time comparisons.

Every layer that compares chained time values — schedule validators,
timeline overlap guards, replay cross-checks — used to carry its own
absolute epsilon (1e-6 here, 1e-9 there).  Absolute epsilons break in
both directions: on long transfer chains at large magnitude one ULP
exceeds them (the ULP of 1e10 is ~2e-6), so exact-but-reassociated
arithmetic was spuriously rejected, while at tiny magnitudes they are
needlessly loose.

This module is the single source of truth: :data:`TIME_EPS` is the
shared epsilon, and :func:`time_tol` scales it by the magnitude of the
values being compared, so a comparison tolerates ``TIME_EPS`` relative
error but never less than ``TIME_EPS`` absolute.  Use it as::

    if a > b + time_tol(a, b):   # "a is genuinely after b"
        ...
"""

from __future__ import annotations

#: Shared epsilon for float time comparisons: values within
#: ``TIME_EPS * max(1, magnitude)`` of each other are "the same time".
TIME_EPS = 1e-6

#: Tightening factor for *internal-consistency* guards (timeline
#: overlap checks): reservations chain exact float values, so these
#: only need ULP-proportional slack — three orders tighter than the
#: validator epsilon, restoring the historical 1e-9 floor.
GUARD_FACTOR = 1e-3


def time_tol(*values: float) -> float:
    """Comparison tolerance at the magnitude of ``values``.

    ``TIME_EPS`` times the largest absolute value involved, floored at
    ``TIME_EPS`` itself so comparisons near zero keep the historical
    absolute behavior.

    Pick the operands by what is being compared: a duration check
    scales by the durations, not by the absolute times they were
    derived from — otherwise the tolerance inflates with the makespan
    and stops rejecting genuine errors.
    """
    scale = 1.0
    for v in values:
        a = v if v >= 0.0 else -v
        if a > scale:
            scale = a
    return TIME_EPS * scale


def guard_tol(*values: float) -> float:
    """Scale-aware tolerance for internal overlap guards.

    ``GUARD_FACTOR`` times :func:`time_tol`: 1e-9 at magnitude <= 1
    (the historical timeline epsilon) and 1e-9 *relative* above, which
    absorbs ULP noise at any magnitude without masking real
    double-booking bugs the way a validator-sized epsilon would.
    """
    return GUARD_FACTOR * time_tol(*values)
