"""Independent schedule checkers for the macro-dataflow and one-port models.

These validators re-derive every scheduling rule of Section 2 from the
raw placement/event data, sharing no code with the heuristics, so a bug
in a heuristic cannot hide inside its own bookkeeping.  All checks raise
:class:`~repro.core.exceptions.ValidationError` with a precise message.

Checked rules
-------------
* completeness — every task placed exactly once, on a valid processor;
* duration — ``finish - start == w(v) * t_alloc(v)``;
* exclusivity — a processor executes at most one task at a time;
* precedence — ``sigma(u) + w(u) t_q + comm <= sigma(v)`` for every edge;
* communication events — each remote edge is served by a hop chain with
  correct endpoints, durations ``data * link``, and ordering;
* one-port — on each processor, send events are pairwise disjoint and
  receive events are pairwise disjoint (Section 2.3's rule).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable

from .exceptions import ValidationError
from .schedule import CommEvent, Schedule
from .tolerance import time_tol

TaskId = Hashable

MACRO_DATAFLOW = "macro-dataflow"
ONE_PORT = "one-port"


def validate_completeness(schedule: Schedule) -> None:
    """Every task placed exactly once, on an existing processor, t >= 0."""
    graph, platform = schedule.graph, schedule.platform
    missing = [v for v in graph.tasks() if v not in schedule.placements]
    if missing:
        raise ValidationError(f"{len(missing)} task(s) not placed, e.g. {missing[:5]!r}")
    extra = [v for v in schedule.placements if v not in graph]
    if extra:
        raise ValidationError(f"placements for unknown task(s) {extra[:5]!r}")
    for p in schedule.placements.values():
        if not (0 <= p.proc < platform.num_processors):
            raise ValidationError(f"task {p.task!r} on invalid processor {p.proc}")
        if p.start < -time_tol(p.start):
            raise ValidationError(f"task {p.task!r} starts before time 0: {p.start}")
        if p.finish < p.start - time_tol(p.start, p.finish):
            raise ValidationError(
                f"task {p.task!r} finishes ({p.finish}) before it starts ({p.start})"
            )


def validate_durations(schedule: Schedule) -> None:
    """``finish - start`` equals ``w(v) * t_alloc(v)`` for every task."""
    graph, platform = schedule.graph, schedule.platform
    for p in schedule.placements.values():
        expected = platform.exec_time(graph.weight(p.task), p.proc)
        if abs(p.duration - expected) > time_tol(p.duration, expected):
            raise ValidationError(
                f"task {p.task!r} on P{p.proc}: duration {p.duration} != "
                f"w * t = {expected}"
            )


def validate_processor_exclusivity(schedule: Schedule) -> None:
    """No two tasks overlap on the same processor."""
    for proc in schedule.platform.processors:
        placements = schedule.tasks_on(proc)
        for a, b in zip(placements, placements[1:]):
            if a.finish > b.start + time_tol(a.finish, b.start):
                raise ValidationError(
                    f"P{proc}: tasks {a.task!r} [{a.start}, {a.finish}) and "
                    f"{b.task!r} [{b.start}, {b.finish}) overlap"
                )


def _arrival_via_events(schedule: Schedule, src: TaskId, dst: TaskId) -> float:
    """Arrival time of edge data at ``alloc(dst)`` via the hop chain.

    Also validates the chain itself: endpoints, hop continuity, per-hop
    duration, and that hop ``i+1`` starts no earlier than hop ``i`` ends.
    """
    graph, platform = schedule.graph, schedule.platform
    hops = schedule.comms_between((src, dst))
    if not hops:
        raise ValidationError(f"remote edge {src!r}->{dst!r} has no communication event")
    expected_hops = list(range(len(hops)))
    if [h.hop for h in hops] != expected_hops:
        raise ValidationError(
            f"edge {src!r}->{dst!r}: hop indices {[h.hop for h in hops]} "
            f"are not consecutive from 0"
        )
    q = schedule.proc_of(src)
    r = schedule.proc_of(dst)
    data = graph.data(src, dst)
    if hops[0].src_proc != q:
        raise ValidationError(
            f"edge {src!r}->{dst!r}: first hop leaves P{hops[0].src_proc}, "
            f"but the source task runs on P{q}"
        )
    if hops[-1].dst_proc != r:
        raise ValidationError(
            f"edge {src!r}->{dst!r}: last hop reaches P{hops[-1].dst_proc}, "
            f"but the destination task runs on P{r}"
        )
    if hops[0].start < schedule.finish_of(src) - time_tol(hops[0].start, schedule.finish_of(src)):
        raise ValidationError(
            f"edge {src!r}->{dst!r}: first hop starts at {hops[0].start} "
            f"before the source finishes at {schedule.finish_of(src)}"
        )
    prev: CommEvent | None = None
    for h in hops:
        if h.src_proc == h.dst_proc:
            raise ValidationError(f"edge {src!r}->{dst!r}: hop {h.hop} is a self-transfer")
        expected = platform.comm_time(data, h.src_proc, h.dst_proc)
        if abs(h.duration - expected) > time_tol(h.duration, expected):
            raise ValidationError(
                f"edge {src!r}->{dst!r} hop {h.hop} P{h.src_proc}->P{h.dst_proc}: "
                f"duration {h.duration} != data * link = {expected}"
            )
        if abs(h.data - data) > time_tol(h.data, data):
            raise ValidationError(
                f"edge {src!r}->{dst!r} hop {h.hop}: event data {h.data} != "
                f"graph data {data}"
            )
        if prev is not None:
            if h.src_proc != prev.dst_proc:
                raise ValidationError(
                    f"edge {src!r}->{dst!r}: hop {h.hop} starts at P{h.src_proc} "
                    f"but hop {prev.hop} ended at P{prev.dst_proc}"
                )
            if h.start < prev.finish - time_tol(h.start, prev.finish):
                raise ValidationError(
                    f"edge {src!r}->{dst!r}: hop {h.hop} starts at {h.start} "
                    f"before hop {prev.hop} finishes at {prev.finish}"
                )
        prev = h
    return hops[-1].finish


def validate_precedence(schedule: Schedule, use_events: bool) -> None:
    """Every edge's constraint ``finish(u) + comm <= start(v)`` holds.

    With ``use_events`` the arrival time is taken from the recorded hop
    chain (one-port schedules must book explicit messages); otherwise the
    macro-dataflow closed form ``finish(u) + data * link(q, r)`` is used.
    """
    graph, platform = schedule.graph, schedule.platform
    for src, dst in graph.edges():
        q = schedule.proc_of(src)
        r = schedule.proc_of(dst)
        if q == r:
            arrival = schedule.finish_of(src)
            if use_events and schedule.comms_between((src, dst)):
                raise ValidationError(
                    f"edge {src!r}->{dst!r} is local to P{q} but has comm events"
                )
        elif use_events:
            arrival = _arrival_via_events(schedule, src, dst)
        else:
            arrival = schedule.finish_of(src) + platform.comm_time(graph.data(src, dst), q, r)
        if schedule.start_of(dst) < arrival - time_tol(schedule.start_of(dst), arrival):
            raise ValidationError(
                f"edge {src!r}->{dst!r}: task {dst!r} starts at "
                f"{schedule.start_of(dst)} before its data arrives at {arrival}"
            )


def validate_one_port(schedule: Schedule) -> None:
    """Send (resp. receive) events on each processor are pairwise disjoint."""
    send: dict[int, list[CommEvent]] = defaultdict(list)
    recv: dict[int, list[CommEvent]] = defaultdict(list)
    for e in schedule.comm_events:
        send[e.src_proc].append(e)
        recv[e.dst_proc].append(e)
    for direction, groups in (("send", send), ("receive", recv)):
        for proc, events in groups.items():
            events.sort(key=lambda e: (e.start, e.finish))
            for a, b in zip(events, events[1:]):
                if a.finish > b.start + time_tol(a.finish, b.start):
                    raise ValidationError(
                        f"one-port violation on P{proc} ({direction}): "
                        f"{a.src_task!r}->{a.dst_task!r} [{a.start}, {a.finish}) "
                        f"overlaps {b.src_task!r}->{b.dst_task!r} "
                        f"[{b.start}, {b.finish})"
                    )


def validate_schedule(schedule: Schedule, model: str | None = None) -> None:
    """Run every check appropriate for ``model`` (defaults to the
    schedule's own ``model`` attribute).  Raises on the first violation.
    """
    model = model or schedule.model
    validate_completeness(schedule)
    validate_durations(schedule)
    validate_processor_exclusivity(schedule)
    if model == ONE_PORT:
        validate_precedence(schedule, use_events=True)
        validate_one_port(schedule)
    elif model == MACRO_DATAFLOW:
        validate_precedence(schedule, use_events=False)
    else:
        raise ValidationError(f"unknown model {model!r}")


def is_valid(schedule: Schedule, model: str | None = None) -> bool:
    """Boolean wrapper around :func:`validate_schedule`."""
    try:
        validate_schedule(schedule, model)
    except ValidationError:
        return False
    return True
