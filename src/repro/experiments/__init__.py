"""Experiment harness reproducing the paper's evaluation (Section 5)."""

from .ablation import (
    b_sensitivity,
    baseline_comparison,
    comm_ratio_sweep,
    ilha_variant_ablation,
    insertion_ablation,
    model_comparison,
    search_budget_ablation,
)
from .config import (
    PAPER_BEST_B,
    PAPER_COMM_RATIO,
    PAPER_PERFECT_BALANCE,
    PAPER_PROCESSOR_GROUPS,
    PAPER_SPEEDUP_BOUND,
    paper_platform,
)
from .figures import FIGURES, FigureSpec, available_figures, run_figure
from .harness import CellResult, ExperimentRun, run_cell, run_sweep
from .io import read_csv, read_json, write_csv, write_json
from .online_study import format_online_study, online_policy_study
from .report import format_cells, format_comparison, format_run

__all__ = [
    "CellResult",
    "ExperimentRun",
    "FIGURES",
    "FigureSpec",
    "PAPER_BEST_B",
    "PAPER_COMM_RATIO",
    "PAPER_PERFECT_BALANCE",
    "PAPER_PROCESSOR_GROUPS",
    "PAPER_SPEEDUP_BOUND",
    "available_figures",
    "b_sensitivity",
    "baseline_comparison",
    "comm_ratio_sweep",
    "ilha_variant_ablation",
    "insertion_ablation",
    "model_comparison",
    "search_budget_ablation",
    "format_cells",
    "format_online_study",
    "online_policy_study",
    "format_comparison",
    "format_run",
    "paper_platform",
    "read_csv",
    "read_json",
    "run_cell",
    "run_figure",
    "run_sweep",
    "write_csv",
    "write_json",
]
