"""Ablation studies around the paper's design choices.

The paper leaves several knobs open — the chunk size ``B`` ("we have not
found any systematic technique to predict the optimal value"), the model
variants of Section 2.3, the Section 4.4 ILHA refinements, and the
communication-to-computation ratio ``c``.  Each function here sweeps one
knob with everything else pinned to the paper configuration, and returns
:class:`~repro.experiments.harness.CellResult` rows for the report and
the benchmark harness.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..core.platform import Platform
from ..core.taskgraph import TaskGraph
from ..heuristics import HEFT, ILHA
from ..models import (
    MacroDataflowModel,
    NoOverlapOnePortModel,
    OnePortModel,
    UniPortModel,
)
from .config import PAPER_COMM_RATIO, paper_platform
from .harness import CellResult, run_cell


def b_sensitivity(
    graph: TaskGraph,
    b_values: Sequence[int],
    platform: Platform | None = None,
    testbed: str = "",
    **ilha_kwargs,
) -> list[CellResult]:
    """ILHA speedup as a function of the chunk size ``B`` (Section 5.3)."""
    platform = platform or paper_platform()
    cells = []
    for b in b_values:
        cell, _ = run_cell(
            "ablation-b",
            testbed or graph.name,
            b,
            graph,
            ILHA(b=b, **ilha_kwargs),
            f"ilha(B={b})",
            platform,
            "one-port",
        )
        cells.append(cell)
    return cells


def ilha_variant_ablation(
    graph: TaskGraph,
    b: int,
    platform: Platform | None = None,
) -> list[CellResult]:
    """Plain ILHA vs the Section 4.4 refinements at a fixed ``B``."""
    platform = platform or paper_platform()
    variants = [
        ("plain", {}),
        ("scan", {"single_comm_scan": True}),
        ("resched", {"reschedule": True}),
        ("scan+resched", {"single_comm_scan": True, "reschedule": True}),
    ]
    cells = []
    for label, kwargs in variants:
        cell, _ = run_cell(
            "ablation-variants",
            graph.name,
            b,
            graph,
            ILHA(b=b, **kwargs),
            f"ilha-{label}",
            platform,
            "one-port",
        )
        cells.append(cell)
    return cells


def model_comparison(
    graph: TaskGraph,
    platform: Platform | None = None,
    b: int = 38,
) -> list[CellResult]:
    """HEFT and ILHA under every communication model of Section 2.

    Ordering expectation: macro-dataflow (no contention) <= bi-directional
    one-port <= {uni-directional, no-overlap} — each step adds
    constraints.  (Heuristics are greedy, so the ordering is a strong
    tendency, not a theorem; the benchmark prints the measured numbers.)
    """
    platform = platform or paper_platform()
    models = [
        ("macro-dataflow", MacroDataflowModel(platform)),
        ("one-port", OnePortModel(platform)),
        ("uni-port", UniPortModel(platform)),
        ("no-overlap", NoOverlapOnePortModel(platform)),
    ]
    cells = []
    for label, model in models:
        for hname, scheduler in (("heft", HEFT()), (f"ilha(B={b})", ILHA(b=b))):
            cell, _ = run_cell(
                "ablation-models",
                graph.name,
                0,
                graph,
                scheduler,
                f"{hname}/{label}",
                platform,
                model,
            )
            cells.append(cell)
    return cells


def comm_ratio_sweep(
    graph_factory: Callable[[float], TaskGraph],
    ratios: Sequence[float],
    platform: Platform | None = None,
    b: int = 38,
) -> list[CellResult]:
    """Speedups as the communication-to-computation ratio ``c`` varies.

    The paper fixes ``c = 10`` ("slow Ethernet"); this sweep shows the
    one-port penalty growing with ``c`` and ILHA's advantage widening —
    communication avoidance matters more when messages are expensive.
    ``graph_factory`` maps a ratio to a graph (e.g.
    ``lambda c: lu_graph(30, comm_ratio=c)``).
    """
    platform = platform or paper_platform()
    cells = []
    for ratio in ratios:
        graph = graph_factory(ratio)
        for label, scheduler in (("heft", HEFT()), (f"ilha(B={b})", ILHA(b=b))):
            cell, _ = run_cell(
                "ablation-comm-ratio",
                graph.name,
                int(ratio),
                graph,
                scheduler,
                label,
                platform,
                "one-port",
            )
            cells.append(cell)
    return cells


def insertion_ablation(
    graph: TaskGraph,
    platform: Platform | None = None,
) -> list[CellResult]:
    """Insertion-based vs append-only compute slots for HEFT.

    The paper's toy example behaves like append-only scheduling (its
    HEFT reaches makespan 6 where insertion finds 5); this ablation
    measures the difference on real testbeds.
    """
    platform = platform or paper_platform()
    cells = []
    for label, scheduler in (
        ("heft-insertion", HEFT(insertion=True)),
        ("heft-append", HEFT(insertion=False)),
    ):
        cell, _ = run_cell(
            "ablation-insertion", graph.name, 0, graph, scheduler, label, platform, "one-port"
        )
        cells.append(cell)
    return cells


def search_budget_ablation(
    graph: TaskGraph,
    budgets: Sequence[int],
    platform: Platform | None = None,
    base: str = "heft",
    base_kwargs: dict | None = None,
    seed: int = 0,
) -> list[CellResult]:
    """Makespan of ``ils(base)`` as the move-evaluation budget grows.

    Budget ``0`` is the tightened base heuristic itself, so the first
    row anchors the curve and later rows show the marginal value of
    search effort.  One row per budget, size column = budget.
    """
    from ..search import IteratedLocalSearch

    platform = platform or paper_platform()
    cells = []
    for budget in budgets:
        scheduler = IteratedLocalSearch(
            base=base, base_kwargs=base_kwargs, budget=budget, seed=seed
        )
        label = IteratedLocalSearch.format_label(
            base, base_kwargs, budget=budget, seed=seed
        )
        cell, _ = run_cell(
            "ablation-search-budget",
            graph.name,
            budget,
            graph,
            scheduler,
            label,
            platform,
            "one-port",
        )
        cells.append(cell)
    return cells


def baseline_comparison(
    graph: TaskGraph,
    platform: Platform | None = None,
    model: str = "one-port",
    b: int = 38,
) -> list[CellResult]:
    """The paper's prior-work comparison ([3]) re-run under any model.

    PCT, BIL, CPOP, GDL, HEFT and ILHA — the paper's earlier study did
    this under macro-dataflow and found HEFT/ILHA best; running it under
    the one-port model (which none of the baselines were designed for)
    shows how each degrades under serialized communications.
    """
    from ..heuristics import BIL, CPOP, GDL, PCT, MinMin

    platform = platform or paper_platform()
    schedulers = [
        ("pct", PCT()),
        ("bil", BIL()),
        ("cpop", CPOP()),
        ("gdl", GDL()),
        ("min-min", MinMin()),
        ("heft", HEFT()),
        (f"ilha(B={b})", ILHA(b=b)),
    ]
    cells = []
    for label, scheduler in schedulers:
        cell, _ = run_cell(
            "baseline-comparison", graph.name, 0, graph, scheduler, label, platform, model
        )
        cells.append(cell)
    return cells
