"""Experimental configuration matching the paper's Section 5.2.

* **Platform** — 10 processors: five of cycle time 6, three of cycle
  time 10, two of cycle time 15, on a fully homogeneous unit network.
  Derived constants: speedup bound 7.6, perfect-balance chunk B = 38.
* **Communication-to-computation ratio** — ``c = 10`` ("rather
  representative of workstations linked with a slow (Ethernet)
  network"); every edge carries ``c`` times its source task's weight.
* **Best chunk sizes** — the values the paper reports per testbed
  (Section 5.3): B = 38 for FORK-JOIN / LAPLACE / STENCIL, B = 4 for
  LU, B = 20 for DOOLITTLE and LDMt.
"""

from __future__ import annotations

from ..core.platform import Platform

#: (count, cycle time) groups of the paper platform.
PAPER_PROCESSOR_GROUPS = ((5, 6.0), (3, 10.0), (2, 15.0))

#: The paper's communication-to-computation ratio.
PAPER_COMM_RATIO = 10.0

#: Section 5.2's derived constants (asserted by the test-suite).
PAPER_SPEEDUP_BOUND = 7.6
PAPER_PERFECT_BALANCE = 38

#: Section 5.3's experimentally best chunk size per testbed.
PAPER_BEST_B = {
    "fork-join": 38,
    "lu": 4,
    "laplace": 38,
    "ldmt": 20,
    "doolittle": 20,
    "stencil": 38,
}


def paper_platform(link: float = 1.0) -> Platform:
    """The 10-processor heterogeneous platform of Section 5.2."""
    return Platform.from_groups(PAPER_PROCESSOR_GROUPS, link)
