"""Per-figure experiment definitions (Figures 7–12 of the paper).

Each :class:`FigureSpec` captures one figure declaratively: the testbed
registry name (plus extra generator parameters), the problem-size axis,
the heuristics compared, and the paper's reported outcome for
EXPERIMENTS.md cross-referencing.  :func:`run_figure` compiles the spec
into a :class:`~repro.campaign.spec.CampaignSpec` and drives it through
the campaign engine, so figure regeneration gets the engine's worker
pool and content-addressed cache for free (``workers`` / ``cache``
arguments) while single-worker, cache-less runs behave exactly as the
old serial sweep did.

Size scaling
------------
The paper sweeps "problem size" 100…500.  For FORK-JOIN the size is the
interior-task count and we use the paper's axis directly.  For the
quadratic testbeds (LU/DOOLITTLE/LDMt are ~size² tasks, LAPLACE/STENCIL
~size² grid cells) the paper's axis reaches ~125 000 tasks per cell,
which pure-Python scheduling cannot sweep in a benchmark run; the
default axes below are scaled to a few-hundred-to-few-thousand tasks so
that the graphs are still much wider than the 10 processors and the
communication-to-computation balance is unchanged (same platform, same
``c = 10``).  Pass explicit ``sizes`` to :func:`run_figure` for larger
sweeps (``examples/reproduce_paper.py --sizes ...``).

STENCIL uses a wide, fixed-height grid (width = size, 12 rows): the
paper's declining-speedup phenomenon comes from rows much wider than the
processor count, whose boundary messages serialize on the ports.

ILHA configuration per figure follows Section 5.3's best-``B`` values
(38 / 4 / 38 / 20 / 20 / 38); the ``ilha-tuned`` series reproduces the
paper's actual methodology of keeping the best over several ``B``
(Section 4.4 variants included).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..core.exceptions import ConfigurationError
from .config import PAPER_COMM_RATIO, PAPER_PROCESSOR_GROUPS, paper_platform
from .harness import ExperimentRun

#: Height of the Figure 12 stencil band (rows); width is the size axis.
STENCIL_ROWS = 12


@dataclass(frozen=True)
class FigureSpec:
    """Everything needed to regenerate one paper figure."""

    figure: str
    testbed: str
    description: str
    default_sizes: tuple[int, ...]
    paper_b: int
    ilha_kwargs: dict
    paper_outcome: str
    graph_params: dict = field(default_factory=dict)

    def campaign_spec(
        self,
        sizes: Sequence[int] | None = None,
        tuned: bool = False,
        model: str = "one-port",
        validate: bool = True,
    ):
        """Compile this figure into a campaign grid."""
        from ..campaign import CampaignSpec, HeuristicSpec, PlatformSpec

        heuristics = [
            HeuristicSpec.of("heft"),
            HeuristicSpec.of(
                "ilha",
                {"b": self.paper_b, **self.ilha_kwargs},
                label=f"ilha(B={self.paper_b})",
            ),
        ]
        if tuned:
            heuristics.append(HeuristicSpec.of("ilha-tuned"))
        return CampaignSpec(
            name=self.figure,
            testbeds=[self.testbed],
            sizes=list(sizes) if sizes is not None else list(self.default_sizes),
            heuristics=heuristics,
            models=[model],
            platforms=[PlatformSpec(label="paper", groups=PAPER_PROCESSOR_GROUPS)],
            comm_ratio=PAPER_COMM_RATIO,
            graph_params={self.testbed: dict(self.graph_params)}
            if self.graph_params
            else {},
            validate=validate,
        )


FIGURES: dict[str, FigureSpec] = {
    "fig07": FigureSpec(
        figure="fig07",
        testbed="fork-join",
        description="FORK-JOIN, 10 processors, c=10 (paper Figure 7)",
        default_sizes=(100, 200, 300, 400, 500),
        paper_b=38,
        ilha_kwargs={},
        paper_outcome=(
            "HEFT and ILHA identical, speedup ~1.53-1.58, flat in size, "
            "just under the analytic bound 1.6"
        ),
    ),
    "fig08": FigureSpec(
        figure="fig08",
        testbed="lu",
        description="LU decomposition, 10 processors, c=10 (paper Figure 8)",
        default_sizes=(30, 50, 70, 90, 110),
        paper_b=4,
        ilha_kwargs={},
        paper_outcome=(
            "speedups grow with size (~3.8 to 5.4); HEFT and ILHA similar at "
            "the smallest size, ILHA gains with size, reaching 5.0 vs 4.5; "
            "best B = 4"
        ),
    ),
    "fig09": FigureSpec(
        figure="fig09",
        testbed="laplace",
        description="LAPLACE solver, 10 processors, c=10 (paper Figure 9)",
        default_sizes=(12, 18, 24, 30, 36),
        paper_b=38,
        ilha_kwargs={},
        paper_outcome=(
            "ILHA ~10% over HEFT across sizes, reaching speedup 5.6; "
            "best B = 38 (every node is on a critical path)"
        ),
    ),
    "fig10": FigureSpec(
        figure="fig10",
        testbed="ldmt",
        description="LDMt decomposition, 10 processors, c=10 (paper Figure 10)",
        default_sizes=(22, 30, 38, 46, 54),
        paper_b=20,
        ilha_kwargs={"single_comm_scan": True},
        paper_outcome="ILHA ~10% over HEFT, speedup up to 4.9; best B = 20",
    ),
    "fig11": FigureSpec(
        figure="fig11",
        testbed="doolittle",
        description="DOOLITTLE reduction, 10 processors, c=10 (paper Figure 11)",
        default_sizes=(30, 50, 70, 90, 110),
        paper_b=20,
        ilha_kwargs={"single_comm_scan": True},
        paper_outcome="ILHA ~10% over HEFT, speedup up to 4.4; best B = 20",
    ),
    "fig12": FigureSpec(
        figure="fig12",
        testbed="stencil",
        description=(
            f"STENCIL ({STENCIL_ROWS} rows, width = size), 10 processors, "
            "c=10 (paper Figure 12)"
        ),
        default_sizes=(40, 80, 120, 160, 200),
        paper_b=38,
        ilha_kwargs={"single_comm_scan": True},
        paper_outcome=(
            "speedups decrease as the graph widens (serialized row-boundary "
            "messages dominate); ILHA ~2.7 vs HEFT ~2.4; best B = 38"
        ),
        graph_params={"rows": STENCIL_ROWS},
    ),
}


def run_figure(
    figure: str,
    sizes: Sequence[int] | None = None,
    tuned: bool = False,
    model: str = "one-port",
    validate: bool = True,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
    cache=None,
) -> ExperimentRun:
    """Regenerate one figure's series (HEFT vs ILHA speedups over sizes).

    ``workers`` and ``cache`` are forwarded to the campaign engine:
    ``workers > 1`` fans the (size × heuristic) cells over a process
    pool, and a :class:`~repro.campaign.cache.ResultCache` (or cache
    directory path) makes repeated regenerations incremental.
    """
    try:
        spec = FIGURES[figure]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {figure!r}; available: {sorted(FIGURES)}"
        ) from None
    from ..campaign import run_campaign

    campaign = spec.campaign_spec(sizes=sizes, tuned=tuned, model=model, validate=validate)
    result = run_campaign(campaign, workers=workers, cache=cache, progress=progress)
    run = ExperimentRun(
        figure=spec.figure,
        description=spec.description,
        platform=paper_platform(),
    )
    run.cells.extend(result.cells)
    return run


def available_figures() -> list[str]:
    return sorted(FIGURES)
