"""Per-figure experiment definitions (Figures 7–12 of the paper).

Each :class:`FigureSpec` captures one figure: the testbed, the
problem-size axis, the heuristics compared, and the paper's reported
outcome for EXPERIMENTS.md cross-referencing.

Size scaling
------------
The paper sweeps "problem size" 100…500.  For FORK-JOIN the size is the
interior-task count and we use the paper's axis directly.  For the
quadratic testbeds (LU/DOOLITTLE/LDMt are ~size² tasks, LAPLACE/STENCIL
~size² grid cells) the paper's axis reaches ~125 000 tasks per cell,
which pure-Python scheduling cannot sweep in a benchmark run; the
default axes below are scaled to a few-hundred-to-few-thousand tasks so
that the graphs are still much wider than the 10 processors and the
communication-to-computation balance is unchanged (same platform, same
``c = 10``).  Pass explicit ``sizes`` to :func:`run_figure` for larger
sweeps (``examples/reproduce_paper.py --sizes ...``).

STENCIL uses a wide, fixed-height grid (width = size, 12 rows): the
paper's declining-speedup phenomenon comes from rows much wider than the
processor count, whose boundary messages serialize on the ports.

ILHA configuration per figure follows Section 5.3's best-``B`` values
(38 / 4 / 38 / 20 / 20 / 38); the ``ilha-tuned`` series reproduces the
paper's actual methodology of keeping the best over several ``B``
(Section 4.4 variants included).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..core.exceptions import ConfigurationError
from ..core.taskgraph import TaskGraph
from ..graphs import (
    doolittle_graph,
    fork_join_graph,
    laplace_graph,
    ldmt_graph,
    lu_graph,
    stencil_grid,
)
from ..heuristics import HEFT, ILHA, Scheduler, TunedILHA
from .config import PAPER_COMM_RATIO, paper_platform
from .harness import ExperimentRun, run_sweep

#: Height of the Figure 12 stencil band (rows); width is the size axis.
STENCIL_ROWS = 12


@dataclass(frozen=True)
class FigureSpec:
    """Everything needed to regenerate one paper figure."""

    figure: str
    testbed: str
    description: str
    graph_factory: Callable[[int], TaskGraph]
    default_sizes: tuple[int, ...]
    paper_b: int
    ilha_kwargs: dict
    paper_outcome: str


def _spec_schedulers(spec: FigureSpec, tuned: bool) -> list[tuple[str, Scheduler]]:
    schedulers: list[tuple[str, Scheduler]] = [
        ("heft", HEFT()),
        (f"ilha(B={spec.paper_b})", ILHA(b=spec.paper_b, **spec.ilha_kwargs)),
    ]
    if tuned:
        schedulers.append(("ilha-tuned", TunedILHA()))
    return schedulers


FIGURES: dict[str, FigureSpec] = {
    "fig07": FigureSpec(
        figure="fig07",
        testbed="fork-join",
        description="FORK-JOIN, 10 processors, c=10 (paper Figure 7)",
        graph_factory=lambda n: fork_join_graph(n, PAPER_COMM_RATIO),
        default_sizes=(100, 200, 300, 400, 500),
        paper_b=38,
        ilha_kwargs={},
        paper_outcome=(
            "HEFT and ILHA identical, speedup ~1.53-1.58, flat in size, "
            "just under the analytic bound 1.6"
        ),
    ),
    "fig08": FigureSpec(
        figure="fig08",
        testbed="lu",
        description="LU decomposition, 10 processors, c=10 (paper Figure 8)",
        graph_factory=lambda n: lu_graph(n, PAPER_COMM_RATIO),
        default_sizes=(30, 50, 70, 90, 110),
        paper_b=4,
        ilha_kwargs={},
        paper_outcome=(
            "speedups grow with size (~3.8 to 5.4); HEFT and ILHA similar at "
            "the smallest size, ILHA gains with size, reaching 5.0 vs 4.5; "
            "best B = 4"
        ),
    ),
    "fig09": FigureSpec(
        figure="fig09",
        testbed="laplace",
        description="LAPLACE solver, 10 processors, c=10 (paper Figure 9)",
        graph_factory=lambda m: laplace_graph(m, PAPER_COMM_RATIO),
        default_sizes=(12, 18, 24, 30, 36),
        paper_b=38,
        ilha_kwargs={},
        paper_outcome=(
            "ILHA ~10% over HEFT across sizes, reaching speedup 5.6; "
            "best B = 38 (every node is on a critical path)"
        ),
    ),
    "fig10": FigureSpec(
        figure="fig10",
        testbed="ldmt",
        description="LDMt decomposition, 10 processors, c=10 (paper Figure 10)",
        graph_factory=lambda n: ldmt_graph(n, PAPER_COMM_RATIO),
        default_sizes=(22, 30, 38, 46, 54),
        paper_b=20,
        ilha_kwargs={"single_comm_scan": True},
        paper_outcome="ILHA ~10% over HEFT, speedup up to 4.9; best B = 20",
    ),
    "fig11": FigureSpec(
        figure="fig11",
        testbed="doolittle",
        description="DOOLITTLE reduction, 10 processors, c=10 (paper Figure 11)",
        graph_factory=lambda n: doolittle_graph(n, PAPER_COMM_RATIO),
        default_sizes=(30, 50, 70, 90, 110),
        paper_b=20,
        ilha_kwargs={"single_comm_scan": True},
        paper_outcome="ILHA ~10% over HEFT, speedup up to 4.4; best B = 20",
    ),
    "fig12": FigureSpec(
        figure="fig12",
        testbed="stencil",
        description=(
            f"STENCIL ({STENCIL_ROWS} rows, width = size), 10 processors, "
            "c=10 (paper Figure 12)"
        ),
        graph_factory=lambda w: stencil_grid(w, STENCIL_ROWS, PAPER_COMM_RATIO),
        default_sizes=(40, 80, 120, 160, 200),
        paper_b=38,
        ilha_kwargs={"single_comm_scan": True},
        paper_outcome=(
            "speedups decrease as the graph widens (serialized row-boundary "
            "messages dominate); ILHA ~2.7 vs HEFT ~2.4; best B = 38"
        ),
    ),
}


def run_figure(
    figure: str,
    sizes: Sequence[int] | None = None,
    tuned: bool = False,
    model: str = "one-port",
    validate: bool = True,
    progress: Callable[[str], None] | None = None,
) -> ExperimentRun:
    """Regenerate one figure's series (HEFT vs ILHA speedups over sizes)."""
    try:
        spec = FIGURES[figure]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {figure!r}; available: {sorted(FIGURES)}"
        ) from None
    platform = paper_platform()
    return run_sweep(
        figure=spec.figure,
        testbed=spec.testbed,
        description=spec.description,
        graph_factory=spec.graph_factory,
        sizes=tuple(sizes) if sizes is not None else spec.default_sizes,
        schedulers=_spec_schedulers(spec, tuned),
        platform=platform,
        model=model,
        validate=validate,
        progress=progress,
    )


def available_figures() -> list[str]:
    return sorted(FIGURES)
