"""Experiment runner: schedule, validate, measure, record.

One :class:`CellResult` per (testbed, size, heuristic) cell of a figure.
Every schedule is checked by the independent validator before its
metrics are recorded, so a buggy heuristic cannot silently inflate its
own numbers.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import asdict, dataclass, field

from ..core.bounds import makespan_lower_bound
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..core.validation import validate_schedule
from ..heuristics.base import Scheduler
from ..models.base import CommunicationModel


@dataclass(frozen=True)
class CellResult:
    """Metrics of one scheduled cell.

    ``extra`` carries scenario-specific metrics that have no offline
    counterpart (the online axis stores flow/stretch/events there); it
    defaults to empty so rows cached before the field existed load
    unchanged.
    """

    figure: str
    testbed: str
    size: int
    num_tasks: int
    heuristic: str
    model: str
    makespan: float
    speedup: float
    num_comms: int
    total_comm_time: float
    utilization: float
    lower_bound: float
    runtime_s: float
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = asdict(self)
        if not out["extra"]:
            del out["extra"]
        return out


@dataclass
class ExperimentRun:
    """All cells of one figure plus shared context."""

    figure: str
    description: str
    platform: Platform
    cells: list[CellResult] = field(default_factory=list)

    def series(self, heuristic: str) -> list[tuple[int, float]]:
        """(size, speedup) pairs of one heuristic, sorted by size."""
        pts = [(c.size, c.speedup) for c in self.cells if c.heuristic == heuristic]
        return sorted(pts)

    def heuristics(self) -> list[str]:
        seen: dict[str, None] = {}
        for c in self.cells:
            seen.setdefault(c.heuristic, None)
        return list(seen)

    def sizes(self) -> list[int]:
        return sorted({c.size for c in self.cells})


def run_cell(
    figure: str,
    testbed: str,
    size: int,
    graph: TaskGraph,
    scheduler: Scheduler,
    label: str,
    platform: Platform,
    model: str | CommunicationModel = "one-port",
    validate: bool = True,
) -> tuple[CellResult, Schedule]:
    """Schedule one cell, validate it, and compute its metrics."""
    t0 = time.perf_counter()
    schedule = scheduler.run(graph, platform, model)
    runtime = time.perf_counter() - t0
    if validate:
        validate_schedule(schedule)
    result = CellResult(
        figure=figure,
        testbed=testbed,
        size=size,
        num_tasks=graph.num_tasks,
        heuristic=label,
        model=schedule.model,
        makespan=schedule.makespan(),
        speedup=schedule.speedup(),
        num_comms=schedule.num_comms(),
        total_comm_time=schedule.total_comm_time(),
        utilization=schedule.utilization(),
        lower_bound=makespan_lower_bound(graph, platform),
        runtime_s=runtime,
    )
    return result, schedule


def run_sweep(
    figure: str,
    testbed: str,
    description: str,
    graph_factory: Callable[[int], TaskGraph],
    sizes: Sequence[int],
    schedulers: Sequence[tuple[str, Scheduler]],
    platform: Platform,
    model: str | CommunicationModel = "one-port",
    validate: bool = True,
    progress: Callable[[str], None] | None = None,
) -> ExperimentRun:
    """Run every (size, heuristic) cell of one figure."""
    run = ExperimentRun(figure=figure, description=description, platform=platform)
    for size in sizes:
        graph = graph_factory(size)
        for label, scheduler in schedulers:
            cell, _ = run_cell(
                figure, testbed, size, graph, scheduler, label, platform, model, validate
            )
            run.cells.append(cell)
            if progress is not None:
                progress(
                    f"{figure} {testbed} size={size} {label}: "
                    f"speedup={cell.speedup:.2f} comms={cell.num_comms} "
                    f"({cell.runtime_s:.1f}s)"
                )
    return run
