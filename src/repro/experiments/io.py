"""Result persistence: CSV and JSON round-trips for experiment cells."""

from __future__ import annotations

import csv
import json
from collections.abc import Iterable
from dataclasses import fields
from pathlib import Path

from .harness import CellResult

_FIELDS = [f.name for f in fields(CellResult)]


def write_csv(cells: Iterable[CellResult], path: str | Path) -> Path:
    """Write cells as CSV (one header row, one row per cell)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for cell in cells:
            writer.writerow(cell.as_dict())
    return path


def read_csv(path: str | Path) -> list[CellResult]:
    """Read cells back from :func:`write_csv` output."""
    out = []
    with Path(path).open() as fh:
        for row in csv.DictReader(fh):
            out.append(
                CellResult(
                    figure=row["figure"],
                    testbed=row["testbed"],
                    size=int(row["size"]),
                    num_tasks=int(row["num_tasks"]),
                    heuristic=row["heuristic"],
                    model=row["model"],
                    makespan=float(row["makespan"]),
                    speedup=float(row["speedup"]),
                    num_comms=int(row["num_comms"]),
                    total_comm_time=float(row["total_comm_time"]),
                    utilization=float(row["utilization"]),
                    lower_bound=float(row["lower_bound"]),
                    runtime_s=float(row["runtime_s"]),
                )
            )
    return out


def write_json(cells: Iterable[CellResult], path: str | Path) -> Path:
    """Write cells as a JSON array of objects."""
    path = Path(path)
    path.write_text(json.dumps([c.as_dict() for c in cells], indent=2))
    return path


def read_json(path: str | Path) -> list[CellResult]:
    """Read cells back from :func:`write_json` output."""
    data = json.loads(Path(path).read_text())
    return [CellResult(**item) for item in data]
