"""Result persistence: CSV and JSON round-trips for experiment cells.

Writers are *atomic*: content goes to a temporary file in the target
directory which is renamed over the destination only once fully
written, so an interrupted export can never leave a truncated file
behind.  Pass ``overwrite=False`` to refuse clobbering an existing
file (the CLI's ``campaign export`` does, unless ``--force``).
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from collections.abc import Callable, Iterable
from dataclasses import fields
from pathlib import Path

from .harness import CellResult

_FIELDS = [f.name for f in fields(CellResult)]


def _atomic_write(
    path: str | Path, overwrite: bool, write_body: Callable[[object], None]
) -> Path:
    """Write via temp file + rename; optionally refuse to clobber.

    The existence check is best-effort (not a lock), but the rename is
    atomic on POSIX: readers only ever see the old file or the complete
    new one.
    """
    path = Path(path)
    if not overwrite and path.exists():
        raise FileExistsError(f"{path} already exists (use overwrite/--force)")
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        # mkstemp creates 0600; give the final file the permissions a
        # plain open() would have produced under the current umask
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        with os.fdopen(fd, "w", newline="") as fh:
            write_body(fh)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def write_csv(
    cells: Iterable[CellResult], path: str | Path, overwrite: bool = True
) -> Path:
    """Write cells as CSV (one header row, one row per cell), atomically."""

    def body(fh) -> None:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for cell in cells:
            row = cell.as_dict()
            if "extra" in row:
                # dicts do not survive CSV; embed as canonical JSON text
                row["extra"] = json.dumps(row["extra"], sort_keys=True)
            writer.writerow(row)

    return _atomic_write(path, overwrite, body)


def read_csv(path: str | Path) -> list[CellResult]:
    """Read cells back from :func:`write_csv` output."""
    out = []
    with Path(path).open() as fh:
        for row in csv.DictReader(fh):
            out.append(
                CellResult(
                    figure=row["figure"],
                    testbed=row["testbed"],
                    size=int(row["size"]),
                    num_tasks=int(row["num_tasks"]),
                    heuristic=row["heuristic"],
                    model=row["model"],
                    makespan=float(row["makespan"]),
                    speedup=float(row["speedup"]),
                    num_comms=int(row["num_comms"]),
                    total_comm_time=float(row["total_comm_time"]),
                    utilization=float(row["utilization"]),
                    lower_bound=float(row["lower_bound"]),
                    runtime_s=float(row["runtime_s"]),
                    extra=json.loads(row["extra"]) if row.get("extra") else {},
                )
            )
    return out


def write_json(
    cells: Iterable[CellResult], path: str | Path, overwrite: bool = True
) -> Path:
    """Write cells as a JSON array of objects, atomically."""

    def body(fh) -> None:
        json.dump([c.as_dict() for c in cells], fh, indent=2)

    return _atomic_write(path, overwrite, body)


def read_json(path: str | Path) -> list[CellResult]:
    """Read cells back from :func:`write_json` output."""
    data = json.loads(Path(path).read_text())
    return [CellResult(**item) for item in data]
