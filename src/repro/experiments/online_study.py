"""Policy-versus-noise study: how rescheduling pays off as estimates degrade.

The online analogue of the paper's figure sweeps: one job stream
(testbed × size × arrival × seed), simulated once per (policy, noise)
pair, reporting mean flow / mean stretch / utilization per cell.  The
qualitative expectation mirrors the online-scheduling literature:
open-loop ``static`` degrades fastest as noise grows, ``periodic`` /
``reactive`` buy robustness with rescheduling work, and the
non-clairvoyant ``ready-dispatch`` is insensitive to estimate quality
(it never trusts estimates beyond one dispatch decision).

Used by ``benchmarks/bench_online.py`` for the committed policy-vs-noise
figure and importable for ad-hoc studies.
"""

from __future__ import annotations

from ..core.platform import Platform
from ..online import check_execution, make_policy, make_workload, simulate_online
from .config import paper_platform

#: Default axes of the study.
DEFAULT_POLICIES = (
    "static",
    "periodic:period=1000",
    "reactive:threshold=0.1",
    "ready-dispatch",
)
DEFAULT_NOISES = ("exact", "lognormal:sigma=0.1", "lognormal:sigma=0.3", "straggler")


def online_policy_study(
    testbed: str = "lu",
    size: int = 10,
    jobs: int = 8,
    arrival: str = "poisson:rate=0.002",
    policies=DEFAULT_POLICIES,
    noises=DEFAULT_NOISES,
    heuristic: str = "heft",
    seed: int = 0,
    platform: Platform | None = None,
    validate: bool = True,
) -> list[dict]:
    """One row per (policy, noise) cell of the study grid."""
    platform = platform or paper_platform()
    workload = make_workload(testbed, size, jobs, arrival=arrival, seed=seed)
    rows = []
    for policy_spec in policies:
        for noise in noises:
            overrides = {}
            if policy_spec.partition(":")[0] != "ready-dispatch":
                overrides = {"heuristic": heuristic}
            policy = make_policy(policy_spec, **overrides)
            result = simulate_online(
                workload, platform, policy=policy, noise=noise,
                seed=seed, log_events=False,
            )
            if validate:
                check_execution(result)
            agg = result.aggregate()
            rows.append(
                {
                    "testbed": testbed,
                    "size": size,
                    "policy": policy_spec,
                    "noise": noise,
                    "jobs": agg["jobs"],
                    "events": agg["events"],
                    "mean_flow": agg["mean_flow"],
                    "max_flow": agg["max_flow"],
                    "mean_stretch": agg["mean_stretch"],
                    "weighted_flow": agg["weighted_flow"],
                    "utilization": agg["utilization"],
                    "reschedules": agg["reschedules"],
                    "events_per_s": round(result.events_per_s, 1),
                }
            )
    return rows


def format_online_study(rows: list[dict]) -> str:
    """Mean stretch as a policy × noise matrix (plus reschedule counts)."""
    noises = list(dict.fromkeys(r["noise"] for r in rows))
    policies = list(dict.fromkeys(r["policy"] for r in rows))
    by_cell = {(r["policy"], r["noise"]): r for r in rows}
    width = max(12, *(len(n) for n in noises)) + 2
    head = "mean stretch".ljust(26) + "".join(n.rjust(width) for n in noises)
    lines = [head, "-" * len(head)]
    for policy in policies:
        cells = []
        for noise in noises:
            r = by_cell.get((policy, noise))
            if r is None:
                cells.append("-".rjust(width))
                continue
            label = f"{r['mean_stretch']:.2f}"
            if r["reschedules"]:
                label += f" ({r['reschedules']}r)"
            cells.append(label.rjust(width))
        lines.append(policy.ljust(26) + "".join(cells))
    return "\n".join(lines)
