"""Text reports: the paper's series as aligned tables.

The paper's Figures 7-12 each plot speedup versus problem size for HEFT
and ILHA; :func:`format_run` prints the same series as one row per size
(plus communication counts, which Section 4.4 highlights as ILHA's
design goal).
"""

from __future__ import annotations

from collections.abc import Iterable

from .harness import CellResult, ExperimentRun


def _fmt(value: float, width: int = 8, digits: int = 3) -> str:
    return f"{value:{width}.{digits}f}"


def format_run(run: ExperimentRun, show_comms: bool = True) -> str:
    """One aligned table: a row per size, speedup columns per heuristic."""
    heuristics = run.heuristics()
    header = f"{'size':>6} {'tasks':>7}"
    for h in heuristics:
        header += f" {h + ' spd':>16}"
        if show_comms:
            header += f" {h + ' #msg':>16}"
    lines = [run.description, header, "-" * len(header)]
    by_size: dict[int, dict[str, CellResult]] = {}
    tasks: dict[int, int] = {}
    for cell in run.cells:
        by_size.setdefault(cell.size, {})[cell.heuristic] = cell
        tasks[cell.size] = cell.num_tasks
    for size in sorted(by_size):
        row = f"{size:>6} {tasks[size]:>7}"
        for h in heuristics:
            cell = by_size[size].get(h)
            if cell is None:
                row += f" {'-':>16}" + (f" {'-':>16}" if show_comms else "")
                continue
            row += f" {_fmt(cell.speedup, 16)}"
            if show_comms:
                row += f" {cell.num_comms:>16}"
        lines.append(row)
    return "\n".join(lines)


def format_comparison(run: ExperimentRun, base: str = "heft") -> str:
    """Per-size gain of every heuristic over ``base`` (the paper's ~10%)."""
    heuristics = [h for h in run.heuristics() if h != base]
    header = f"{'size':>6} {base + ' spd':>12}"
    for h in heuristics:
        header += f" {h + ' gain%':>20}"
    lines = [header, "-" * len(header)]
    by_size: dict[int, dict[str, CellResult]] = {}
    for cell in run.cells:
        by_size.setdefault(cell.size, {})[cell.heuristic] = cell
    for size in sorted(by_size):
        cells = by_size[size]
        if base not in cells:
            continue
        base_speedup = cells[base].speedup
        row = f"{size:>6} {_fmt(base_speedup, 12)}"
        for h in heuristics:
            if h in cells and base_speedup > 0:
                gain = (cells[h].speedup / base_speedup - 1.0) * 100.0
                row += f" {gain:>19.1f}%"
            else:
                row += f" {'-':>20}"
        lines.append(row)
    return "\n".join(lines)


def format_cells(cells: Iterable[CellResult]) -> str:
    """Flat dump of arbitrary cells (used by the CLI example)."""
    lines = [
        f"{'figure':>7} {'testbed':>10} {'size':>6} {'tasks':>7} "
        f"{'heuristic':>16} {'speedup':>8} {'#msg':>7} {'makespan':>12} {'lb':>12}"
    ]
    for c in cells:
        lines.append(
            f"{c.figure:>7} {c.testbed:>10} {c.size:>6} {c.num_tasks:>7} "
            f"{c.heuristic:>16} {c.speedup:>8.3f} {c.num_comms:>7} "
            f"{c.makespan:>12.1f} {c.lower_bound:>12.1f}"
        )
    return "\n".join(lines)
