"""Task-graph generators: the paper's six testbeds and test utilities."""

from .base import (
    PAPER_COMM_RATIO,
    apply_source_proportional_comm,
    available_testbeds,
    generator_params,
    make_testbed,
    register_generator,
)
from .doolittle import doolittle_graph
from .fork import figure1_example, fork_graph, uniform_fork
from .forkjoin import fork_join_graph, fork_join_speedup_bound
from .laplace import laplace_graph
from .ldmt import ldmt_graph
from .lu import lu_graph, lu_task_count
from .random_dags import (
    irregular_dag,
    irregular_testbed,
    layered_random,
    layered_testbed,
    random_dag,
)
from .stencil import stencil_graph, stencil_grid
from .toy import PAPER_CHILD_ORDER, toy_graph, toy_priority_key
from .trees import diamond_chain, in_tree, out_tree

__all__ = [
    "PAPER_CHILD_ORDER",
    "PAPER_COMM_RATIO",
    "apply_source_proportional_comm",
    "available_testbeds",
    "doolittle_graph",
    "figure1_example",
    "fork_graph",
    "fork_join_graph",
    "fork_join_speedup_bound",
    "generator_params",
    "irregular_dag",
    "irregular_testbed",
    "laplace_graph",
    "layered_random",
    "layered_testbed",
    "ldmt_graph",
    "lu_graph",
    "lu_task_count",
    "make_testbed",
    "random_dag",
    "register_generator",
    "stencil_graph",
    "stencil_grid",
    "diamond_chain",
    "in_tree",
    "out_tree",
    "toy_graph",
    "toy_priority_key",
    "uniform_fork",
]
