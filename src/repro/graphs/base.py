"""Common helpers and the registry of testbed generators.

Weight rules follow the paper's Section 5.2, and every testbed applies
the same communication policy: the data volume on an edge ``u -> v`` is
``comm_ratio`` times the *weight of the source task* — "we always
communicate the data that has just been updated"; the paper uses
``c = 10`` to model workstations on a slow Ethernet.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable

from ..core.exceptions import ConfigurationError, GraphError
from ..core.taskgraph import TaskGraph

#: The paper's communication-to-computation ratio (Section 5.2).
PAPER_COMM_RATIO = 10.0


def apply_source_proportional_comm(graph: TaskGraph, comm_ratio: float) -> TaskGraph:
    """Set ``data(u, v) = comm_ratio * w(u)`` on every edge (in place)."""
    if comm_ratio < 0:
        raise GraphError(f"comm_ratio must be >= 0, got {comm_ratio}")
    for u, v in list(graph.edges()):
        graph.set_data(u, v, comm_ratio * graph.weight(u))
    return graph


GeneratorFn = Callable[..., TaskGraph]

_GENERATORS: dict[str, GeneratorFn] = {}


def register_generator(name: str) -> Callable[[GeneratorFn], GeneratorFn]:
    """Decorator registering a testbed generator under ``name``."""

    def wrap(fn: GeneratorFn) -> GeneratorFn:
        if name in _GENERATORS:
            raise ConfigurationError(f"duplicate generator {name!r}")
        _GENERATORS[name] = fn
        return fn

    return wrap


def make_testbed(
    name: str, size: int, comm_ratio: float = PAPER_COMM_RATIO, **params
) -> TaskGraph:
    """Build a registered testbed by name.

    ``size`` is the testbed's natural size parameter: the number of
    interior tasks for ``fork-join``, the matrix dimension for ``lu`` /
    ``doolittle`` / ``ldmt``, and the grid side for ``laplace`` /
    ``stencil``.  Extra keyword ``params`` are passed through to the
    generator (e.g. ``seed`` for the random families, ``rows`` for the
    fixed-height stencil band); unknown parameters are rejected up front
    with the accepted set in the message.
    """
    try:
        fn = _GENERATORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown testbed {name!r}; available: {sorted(_GENERATORS)}"
        ) from None
    accepted = generator_params(name)
    unknown = set(params) - accepted
    if unknown:
        raise ConfigurationError(
            f"testbed {name!r} does not accept {sorted(unknown)}; "
            f"accepted: {sorted(accepted)}"
        )
    return fn(size, comm_ratio=comm_ratio, **params)


def generator_params(name: str) -> set[str]:
    """Extra keyword parameters a registered generator accepts.

    The first positional (the size) and ``comm_ratio`` are universal and
    excluded; what remains is what a campaign's ``graph_params`` may
    set — campaigns use ``"seed" in generator_params(name)`` to decide
    whether a testbed participates in seed sweeps.
    """
    try:
        fn = _GENERATORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown testbed {name!r}; available: {sorted(_GENERATORS)}"
        ) from None
    sig = inspect.signature(fn)
    names = list(sig.parameters)
    return {p for p in names[1:] if p != "comm_ratio"}


def available_testbeds() -> list[str]:
    return sorted(_GENERATORS)
