"""Common helpers and the registry of testbed generators.

Weight rules follow the paper's Section 5.2, and every testbed applies
the same communication policy: the data volume on an edge ``u -> v`` is
``comm_ratio`` times the *weight of the source task* — "we always
communicate the data that has just been updated"; the paper uses
``c = 10`` to model workstations on a slow Ethernet.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.exceptions import ConfigurationError, GraphError
from ..core.taskgraph import TaskGraph

#: The paper's communication-to-computation ratio (Section 5.2).
PAPER_COMM_RATIO = 10.0


def apply_source_proportional_comm(graph: TaskGraph, comm_ratio: float) -> TaskGraph:
    """Set ``data(u, v) = comm_ratio * w(u)`` on every edge (in place)."""
    if comm_ratio < 0:
        raise GraphError(f"comm_ratio must be >= 0, got {comm_ratio}")
    for u, v in list(graph.edges()):
        graph.set_data(u, v, comm_ratio * graph.weight(u))
    return graph


GeneratorFn = Callable[..., TaskGraph]

_GENERATORS: dict[str, GeneratorFn] = {}


def register_generator(name: str) -> Callable[[GeneratorFn], GeneratorFn]:
    """Decorator registering a testbed generator under ``name``."""

    def wrap(fn: GeneratorFn) -> GeneratorFn:
        if name in _GENERATORS:
            raise ConfigurationError(f"duplicate generator {name!r}")
        _GENERATORS[name] = fn
        return fn

    return wrap


def make_testbed(name: str, size: int, comm_ratio: float = PAPER_COMM_RATIO) -> TaskGraph:
    """Build a registered testbed by name.

    ``size`` is the testbed's natural size parameter: the number of
    interior tasks for ``fork-join``, the matrix dimension for ``lu`` /
    ``doolittle`` / ``ldmt``, and the grid side for ``laplace`` /
    ``stencil``.
    """
    try:
        fn = _GENERATORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown testbed {name!r}; available: {sorted(_GENERATORS)}"
        ) from None
    return fn(size, comm_ratio=comm_ratio)


def available_testbeds() -> list[str]:
    return sorted(_GENERATORS)
