"""The DOOLITTLE testbed: the task graph of Doolittle reduction.

Doolittle's method computes ``A = L U`` directly: step ``k`` produces
row ``k`` of ``U`` and column ``k`` of ``L`` through inner products of
length ``~k`` against the already-computed factors.  Work therefore
*grows* with the step index — Section 5.2: "the weight of a task at
level k is k" — the mirror image of LU's shrinking weights.

The dependence structure mirrors :mod:`repro.graphs.lu`: step ``k`` has
a pivot task ``p(k)`` (row ``k`` of ``U``) feeding update tasks
``u(k, j)`` (the entries of column ``k`` of ``L`` and the running sums
of later rows, ``j = k+1 .. n``); column ``j``'s chain advances step by
step and the next pivot needs the first update of the previous step.
"""

from __future__ import annotations

from ..core.exceptions import GraphError
from ..core.taskgraph import TaskGraph
from .base import PAPER_COMM_RATIO, apply_source_proportional_comm, register_generator


def pivot(k: int) -> tuple:
    return ("p", k)


def update(k: int, j: int) -> tuple:
    return ("u", k, j)


@register_generator("doolittle")
def doolittle_graph(n: int, comm_ratio: float = PAPER_COMM_RATIO) -> TaskGraph:
    """Doolittle reduction DAG for an ``n x n`` matrix (size = ``n``)."""
    if n < 2:
        raise GraphError(f"doolittle needs n >= 2, got {n}")
    g = TaskGraph(name=f"doolittle-{n}")
    for k in range(1, n):
        w = float(k)
        g.add_task(pivot(k), w)
        for j in range(k + 1, n + 1):
            g.add_task(update(k, j), w)
    for k in range(1, n):
        for j in range(k + 1, n + 1):
            g.add_dependency(pivot(k), update(k, j))
        if k + 1 < n:
            g.add_dependency(update(k, k + 1), pivot(k + 1))
            for j in range(k + 2, n + 1):
                g.add_dependency(update(k, j), update(k + 1, j))
    return apply_source_proportional_comm(g, comm_ratio)
