"""Fork graphs: one parent broadcasting to N independent children.

The fork is the paper's vehicle for both the Section 2.3 motivating
example (Figure 1) and the Theorem 1 NP-completeness proof (Figure 2):
under the one-port model the parent's outgoing messages serialize, so
choosing which children to keep local is already a partitioning problem.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.exceptions import GraphError
from ..core.taskgraph import TaskGraph

#: Conventional node ids.
PARENT = "v0"


def child(i: int) -> str:
    """Id of the ``i``-th child (1-based, matching the paper)."""
    return f"v{i}"


def fork_graph(
    child_weights: Sequence[float],
    child_data: Sequence[float] | None = None,
    parent_weight: float = 1.0,
    name: str = "fork",
) -> TaskGraph:
    """Fork with explicit per-child weights ``w_i`` and volumes ``d_i``.

    ``child_data`` defaults to the child weights (``d_i = w_i``), which is
    the convention of the Theorem 1 reduction.
    """
    if child_data is None:
        child_data = list(child_weights)
    if len(child_data) != len(child_weights):
        raise GraphError("child_weights and child_data must have equal length")
    g = TaskGraph(name=name)
    g.add_task(PARENT, parent_weight)
    for i, (w, d) in enumerate(zip(child_weights, child_data), start=1):
        g.add_task(child(i), w)
        g.add_dependency(PARENT, child(i), d)
    return g


def uniform_fork(n: int, weight: float = 1.0, data: float = 1.0) -> TaskGraph:
    """Fork with ``n`` identical children (weights and volumes uniform)."""
    if n < 0:
        raise GraphError(f"n must be >= 0, got {n}")
    return fork_graph([weight] * n, [data] * n, parent_weight=weight, name=f"fork-{n}")


def figure1_example() -> TaskGraph:
    """The Section 2.3 example: 6 unit children, unit communications.

    On five identical processors with unit links the macro-dataflow
    optimum is 3, the same allocation costs at least 6 under one-port,
    and the one-port optimum is 5 (three children kept on the parent's
    processor).  Tests and ``benchmarks/bench_fig01_fork_example.py``
    verify all three numbers.
    """
    return uniform_fork(6, weight=1.0, data=1.0)
