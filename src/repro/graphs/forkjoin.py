"""The FORK-JOIN testbed (paper Figure 6 top, Figure 7 experiment).

A source task fans out to ``n`` independent interior tasks which all
join into a sink.  All weights are 1 (Section 5.2) and the data on each
edge is ``comm_ratio`` times the source task's weight.

The paper derives an analytic speedup bound for this graph under the
one-port model (Section 5.3): to reach speedup ``s``, roughly
``(s-1)/s * n`` messages must leave the source sequentially, giving
``s <= w * t_min / c + 1`` — 1.6 for the paper platform (``t_min = 6``,
``c = 10``, ``w = 1``); both heuristics reach ~1.58.
"""

from __future__ import annotations

from ..core.exceptions import GraphError
from ..core.taskgraph import TaskGraph
from .base import PAPER_COMM_RATIO, apply_source_proportional_comm, register_generator

SOURCE = "source"
SINK = "sink"


def middle(i: int) -> str:
    """Id of the ``i``-th interior task (0-based)."""
    return f"m{i}"


@register_generator("fork-join")
def fork_join_graph(
    n: int, comm_ratio: float = PAPER_COMM_RATIO, weight: float = 1.0
) -> TaskGraph:
    """FORK-JOIN with ``n`` interior tasks (problem size = ``n``)."""
    if n < 1:
        raise GraphError(f"fork-join needs n >= 1 interior tasks, got {n}")
    g = TaskGraph(name=f"fork-join-{n}")
    g.add_task(SOURCE, weight)
    g.add_task(SINK, weight)
    for i in range(n):
        g.add_task(middle(i), weight)
        g.add_dependency(SOURCE, middle(i))
        g.add_dependency(middle(i), SINK)
    return apply_source_proportional_comm(g, comm_ratio)


def fork_join_speedup_bound(
    weight: float, min_cycle_time: float, comm_ratio: float
) -> float:
    """The paper's analytic bound ``s <= w * t / c + 1`` (Section 5.3)."""
    if comm_ratio <= 0:
        return float("inf")
    return weight * min_cycle_time / comm_ratio + 1.0
