"""The LAPLACE testbed: the diamond (wavefront) DAG of a Laplace solver.

One sweep of a Gauss-Seidel-style Laplace solver updates grid point
``(i, j)`` from its already-updated west and north neighbours, giving
the dependence structure ``(i, j) -> (i+1, j)`` and ``(i, j) -> (i, j+1)``
on an ``m x m`` grid.  All weights are 1 (Section 5.2).

Every source-to-sink path in this DAG has exactly ``2m - 1`` tasks, so
*every* node lies on a critical path — the property the paper quotes
("all nodes are on a critical path") to explain why a large chunk
``B = 38`` is best: no task is more urgent than another, and the big
chunk lets ILHA balance load and kill communications.
"""

from __future__ import annotations

from ..core.exceptions import GraphError
from ..core.taskgraph import TaskGraph
from .base import PAPER_COMM_RATIO, apply_source_proportional_comm, register_generator


def cell(i: int, j: int) -> tuple:
    return (i, j)


@register_generator("laplace")
def laplace_graph(m: int, comm_ratio: float = PAPER_COMM_RATIO) -> TaskGraph:
    """Diamond DAG on an ``m x m`` grid (problem size = grid side ``m``)."""
    if m < 1:
        raise GraphError(f"laplace needs m >= 1, got {m}")
    g = TaskGraph(name=f"laplace-{m}")
    for i in range(m):
        for j in range(m):
            g.add_task(cell(i, j), 1.0)
    for i in range(m):
        for j in range(m):
            if i + 1 < m:
                g.add_dependency(cell(i, j), cell(i + 1, j))
            if j + 1 < m:
                g.add_dependency(cell(i, j), cell(i, j + 1))
    return apply_source_proportional_comm(g, comm_ratio)
