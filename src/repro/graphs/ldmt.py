"""The LDMt testbed: the task graph of the LDMᵗ decomposition.

The LDMᵗ factorization ``A = L D Mᵗ`` computes at each step ``k`` both a
column of ``L`` and a row of ``Mᵗ`` (two independent triangular-solve
families) before the diagonal entry of ``D`` can advance.  Like
DOOLITTLE, the inner products grow with the step — Section 5.2: "the
weight of a task at level k is k" — but each step carries *two* update
tasks per remaining column, so the graph is roughly twice as wide.
That extra width is consistent with the paper measuring a higher
speedup for LDMt (≈4.9) than for DOOLITTLE (≈4.4).

Structure per step ``k = 1 .. n-1``: a diagonal task ``d(k)`` feeds
L-updates ``l(k, j)`` and M-updates ``m(k, j)`` for ``j = k+1 .. n``;
each column's L-chain and M-chain advance independently, and the next
diagonal needs both first updates of the previous step.
"""

from __future__ import annotations

from ..core.exceptions import GraphError
from ..core.taskgraph import TaskGraph
from .base import PAPER_COMM_RATIO, apply_source_proportional_comm, register_generator


def diag(k: int) -> tuple:
    return ("d", k)


def l_update(k: int, j: int) -> tuple:
    return ("l", k, j)


def m_update(k: int, j: int) -> tuple:
    return ("m", k, j)


@register_generator("ldmt")
def ldmt_graph(n: int, comm_ratio: float = PAPER_COMM_RATIO) -> TaskGraph:
    """LDMᵗ decomposition DAG for an ``n x n`` matrix (size = ``n``)."""
    if n < 2:
        raise GraphError(f"ldmt needs n >= 2, got {n}")
    g = TaskGraph(name=f"ldmt-{n}")
    for k in range(1, n):
        w = float(k)
        g.add_task(diag(k), w)
        for j in range(k + 1, n + 1):
            g.add_task(l_update(k, j), w)
            g.add_task(m_update(k, j), w)
    for k in range(1, n):
        for j in range(k + 1, n + 1):
            g.add_dependency(diag(k), l_update(k, j))
            g.add_dependency(diag(k), m_update(k, j))
        if k + 1 < n:
            g.add_dependency(l_update(k, k + 1), diag(k + 1))
            g.add_dependency(m_update(k, k + 1), diag(k + 1))
            for j in range(k + 2, n + 1):
                g.add_dependency(l_update(k, j), l_update(k + 1, j))
                g.add_dependency(m_update(k, j), m_update(k + 1, j))
    return apply_source_proportional_comm(g, comm_ratio)
