"""The LU testbed: the task graph of Gaussian elimination.

The classical kernel of the paper's reference [5] (Cosnard, Marrakchi,
Robert & Trystram, *Parallel Gaussian elimination on a MIMD computer*):
factoring an ``n x n`` matrix proceeds in steps ``k = 1 .. n-1``; step
``k`` prepares the pivot column (task ``p(k)``) and then updates every
remaining column ``j`` in ``k+1 .. n`` (task ``u(k, j)``).

Dependences:

* ``p(k) -> u(k, j)`` — the multipliers of column ``k`` feed every
  update of step ``k``;
* ``u(k, k+1) -> p(k+1)`` — the next pivot column must be up to date;
* ``u(k, j) -> u(k+1, j)`` for ``j >= k+2`` — updating column ``j`` at
  step ``k+1`` needs its state after step ``k``.

Weights follow Section 5.2: every task of step ``k`` (both pivot and
updates) costs ``n - k`` — the updated vectors shrink as elimination
proceeds.  The graph has ``(n-1)(n+2)/2`` tasks; its available
parallelism (the step width ``n - k``) shrinks towards the end, which is
why the paper finds a *small* chunk ``B = 4`` best: the critical path
(the pivot chain) must advance quickly.
"""

from __future__ import annotations

from ..core.exceptions import GraphError
from ..core.taskgraph import TaskGraph
from .base import PAPER_COMM_RATIO, apply_source_proportional_comm, register_generator


def pivot(k: int) -> tuple:
    return ("p", k)


def update(k: int, j: int) -> tuple:
    return ("u", k, j)


@register_generator("lu")
def lu_graph(n: int, comm_ratio: float = PAPER_COMM_RATIO) -> TaskGraph:
    """LU elimination DAG for an ``n x n`` matrix (problem size = ``n``)."""
    if n < 2:
        raise GraphError(f"lu needs n >= 2, got {n}")
    g = TaskGraph(name=f"lu-{n}")
    for k in range(1, n):
        w = float(n - k)
        g.add_task(pivot(k), w)
        for j in range(k + 1, n + 1):
            g.add_task(update(k, j), w)
    for k in range(1, n):
        for j in range(k + 1, n + 1):
            g.add_dependency(pivot(k), update(k, j))
        if k + 1 < n:
            g.add_dependency(update(k, k + 1), pivot(k + 1))
            for j in range(k + 2, n + 1):
                g.add_dependency(update(k, j), update(k + 1, j))
    return apply_source_proportional_comm(g, comm_ratio)


def lu_task_count(n: int) -> int:
    """Closed form for the number of tasks of :func:`lu_graph`."""
    return (n - 1) * (n + 2) // 2
