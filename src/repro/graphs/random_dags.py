"""Random DAG generators for property-based testing and extra experiments.

Two families:

* :func:`layered_random` — tasks arranged in layers with edges only
  between consecutive layers (the shape of most numerical kernels); the
  width, depth, and edge density are controllable, and every non-entry
  task is guaranteed at least one parent so the DAG stays connected
  "downwards".
* :func:`random_dag` — Erdős–Rényi over a fixed topological order: edge
  ``i -> j`` (``i < j``) present independently with probability ``p``.

Both take explicit seeds and draw weights/volumes from user ranges, so
hypothesis-driven tests can shrink failures deterministically.
"""

from __future__ import annotations

import random

from ..core.exceptions import GraphError
from ..core.taskgraph import TaskGraph


def layered_random(
    num_layers: int,
    width: int,
    density: float = 0.5,
    seed: int = 0,
    weight_range: tuple[float, float] = (1.0, 10.0),
    data_range: tuple[float, float] = (0.0, 10.0),
) -> TaskGraph:
    """Layered DAG: ``num_layers`` layers of up to ``width`` tasks each.

    Each task of layer ``i+1`` connects to each task of layer ``i`` with
    probability ``density``; tasks left parentless get one uniformly
    random parent from the previous layer.
    """
    if num_layers < 1 or width < 1:
        raise GraphError(f"need num_layers, width >= 1, got {num_layers}, {width}")
    if not (0.0 <= density <= 1.0):
        raise GraphError(f"density must be in [0, 1], got {density}")
    rng = random.Random(seed)
    g = TaskGraph(name=f"layered-{num_layers}x{width}-s{seed}")
    layers: list[list[tuple]] = []
    for layer in range(num_layers):
        size = rng.randint(1, width)
        nodes = [(layer, i) for i in range(size)]
        for node in nodes:
            g.add_task(node, rng.uniform(*weight_range))
        layers.append(nodes)
    for prev, cur in zip(layers, layers[1:]):
        for node in cur:
            parents = [p for p in prev if rng.random() < density]
            if not parents:
                parents = [prev[rng.randrange(len(prev))]]
            for p in parents:
                g.add_dependency(p, node, rng.uniform(*data_range))
    return g


def random_dag(
    n: int,
    edge_prob: float = 0.3,
    seed: int = 0,
    weight_range: tuple[float, float] = (1.0, 10.0),
    data_range: tuple[float, float] = (0.0, 10.0),
) -> TaskGraph:
    """Erdős–Rényi DAG on ``n`` topologically ordered tasks."""
    if n < 1:
        raise GraphError(f"n must be >= 1, got {n}")
    if not (0.0 <= edge_prob <= 1.0):
        raise GraphError(f"edge_prob must be in [0, 1], got {edge_prob}")
    rng = random.Random(seed)
    g = TaskGraph(name=f"random-{n}-s{seed}")
    for i in range(n):
        g.add_task(i, rng.uniform(*weight_range))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < edge_prob:
                g.add_dependency(i, j, rng.uniform(*data_range))
    return g
