"""Random DAG generators for property-based testing and extra experiments.

Three families:

* :func:`layered_random` — tasks arranged in layers with edges only
  between consecutive layers (the shape of most numerical kernels); the
  width, depth, and edge density are controllable, and every non-entry
  task is guaranteed at least one parent so the DAG stays connected
  "downwards".
* :func:`random_dag` — Erdős–Rényi over a fixed topological order: edge
  ``i -> j`` (``i < j``) present independently with probability ``p``.
* :func:`irregular_dag` — skewed fan-out over a topological order: a few
  hub tasks fan out widely while most tasks have one or two local
  parents, and weights are drawn from a heavy-tailed range.  This is the
  "nothing like the six testbeds" shape campaigns use to probe the
  heuristics off the paper's regular structures.

All take explicit seeds and draw weights/volumes from user ranges, so
hypothesis-driven tests can shrink failures deterministically.

The :func:`layered_testbed` / :func:`irregular_testbed` wrappers register
the first and third family in the testbed registry (names ``layered`` /
``irregular``) with the convention every paper testbed follows — edge
volume = ``comm_ratio`` × source weight — so campaign grids can sweep
them by name next to ``lu`` or ``stencil``, with ``seed`` as an extra
graph parameter.
"""

from __future__ import annotations

import random

from ..core.exceptions import GraphError
from ..core.taskgraph import TaskGraph
from .base import PAPER_COMM_RATIO, apply_source_proportional_comm, register_generator


def layered_random(
    num_layers: int,
    width: int,
    density: float = 0.5,
    seed: int = 0,
    weight_range: tuple[float, float] = (1.0, 10.0),
    data_range: tuple[float, float] = (0.0, 10.0),
) -> TaskGraph:
    """Layered DAG: ``num_layers`` layers of up to ``width`` tasks each.

    Each task of layer ``i+1`` connects to each task of layer ``i`` with
    probability ``density``; tasks left parentless get one uniformly
    random parent from the previous layer.
    """
    if num_layers < 1 or width < 1:
        raise GraphError(f"need num_layers, width >= 1, got {num_layers}, {width}")
    if not (0.0 <= density <= 1.0):
        raise GraphError(f"density must be in [0, 1], got {density}")
    rng = random.Random(seed)
    g = TaskGraph(name=f"layered-{num_layers}x{width}-s{seed}")
    layers: list[list[tuple]] = []
    for layer in range(num_layers):
        size = rng.randint(1, width)
        nodes = [(layer, i) for i in range(size)]
        for node in nodes:
            g.add_task(node, rng.uniform(*weight_range))
        layers.append(nodes)
    for prev, cur in zip(layers, layers[1:]):
        for node in cur:
            parents = [p for p in prev if rng.random() < density]
            if not parents:
                parents = [prev[rng.randrange(len(prev))]]
            for p in parents:
                g.add_dependency(p, node, rng.uniform(*data_range))
    return g


def random_dag(
    n: int,
    edge_prob: float = 0.3,
    seed: int = 0,
    weight_range: tuple[float, float] = (1.0, 10.0),
    data_range: tuple[float, float] = (0.0, 10.0),
) -> TaskGraph:
    """Erdős–Rényi DAG on ``n`` topologically ordered tasks."""
    if n < 1:
        raise GraphError(f"n must be >= 1, got {n}")
    if not (0.0 <= edge_prob <= 1.0):
        raise GraphError(f"edge_prob must be in [0, 1], got {edge_prob}")
    rng = random.Random(seed)
    g = TaskGraph(name=f"random-{n}-s{seed}")
    for i in range(n):
        g.add_task(i, rng.uniform(*weight_range))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < edge_prob:
                g.add_dependency(i, j, rng.uniform(*data_range))
    return g


def irregular_dag(
    n: int,
    seed: int = 0,
    hub_prob: float = 0.08,
    locality: int = 12,
    weight_range: tuple[float, float] = (1.0, 8.0),
    hub_weight_scale: float = 4.0,
    data_range: tuple[float, float] = (0.0, 10.0),
) -> TaskGraph:
    """Skewed-degree DAG: rare heavy hubs, mostly local light tasks.

    Tasks are laid out in a topological order.  Each task is a *hub*
    with probability ``hub_prob``; hubs carry ``hub_weight_scale`` times
    the base weight and later tasks preferentially attach to the nearest
    preceding hub.  Every non-entry task draws one or two parents from a
    ``locality``-sized window behind it, so the graph mixes long hub
    fan-outs with short local chains — wide and irregular rather than
    layered.
    """
    if n < 1:
        raise GraphError(f"n must be >= 1, got {n}")
    if not (0.0 <= hub_prob <= 1.0):
        raise GraphError(f"hub_prob must be in [0, 1], got {hub_prob}")
    if locality < 1:
        raise GraphError(f"locality must be >= 1, got {locality}")
    rng = random.Random(seed)
    g = TaskGraph(name=f"irregular-{n}-s{seed}")
    hubs: list[int] = []
    for i in range(n):
        is_hub = rng.random() < hub_prob
        weight = rng.uniform(*weight_range)
        if is_hub:
            weight *= hub_weight_scale
        g.add_task(i, weight)
        if i > 0:
            lo = max(0, i - locality)
            parents = {rng.randrange(lo, i)}
            if rng.random() < 0.5:
                parents.add(rng.randrange(lo, i))
            if hubs and rng.random() < 0.6:
                parents.add(hubs[-1])
            for p in sorted(parents):
                g.add_dependency(p, i, rng.uniform(*data_range))
        if is_hub:
            hubs.append(i)
    return g


@register_generator("layered")
def layered_testbed(
    size: int,
    comm_ratio: float = PAPER_COMM_RATIO,
    seed: int = 0,
    width: int = 8,
    density: float = 0.35,
) -> TaskGraph:
    """Seeded layered testbed: ``size`` layers of up to ``width`` tasks.

    Edge volumes follow the paper's source-proportional rule so the
    communication-to-computation balance matches the six paper testbeds.
    """
    g = layered_random(size, width, density=density, seed=seed)
    return apply_source_proportional_comm(g, comm_ratio)


@register_generator("irregular")
def irregular_testbed(
    size: int,
    comm_ratio: float = PAPER_COMM_RATIO,
    seed: int = 0,
    hub_prob: float = 0.08,
    locality: int = 12,
) -> TaskGraph:
    """Seeded irregular testbed: ``size`` tasks of :func:`irregular_dag`."""
    g = irregular_dag(size, seed=seed, hub_prob=hub_prob, locality=locality)
    return apply_source_proportional_comm(g, comm_ratio)
