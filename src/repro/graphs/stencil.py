"""The STENCIL testbed: a row-synchronous three-point stencil DAG.

Task ``(r, c)`` of row ``r`` depends on up to three tasks of the
previous row: ``(r-1, c-1)``, ``(r-1, c)``, ``(r-1, c+1)``.  All
weights are 1 (Section 5.2).

This is the testbed where the paper observes *decreasing* speedup as
the problem grows (Figure 12): once the row width exceeds the processor
count, every row boundary between two processors forces cross messages
that the one-port model serializes on the senders' and receivers'
ports, and these serialized transfers become the bottleneck.
"""

from __future__ import annotations

from ..core.exceptions import GraphError
from ..core.taskgraph import TaskGraph
from .base import PAPER_COMM_RATIO, apply_source_proportional_comm, register_generator


def cell(r: int, c: int) -> tuple:
    return (r, c)


def stencil_grid(
    width: int, height: int, comm_ratio: float = PAPER_COMM_RATIO
) -> TaskGraph:
    """Stencil DAG with explicit ``width`` (columns) and ``height`` (rows)."""
    if width < 1 or height < 1:
        raise GraphError(f"stencil needs width, height >= 1, got {width}x{height}")
    g = TaskGraph(name=f"stencil-{width}x{height}")
    for r in range(height):
        for c in range(width):
            g.add_task(cell(r, c), 1.0)
    for r in range(1, height):
        for c in range(width):
            for dc in (-1, 0, 1):
                if 0 <= c + dc < width:
                    g.add_dependency(cell(r - 1, c + dc), cell(r, c))
    return apply_source_proportional_comm(g, comm_ratio)


@register_generator("stencil")
def stencil_graph(
    m: int, comm_ratio: float = PAPER_COMM_RATIO, rows: int | None = None
) -> TaskGraph:
    """``m``-wide stencil: square by default, ``rows`` high when given.

    ``rows`` exposes the Figure 12 band shape (width = size, fixed
    height) through the testbed registry so campaigns can sweep it.
    """
    return stencil_grid(m, rows if rows is not None else m, comm_ratio)
