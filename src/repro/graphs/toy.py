"""The Figure 3 toy example: two forks sharing two children.

Tasks ``a0`` and ``b0`` each have three private children (``a1..a3`` /
``b1..b3``) and share two children ``ab1, ab2`` that depend on both.
All computation and communication costs are 1.  On two identical
processors the paper's Figure 4 shows HEFT reaching makespan 6 while
ILHA (with ``B >= 8``) reaches 5 with dramatically fewer messages —
ILHA's Step 1 keeps each fork's private children with their parent.

The bottom levels of the eight children tie, so the paper fixes the
ready order ``a1, a2, a3, ab1, ab2, b3, b2, b1``; :func:`toy_priority_key`
reproduces it.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..core.taskgraph import TaskGraph

#: The paper's tie-break order for the eight children (Section 4.4).
PAPER_CHILD_ORDER = ("a1", "a2", "a3", "ab1", "ab2", "b3", "b2", "b1")


def toy_graph() -> TaskGraph:
    """Build the Figure 3 graph (10 tasks, unit weights and volumes)."""
    g = TaskGraph(name="toy-fig3")
    for v in ("a0", "b0", "a1", "a2", "a3", "ab1", "ab2", "b1", "b2", "b3"):
        g.add_task(v, 1.0)
    for c in ("a1", "a2", "a3", "ab1", "ab2"):
        g.add_dependency("a0", c, 1.0)
    for c in ("ab1", "ab2", "b1", "b2", "b3"):
        g.add_dependency("b0", c, 1.0)
    return g


def toy_priority_key(task: Hashable) -> tuple:
    """Ready-queue key reproducing the paper's stated order.

    The roots keep the highest priority (they are the only ready tasks
    initially); the children follow the exact sequence of Section 4.4.
    """
    if task in ("a0", "b0"):
        return (0, 0 if task == "a0" else 1)
    return (1, PAPER_CHILD_ORDER.index(task))
