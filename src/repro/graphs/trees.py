"""Tree-shaped task graphs: broadcasts and reductions.

The fork graph of the paper's complexity section is the depth-1
broadcast; these generators provide the general out-tree (broadcast /
divide) and in-tree (reduction / conquer) families used throughout the
scheduling literature, for experiments beyond the paper's six testbeds
("more extensive experimental validation", Section 6).

Under the one-port model, trees stress a single phenomenon: at each
internal node all child messages serialize on one send port (out-tree)
or all parent messages on one receive port (in-tree).
"""

from __future__ import annotations

from ..core.exceptions import GraphError
from ..core.taskgraph import TaskGraph
from .base import PAPER_COMM_RATIO, apply_source_proportional_comm


def out_tree(
    depth: int,
    arity: int = 2,
    weight: float = 1.0,
    comm_ratio: float = PAPER_COMM_RATIO,
) -> TaskGraph:
    """Complete ``arity``-ary broadcast tree of the given ``depth``.

    The root is level 0; every node feeds ``arity`` children.  Node ids
    are ``(level, index)``.
    """
    if depth < 0 or arity < 1:
        raise GraphError(f"need depth >= 0 and arity >= 1, got {depth}, {arity}")
    g = TaskGraph(name=f"out-tree-d{depth}-a{arity}")
    for level in range(depth + 1):
        for i in range(arity**level):
            g.add_task((level, i), weight)
    for level in range(depth):
        for i in range(arity**level):
            for c in range(arity):
                g.add_dependency((level, i), (level + 1, i * arity + c))
    return apply_source_proportional_comm(g, comm_ratio)


def in_tree(
    depth: int,
    arity: int = 2,
    weight: float = 1.0,
    comm_ratio: float = PAPER_COMM_RATIO,
) -> TaskGraph:
    """Complete ``arity``-ary reduction tree: leaves at level 0 merge
    down to a single root at level ``depth``."""
    if depth < 0 or arity < 1:
        raise GraphError(f"need depth >= 0 and arity >= 1, got {depth}, {arity}")
    g = TaskGraph(name=f"in-tree-d{depth}-a{arity}")
    for level in range(depth + 1):
        for i in range(arity ** (depth - level)):
            g.add_task((level, i), weight)
    for level in range(depth):
        for i in range(arity ** (depth - level - 1)):
            for c in range(arity):
                g.add_dependency((level, i * arity + c), (level + 1, i))
    return apply_source_proportional_comm(g, comm_ratio)


def diamond_chain(
    stages: int,
    width: int,
    weight: float = 1.0,
    comm_ratio: float = PAPER_COMM_RATIO,
) -> TaskGraph:
    """Alternating fork-join stages: a chain of ``stages`` bundles of
    ``width`` parallel tasks between synchronization points.

    Models iterative bulk-synchronous computations; each join node is a
    one-port receive hot-spot, each fork node a send hot-spot.
    """
    if stages < 1 or width < 1:
        raise GraphError(f"need stages, width >= 1, got {stages}, {width}")
    g = TaskGraph(name=f"diamond-chain-{stages}x{width}")
    g.add_task(("sync", 0), weight)
    for s in range(stages):
        for i in range(width):
            g.add_task(("par", s, i), weight)
            g.add_dependency(("sync", s), ("par", s, i))
        g.add_task(("sync", s + 1), weight)
        for i in range(width):
            g.add_dependency(("par", s, i), ("sync", s + 1))
    return apply_source_proportional_comm(g, comm_ratio)
