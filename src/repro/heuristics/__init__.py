"""Scheduling heuristics for the macro-dataflow and one-port models.

Importing this package registers every scheduler with the registry, so
``get_scheduler("ilha", b=20)`` works after ``import repro.heuristics``.
"""

from .base import (
    Candidate,
    ReadyQueue,
    Scheduler,
    SchedulerState,
    available_schedulers,
    force_object_state,
    get_scheduler,
    make_model,
    register_scheduler,
)
from .state_object import ObjectSchedulerState
from .bil import BIL, best_imaginary_levels
from .cpop import CPOP
from .fixed import FixedAllocation
from .gdl import GDL
from .heft import HEFT
from .ilha import ILHA, ILHAClassic, TunedILHA, default_chunk_size
from .minmin import MaxMin, MinMin
from .pct import PCT
from .simple import RandomMapper, Serial

# imported last: repro.search builds on heuristics.base and registers the
# ``ils`` improvement wrapper as a scheduler
from ..search.ils import IteratedLocalSearch

__all__ = [
    "BIL",
    "CPOP",
    "Candidate",
    "FixedAllocation",
    "GDL",
    "HEFT",
    "ILHA",
    "ILHAClassic",
    "IteratedLocalSearch",
    "MaxMin",
    "MinMin",
    "ObjectSchedulerState",
    "PCT",
    "RandomMapper",
    "ReadyQueue",
    "Scheduler",
    "SchedulerState",
    "Serial",
    "TunedILHA",
    "available_schedulers",
    "best_imaginary_levels",
    "default_chunk_size",
    "force_object_state",
    "get_scheduler",
    "make_model",
    "register_scheduler",
]
