"""Shared machinery for list-scheduling heuristics.

:class:`SchedulerState` owns everything a heuristic mutates while
building a schedule: one compute :class:`~repro.core.timeline.Timeline`
per processor, the communication state of the chosen model, the
:class:`~repro.core.schedule.Schedule` under construction, and the
finish times seen so far.  Its :meth:`~SchedulerState.evaluate` /
:meth:`~SchedulerState.commit` pair implements the earliest-finish-time
(EFT) engine all heuristics in this package are built on: evaluating a
candidate books the task's incoming communications *tentatively* through
the model's trial mechanism (Section 4.3 of the paper), so rejected
candidates leave no trace.

:class:`ReadyQueue` maintains the ready set ordered by priority, and the
:func:`register_scheduler` registry lets experiments construct heuristics
by name.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections.abc import Callable, Hashable, Iterable, Sequence
from dataclasses import dataclass

from ..core.exceptions import ConfigurationError, SchedulingError
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..core.timeline import Timeline
from ..kernel import compile_statics
from ..models.base import CommTrial, CommunicationModel
from ..models.macro_dataflow import MacroDataflowModel
from ..models.one_port import OnePortModel

TaskId = Hashable
PriorityKey = Callable[[TaskId], tuple]


def make_model(platform: Platform, model: str | CommunicationModel) -> CommunicationModel:
    """Resolve a model name (``"one-port"`` / ``"macro-dataflow"``) or pass through."""
    if isinstance(model, CommunicationModel):
        return model
    if model == "one-port":
        return OnePortModel(platform)
    if model == "macro-dataflow":
        return MacroDataflowModel(platform)
    raise ConfigurationError(f"unknown communication model {model!r}")


@dataclass(slots=True)
class Candidate:
    """Outcome of evaluating one (task, processor) placement."""

    task: TaskId
    proc: int
    start: float
    finish: float
    trial: CommTrial


class SchedulerState:
    """Mutable state of one scheduling run (see module docstring)."""

    __slots__ = (
        "graph",
        "platform",
        "model",
        "maps",
        "kernel",
        "compute",
        "comm",
        "schedule",
        "finish",
        "insertion",
    )

    def __init__(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: CommunicationModel,
        heuristic: str = "",
        insertion: bool = True,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.platform = platform
        self.model = model
        self.maps = graph.as_maps()
        #: Shared flat arrays (interning, CSR parents, cost tables) —
        #: the candidate-trial inner loop reads these instead of
        #: per-call dict/attribute lookups.
        self.kernel = compile_statics(graph, platform)
        self.compute = [Timeline() for _ in platform.processors]
        if getattr(model, "wants_compute", False):
            # variant models (e.g. no communication/computation overlap)
            # book transfers on the compute timelines too
            model.bind_compute(self.compute)
        self.comm = model.new_state()
        self.schedule = Schedule(graph, platform, model=model.name, heuristic=heuristic)
        self.finish: dict[TaskId, float] = {}
        self.insertion = insertion

    # ------------------------------------------------------------------
    # EFT engine
    # ------------------------------------------------------------------
    def parents_info(self, task: TaskId) -> list[tuple[TaskId, int, float, float]]:
        """Incoming edges as ``(parent, parent_proc, parent_finish, data)``.

        Sorted by (finish, insertion index): the order in which the
        task's incoming messages are greedily booked on the ports.  The
        paper does not fix this order; first-finished-first is the
        natural greedy choice (data that exists earliest ships earliest).

        Reads the kernel's CSR parent rows and contiguous data-volume
        array — one edge index reaches parent, volume, and sort rank.
        """
        kernel = self.kernel
        placements = self.schedule.placements
        tasks, esrc, edata = kernel.tasks, kernel.esrc, kernel.edata
        keyed = []
        for e in kernel.pred_rows[kernel.intern(task)]:
            pi = esrc[e]
            parent = tasks[pi]
            placement = placements.get(parent)
            if placement is None:
                raise SchedulingError(
                    f"task {task!r} evaluated before its parent {parent!r} was scheduled"
                )
            keyed.append(
                (placement.finish, pi, (parent, placement.proc, placement.finish, edata[e]))
            )
        keyed.sort()
        return [item[2] for item in keyed]

    def evaluate(
        self,
        task: TaskId,
        proc: int,
        parents: Sequence[tuple[TaskId, int, float, float]] | None = None,
        insertion: bool | None = None,
    ) -> Candidate:
        """EFT of ``task`` on ``proc``: tentative comms + compute slot.

        Incoming messages are booked through a fresh model trial; the
        compute slot is the earliest free window of length
        ``w(task) * t_proc`` at or after the latest arrival (insertion
        scheduling by default).  Nothing is committed.
        """
        if parents is None:
            parents = self.parents_info(task)
        trial = self.comm.trial()
        est = 0.0
        for parent, pproc, pfinish, data in parents:
            arrival = trial.edge_arrival(parent, task, pproc, proc, pfinish, data)
            if arrival > est:
                est = arrival
        duration = self.kernel.exec_[self.kernel.intern(task)][proc]
        use_insertion = self.insertion if insertion is None else insertion
        if use_insertion:
            start = self.compute[proc].next_fit(est, duration)
        else:
            start = self.compute[proc].next_after_last(est)
        return Candidate(task, proc, start, start + duration, trial)

    def evaluate_all(
        self,
        task: TaskId,
        procs: Iterable[int] | None = None,
        insertion: bool | None = None,
    ) -> list[Candidate]:
        """Evaluate ``task`` on every processor (or the given subset)."""
        parents = self.parents_info(task)
        procs = self.platform.processors if procs is None else procs
        return [self.evaluate(task, proc, parents, insertion) for proc in procs]

    def best_candidate(
        self,
        task: TaskId,
        procs: Iterable[int] | None = None,
        insertion: bool | None = None,
    ) -> Candidate:
        """Minimum-EFT candidate; ties broken by start time then processor
        index (the paper's toy example sends ties to ``P0``)."""
        candidates = self.evaluate_all(task, procs, insertion)
        if not candidates:
            raise SchedulingError(f"no candidate processors for task {task!r}")
        return min(candidates, key=lambda c: (c.finish, c.start, c.proc))

    def commit(self, candidate: Candidate) -> None:
        """Make a candidate permanent: comms, compute window, placement."""
        candidate.trial.commit(self.schedule)
        self.compute[candidate.proc].reserve(
            candidate.start, candidate.finish, candidate.task
        )
        self.schedule.place(
            candidate.task, candidate.proc, candidate.start, candidate.finish
        )
        self.finish[candidate.task] = candidate.finish

    def schedule_on(
        self, task: TaskId, proc: int, insertion: bool | None = None
    ) -> Candidate:
        """Evaluate-and-commit ``task`` on a fixed processor."""
        candidate = self.evaluate(task, proc, insertion=insertion)
        self.commit(candidate)
        return candidate

    # ------------------------------------------------------------------
    # snapshots (for chunk-rescheduling variants)
    # ------------------------------------------------------------------
    def snapshot(self) -> "SchedulerState":
        """Deep copy: trial-run a whole chunk without touching this state."""
        dup = object.__new__(SchedulerState)
        dup.graph = self.graph
        dup.platform = self.platform
        dup.model = self.model
        dup.maps = self.maps
        dup.kernel = self.kernel  # immutable statics, shared
        dup.compute = [t.copy() for t in self.compute]
        dup.comm = self.comm.copy()
        if hasattr(dup.comm, "compute"):
            # compute-sharing models must follow the copied timelines
            dup.comm.compute = dup.compute
        dup.schedule = Schedule(
            self.graph,
            self.platform,
            model=self.schedule.model,
            heuristic=self.schedule.heuristic,
        )
        dup.schedule.placements = dict(self.schedule.placements)
        dup.schedule.comm_events = list(self.schedule.comm_events)
        dup.finish = dict(self.finish)
        dup.insertion = self.insertion
        return dup


class ReadyQueue:
    """Ready tasks ordered by priority (a heap keyed by ``key(task)``).

    Tracks the remaining in-degree of every task; :meth:`complete` marks
    a task finished and enqueues the children that became ready.
    """

    __slots__ = ("_key", "_heap", "_remaining", "_succs", "_index")

    def __init__(self, graph: TaskGraph, key: PriorityKey) -> None:
        maps = graph.as_maps()
        self._key = key
        self._succs = maps.succs
        self._index = maps.index
        self._remaining = {v: len(maps.preds[v]) for v in maps.preds}
        self._heap: list[tuple] = []
        for v in maps.index:
            if self._remaining[v] == 0:
                self._push(v)

    def _push(self, task: TaskId) -> None:
        # The unique insertion index keeps heap entries totally ordered
        # without ever comparing (possibly mixed-type) task ids.
        heapq.heappush(self._heap, (self._key(task), self._index[task], task))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def pop(self) -> TaskId:
        """Highest-priority ready task."""
        return heapq.heappop(self._heap)[-1]

    def pop_chunk(self, size: int) -> list[TaskId]:
        """Up to ``size`` highest-priority ready tasks, in priority order."""
        out = []
        while self._heap and len(out) < size:
            out.append(heapq.heappop(self._heap)[-1])
        return out

    def push_back(self, task: TaskId) -> None:
        """Return an unscheduled task to the queue (chunk leftovers)."""
        self._push(task)

    def complete(self, task: TaskId) -> list[TaskId]:
        """Mark ``task`` done; enqueue and return newly-ready children."""
        newly = []
        for child in self._succs[task]:
            self._remaining[child] -= 1
            if self._remaining[child] == 0:
                self._push(child)
                newly.append(child)
        return newly


class Scheduler(ABC):
    """Base class: a configured heuristic that schedules graphs."""

    #: Registry name; subclasses set this.
    name: str = ""

    @abstractmethod
    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        """Schedule ``graph`` on ``platform`` under ``model``."""

    def __call__(self, graph, platform, model="one-port") -> Schedule:
        return self.run(graph, platform, model)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, type[Scheduler]] = {}


def register_scheduler(cls: type[Scheduler]) -> type[Scheduler]:
    """Class decorator adding a scheduler to the global registry."""
    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} has no registry name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"duplicate scheduler name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_schedulers() -> list[str]:
    """Names of all registered schedulers."""
    return sorted(_REGISTRY)
