"""Shared machinery for list-scheduling heuristics.

:class:`SchedulerState` owns everything a heuristic mutates while
building a schedule, and its :meth:`~SchedulerState.evaluate` /
:meth:`~SchedulerState.commit` pair implements the earliest-finish-time
(EFT) engine all heuristics in this package are built on: evaluating a
candidate books the task's incoming communications *tentatively*
through the model's trial mechanism (Section 4.3 of the paper), so
rejected candidates leave no trace.

Since the builder layer (PR 5) the default implementation is **flat**:
resource state lives in a :class:`~repro.kernel.builder.FlatBuilder`
(per-processor compute rows plus the model's port rows, all contiguous
sorted float lists indexed by interned ids), placements and finish
times are arrays indexed by task index, and a trial is a generation
stamp — rejecting a candidate is O(1) with zero object churn.  Message
booking is delegated to the model's
:class:`~repro.models.base.FlatBooker`; models without one (multi-hop
routing) and callers inside :func:`force_object_state` transparently
get :class:`~repro.heuristics.state_object.ObjectSchedulerState`, the
retained object-level reference implementation that the flat path is
asserted bit-identical against.

:meth:`~SchedulerState.evaluate_all` is the batched sweep behind
:meth:`~SchedulerState.best_candidate`: it resolves and sorts the
task's parents once and books all processors in one pass.
:meth:`~SchedulerState.mark` / :meth:`~SchedulerState.restore` give
O(changed) scratch runs (ILHA's chunk pre-allocation) through the
builder's undo journal.

:class:`ReadyQueue` maintains the ready set ordered by priority, and the
:func:`register_scheduler` registry lets experiments construct heuristics
by name.  :func:`make_model` re-exports the models registry's single
resolution path.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections.abc import Callable, Hashable, Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter

from ..core.exceptions import ConfigurationError, SchedulingError
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..kernel import compile_statics
from ..kernel.builder import FlatBuilder, row_next_fit
from ..models import make_model
from ..models.base import CommTrial, CommunicationModel
from ..obs import current as _obs_current
from ..obs import get_logger as _get_logger
from ..obs import stage_detail as _stage_detail

TaskId = Hashable
PriorityKey = Callable[[TaskId], tuple]

_INF = float("inf")

#: When True, ``SchedulerState(...)`` builds the object reference path
#: for every model (see :func:`force_object_state`).
_FORCE_OBJECT = False

#: Model names already warned about falling back to the object path —
#: once per process, so campaign sweeps are not flooded.
_FALLBACK_WARNED: set[str] = set()

#: Library diagnostics go through the ``repro.heuristics`` logger
#: (satisfying services that capture logs); set ``REPRO_LOG`` to surface
#: them on stderr — see :mod:`repro.obs.log`.
_LOG = _get_logger("heuristics")


def _warn_object_fallback(model) -> None:
    name = (
        getattr(model, "registry_name", "")
        or getattr(model, "name", "")
        or type(model).__name__
    )
    if name in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(name)
    _LOG.warning(
        "model %r has no flat booker: scheduling falls back to the object "
        "reference path (slower; kernel backend selection does not apply). "
        "The active implementation is recorded in Schedule.state_impl.",
        name,
    )


@contextmanager
def force_object_state():
    """Route every ``SchedulerState`` in the block through the object path.

    The equivalence suite wraps whole heuristic runs in this to produce
    reference schedules the flat path is compared against bit-for-bit.
    """
    global _FORCE_OBJECT
    prev = _FORCE_OBJECT
    _FORCE_OBJECT = True
    try:
        yield
    finally:
        _FORCE_OBJECT = prev


@dataclass(slots=True)
class Candidate:
    """Outcome of evaluating one (task, processor) placement.

    ``trial`` carries the object path's tentative bookings; flat-path
    candidates leave it ``None`` — their bookings are re-derived at
    commit time from the unchanged committed state.
    """

    task: TaskId
    proc: int
    start: float
    finish: float
    trial: CommTrial | None = None


class SchedulerState:
    """Mutable state of one scheduling run (see module docstring).

    The commit contract, which every list heuristic here satisfies: a
    candidate handed to :meth:`commit` was produced by :meth:`evaluate`
    against the *current* committed state (evaluations in between are
    fine, commits are not).
    """

    __slots__ = (
        "graph",
        "platform",
        "model",
        "maps",
        "kernel",
        "schedule",
        "finish",
        "insertion",
        "builder",
        "booker",
        "_proc_a",
        "_start_a",
        "_finish_a",
        "_ev_buf",
        "_pcache",
        "_place_log",
        "_compute_views",
        "_stats",
    )

    #: Recorded in ``Schedule.state_impl`` so cross-backend comparisons
    #: can verify which engine actually produced a schedule.
    state_impl_name = "flat-python"

    def __new__(cls, graph, platform, model, heuristic="", insertion=True):
        if cls is SchedulerState:
            if _FORCE_OBJECT or not getattr(model, "supports_flat", False):
                from .state_object import ObjectSchedulerState

                if not _FORCE_OBJECT:
                    _warn_object_fallback(model)
                cls = ObjectSchedulerState
            else:
                from ..kernel.backends import current_backend

                cls = current_backend().state_class() or cls
        return object.__new__(cls)

    def __init__(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: CommunicationModel,
        heuristic: str = "",
        insertion: bool = True,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.platform = platform
        self.model = model
        self.maps = graph.as_maps()
        #: Active obs collector, captured once (``None`` = stats off):
        #: the per-candidate paths pay one slot load + ``is not None``.
        stats = self._stats = _obs_current()
        #: Shared flat arrays (interning, CSR parents, cost tables).
        if stats is None:
            self.kernel = compile_statics(graph, platform)
        else:
            with stats.span("phase.statics"):
                self.kernel = compile_statics(graph, platform)
        #: Flat resource rows: compute rows 0..p-1 + the model's ports.
        self.builder = FlatBuilder(platform.num_processors)
        self.booker = model.flat_booker(self.builder, self.kernel)
        self.schedule = Schedule(
            graph,
            platform,
            model=model.name,
            heuristic=heuristic,
            state_impl=self.state_impl_name,
        )
        self.finish: dict[TaskId, float] = {}
        self.insertion = insertion
        n = self.kernel.num_tasks
        self._proc_a: list[int] = [-1] * n
        self._start_a: list[float] = [0.0] * n
        self._finish_a: list[float] = [0.0] * n
        self._ev_buf: list[tuple] = []
        self._pcache: tuple | None = None
        self._place_log: list[int] | None = None
        self._compute_views = None

    # ------------------------------------------------------------------
    # EFT engine
    # ------------------------------------------------------------------
    def _parents(self, ti: int) -> list[tuple[float, int, int, int]]:
        """Interned parent rows ``(finish, parent_ix, edge_ix, proc)``.

        Sorted by (finish, parent index): the order in which the task's
        incoming messages are greedily booked on the ports.  The paper
        does not fix this order; first-finished-first is the natural
        greedy choice (data that exists earliest ships earliest).

        One-slot cache keyed by (task, commit epoch): commit re-reads
        the very list the evaluation sweep just built.  The epoch is
        the builder's monotone commit counter, so entries can never be
        revived by a rollback or by a placement-count coincidence.
        """
        key = (ti, self.builder.commit_count)
        cached = self._pcache
        if cached is not None and cached[0] == key:
            return cached[1]
        kernel = self.kernel
        esrc = kernel.esrc
        proc_a, finish_a = self._proc_a, self._finish_a
        out = []
        for e in kernel.pred_rows[ti]:
            pi = esrc[e]
            pproc = proc_a[pi]
            if pproc < 0:
                raise SchedulingError(
                    f"task {kernel.tasks[ti]!r} evaluated before its parent "
                    f"{kernel.tasks[pi]!r} was scheduled"
                )
            out.append((finish_a[pi], pi, e, pproc))
        out.sort()
        self._pcache = (key, out)
        return out

    def parent_procs(self, task: TaskId) -> set[int]:
        """Processors hosting ``task``'s already-scheduled parents."""
        kernel = self.kernel
        esrc = kernel.esrc
        proc_a = self._proc_a
        out = set()
        for e in kernel.pred_rows[kernel.intern(task)]:
            pproc = proc_a[esrc[e]]
            if pproc < 0:
                raise SchedulingError(
                    f"parent {kernel.tasks[esrc[e]]!r} of {task!r} is not scheduled"
                )
            out.add(pproc)
        return out

    def parents_info(self, task: TaskId) -> list[tuple[TaskId, int, float, float]]:
        """Incoming edges as ``(parent, parent_proc, parent_finish, data)``,
        in greedy booking order (see :meth:`_parents`)."""
        kernel = self.kernel
        tasks, edata = kernel.tasks, kernel.edata
        return [
            (tasks[pi], pproc, pfinish, edata[e])
            for pfinish, pi, e, pproc in self._parents(kernel.intern(task))
        ]

    def _flat_parents_from(self, task: TaskId, parents) -> list:
        """Re-intern public ``parents_info`` rows (order preserved)."""
        kernel = self.kernel
        eindex, tindex = kernel.eindex, kernel.tindex
        return [
            (pfinish, tindex[parent], eindex[(parent, task)], pproc)
            for parent, pproc, pfinish, _data in parents
        ]

    def _eval_one(
        self, task: TaskId, ti: int, proc: int, parents, insertion: bool | None
    ) -> Candidate:
        builder = self.builder
        builder.gen += 1  # begin_trial: rejecting this candidate is free
        stats = self._stats
        detail = stats is not None and _stage_detail()
        if stats is not None:
            stats.inc("builder.candidates")
        if detail:
            t0 = perf_counter()
        est = self.booker.trial_est(parents, proc)
        if detail:
            stats.add_time("stage.seed", perf_counter() - t0)
        duration = self.kernel.exec_[ti][proc]
        if self.insertion if insertion is None else insertion:
            if detail:
                t0 = perf_counter()
            start = row_next_fit(builder.rows_s[proc], builder.rows_e[proc], est, duration)
            if detail:
                stats.add_time("stage.gap", perf_counter() - t0)
        else:
            ce = builder.rows_e[proc]
            last = ce[-1] if ce else 0.0
            start = est if est >= last else last
        return Candidate(task, proc, start, start + duration)

    def evaluate(
        self,
        task: TaskId,
        proc: int,
        parents: Sequence[tuple[TaskId, int, float, float]] | None = None,
        insertion: bool | None = None,
    ) -> Candidate:
        """EFT of ``task`` on ``proc``: tentative comms + compute slot.

        Incoming messages are booked tentatively through the model's
        flat booker; the compute slot is the earliest free window of
        length ``w(task) * t_proc`` at or after the latest arrival
        (insertion scheduling by default).  Nothing is committed.

        ``parents``, when given, must be :meth:`parents_info` rows for
        the *current* placements (passing it only saves recomputation).
        A candidate probed under hypothetical parent rows is
        evaluate-only: :meth:`commit` re-derives bookings from the
        actual placements and would not honor the adjustment.
        """
        ti = self.kernel.intern(task)
        if parents is None:
            flat = self._parents(ti)
        else:
            flat = self._flat_parents_from(task, parents)
        return self._eval_one(task, ti, proc, flat, insertion)

    def evaluate_all(
        self,
        task: TaskId,
        procs: Iterable[int] | None = None,
        insertion: bool | None = None,
    ) -> list[Candidate]:
        """Evaluate ``task`` on every processor (or the given subset).

        The batched sweep: parents are resolved and sorted once, then
        every processor is booked in one pass over the flat rows.
        """
        ti = self.kernel.intern(task)
        flat = self._parents(ti)
        procs = self.platform.processors if procs is None else procs
        return [self._eval_one(task, ti, proc, flat, insertion) for proc in procs]

    def best_candidate(
        self,
        task: TaskId,
        procs: Iterable[int] | None = None,
        insertion: bool | None = None,
    ) -> Candidate:
        """Minimum-EFT candidate; ties broken by start time then processor
        index (the paper's toy example sends ties to ``P0``).

        Sweeps the processors like :meth:`evaluate_all` but keeps only
        the running best, so the losing candidates cost no allocation
        at all.
        """
        ti = self.kernel.intern(task)
        flat = self._parents(ti)
        procs = self.platform.processors if procs is None else procs
        builder = self.builder
        booker = self.booker
        exec_row = self.kernel.exec_[ti]
        use_insertion = self.insertion if insertion is None else insertion
        rows_s, rows_e = builder.rows_s, builder.rows_e
        # Exact pruning bound: every candidate starts no earlier than
        # its latest parent finish, so ``maxpf + duration`` is a lower
        # bound on its finish.  A processor whose bound is *strictly*
        # above the incumbent finish cannot win (ties still evaluate —
        # they may win on start time), so skipping it never changes the
        # selected candidate.  On partially linked platforms pruning is
        # disabled: the object path probes every (parent, proc) link
        # and raises PlatformError on a missing one, and skipping a
        # probe would skip that check too.
        prunable = self.kernel.all_links_finite
        maxpf = flat[-1][0] if flat else 0.0
        bf = bs = _INF
        bp = None
        stats = self._stats
        detail = stats is not None and _stage_detail()
        if detail:
            t_sweep = perf_counter()
        for proc in procs:
            duration = exec_row[proc]
            if prunable and maxpf + duration > bf:
                if stats is not None:
                    stats.inc("builder.prune.maxpf")
                continue
            ce = rows_e[proc]
            last = ce[-1] if ce else 0.0
            if prunable and not use_insertion and last + duration > bf:
                if stats is not None:
                    stats.inc("builder.prune.frontier")
                continue  # appended slots start no earlier than the frontier
            builder.gen += 1  # begin_trial
            if stats is not None:
                stats.inc("builder.candidates")
            if detail:
                t0 = perf_counter()
            est = booker.trial_est(flat, proc, bf if prunable else _INF, duration)
            if detail:
                stats.add_time("stage.seed", perf_counter() - t0)
            if prunable and est + duration > bf:
                if stats is not None:
                    stats.inc("builder.prune.abort")
                continue  # provably worse (possibly aborted mid-booking)
            if use_insertion:
                if detail:
                    t0 = perf_counter()
                start = row_next_fit(rows_s[proc], ce, est, duration)
                if detail:
                    stats.add_time("stage.gap", perf_counter() - t0)
            else:
                start = est if est >= last else last
            finish = start + duration
            if finish < bf or (
                finish == bf and (start < bs or (start == bs and proc < bp))
            ):
                bf, bs, bp = finish, start, proc
        if detail:
            stats.add_time("stage.sweep", perf_counter() - t_sweep)
        if bp is None:
            raise SchedulingError(f"no candidate processors for task {task!r}")
        return Candidate(task, bp, bs, bf)

    def _commit_comms(self, task: TaskId, ti: int, proc: int) -> float:
        """Re-derive and commit the task's message bookings + events.

        Returns the committed EST (latest arrival over all parents).
        """
        flat = self._parents(ti)
        builder = self.builder
        builder.gen += 1  # stale any tentative data: commit sees committed rows only
        out = self._ev_buf
        del out[:]
        est = self.booker.commit_est(flat, proc, out)
        if out:
            kernel = self.kernel
            tasks, esrc, edata = kernel.tasks, kernel.esrc, kernel.edata
            record = self.schedule.record_comm
            for e, q, start, dur in out:
                record(tasks[esrc[e]], task, q, proc, start, dur, edata[e])
        return est

    def _place(self, task: TaskId, ti: int, proc: int, start: float, finish: float) -> None:
        if self._stats is not None:
            self._stats.inc("builder.commits")
        self.builder.book(proc, start, finish)
        self._proc_a[ti] = proc
        self._start_a[ti] = start
        self._finish_a[ti] = finish
        self.schedule.place(task, proc, start, finish)
        self.finish[task] = finish
        if self._place_log is not None:
            self._place_log.append(ti)

    def commit(self, candidate: Candidate) -> None:
        """Make a candidate permanent: comms, compute window, placement.

        Flat candidates carry no trial object; their bookings are
        re-derived from the actual placements against the committed
        rows, which reproduces the evaluation's floats exactly under
        the commit contract (class docstring) — candidates evaluated
        with a hand-modified ``parents`` list are not committable.
        """
        task = candidate.task
        ti = self.kernel.intern(task)
        stats = self._stats
        detail = stats is not None and _stage_detail()
        if detail:
            t0 = perf_counter()
        self._commit_comms(task, ti, candidate.proc)
        self._place(task, ti, candidate.proc, candidate.start, candidate.finish)
        if detail:
            stats.add_time("stage.commit", perf_counter() - t0)

    def schedule_on(
        self, task: TaskId, proc: int, insertion: bool | None = None
    ) -> Candidate:
        """Evaluate-and-commit ``task`` on a fixed processor (one pass)."""
        ti = self.kernel.intern(task)
        builder = self.builder
        stats = self._stats
        detail = stats is not None and _stage_detail()
        if detail:
            t0 = perf_counter()
        est = self._commit_comms(task, ti, proc)
        if detail:
            stats.add_time("stage.commit", perf_counter() - t0)
        duration = self.kernel.exec_[ti][proc]
        if self.insertion if insertion is None else insertion:
            # committed transfer windows of this very task (no-overlap
            # model) all end at or before est, so the slot search sees
            # exactly what a tentative evaluation would have
            start = row_next_fit(builder.rows_s[proc], builder.rows_e[proc], est, duration)
        else:
            ce = builder.rows_e[proc]
            last = ce[-1] if ce else 0.0
            start = est if est >= last else last
        finish = start + duration
        self._place(task, ti, proc, start, finish)
        return Candidate(task, proc, start, finish)

    # ------------------------------------------------------------------
    # compute-row views (debugging / tests; mirrors the object path's
    # ``state.compute`` timelines)
    # ------------------------------------------------------------------
    @property
    def compute(self):
        """Per-processor compute-row views with a Timeline-like surface."""
        views = self._compute_views
        if views is None:
            views = self._compute_views = [
                ComputeRowView(self.builder, p)
                for p in range(self.platform.num_processors)
            ]
        return views

    # ------------------------------------------------------------------
    # scratch runs (chunk-rescheduling variants) and snapshots
    # ------------------------------------------------------------------
    def mark(self):
        """Checkpoint; undo everything after it with :meth:`restore`.

        O(changed): while a mark is active every committed mutation
        appends one undo record to the builder's journal.
        """
        cursor = self.builder.mark()
        if self._place_log is None:
            self._place_log = []
        return (cursor, len(self._place_log), len(self.schedule.comm_events))

    def restore(self, mark) -> None:
        """Roll back to ``mark``, undoing bookings/placements/events."""
        cursor, place_cursor, events_len = mark
        stats = self._stats
        detail = stats is not None and _stage_detail()
        if detail:
            t0 = perf_counter()
        self.builder.rollback(cursor)
        if detail:
            stats.add_time("stage.journal", perf_counter() - t0)
        tasks = self.kernel.tasks
        log = self._place_log
        for ti in reversed(log[place_cursor:]):
            self._proc_a[ti] = -1
            task = tasks[ti]
            del self.schedule.placements[task]
            del self.finish[task]
        del log[place_cursor:]
        if self.builder.log is None:  # outermost mark resolved
            self._place_log = None
        del self.schedule.comm_events[events_len:]

    def snapshot(self) -> "SchedulerState":
        """Independent deep copy (prefer :meth:`mark`/:meth:`restore`)."""
        dup = object.__new__(type(self))
        dup.graph = self.graph
        dup.platform = self.platform
        dup.model = self.model
        dup.maps = self.maps
        dup.kernel = self.kernel  # immutable statics, shared
        dup.builder = self.builder.copy()
        dup.booker = self.booker.rebind(dup.builder)
        dup.schedule = Schedule(
            self.graph,
            self.platform,
            model=self.schedule.model,
            heuristic=self.schedule.heuristic,
            state_impl=self.schedule.state_impl,
        )
        dup.schedule.placements = dict(self.schedule.placements)
        dup.schedule.comm_events = list(self.schedule.comm_events)
        dup.finish = dict(self.finish)
        dup.insertion = self.insertion
        dup._proc_a = list(self._proc_a)
        dup._start_a = list(self._start_a)
        dup._finish_a = list(self._finish_a)
        dup._ev_buf = []
        dup._pcache = None
        dup._place_log = None
        dup._compute_views = None
        dup._stats = self._stats
        return dup


class ComputeRowView:
    """Timeline-like view over one builder compute row (committed layer)."""

    __slots__ = ("_builder", "_proc")

    def __init__(self, builder: FlatBuilder, proc: int) -> None:
        self._builder = builder
        self._proc = proc

    def is_empty(self) -> bool:
        return not self._builder.rows_s[self._proc]

    def last_end(self) -> float:
        ce = self._builder.rows_e[self._proc]
        return ce[-1] if ce else 0.0

    def intervals(self) -> list[tuple[float, float]]:
        return self._builder.committed(self._proc)

    def next_fit(self, ready: float, duration: float) -> float:
        return self._builder.next_fit(self._proc, ready, duration)

    def next_after_last(self, ready: float) -> float:
        return self._builder.next_after_last(self._proc, ready)

    def reserve(self, start: float, end: float, tag=None) -> None:
        self._builder.book(self._proc, start, end)

    def __len__(self) -> int:
        return len(self._builder.rows_s[self._proc])


class ReadyQueue:
    """Ready tasks ordered by priority (a heap keyed by ``key(task)``).

    Tracks the remaining in-degree of every task; :meth:`complete` marks
    a task finished and enqueues the children that became ready.
    """

    __slots__ = ("_key", "_heap", "_remaining", "_succs", "_index")

    def __init__(self, graph: TaskGraph, key: PriorityKey) -> None:
        maps = graph.as_maps()
        self._key = key
        self._succs = maps.succs
        self._index = maps.index
        self._remaining = {v: len(maps.preds[v]) for v in maps.preds}
        self._heap: list[tuple] = []
        for v in maps.index:
            if self._remaining[v] == 0:
                self._push(v)

    def _push(self, task: TaskId) -> None:
        # The unique insertion index keeps heap entries totally ordered
        # without ever comparing (possibly mixed-type) task ids.
        heapq.heappush(self._heap, (self._key(task), self._index[task], task))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def pop(self) -> TaskId:
        """Highest-priority ready task."""
        return heapq.heappop(self._heap)[-1]

    def pop_chunk(self, size: int) -> list[TaskId]:
        """Up to ``size`` highest-priority ready tasks, in priority order."""
        out = []
        while self._heap and len(out) < size:
            out.append(heapq.heappop(self._heap)[-1])
        return out

    def push_back(self, task: TaskId) -> None:
        """Return an unscheduled task to the queue (chunk leftovers)."""
        self._push(task)

    def complete(self, task: TaskId) -> list[TaskId]:
        """Mark ``task`` done; enqueue and return newly-ready children."""
        newly = []
        for child in self._succs[task]:
            self._remaining[child] -= 1
            if self._remaining[child] == 0:
                self._push(child)
                newly.append(child)
        return newly


class Scheduler(ABC):
    """Base class: a configured heuristic that schedules graphs."""

    #: Registry name; subclasses set this.
    name: str = ""

    @abstractmethod
    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        """Schedule ``graph`` on ``platform`` under ``model``."""

    def __call__(self, graph, platform, model="one-port") -> Schedule:
        return self.run(graph, platform, model)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, type[Scheduler]] = {}


def register_scheduler(cls: type[Scheduler]) -> type[Scheduler]:
    """Class decorator adding a scheduler to the global registry."""
    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} has no registry name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"duplicate scheduler name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_schedulers() -> list[str]:
    """Names of all registered schedulers."""
    return sorted(_REGISTRY)
