"""BIL — Best Imaginary Level scheduling (Oh & Ha).

Baseline from the paper's earlier comparison [3].  The *best imaginary
level* of task ``v`` on processor ``p`` is the length of the best
achievable path from ``v`` to an exit node assuming ideal downstream
decisions:

    ``BIL(v, p) = w(v) * t_p + max over children c of
                  min( BIL(c, p),  min over q != p ( BIL(c, q) + c̄(v, c) ) )``

i.e. each child either stays on ``p`` (no communication) or moves to its
best other processor at the price of the averaged message cost.  The
table is computed in one reverse topological sweep over ``V x P``.

Scheduling then proceeds as list scheduling: ready tasks are prioritized
by their best BIL (``min_p BIL(v, p)``, larger = more urgent), and the
selected task goes to the processor minimizing ``start(v, p) + BIL(v, p)``
— the "imaginary makespan" of starting ``v`` there — with ``start``
obtained from the model's trial mechanism.  (Oh & Ha's full procedure
adds revised priorities when processors saturate; this implementation
keeps the core BIL machinery and documents the simplification.)
"""

from __future__ import annotations

from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..models.base import CommunicationModel
from .base import (
    ReadyQueue,
    Scheduler,
    SchedulerState,
    make_model,
    register_scheduler,
)


def best_imaginary_levels(
    graph: TaskGraph, platform: Platform
) -> dict[tuple[object, int], float]:
    """The ``BIL(v, p)`` table (see module docstring)."""
    maps = graph.as_maps()
    avg_link = platform.average_link_time()
    procs = list(platform.processors)
    bil: dict[tuple[object, int], float] = {}
    for v in reversed(graph.topological_order()):
        children = maps.succs[v]
        for p in procs:
            tail = 0.0
            for c in children:
                stay = bil[(c, p)]
                move = min(
                    (
                        bil[(c, q)] + maps.data[(v, c)] * avg_link
                        for q in procs
                        if q != p
                    ),
                    default=float("inf"),
                )
                best_child = min(stay, move)
                if best_child > tail:
                    tail = best_child
            bil[(v, p)] = maps.weight[v] * platform.cycle_time(p) + tail
    return bil


@register_scheduler
class BIL(Scheduler):
    """Best-imaginary-level list scheduling."""

    name = "bil"

    def __init__(self, insertion: bool = True):
        self.insertion = insertion

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        model = make_model(platform, model)
        state = SchedulerState(
            graph, platform, model, heuristic=self.name, insertion=self.insertion
        )
        bil = best_imaginary_levels(graph, platform)
        procs = list(platform.processors)
        priority = {v: min(bil[(v, p)] for p in procs) for v in graph.tasks()}

        queue = ReadyQueue(graph, lambda v: (-priority[v],))
        while queue:
            task = queue.pop()
            best = None
            best_key = None
            for cand in state.evaluate_all(task, procs):
                key = (cand.start + bil[(task, cand.proc)], cand.finish, cand.proc)
                if best_key is None or key < best_key:
                    best_key = key
                    best = cand
            assert best is not None
            state.commit(best)
            queue.complete(task)
        return state.schedule
