"""CPOP — Critical Path On a Processor (Topcuoglu, Hariri & Wu).

One of the baselines the paper's earlier comparison [3] used.  CPOP
prioritizes tasks by ``top_level + bottom_level`` (the length of the
longest path *through* the task), identifies one critical path, and
dedicates to it the processor that executes the whole path fastest;
critical tasks go to that processor, all others to the processor with
the earliest completion time.

Like every heuristic here it runs under either communication model: the
EFT machinery books messages through the model's trial mechanism.
"""

from __future__ import annotations

from ..core.platform import Platform
from ..core.ranking import bottom_levels, critical_path, top_levels
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..models.base import CommunicationModel
from .base import (
    ReadyQueue,
    Scheduler,
    SchedulerState,
    make_model,
    register_scheduler,
)


@register_scheduler
class CPOP(Scheduler):
    """Critical-path-on-a-processor list scheduling."""

    name = "cpop"

    def __init__(self, insertion: bool = True):
        self.insertion = insertion

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        model = make_model(platform, model)
        state = SchedulerState(
            graph, platform, model, heuristic=self.name, insertion=self.insertion
        )
        bl = bottom_levels(graph, platform)
        tl = top_levels(graph, platform)
        priority = {v: bl[v] + tl[v] for v in graph.tasks()}

        cp_tasks = set(critical_path(graph, platform))
        cp_weight = sum(graph.weight(v) for v in cp_tasks)
        cp_proc = min(
            platform.processors,
            key=lambda p: (cp_weight * platform.cycle_time(p), p),
        )

        queue = ReadyQueue(graph, lambda v: (-priority[v],))
        while queue:
            task = queue.pop()
            if task in cp_tasks:
                state.schedule_on(task, cp_proc)
            else:
                state.commit(state.best_candidate(task))
            queue.complete(task)
        return state.schedule
