"""Scheduling with a *fixed* task-to-processor allocation.

Given an allocation ``alloc(v)``, only the timing remains: order the
computations on each processor and the messages on each port.  The
paper's Appendix (Theorem 2, COMM-SCHED) proves that even this timing
problem is NP-complete under the one-port model, which motivates the
greedy pass implemented here: tasks are visited by descending bottom
level (ties: insertion index, or a caller-supplied order) and their
incoming messages booked as early as possible.

Uses of this scheduler in the reproduction:

* re-timing the macro-dataflow allocation of the Figure 1 example under
  one-port rules (the paper's "the same allocation of tasks to
  processors would lead to a makespan at least 6");
* the greedy third step of the ILHA ``reschedule`` variant;
* building COMM-SCHED instances' schedules from candidate partitions.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

from ..core.exceptions import SchedulingError
from ..core.platform import Platform
from ..core.ranking import bottom_levels
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..models.base import CommunicationModel
from .base import ReadyQueue, Scheduler, SchedulerState, make_model, register_scheduler

TaskId = Hashable


@register_scheduler
class FixedAllocation(Scheduler):
    """Greedy timing of a given allocation under the chosen model.

    Parameters
    ----------
    alloc:
        Mapping from every task to its processor.
    order:
        Optional explicit scheduling order (must be topological); by
        default tasks go by descending bottom level.
    insertion:
        Insertion-based compute slots.
    """

    name = "fixed"

    def __init__(
        self,
        alloc: Mapping[TaskId, int],
        order: Sequence[TaskId] | None = None,
        insertion: bool = True,
    ):
        self.alloc = dict(alloc)
        self.order = list(order) if order is not None else None
        self.insertion = insertion

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        model = make_model(platform, model)
        state = SchedulerState(
            graph, platform, model, heuristic=self.name, insertion=self.insertion
        )
        missing = [v for v in graph.tasks() if v not in self.alloc]
        if missing:
            raise SchedulingError(f"allocation missing task(s) {missing[:5]!r}")

        if self.order is not None:
            rank = {v: i for i, v in enumerate(self.order)}
            if len(rank) != graph.num_tasks:
                raise SchedulingError("explicit order must cover every task once")
            key = lambda v: (rank[v],)  # noqa: E731
        else:
            bl = bottom_levels(graph, platform)
            key = lambda v: (-bl[v],)  # noqa: E731

        queue = ReadyQueue(graph, key)
        while queue:
            task = queue.pop()
            state.schedule_on(task, self.alloc[task])
            queue.complete(task)
        return state.schedule
