"""GDL — Generalized Dynamic Level scheduling (Sih & Lee).

Baseline from the paper's earlier comparison [3].  The *dynamic level*
of a ready task ``v`` on processor ``p`` at the current state is

    ``DL(v, p) = SL(v) - start(v, p) + Delta(v, p)``

where ``SL`` is the *static level* (longest computation-only path to an
exit node, with averaged weights), ``start(v, p)`` is the earliest start
of ``v`` on ``p`` given data arrival and processor availability, and
``Delta(v, p) = w̄(v) - w(v) * t_p`` rewards faster-than-average
processors.  At each step the (ready task, processor) pair with the
largest dynamic level is committed.

The original formulation predates explicit communication resources; the
generalization here obtains ``start(v, p)`` from the model's trial
mechanism, so under the one-port model message serialization is priced
into the dynamic level exactly as for HEFT.
"""

from __future__ import annotations

from ..core.platform import Platform
from ..core.ranking import bottom_levels_from
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..models.base import CommunicationModel
from .base import (
    Candidate,
    Scheduler,
    SchedulerState,
    make_model,
    register_scheduler,
)


@register_scheduler
class GDL(Scheduler):
    """Greedy max-dynamic-level (task, processor) selection."""

    name = "gdl"

    def __init__(self, insertion: bool = True):
        self.insertion = insertion

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        model = make_model(platform, model)
        state = SchedulerState(
            graph, platform, model, heuristic=self.name, insertion=self.insertion
        )
        maps = graph.as_maps()
        avg = platform.average_cycle_time()
        # Static level: computation-only bottom level (no communication
        # terms), the classic Sih & Lee definition.
        node_cost = {v: maps.weight[v] * avg for v in maps.index}
        zero_edges = {e: 0.0 for e in maps.data}
        sl = bottom_levels_from(graph, node_cost, zero_edges)

        remaining = {v: len(maps.preds[v]) for v in maps.index}
        ready = [v for v in maps.index if remaining[v] == 0]

        while ready:
            best: Candidate | None = None
            best_key: tuple | None = None
            for task in ready:
                for cand in state.evaluate_all(task):
                    proc = cand.proc
                    delta = node_cost[task] - maps.weight[task] * platform.cycle_time(proc)
                    dl = sl[task] - cand.start + delta
                    # Maximize DL; break ties towards earlier finish, then
                    # stable task/processor order.
                    key = (-dl, cand.finish, maps.index[task], proc)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = cand
            assert best is not None
            state.commit(best)
            ready.remove(best.task)
            for child in maps.succs[best.task]:
                remaining[child] -= 1
                if remaining[child] == 0:
                    ready.append(child)
        return state.schedule
