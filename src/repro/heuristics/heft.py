"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu, Hariri & Wu).

The paper's Section 4.1 recalls HEFT for the macro-dataflow model and
Section 4.3 adapts it to the one-port model:

1. compute the *bottom level* of every task with heterogeneous averaging
   (harmonic-mean cycle time for weights, average link for edges);
2. repeatedly select the ready task with the highest bottom level;
3. evaluate it on every processor: schedule the eventual incoming
   communications as early as possible (under one-port, on the first
   joint free interval of the sender's send port and the receiver's
   receive port), then find the earliest compute slot;
4. commit the processor with the earliest completion time.

The *same* class serves both models — the model object encapsulates how
step 3 consumes communication resources.  Under macro-dataflow this is
textbook HEFT (with the paper's conservative all-communications bottom
levels); under the one-port model it is the paper's adapted HEFT.
"""

from __future__ import annotations

from ..core.platform import Platform
from ..core.ranking import bottom_levels
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..models.base import CommunicationModel
from ..obs import span as _obs_span
from .base import (
    PriorityKey,
    ReadyQueue,
    Scheduler,
    SchedulerState,
    make_model,
    register_scheduler,
)


@register_scheduler
class HEFT(Scheduler):
    """List scheduling by descending bottom level, min-EFT mapping.

    Parameters
    ----------
    insertion:
        Use insertion-based compute slots (classic HEFT).  With ``False``
        tasks only go after the last reservation of a processor.
    priority_key:
        Optional override of the ready-queue ordering; maps a task to a
        sortable tuple (smaller = scheduled sooner).  Defaults to
        ``(-bottom_level,)`` with ties broken by task insertion index.
        The paper's toy example (Figure 4) fixes a specific tie order,
        which tests reproduce through this hook.
    """

    name = "heft"

    def __init__(self, insertion: bool = True, priority_key: PriorityKey | None = None):
        self.insertion = insertion
        self.priority_key = priority_key

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        model = make_model(platform, model)
        state = SchedulerState(
            graph, platform, model, heuristic=self.name, insertion=self.insertion
        )
        if self.priority_key is not None:
            key = self.priority_key
        else:
            with _obs_span("phase.rank"):
                bl = bottom_levels(graph, platform)
            key = lambda v: (-bl[v],)  # noqa: E731

        with _obs_span("phase.construct"):
            queue = ReadyQueue(graph, key)
            while queue:
                task = queue.pop()
                state.commit(state.best_candidate(task))
                queue.complete(task)
        return state.schedule
