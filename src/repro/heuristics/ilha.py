"""ILHA — Iso-Level Heterogeneous Allocation (the paper's new heuristic).

ILHA (Sections 4.2 and 4.4) differs from HEFT by taking its decisions on
a *chunk* of ``B`` ready tasks at once, which gives it a global view of
the potential communications:

* **Step 1** — scan the chunk in priority order; a task whose parents all
  live on one processor ``P_i`` is allocated there *without generating
  any communication*, provided ``P_i``'s accumulated chunk load stays
  within its proportional share ``c_i * W`` (where ``W`` is the chunk's
  total weight and ``c_i = (1/t_i)/Σ(1/t_j)``).
* **Step 2** — the remaining tasks are scheduled exactly as in HEFT:
  minimum earliest-finish-time over all processors, incoming messages
  booked greedily under the model's rules.

Section 4.4 sketches two refinements, both implemented behind flags:

* ``single_comm_scan`` — an extra scan between the two steps for tasks
  schedulable "at the price of a single communication" (exactly one
  remote parent);
* ``reschedule`` — treat Steps 1–2 as a *pre-allocation* only: rerun the
  chunk keeping the allocation but re-booking every communication
  greedily in priority order (the paper proves the optimal such
  re-scheduling NP-complete — Theorem 2 — and suggests a greedy pass).

The chunk size ``B`` trades load balance (large ``B``) against critical-
path urgency (small ``B``); the paper finds B=4 best for LU, B=20 for
DOOLITTLE/LDMt and B=38 (the perfect-balance count) for LAPLACE,
FORK-JOIN and STENCIL, and recommends sampling ``[p .. M]``.

This module also provides :class:`ILHAClassic`, the earlier macro-
dataflow formulation of Section 4.2 (integer task *counts* from the
optimal-distribution algorithm, "fastest free processor" fallback),
kept for fidelity to the published pseudocode.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

from ..core.exceptions import ConfigurationError
from ..core.loadbalance import (
    ChunkLoadTracker,
    optimal_distribution,
    perfect_balance_count,
)
from ..core.platform import Platform
from ..core.ranking import bottom_levels
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..models.base import CommunicationModel
from .base import (
    PriorityKey,
    ReadyQueue,
    Scheduler,
    SchedulerState,
    make_model,
    register_scheduler,
)

TaskId = Hashable


class _ChunkBudget:
    """Step-1 budget tracker, in task counts or weight units (see ILHA)."""

    __slots__ = ("mode", "limits", "used", "tracker")

    def __init__(self, mode: str, chunk_weights: Sequence[float], cycle_times: Sequence[float]):
        self.mode = mode
        if mode == "counts":
            self.limits = optimal_distribution(len(chunk_weights), cycle_times)
            self.used = [0] * len(cycle_times)
            self.tracker = None
        else:
            self.tracker = ChunkLoadTracker(sum(chunk_weights), cycle_times)

    def fits(self, proc: int, weight: float) -> bool:
        if self.mode == "counts":
            return self.used[proc] < self.limits[proc]
        return self.tracker.fits(proc, weight)

    def add(self, proc: int, weight: float) -> None:
        if self.mode == "counts":
            self.used[proc] += 1
        else:
            self.tracker.add(proc, weight)


def default_chunk_size(platform: Platform) -> int:
    """Paper-recommended default ``B``.

    The perfect-balance count ``M = lcm(t) * Σ(1/t_i)`` when the cycle
    times are integral (38 on the paper platform), otherwise the number
    of processors (the paper's lower bound for ``B``).
    """
    try:
        return max(perfect_balance_count(platform.cycle_times), platform.num_processors)
    except ConfigurationError:
        return platform.num_processors


@register_scheduler
class ILHA(Scheduler):
    """Chunked list scheduling with proportional load balancing.

    Parameters
    ----------
    b:
        Chunk size ``B`` (``None`` = :func:`default_chunk_size`).  Must
        be >= 1; the paper requires ``B >= p`` for full processor use but
        smaller values are accepted (they degenerate towards HEFT).
    insertion:
        Insertion-based compute slots (as in HEFT).
    priority_key:
        Override of the ready ordering, as in :class:`~repro.heuristics.heft.HEFT`.
    single_comm_scan:
        Enable the Section 4.4 "one communication" extra scan.
    reschedule:
        Enable the Section 4.4 third-step greedy communication
        re-scheduling (allocation from Steps 1–2, timing re-derived).
    respect_shares_step2:
        Also enforce the Step-1 budgets during Step 2 (falling back to
        all processors when no budget fits).  Off by default — the
        paper's Step 2 is plain HEFT.
    budget:
        How the per-processor Step-1 budgets ``c_i`` are derived.
        ``"counts"`` (default) runs the paper's *optimal distribution*
        algorithm on the chunk size — "ci is the value returned by the
        load-balancing algorithm" — and lets ``P_i`` absorb that many
        tasks; ``"weights"`` enforces the continuous bound
        ``load_i + w(T) <= c_i * W`` literally.  The two coincide for
        equal-weight tasks and large ``B``; for small ``B`` the
        continuous bound is stricter than any integer distribution
        (with ``B = 4`` on the paper platform no share reaches one
        task's weight, so Step 1 would never fire), hence the default.
    """

    name = "ilha"

    def __init__(
        self,
        b: int | None = None,
        insertion: bool = True,
        priority_key: PriorityKey | None = None,
        single_comm_scan: bool = False,
        reschedule: bool = False,
        respect_shares_step2: bool = False,
        budget: str = "counts",
    ):
        if b is not None and b < 1:
            raise ConfigurationError(f"chunk size B must be >= 1, got {b}")
        if budget not in ("counts", "weights"):
            raise ConfigurationError(f"budget must be 'counts' or 'weights', got {budget!r}")
        self.b = b
        self.insertion = insertion
        self.priority_key = priority_key
        self.single_comm_scan = single_comm_scan
        self.reschedule = reschedule
        self.respect_shares_step2 = respect_shares_step2
        self.budget = budget

    # ------------------------------------------------------------------
    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        model = make_model(platform, model)
        state = SchedulerState(
            graph, platform, model, heuristic=self.name, insertion=self.insertion
        )
        if self.priority_key is not None:
            key = self.priority_key
        else:
            bl = bottom_levels(graph, platform)
            key = lambda v: (-bl[v],)  # noqa: E731
        b = self.b if self.b is not None else default_chunk_size(platform)

        queue = ReadyQueue(graph, key)
        while queue:
            chunk = queue.pop_chunk(b)
            if self.reschedule:
                # Pre-allocate on a scratch run (rolled back through the
                # state's undo journal — O(chunk), not a deep copy), then
                # rebuild the chunk's timing with the allocation fixed.
                mark = state.mark()
                alloc = self._run_chunk(state, chunk)
                state.restore(mark)
                for task in chunk:
                    state.schedule_on(task, alloc[task])
            else:
                self._run_chunk(state, chunk)
            for task in chunk:
                queue.complete(task)
        return state.schedule

    # ------------------------------------------------------------------
    def _run_chunk(
        self, state: SchedulerState, chunk: Sequence[TaskId]
    ) -> dict[TaskId, int]:
        """Steps 1 (+ optional single-comm scan) and 2 on ``state``.

        Commits every chunk task to ``state`` and returns the allocation.
        """
        maps = state.maps
        platform = state.platform
        tracker = _ChunkBudget(
            self.budget, [maps.weight[t] for t in chunk], platform.cycle_times
        )
        alloc: dict[TaskId, int] = {}
        remaining: list[TaskId] = []

        # Step 1: zero-communication allocations within the share budgets.
        for task in chunk:
            parents = maps.preds[task]
            if parents:
                procs = state.parent_procs(task)
                if len(procs) == 1:
                    proc = next(iter(procs))
                    if tracker.fits(proc, maps.weight[task]):
                        state.schedule_on(task, proc)
                        tracker.add(proc, maps.weight[task])
                        alloc[task] = proc
                        continue
            remaining.append(task)

        # Optional scan: tasks placeable at the price of one message.
        if self.single_comm_scan:
            still: list[TaskId] = []
            for task in remaining:
                placed = self._try_single_comm(state, tracker, task)
                if placed is None:
                    still.append(task)
                else:
                    alloc[task] = placed
            remaining = still

        # Step 2: HEFT-style earliest completion time.
        for task in remaining:
            procs = None
            if self.respect_shares_step2:
                fitting = [
                    p
                    for p in platform.processors
                    if tracker.fits(p, maps.weight[task])
                ]
                procs = fitting or None
            best = state.best_candidate(task, procs)
            state.commit(best)
            tracker.add(best.proc, maps.weight[task])
            alloc[task] = best.proc
        return alloc

    def _try_single_comm(
        self, state: SchedulerState, tracker: _ChunkBudget, task: TaskId
    ) -> int | None:
        """Place ``task`` where exactly one parent is remote, if possible.

        Candidate processors are those hosting at least one parent (so the
        message count is the number of parents elsewhere); among the
        candidates with exactly one remote parent and budget headroom, the
        earliest completion time wins.  Returns the processor or ``None``.
        """
        maps = state.maps
        parents = maps.preds[task]
        if not parents:
            return None
        weight = maps.weight[task]
        by_proc: dict[int, int] = {}
        for p in parents:
            by_proc[state.schedule.placements[p].proc] = (
                by_proc.get(state.schedule.placements[p].proc, 0) + 1
            )
        candidates = [
            proc
            for proc, count in by_proc.items()
            if len(parents) - count == 1 and tracker.fits(proc, weight)
        ]
        if not candidates:
            return None
        best = state.best_candidate(task, sorted(candidates))
        state.commit(best)
        tracker.add(best.proc, weight)
        return best.proc


@register_scheduler
class TunedILHA(Scheduler):
    """ILHA with the paper's parameter-tuning methodology built in.

    Section 5.3: "the best results for ILHA have been obtained by trying
    several values for B.  Unfortunately, we have not found any
    systematic technique to predict the optimal value of B" — the
    reported ILHA curves are best-over-B.  This wrapper runs ILHA over a
    grid of chunk sizes (and optionally the Section 4.4 variants) and
    returns the schedule with the smallest makespan.  The winning
    configuration is recorded in the schedule's ``heuristic`` label.

    Parameters
    ----------
    b_values:
        Chunk sizes to sample; defaults to the paper's observed optima
        plus the perfect-balance count, clipped to the task count at
        run time.
    try_variants:
        Also sample ``single_comm_scan`` and ``reschedule`` (triples the
        grid).
    insertion:
        Passed through to every ILHA run.
    """

    name = "ilha-tuned"

    def __init__(
        self,
        b_values: Sequence[int] | None = None,
        try_variants: bool = True,
        insertion: bool = True,
    ):
        self.b_values = tuple(b_values) if b_values is not None else None
        self.try_variants = try_variants
        self.insertion = insertion

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        if self.b_values is not None:
            b_values = self.b_values
        else:
            b_values = (4, 6, 10, 20, default_chunk_size(platform))
        b_values = sorted({max(1, min(b, graph.num_tasks)) for b in b_values})
        variant_kwargs: list[dict] = [{}]
        if self.try_variants:
            variant_kwargs += [
                {"single_comm_scan": True},
                {"single_comm_scan": True, "reschedule": True},
            ]
        best: Schedule | None = None
        best_label = ""
        for b in b_values:
            for kwargs in variant_kwargs:
                sched = ILHA(b=b, insertion=self.insertion, **kwargs).run(
                    graph, platform, model
                )
                if best is None or sched.makespan() < best.makespan():
                    best = sched
                    flags = "".join(
                        {"single_comm_scan": "+scan", "reschedule": "+resched"}[k]
                        for k, v in kwargs.items()
                        if v
                    )
                    best_label = f"ilha-tuned(B={b}{flags})"
        assert best is not None
        best.heuristic = best_label
        return best


@register_scheduler
class ILHAClassic(Scheduler):
    """The Section 4.2 macro-dataflow formulation of ILHA.

    Follows the published pseudocode: take the ``B`` highest-bottom-level
    ready tasks, compute the *integer* optimal distribution of ``B``
    equal tasks over the processors, assign zero-communication tasks to
    their parents' processor while it still has budget (count) left, and
    assign every other task to the fastest processor with remaining
    budget.  Start times then follow from the model's communication rule
    and the earliest compute slot.

    This variant treats tasks as equal-size when budgeting (counts, not
    weights), exactly as the pseudocode does; :class:`ILHA` is the
    weight-aware one-port refinement of Section 4.4.
    """

    name = "ilha-classic"

    def __init__(
        self,
        b: int | None = None,
        insertion: bool = True,
        priority_key: PriorityKey | None = None,
    ):
        if b is not None and b < 1:
            raise ConfigurationError(f"chunk size B must be >= 1, got {b}")
        self.b = b
        self.insertion = insertion
        self.priority_key = priority_key

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "macro-dataflow",
    ) -> Schedule:
        model = make_model(platform, model)
        state = SchedulerState(
            graph, platform, model, heuristic=self.name, insertion=self.insertion
        )
        if self.priority_key is not None:
            key = self.priority_key
        else:
            bl = bottom_levels(graph, platform)
            key = lambda v: (-bl[v],)  # noqa: E731
        b = self.b if self.b is not None else default_chunk_size(platform)
        maps = state.maps
        # Fastest-first processor order ("the fastest processor that is
        # not yet saturated"), ties by index.
        speed_order = sorted(
            platform.processors, key=lambda p: (platform.cycle_time(p), p)
        )

        queue = ReadyQueue(graph, key)
        while queue:
            chunk = queue.pop_chunk(b)
            budget = optimal_distribution(len(chunk), platform.cycle_times)
            leftovers: list[TaskId] = []
            for task in chunk:
                parents = maps.preds[task]
                if parents:
                    procs = {state.schedule.placements[p].proc for p in parents}
                    if len(procs) == 1:
                        proc = next(iter(procs))
                        if budget[proc] > 0:
                            state.schedule_on(task, proc)
                            budget[proc] -= 1
                            continue
                leftovers.append(task)
            for task in leftovers:
                proc = next((p for p in speed_order if budget[p] > 0), speed_order[0])
                state.schedule_on(task, proc)
                budget[proc] -= 1
            for task in chunk:
                queue.complete(task)
        return state.schedule
