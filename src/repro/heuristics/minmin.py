"""Min-min and max-min batch heuristics.

Classic independent-task mapping heuristics extended to DAGs: at every
step, the earliest-finish-time of *each* ready task on its best
processor is computed; min-min commits the task that can finish
soonest (greedy throughput), max-min the task whose best finish is
latest (large tasks first).  Both are quadratic in the ready-set size
and serve as additional comparison points for the experiments beyond
the paper's own baselines.
"""

from __future__ import annotations

from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..models.base import CommunicationModel
from .base import (
    Candidate,
    Scheduler,
    SchedulerState,
    make_model,
    register_scheduler,
)


class _BatchScheduler(Scheduler):
    """Shared machinery: repeatedly commit an extreme best-candidate."""

    #: ``False`` = min-min (earliest best finish), ``True`` = max-min.
    take_max = False

    def __init__(self, insertion: bool = True):
        self.insertion = insertion

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        model = make_model(platform, model)
        state = SchedulerState(
            graph, platform, model, heuristic=self.name, insertion=self.insertion
        )
        maps = graph.as_maps()
        remaining = {v: len(maps.preds[v]) for v in maps.index}
        ready = [v for v in maps.index if remaining[v] == 0]

        while ready:
            chosen: Candidate | None = None
            chosen_key: tuple | None = None
            for task in ready:
                cand = state.best_candidate(task)
                finish = -cand.finish if self.take_max else cand.finish
                key = (finish, maps.index[task])
                if chosen_key is None or key < chosen_key:
                    chosen_key = key
                    chosen = cand
            assert chosen is not None
            # Re-evaluate on the live state: the stored trial was built
            # against the same state (no commits in between), so it is
            # still valid to commit directly.
            state.commit(chosen)
            ready.remove(chosen.task)
            for child in maps.succs[chosen.task]:
                remaining[child] -= 1
                if remaining[child] == 0:
                    ready.append(child)
        return state.schedule


@register_scheduler
class MinMin(_BatchScheduler):
    """Commit the ready task with the earliest achievable finish."""

    name = "min-min"
    take_max = False


@register_scheduler
class MaxMin(_BatchScheduler):
    """Commit the ready task whose best finish is the latest."""

    name = "max-min"
    take_max = True
