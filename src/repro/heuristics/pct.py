"""PCT — minimum Partial Completion Time static priority (Maheswaran & Siegel).

Baseline from the paper's earlier comparison [3].  The *partial
completion time* of a task is the (averaged) time still needed after it
starts to finish the whole downstream chain — the bottom level with
communication costs included.  Tasks are prioritized statically by
decreasing PCT; the selected ready task is mapped to the processor with
the minimum completion time.

Following the original dynamic matching-and-scheduling formulation
(which appends tasks to machine queues rather than filling gaps), this
scheduler uses *non-insertion* compute slots by default, which is the
main behavioural difference from HEFT here.
"""

from __future__ import annotations

from ..core.platform import Platform
from ..core.ranking import bottom_levels
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..models.base import CommunicationModel
from .base import (
    ReadyQueue,
    Scheduler,
    SchedulerState,
    make_model,
    register_scheduler,
)


@register_scheduler
class PCT(Scheduler):
    """Static bottom-level priorities, min-EFT mapping, FIFO machines."""

    name = "pct"

    def __init__(self, insertion: bool = False):
        self.insertion = insertion

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        model = make_model(platform, model)
        state = SchedulerState(
            graph, platform, model, heuristic=self.name, insertion=self.insertion
        )
        pct = bottom_levels(graph, platform)
        queue = ReadyQueue(graph, lambda v: (-pct[v],))
        while queue:
            task = queue.pop()
            state.commit(state.best_candidate(task))
            queue.complete(task)
        return state.schedule
