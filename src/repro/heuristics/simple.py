"""Reference schedulers: serial execution and random mapping.

* :class:`Serial` runs the whole graph on one processor (the fastest by
  default) in topological order — its makespan is exactly the paper's
  sequential reference time, so its speedup is 1.0 by construction.
* :class:`RandomMapper` assigns every task to a uniformly random
  processor and books communications greedily in topological order.  It
  is deliberately naive: the test-suite uses it to exercise the
  validators on diverse, valid-but-inefficient schedules, and the
  experiments use it as a floor.
"""

from __future__ import annotations

import random

from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..models.base import CommunicationModel
from .base import Scheduler, SchedulerState, make_model, register_scheduler


@register_scheduler
class Serial(Scheduler):
    """Everything on one processor, topological order, no communications."""

    name = "serial"

    def __init__(self, proc: int | None = None):
        self.proc = proc

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        model = make_model(platform, model)
        state = SchedulerState(graph, platform, model, heuristic=self.name)
        proc = self.proc if self.proc is not None else platform.fastest_processor()
        for task in graph.topological_order():
            state.schedule_on(task, proc)
        return state.schedule


@register_scheduler
class RandomMapper(Scheduler):
    """Uniformly random allocation with greedy communication booking.

    Deterministic for a given ``seed``.  Scheduling order is topological,
    so parents are always placed before children and the resulting
    schedule is valid under the chosen model.
    """

    name = "random"

    def __init__(self, seed: int = 0, insertion: bool = True):
        self.seed = seed
        self.insertion = insertion

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        model = make_model(platform, model)
        state = SchedulerState(
            graph, platform, model, heuristic=self.name, insertion=self.insertion
        )
        rng = random.Random(self.seed)
        p = platform.num_processors
        for task in graph.topological_order():
            state.schedule_on(task, rng.randrange(p))
        return state.schedule
