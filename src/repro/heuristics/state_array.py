"""The vectorized EFT engine — ``SchedulerState`` on the numpy backend.

:class:`ArraySchedulerState` keeps the flat builder rows as the source
of truth (so commits, rollbacks and snapshots are shared with the
scalar path) and accelerates the two construction hot spots:

* **evaluation sweeps** — when the model's booker implements the sweep
  protocol (:class:`~repro.models.base.FlatBooker`), a candidate's
  messages are resolved *once* and the resolution shared across every
  processor whose receive row provably cannot interfere; the remaining
  processors (parent hosts, busy receivers) are refined individually in
  lower-bound order with the incumbent-finish cutoff, so most are never
  evaluated at all.  :meth:`evaluate_all` is the same sweep without the
  cutoff: one vectorized all-processor pass.
* **commits** — the windows resolved during the winning evaluation are
  stashed (keyed by the builder's commit epoch) and booked directly,
  skipping ``commit_est``'s re-derivation scans.

Compute-slot searches go through :class:`~repro.kernel.array_backend.GapRows`
— gap-indexed row mirrors that skip blocks too small for the duration —
once rows grow past the index threshold.

Every result is bit-identical to the scalar path: the shared resolution
is provably the same fixed point ``trial_est`` computes (see the
correctness notes in :mod:`repro.models.one_port`), lower-bound skips
use strict inequality only (ties are still evaluated, exactly like the
scalar pruning), and the final tie-break comparison is the same
``(finish, start, proc)`` lexicographic test over the same floats.  The
cross-backend fuzz suite (``tests/heuristics/test_backend_equivalence.py``)
asserts this over every registered heuristic × flat model × testbed.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from time import perf_counter

from ..core.exceptions import SchedulingError
from ..kernel.array_backend import GapRows
from ..obs import stage_detail as _stage_detail
from .base import Candidate, SchedulerState

TaskId = Hashable

_INF = float("inf")


class _SweepBuffers:
    """Reusable per-state buffers the booker's sweep fills.

    ``est`` is a plain list, not an ndarray: the per-processor pass is
    a handful of scalar writes (p is ~10 on every testbed), and numpy's
    per-call dispatch on such tiny arrays costs more than the whole
    scalar loop it would replace.
    """

    __slots__ = ("est", "status", "events")

    def __init__(self, num_procs: int) -> None:
        #: Exact ESTs (status 2) or safe lower bounds (status 0/1).
        self.est = [0.0] * num_procs
        #: 2 = exact + shared events, 1 = parent host (resolve lazily),
        #: 0 = scalar fallback.
        self.status = bytearray(num_procs)
        #: Resolved ``(edge_ix, src_proc, start, dur)`` records, valid
        #: for every status-2 processor.
        self.events: list[tuple] | None = None


class ArraySchedulerState(SchedulerState):
    """Scheduler state with vectorized sweeps (see module docstring)."""

    __slots__ = ("_sw", "_gap", "_commit_key", "_commit_events")

    state_impl_name = "flat-numpy"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._init_array_state()

    def _init_array_state(self) -> None:
        self._sw = _SweepBuffers(self.kernel.num_procs)
        self._gap = GapRows(self.builder)
        self._commit_key: tuple | None = None
        self._commit_events: list[tuple] | None = None

    # ------------------------------------------------------------------
    # EFT engine
    # ------------------------------------------------------------------
    def best_candidate(
        self,
        task: TaskId,
        procs: Iterable[int] | None = None,
        insertion: bool | None = None,
    ) -> Candidate:
        booker = self.booker
        kernel = self.kernel
        if booker.sweep_est is None or not kernel.all_links_finite:
            # no sweep protocol / partially-linked platform: the scalar
            # path also carries the per-probe missing-link checks
            self._commit_key = None
            return super().best_candidate(task, procs, insertion)
        # stage.sweep is recorded here only on the fused paths; the
        # scalar delegations above/below record it in the base sweep
        detail = self._stats is not None and _stage_detail()
        if detail:
            t_sweep = perf_counter()
        ti = kernel.intern(task)
        flat = self._parents(ti)
        builder = self.builder
        if booker.sweep_select is not None:
            # fused sweep + selection (one-port): one booker call per task
            res = booker.sweep_select(
                flat,
                kernel.exec_[ti],
                kernel.exec_order()[ti],
                self._gap.next_fit,
                self.insertion if insertion is None else insertion,
                procs,
            )
            if res is not None:
                bp, bs, bf, bev = res
                if bp is None:
                    raise SchedulingError(
                        f"no candidate processors for task {task!r}"
                    )
                if bev is not None:
                    self._commit_key = (ti, builder.commit_count, bp)
                    self._commit_events = bev
                else:
                    self._commit_key = None
                if detail:
                    self._stats.add_time("stage.sweep", perf_counter() - t_sweep)
                return Candidate(task, bp, bs, bf)
            self._commit_key = None
            return super().best_candidate(task, procs, insertion)
        sw = self._sw
        if not booker.sweep_est(flat, sw):
            self._commit_key = None
            return super().best_candidate(task, procs, insertion)
        est_list = sw.est
        status = sw.status
        exec_row = kernel.exec_[ti]
        # finish lower bound per processor: ests (or safe lower bounds)
        # plus the duration row — the refinement order, and the skip
        # bound (strict: ties still evaluate, they may win on start)
        lb_list = [est_list[r] + exec_row[r] for r in range(len(exec_row))]
        if procs is None:
            order = sorted(range(len(exec_row)), key=lb_list.__getitem__)
        else:
            order = sorted(procs, key=lb_list.__getitem__)
        use_insertion = self.insertion if insertion is None else insertion
        rows_e = builder.rows_e
        gap_fit = self._gap.next_fit
        trial_est = booker.trial_est
        bf = bs = _INF
        bp = None
        bev = None
        stats = self._stats
        for i, proc in enumerate(order):
            if lb_list[proc] > bf:
                # every remaining processor's lower bound is above the
                # incumbent too (order is sorted by lb): all pruned
                if stats is not None:
                    stats.inc("builder.prune.maxpf", len(order) - i)
                break
            duration = exec_row[proc]
            stat = status[proc]
            ev = None
            if stats is not None:
                stats.inc("builder.candidates")
            if stat == 2:
                est = est_list[proc]
                ev = sw.events
            else:
                res = booker.resolve_dest(proc) if stat == 1 else None
                if res is not None:
                    est, ev = res
                else:
                    builder.gen += 1  # begin_trial
                    est = trial_est(flat, proc, bf, duration)
                    if est + duration > bf:
                        if stats is not None:
                            stats.inc("builder.prune.abort")
                        continue  # provably worse (possibly aborted)
            ce = rows_e[proc]
            if use_insertion:
                if not ce or ce[-1] <= est:
                    start = est
                else:
                    start = gap_fit(proc, est, duration)
            else:
                last = ce[-1] if ce else 0.0
                start = est if est >= last else last
            finish = start + duration
            if finish < bf or (
                finish == bf and (start < bs or (start == bs and proc < bp))
            ):
                bf, bs, bp, bev = finish, start, proc, ev
        if bp is None:
            raise SchedulingError(f"no candidate processors for task {task!r}")
        if bev is not None:
            self._commit_key = (ti, builder.commit_count, bp)
            self._commit_events = bev
        else:
            self._commit_key = None
        if detail:
            self._stats.add_time("stage.sweep", perf_counter() - t_sweep)
        return Candidate(task, bp, bs, bf)

    def evaluate_all(
        self,
        task: TaskId,
        procs: Iterable[int] | None = None,
        insertion: bool | None = None,
    ) -> list[Candidate]:
        booker = self.booker
        kernel = self.kernel
        if booker.sweep_est is None or not kernel.all_links_finite:
            return super().evaluate_all(task, procs, insertion)
        ti = kernel.intern(task)
        flat = self._parents(ti)
        sw = self._sw
        if not booker.sweep_est(flat, sw):
            return super().evaluate_all(task, procs, insertion)
        builder = self.builder
        status = sw.status
        est_list = sw.est
        exec_row = kernel.exec_[ti]
        use_insertion = self.insertion if insertion is None else insertion
        rows_e = builder.rows_e
        gap_fit = self._gap.next_fit
        out = []
        for proc in self.platform.processors if procs is None else procs:
            stat = status[proc]
            if stat == 2:
                est = est_list[proc]
            else:
                res = booker.resolve_dest(proc) if stat == 1 else None
                if res is not None:
                    est = res[0]
                else:
                    builder.gen += 1  # begin_trial
                    est = booker.trial_est(flat, proc)
            duration = exec_row[proc]
            ce = rows_e[proc]
            if use_insertion:
                if not ce or ce[-1] <= est:
                    start = est
                else:
                    start = gap_fit(proc, est, duration)
            else:
                last = ce[-1] if ce else 0.0
                start = est if est >= last else last
            out.append(Candidate(task, proc, start, start + duration))
        if self._stats is not None:
            self._stats.inc("builder.candidates", len(out))
        return out

    # ------------------------------------------------------------------
    # commit fast path
    # ------------------------------------------------------------------
    def commit(self, candidate: Candidate) -> None:
        key = self._commit_key
        if key is not None:
            self._commit_key = None
            task = candidate.task
            ti = self.kernel.intern(task)
            if key == (ti, self.builder.commit_count, candidate.proc):
                detail = self._stats is not None and _stage_detail()
                if detail:
                    t0 = perf_counter()
                events = self._commit_events
                self.booker.commit_resolved(events, candidate.proc)
                if events:
                    kernel = self.kernel
                    tasks, esrc, edata = kernel.tasks, kernel.esrc, kernel.edata
                    record = self.schedule.record_comm
                    proc = candidate.proc
                    for e, q, start, dur in events:
                        record(tasks[esrc[e]], task, q, proc, start, dur, edata[e])
                self._place(task, ti, candidate.proc, candidate.start, candidate.finish)
                if detail:
                    self._stats.add_time("stage.commit", perf_counter() - t0)
                return
        super().commit(candidate)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> "ArraySchedulerState":
        dup = super().snapshot()
        dup._init_array_state()
        return dup
