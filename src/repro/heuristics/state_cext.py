"""The compiled EFT engine — ``SchedulerState`` on the cext backend.

:class:`CextSchedulerState` routes every hot operation — parent
resolution, the all-processor candidate sweep with maxpf / frontier /
in-trial pruning, the model bookers' ``trial_est`` / ``commit_est``
fixed points (seed memo included), gap search, commit, and the undo
journal — through one :class:`repro.kernel._cext.Engine` instance: a C
struct of typed arrays with no Python objects in the inner loop.  The
Python layer keeps only what the rest of the package reads — the
:class:`~repro.core.schedule.Schedule` under construction, the
placement mirrors behind :meth:`parents_info` / :meth:`parent_procs`,
and a FlatBuilder-shaped facade for tests and debugging.

Bit-identity: the C engine transliterates the scalar reference
(``builder.py``, the flat bookers, ``SchedulerState``'s sweep) —
the same IEEE-754 double operations in the same order, the same strict
``(finish, start, proc)`` tie-break, the same guard-tolerance
arithmetic — so schedules match the python and numpy backends float
for float.  The cross-backend fuzz suite asserts this for every
registered heuristic × flat model × testbed.

Observability: the engine accumulates the booking counters internally
(one C increment instead of a Python dict update per event) and this
wrapper flushes the *deltas* into the active collector after each
public call, so stats-on runs see the exact counters the python path
emits while stats-off runs pay nothing.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from time import perf_counter

from ..core.exceptions import SchedulingError
from ..kernel import _cext
from ..kernel.cext_backend import engine_statics
from ..obs import stage_detail as _stage_detail
from .base import Candidate, SchedulerState

TaskId = Hashable


def _model_code(model) -> int | None:
    """The engine's booker code for ``model`` (``None`` = no C booker).

    Exact type match on purpose: the one-port variants subclass and
    *share* ``name = "one-port"``-style metadata, and a user subclass
    overriding a booker hook must not be silently routed to the C
    implementation of its base class.
    """
    from ..models.macro_dataflow import MacroDataflowModel
    from ..models.one_port import OnePortModel
    from ..models.variants import NoOverlapOnePortModel, UniPortModel

    t = type(model)
    if t is OnePortModel:
        return _cext.MODEL_ONE_PORT
    if t is MacroDataflowModel:
        return _cext.MODEL_MACRO
    if t is UniPortModel:
        return _cext.MODEL_UNI_PORT
    if t is NoOverlapOnePortModel:
        return _cext.MODEL_NO_OVERLAP
    return None


class _EngineBuilder:
    """FlatBuilder-shaped read surface over the engine (tests, repr).

    The hot path never goes through this object; it exists so state
    introspection written against ``state.builder`` (fingerprints,
    trial-generation checks, committed-row dumps) works unchanged on
    the compiled backend.
    """

    __slots__ = ("_eng",)

    def __init__(self, eng) -> None:
        self._eng = eng

    @property
    def gen(self) -> int:
        return self._eng.gen

    @property
    def commit_count(self) -> int:
        return self._eng.commit_count

    @property
    def num_rows(self) -> int:
        return self._eng.num_rows

    def fingerprint(self) -> tuple:
        return self._eng.fingerprint()

    def committed(self, r: int) -> list[tuple[float, float]]:
        return self._eng.committed(r)

    def next_fit(self, r: int, ready: float, duration: float) -> float:
        return self._eng.next_fit(r, ready, duration)

    def book(self, r: int, start: float, end: float) -> None:
        self._eng.book(r, start, end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        eng = self._eng
        booked = sum(eng.row_len(r) for r in range(eng.num_rows))
        return (
            f"EngineBuilder(rows={eng.num_rows}, intervals={booked}, "
            f"gen={eng.gen})"
        )


class _CextComputeRowView:
    """Timeline-like view over one engine compute row (committed layer)."""

    __slots__ = ("_eng", "_proc")

    def __init__(self, eng, proc: int) -> None:
        self._eng = eng
        self._proc = proc

    def is_empty(self) -> bool:
        return self._eng.row_len(self._proc) == 0

    def last_end(self) -> float:
        return self._eng.last_end(self._proc)

    def intervals(self) -> list[tuple[float, float]]:
        return self._eng.committed(self._proc)

    def next_fit(self, ready: float, duration: float) -> float:
        return self._eng.next_fit(self._proc, ready, duration)

    def next_after_last(self, ready: float) -> float:
        last = self._eng.last_end(self._proc)
        return ready if ready >= last else last

    def reserve(self, start: float, end: float, tag=None) -> None:
        self._eng.book(self._proc, start, end)

    def __len__(self) -> int:
        return self._eng.row_len(self._proc)


class CextSchedulerState(SchedulerState):
    """Scheduler state on the compiled engine (see module docstring)."""

    __slots__ = ("_eng", "_mdepth")

    state_impl_name = "flat-cext"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        code = _model_code(self.model)
        if code is None:
            # Flat-capable model without a C booker (e.g. a subclass
            # overriding a booking hook): run the inherited pure-Python
            # engine and record what actually ran.
            self._eng = None
            self.schedule.state_impl = SchedulerState.state_impl_name
            return
        self._eng = eng = _cext.Engine(engine_statics(self.kernel), code)
        #: The inherited FlatBuilder/booker pair is superseded by the
        #: engine; ``builder`` becomes the read facade so state
        #: introspection keeps working.
        self.builder = _EngineBuilder(eng)
        self._mdepth = 0

    # ------------------------------------------------------------------
    # counter drain
    # ------------------------------------------------------------------
    def _flush_counters(self) -> None:
        """Drain engine counter deltas into the active collector.

        The engine accumulates counters in C; draining only at the
        sync points that close out every construction step (commit,
        schedule_on, restore) keeps the evaluate fast path free of
        per-call stats traffic while every completed run still reports
        exact totals.
        """
        deltas = self._eng.drain_counters()
        if deltas is not None:
            inc = self._stats.inc
            for name, d in deltas.items():
                inc(name, d)

    # ------------------------------------------------------------------
    # EFT engine
    # ------------------------------------------------------------------
    def evaluate(
        self,
        task: TaskId,
        proc: int,
        parents: Sequence[tuple[TaskId, int, float, float]] | None = None,
        insertion: bool | None = None,
    ) -> Candidate:
        eng = self._eng
        if eng is None:
            return super().evaluate(task, proc, parents, insertion)
        ti = self.kernel.intern(task)
        ins = self.insertion if insertion is None else insertion
        if parents is None:
            start, finish = eng.evaluate_one(ti, proc, ins)
        else:
            flat = self._flat_parents_from(task, parents)
            start, finish = eng.evaluate_with_parents(ti, proc, ins, flat)
        return Candidate(task, proc, start, finish)

    def evaluate_all(
        self,
        task: TaskId,
        procs: Iterable[int] | None = None,
        insertion: bool | None = None,
    ) -> list[Candidate]:
        eng = self._eng
        if eng is None:
            return super().evaluate_all(task, procs, insertion)
        ti = self.kernel.intern(task)
        ins = self.insertion if insertion is None else insertion
        if procs is not None and not isinstance(procs, (list, tuple, range)):
            procs = list(procs)
        rows = eng.evaluate_all(ti, ins, procs)
        return [Candidate(task, p, s, f) for p, s, f in rows]

    def best_candidate(
        self,
        task: TaskId,
        procs: Iterable[int] | None = None,
        insertion: bool | None = None,
    ) -> Candidate:
        eng = self._eng
        if eng is None:
            return super().best_candidate(task, procs, insertion)
        ti = self.kernel.intern(task)
        ins = self.insertion if insertion is None else insertion
        if procs is not None and not isinstance(procs, (list, tuple, range)):
            procs = list(procs)
        detail = self._stats is not None and _stage_detail()
        if detail:
            t0 = perf_counter()
        res = eng.best_candidate(ti, ins, procs)
        if detail:
            self._stats.add_time("stage.sweep", perf_counter() - t0)
        if res is None:
            raise SchedulingError(f"no candidate processors for task {task!r}")
        proc, start, finish = res
        return Candidate(task, proc, start, finish)

    # ------------------------------------------------------------------
    # commits
    # ------------------------------------------------------------------
    def _record_events(self, task: TaskId, proc: int, events: list) -> None:
        if not events:
            return
        kernel = self.kernel
        tasks, esrc, edata = kernel.tasks, kernel.esrc, kernel.edata
        record = self.schedule.record_comm
        for e, q, start, dur in events:
            record(tasks[esrc[e]], task, q, proc, start, dur, edata[e])

    def _mirror_place(
        self, task: TaskId, ti: int, proc: int, start: float, finish: float
    ) -> None:
        self._proc_a[ti] = proc
        self._start_a[ti] = start
        self._finish_a[ti] = finish
        self.schedule.place(task, proc, start, finish)
        self.finish[task] = finish

    def commit(self, candidate: Candidate) -> None:
        eng = self._eng
        if eng is None:
            return super().commit(candidate)
        task = candidate.task
        ti = self.kernel.intern(task)
        proc, start, finish = candidate.proc, candidate.start, candidate.finish
        detail = self._stats is not None and _stage_detail()
        if detail:
            t0 = perf_counter()
        events = eng.commit(ti, proc, start, finish)
        if detail:
            self._stats.add_time("stage.commit", perf_counter() - t0)
        self._record_events(task, proc, events)
        self._mirror_place(task, ti, proc, start, finish)
        if self._stats is not None:
            self._flush_counters()

    def schedule_on(
        self, task: TaskId, proc: int, insertion: bool | None = None
    ) -> Candidate:
        eng = self._eng
        if eng is None:
            return super().schedule_on(task, proc, insertion)
        ti = self.kernel.intern(task)
        ins = self.insertion if insertion is None else insertion
        start, finish, events = eng.schedule_on(ti, proc, ins)
        self._record_events(task, proc, events)
        self._mirror_place(task, ti, proc, start, finish)
        if self._stats is not None:
            self._flush_counters()
        return Candidate(task, proc, start, finish)

    # ------------------------------------------------------------------
    # compute-row views
    # ------------------------------------------------------------------
    @property
    def compute(self):
        if self._eng is None:
            return SchedulerState.compute.fget(self)
        views = self._compute_views
        if views is None:
            views = self._compute_views = [
                _CextComputeRowView(self._eng, p)
                for p in range(self.platform.num_processors)
            ]
        return views

    # ------------------------------------------------------------------
    # scratch runs and snapshots
    # ------------------------------------------------------------------
    def mark(self):
        eng = self._eng
        if eng is None:
            return super().mark()
        cursor, pcursor = eng.mark()
        self._mdepth += 1
        return (cursor, pcursor, len(self.schedule.comm_events))

    def restore(self, mark) -> None:
        eng = self._eng
        if eng is None:
            return super().restore(mark)
        cursor, pcursor, events_len = mark
        detail = self._stats is not None and _stage_detail()
        if detail:
            t0 = perf_counter()
        _entries, undone = eng.rollback(cursor, pcursor)
        if detail:
            self._stats.add_time("stage.journal", perf_counter() - t0)
        tasks = self.kernel.tasks
        placements = self.schedule.placements
        finish = self.finish
        proc_a = self._proc_a
        for ti in undone:
            proc_a[ti] = -1
            task = tasks[ti]
            del placements[task]
            del finish[task]
        self._mdepth -= 1
        del self.schedule.comm_events[events_len:]
        if self._stats is not None:
            self._flush_counters()

    def snapshot(self) -> "CextSchedulerState":
        if self._eng is None:
            return super().snapshot()
        dup = object.__new__(type(self))
        dup.graph = self.graph
        dup.platform = self.platform
        dup.model = self.model
        dup.maps = self.maps
        dup.kernel = self.kernel  # immutable statics, shared
        dup._eng = self._eng.copy()
        dup.builder = _EngineBuilder(dup._eng)
        dup.booker = self.booker  # unused on the engine path
        dup.schedule = type(self.schedule)(
            self.graph,
            self.platform,
            model=self.schedule.model,
            heuristic=self.schedule.heuristic,
            state_impl=self.schedule.state_impl,
        )
        dup.schedule.placements = dict(self.schedule.placements)
        dup.schedule.comm_events = list(self.schedule.comm_events)
        dup.finish = dict(self.finish)
        dup.insertion = self.insertion
        dup._proc_a = list(self._proc_a)
        dup._start_a = list(self._start_a)
        dup._finish_a = list(self._finish_a)
        dup._ev_buf = []
        dup._pcache = None
        dup._place_log = None
        dup._compute_views = None
        dup._stats = self._stats
        dup._mdepth = 0
        return dup
