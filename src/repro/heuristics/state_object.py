"""The object-level EFT engine, retained as the cross-check reference.

:class:`ObjectSchedulerState` is the original implementation of the
:class:`~repro.heuristics.base.SchedulerState` contract: one
:class:`~repro.core.timeline.Timeline` per processor, the model's
committed :class:`~repro.models.base.CommState`, and a fresh
:class:`~repro.models.base.CommTrial` per (task, processor) probe.  It
plays the same role for *construction* that
:func:`repro.simulate.replay_object` plays for *replay*: the slow,
obviously-faithful implementation the flat builder path is asserted
bit-identical against (``tests/heuristics/test_builder_equivalence.py``),
and the fallback for models without a flat booker (multi-hop routing).

Instantiate it directly, or route every heuristic through it with the
:func:`~repro.heuristics.base.force_object_state` context manager.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from ..core.exceptions import SchedulingError
from ..core.schedule import Schedule
from ..core.timeline import Timeline
from ..kernel import compile_statics
from .base import Candidate, SchedulerState

TaskId = Hashable


class ObjectSchedulerState(SchedulerState):
    """Mutable state of one scheduling run, on object timelines/trials."""

    __slots__ = ("compute", "comm")

    state_impl_name = "object"

    def __init__(
        self,
        graph,
        platform,
        model,
        heuristic: str = "",
        insertion: bool = True,
    ) -> None:
        graph.validate()
        self.graph = graph
        self.platform = platform
        self.model = model
        self.maps = graph.as_maps()
        #: Shared flat arrays (interning, CSR parents, cost tables) —
        #: the candidate-trial inner loop reads these instead of
        #: per-call dict/attribute lookups.
        self.kernel = compile_statics(graph, platform)
        self.compute = [Timeline() for _ in platform.processors]
        if getattr(model, "wants_compute", False):
            # variant models (e.g. no communication/computation overlap)
            # book transfers on the compute timelines too
            model.bind_compute(self.compute)
        self.comm = model.new_state()
        self.schedule = Schedule(
            graph,
            platform,
            model=model.name,
            heuristic=heuristic,
            state_impl=self.state_impl_name,
        )
        self.finish: dict[TaskId, float] = {}
        self.insertion = insertion

    # ------------------------------------------------------------------
    # EFT engine
    # ------------------------------------------------------------------
    def parents_info(self, task: TaskId) -> list[tuple[TaskId, int, float, float]]:
        """Incoming edges as ``(parent, parent_proc, parent_finish, data)``.

        Sorted by (finish, insertion index): the order in which the
        task's incoming messages are greedily booked on the ports.  The
        paper does not fix this order; first-finished-first is the
        natural greedy choice (data that exists earliest ships earliest).
        """
        kernel = self.kernel
        placements = self.schedule.placements
        tasks, esrc, edata = kernel.tasks, kernel.esrc, kernel.edata
        keyed = []
        for e in kernel.pred_rows[kernel.intern(task)]:
            pi = esrc[e]
            parent = tasks[pi]
            placement = placements.get(parent)
            if placement is None:
                raise SchedulingError(
                    f"task {task!r} evaluated before its parent {parent!r} was scheduled"
                )
            keyed.append(
                (placement.finish, pi, (parent, placement.proc, placement.finish, edata[e]))
            )
        keyed.sort()
        return [item[2] for item in keyed]

    def parent_procs(self, task: TaskId) -> set[int]:
        """Processors hosting ``task``'s already-scheduled parents."""
        placements = self.schedule.placements
        return {placements[p].proc for p in self.maps.preds[task]}

    def evaluate(
        self,
        task: TaskId,
        proc: int,
        parents: Sequence[tuple[TaskId, int, float, float]] | None = None,
        insertion: bool | None = None,
    ) -> Candidate:
        """EFT of ``task`` on ``proc``: tentative comms + compute slot."""
        if parents is None:
            parents = self.parents_info(task)
        trial = self.comm.trial()
        est = 0.0
        for parent, pproc, pfinish, data in parents:
            arrival = trial.edge_arrival(parent, task, pproc, proc, pfinish, data)
            if arrival > est:
                est = arrival
        duration = self.kernel.exec_[self.kernel.intern(task)][proc]
        use_insertion = self.insertion if insertion is None else insertion
        if use_insertion:
            start = self.compute[proc].next_fit(est, duration)
        else:
            start = self.compute[proc].next_after_last(est)
        return Candidate(task, proc, start, start + duration, trial)

    def evaluate_all(
        self,
        task: TaskId,
        procs: Iterable[int] | None = None,
        insertion: bool | None = None,
    ) -> list[Candidate]:
        """Evaluate ``task`` on every processor (or the given subset)."""
        parents = self.parents_info(task)
        procs = self.platform.processors if procs is None else procs
        return [self.evaluate(task, proc, parents, insertion) for proc in procs]

    def best_candidate(
        self,
        task: TaskId,
        procs: Iterable[int] | None = None,
        insertion: bool | None = None,
    ) -> Candidate:
        """Minimum-EFT candidate; ties broken by start time then processor
        index (the paper's toy example sends ties to ``P0``)."""
        candidates = self.evaluate_all(task, procs, insertion)
        if not candidates:
            raise SchedulingError(f"no candidate processors for task {task!r}")
        return min(candidates, key=lambda c: (c.finish, c.start, c.proc))

    def commit(self, candidate: Candidate) -> None:
        """Make a candidate permanent: comms, compute window, placement."""
        candidate.trial.commit(self.schedule)
        self.compute[candidate.proc].reserve(
            candidate.start, candidate.finish, candidate.task
        )
        self.schedule.place(
            candidate.task, candidate.proc, candidate.start, candidate.finish
        )
        self.finish[candidate.task] = candidate.finish

    def schedule_on(
        self, task: TaskId, proc: int, insertion: bool | None = None
    ) -> Candidate:
        """Evaluate-and-commit ``task`` on a fixed processor."""
        candidate = self.evaluate(task, proc, insertion=insertion)
        self.commit(candidate)
        return candidate

    # ------------------------------------------------------------------
    # snapshots / scratch runs
    # ------------------------------------------------------------------
    def snapshot(self) -> "ObjectSchedulerState":
        """Deep copy: trial-run a whole chunk without touching this state."""
        dup = object.__new__(type(self))
        dup.graph = self.graph
        dup.platform = self.platform
        dup.model = self.model
        dup.maps = self.maps
        dup.kernel = self.kernel  # immutable statics, shared
        dup.compute = [t.copy() for t in self.compute]
        dup.comm = self.comm.copy()
        if hasattr(dup.comm, "compute"):
            # compute-sharing models must follow the copied timelines
            dup.comm.compute = dup.compute
        dup.schedule = Schedule(
            self.graph,
            self.platform,
            model=self.schedule.model,
            heuristic=self.schedule.heuristic,
        )
        dup.schedule.placements = dict(self.schedule.placements)
        dup.schedule.comm_events = list(self.schedule.comm_events)
        dup.finish = dict(self.finish)
        dup.insertion = self.insertion
        return dup

    def mark(self):
        """Checkpoint for :meth:`restore` (here: a full deep copy).

        The flat path journals mutations instead and rolls back in
        O(changed); the object path keeps the deep-copy semantics it
        always had — same cost as the ``snapshot()`` it replaces.
        """
        return self.snapshot()

    def restore(self, mark: "ObjectSchedulerState") -> None:
        """Return to the checkpointed state, discarding later commits."""
        self.compute = mark.compute
        self.comm = mark.comm
        if hasattr(self.comm, "compute"):
            self.comm.compute = self.compute
        if getattr(self.model, "wants_compute", False):
            self.model.bind_compute(self.compute)
        self.schedule.placements = mark.schedule.placements
        self.schedule.comm_events = mark.schedule.comm_events
        self.finish = mark.finish
