"""``repro.kernel`` — the flat, integer-interned evaluation core.

Why this package exists
-----------------------
Every layer that re-times one-port schedules — :func:`repro.simulate.replay`,
the :class:`repro.search.IncrementalEvaluator` behind iterated local
search, and the list heuristics' candidate trials — used to walk Python
dict-of-object constraint graphs keyed by arbitrary hashable task ids.
Hashing id tuples dominated those profiles and capped testbed size.
The kernel compiles a ``(graph, platform, decisions)`` triple into flat,
integer-indexed arrays once and lets every layer share that compilation.

Layout
------
* **Interning** (:class:`KernelStatics`): task ids map to ``0 .. n-1``
  in graph insertion order, graph edges to ``0 .. E-1`` in edge
  insertion order.  Adjacency is CSR — ``pred_ptr[v] : pred_ptr[v+1]``
  slices ``pred_eix``, an array of *edge indices*, so one hop reaches
  both the neighbor (``esrc[e]``) and the edge volume (``edata[e]``).
  Cost tables are contiguous: the ``n x p`` execution-time table
  ``exec_`` and the ``p x p`` plain-list link matrix ``link_rows``.
  Statics are cached per (graph, platform) on the graph itself and
  invalidated when the graph mutates.
* **Flat construction state** (:class:`FlatBuilder`): the mutable
  counterpart of the statics for *building* schedules — per-resource
  committed interval rows (compute rows then the model's port rows),
  generation-stamped tentative layers so a candidate trial is O(1) to
  reject, and an undo journal for O(changed) scratch runs.  The
  heuristics' ``SchedulerState`` and the models' flat bookers live on
  top of it.
* **Timed constraint DAG** (:class:`TimedKernel`): node ``i < n`` is
  task ``i``; node ``n + e`` is the transfer slot of edge ``e``, active
  only while the edge is remote.  ``compile`` (from replay decisions or
  a search point) builds predecessor lists over these indices — the
  precedence, processor-order, and per-port event-list edges of the
  one-port model; ``propagate`` runs one forward pass over
  topologically ordered int arrays; ``patch`` re-propagates only
  downstream of an invalidated node set into generation-stamped
  overlays and ``apply`` folds the overlay back in.

Who routes through the kernel
-----------------------------
* :func:`repro.simulate.replay.replay` — every direct-transfer decision
  set (the one-port hot path) compiles and propagates here; only
  multi-hop routed schedules take the retained object-level path.
* :class:`repro.search.IncrementalEvaluator` — load is ``from_point`` +
  one ordered pass; previews and commits are ``patch`` / ``apply``.
* :class:`repro.heuristics.base.SchedulerState` — the HEFT/ILHA
  EFT engine runs entirely on :class:`FlatBuilder` rows: candidate
  trials, port bookings, compute slots, placements and finish times are
  all flat arrays over the statics' interned ids (the object-level
  reference implementation is retained in
  :mod:`repro.heuristics.state_object`).

The kernel computes bit-identical times to the object-level replay:
same ``max`` over the same operands, same single addition per node —
the cross-check suite in ``tests/kernel`` asserts exact agreement.
"""

from . import array_backend as _array_backend  # noqa: F401  (registers "numpy")
from . import cext_backend as _cext_backend  # noqa: F401  (registers "cext")
from .backends import (
    available_backends,
    current_backend,
    current_backend_name,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from .builder import FlatBuilder
from .statics import KernelStatics, compile_statics
from .timed import KernelIneligible, KernelPatch, TimedKernel

__all__ = [
    "FlatBuilder",
    "KernelIneligible",
    "KernelPatch",
    "KernelStatics",
    "TimedKernel",
    "available_backends",
    "compile_statics",
    "current_backend",
    "current_backend_name",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]
