/* Compiled booking-loop engine for the flat scheduling kernel.
 *
 * A hand-written CPython extension (no Cython/mypyc dependency): the
 * hot sequential path of the flat construction kernel — gap search,
 * trial/commit/undo booking primitives, the one-port booker's
 * trial_est/commit_est (including the per-edge send-feasibility seed
 * memo), and the all-processor candidate sweep with its
 * maxpf/frontier/in-trial pruning — transliterated from
 * kernel/builder.py, models/one_port.py, models/variants.py,
 * models/macro_dataflow.py and heuristics/base.py.
 *
 * Bit-identity contract: every float computation below performs the
 * SAME IEEE-754 double operations in the SAME order as the Python
 * source it mirrors (CPython floats are C doubles), so schedules are
 * bit-identical to the python and numpy backends.  When editing,
 * change the Python reference first, then mirror it here — never
 * "optimize" an expression into a different association.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>
#include <string.h>

/* Exception types injected from repro.core.exceptions at import time
 * (cext_backend calls _set_exceptions); RuntimeError until then. */
static PyObject *SchedulingErr = NULL;
static PyObject *TimelineErr = NULL;
static PyObject *PlatformErr = NULL;

#define SCHED_ERR (SchedulingErr ? SchedulingErr : PyExc_RuntimeError)
#define TIMELINE_ERR (TimelineErr ? TimelineErr : PyExc_RuntimeError)
#define PLATFORM_ERR (PlatformErr ? PlatformErr : PyExc_RuntimeError)

/* guard_tol(a, b) from core/tolerance.py: GUARD_FACTOR * (TIME_EPS *
 * scale) with scale = max(1, |a|, |b|) — same operation order. */
static inline double
guard_tol2(double a, double b)
{
    double scale = 1.0;
    double v = fabs(a);
    if (v > scale) scale = v;
    v = fabs(b);
    if (v > scale) scale = v;
    return 1e-3 * (1e-6 * scale);
}

/* bisect.bisect_right over a sorted double array. */
static inline Py_ssize_t
bisect_right_d(const double *a, Py_ssize_t n, double x)
{
    Py_ssize_t lo = 0, hi = n;
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        if (x < a[mid]) hi = mid; else lo = mid + 1;
    }
    return lo;
}

/* ------------------------------------------------------------------ */
/* growable interval rows                                             */
/* ------------------------------------------------------------------ */

typedef struct {
    double *s;
    double *e;
    Py_ssize_t len;
    Py_ssize_t cap;
} Row;

/* tentative layer: a Row plus its generation stamp */
typedef struct {
    double *s;
    double *e;
    Py_ssize_t len;
    Py_ssize_t cap;
    long long gen;
} TRow;

static int
row_reserve(double **s, double **e, Py_ssize_t len, Py_ssize_t *cap)
{
    if (len < *cap)
        return 0;
    Py_ssize_t nc = *cap ? *cap * 2 : 8;
    double *ns = PyMem_Realloc(*s, (size_t)nc * sizeof(double));
    if (ns == NULL) { PyErr_NoMemory(); return -1; }
    *s = ns;
    double *ne = PyMem_Realloc(*e, (size_t)nc * sizeof(double));
    if (ne == NULL) { PyErr_NoMemory(); return -1; }
    *e = ne;
    *cap = nc;
    return 0;
}

static int
row_insert(Row *r, Py_ssize_t pos, double start, double end)
{
    if (row_reserve(&r->s, &r->e, r->len, &r->cap) < 0)
        return -1;
    memmove(r->s + pos + 1, r->s + pos, (size_t)(r->len - pos) * sizeof(double));
    memmove(r->e + pos + 1, r->e + pos, (size_t)(r->len - pos) * sizeof(double));
    r->s[pos] = start;
    r->e[pos] = end;
    r->len++;
    return 0;
}

static int
trow_insert(TRow *t, Py_ssize_t pos, double start, double end)
{
    if (row_reserve(&t->s, &t->e, t->len, &t->cap) < 0)
        return -1;
    memmove(t->s + pos + 1, t->s + pos, (size_t)(t->len - pos) * sizeof(double));
    memmove(t->e + pos + 1, t->e + pos, (size_t)(t->len - pos) * sizeof(double));
    t->s[pos] = start;
    t->e[pos] = end;
    t->len++;
    return 0;
}

/* row_next_fit from kernel/builder.py: earliest t >= ready with
 * [t, t + duration) free in one sorted interval layer. */
static double
row_next_fit_c(const double *cs, const double *ce, Py_ssize_t n,
               double ready, double duration)
{
    if (duration == 0.0)
        return ready;
    if (n == 0 || ce[n - 1] <= ready)
        return ready;
    double t = ready;
    Py_ssize_t i = bisect_right_d(cs, n, t) - 1;
    if (i >= 0 && ce[i] > t)
        t = ce[i];
    i += 1;
    double lim = t + duration;
    while (i < n && cs[i] < lim) {
        if (ce[i] > t) {
            t = ce[i];
            lim = t + duration;
        }
        i++;
    }
    return t;
}

/* ------------------------------------------------------------------ */
/* Statics: immutable marshaled view of KernelStatics                 */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    Py_ssize_t n;          /* tasks */
    Py_ssize_t m;          /* edges */
    Py_ssize_t p;          /* processors */
    double *exec_;         /* n*p row-major */
    double *edata;         /* m */
    Py_ssize_t *esrc;      /* m */
    Py_ssize_t *pred_ptr;  /* n+1 */
    Py_ssize_t *pred_eix;  /* m */
    double *links;         /* p*p row-major */
    int all_links_finite;
} StaticsObject;

static int
fill_doubles(PyObject *seq, double *out, Py_ssize_t want, const char *name)
{
    PyObject *fast = PySequence_Fast(seq, "expected a sequence");
    if (fast == NULL)
        return -1;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    if (n != want) {
        Py_DECREF(fast);
        PyErr_Format(PyExc_ValueError, "%s: expected %zd items, got %zd",
                     name, want, n);
        return -1;
    }
    PyObject **items = PySequence_Fast_ITEMS(fast);
    for (Py_ssize_t i = 0; i < n; i++) {
        double v = PyFloat_AsDouble(items[i]);
        if (v == -1.0 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        out[i] = v;
    }
    Py_DECREF(fast);
    return 0;
}

static int
fill_ssizes(PyObject *seq, Py_ssize_t *out, Py_ssize_t want, const char *name)
{
    PyObject *fast = PySequence_Fast(seq, "expected a sequence");
    if (fast == NULL)
        return -1;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    if (n != want) {
        Py_DECREF(fast);
        PyErr_Format(PyExc_ValueError, "%s: expected %zd items, got %zd",
                     name, want, n);
        return -1;
    }
    PyObject **items = PySequence_Fast_ITEMS(fast);
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_ssize_t v = PyNumber_AsSsize_t(items[i], PyExc_OverflowError);
        if (v == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
        out[i] = v;
    }
    Py_DECREF(fast);
    return 0;
}

static void
Statics_dealloc(StaticsObject *self)
{
    PyMem_Free(self->exec_);
    PyMem_Free(self->edata);
    PyMem_Free(self->esrc);
    PyMem_Free(self->pred_ptr);
    PyMem_Free(self->pred_eix);
    PyMem_Free(self->links);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Statics_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    Py_ssize_t n, m, p;
    PyObject *exec_o, *edata_o, *esrc_o, *pptr_o, *peix_o, *links_o;
    int finite;
    if (!PyArg_ParseTuple(args, "nnnOOOOOOp:Statics", &n, &m, &p, &exec_o,
                          &edata_o, &esrc_o, &pptr_o, &peix_o, &links_o,
                          &finite))
        return NULL;
    if (n < 0 || m < 0 || p < 1) {
        PyErr_SetString(PyExc_ValueError, "bad statics dimensions");
        return NULL;
    }
    StaticsObject *self = (StaticsObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->n = n;
    self->m = m;
    self->p = p;
    self->all_links_finite = finite;
    Py_ssize_t np_cells = n * p;
    self->exec_ = PyMem_Malloc((size_t)(np_cells ? np_cells : 1) * sizeof(double));
    self->edata = PyMem_Malloc((size_t)(m ? m : 1) * sizeof(double));
    self->esrc = PyMem_Malloc((size_t)(m ? m : 1) * sizeof(Py_ssize_t));
    self->pred_ptr = PyMem_Malloc((size_t)(n + 1) * sizeof(Py_ssize_t));
    self->pred_eix = PyMem_Malloc((size_t)(m ? m : 1) * sizeof(Py_ssize_t));
    self->links = PyMem_Malloc((size_t)(p * p) * sizeof(double));
    if (!self->exec_ || !self->edata || !self->esrc || !self->pred_ptr ||
        !self->pred_eix || !self->links) {
        Py_DECREF(self);
        return PyErr_NoMemory();
    }
    if (fill_doubles(exec_o, self->exec_, n * p, "exec") < 0 ||
        fill_doubles(edata_o, self->edata, m, "edata") < 0 ||
        fill_ssizes(esrc_o, self->esrc, m, "esrc") < 0 ||
        fill_ssizes(pptr_o, self->pred_ptr, n + 1, "pred_ptr") < 0 ||
        fill_ssizes(peix_o, self->pred_eix, m, "pred_eix") < 0 ||
        fill_doubles(links_o, self->links, p * p, "links") < 0) {
        Py_DECREF(self);
        return NULL;
    }
    /* bounds-check the index arrays once so the hot loops need not */
    for (Py_ssize_t e = 0; e < m; e++) {
        if (self->esrc[e] < 0 || self->esrc[e] >= n) {
            Py_DECREF(self);
            PyErr_SetString(PyExc_ValueError, "esrc out of range");
            return NULL;
        }
    }
    for (Py_ssize_t i = 0; i <= n; i++) {
        if (self->pred_ptr[i] < 0 || self->pred_ptr[i] > m ||
            (i && self->pred_ptr[i] < self->pred_ptr[i - 1])) {
            Py_DECREF(self);
            PyErr_SetString(PyExc_ValueError, "pred_ptr not monotone");
            return NULL;
        }
    }
    for (Py_ssize_t k = 0; k < m; k++) {
        if (self->pred_eix[k] < 0 || self->pred_eix[k] >= m) {
            Py_DECREF(self);
            PyErr_SetString(PyExc_ValueError, "pred_eix out of range");
            return NULL;
        }
    }
    return (PyObject *)self;
}

static PyMemberDef Statics_members[] = {
    {"num_tasks", T_PYSSIZET, offsetof(StaticsObject, n), READONLY, NULL},
    {"num_edges", T_PYSSIZET, offsetof(StaticsObject, m), READONLY, NULL},
    {"num_procs", T_PYSSIZET, offsetof(StaticsObject, p), READONLY, NULL},
    {NULL}
};

static PyTypeObject Statics_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.kernel._cext.Statics",
    .tp_basicsize = sizeof(StaticsObject),
    .tp_dealloc = (destructor)Statics_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Immutable flat statics marshaled from KernelStatics.",
    .tp_members = Statics_members,
    .tp_new = Statics_new,
};

/* ------------------------------------------------------------------ */
/* Engine: mutable booking state of one scheduling run                */
/* ------------------------------------------------------------------ */

/* model codes (mirrors cext_backend._MODEL_CODES) */
#define MODEL_MACRO 0
#define MODEL_ONE_PORT 1
#define MODEL_UNI_PORT 2
#define MODEL_NO_OVERLAP 3

/* one resolved parent row: (finish, parent_ix, edge_ix, parent_proc) */
typedef struct {
    double fin;
    Py_ssize_t pi;
    Py_ssize_t e;
    Py_ssize_t pp;
} PRow;

typedef struct {
    Py_ssize_t r;
    Py_ssize_t pos;
} UndoRec;

typedef struct {
    Py_ssize_t e;
    Py_ssize_t q;
    double t;
    double dur;
} EvRec;

typedef struct {
    PyObject_HEAD
    StaticsObject *st;
    int model;
    Py_ssize_t num_rows;
    Py_ssize_t send0;      /* one-port / no-overlap */
    Py_ssize_t recv0;
    Py_ssize_t port0;      /* uni-port */
    Row *rows;
    TRow *tent;
    double *last_e;        /* per-row frontier */
    long long *row_ver;    /* per-row mutation epoch */
    long long gen;
    long long commit_count;
    /* undo journal (FlatBuilder.log); active while mark_depth > 0 */
    UndoRec *log;
    Py_ssize_t log_len, log_cap;
    Py_ssize_t mark_depth;
    /* placement log (SchedulerState._place_log) */
    Py_ssize_t *plog;
    Py_ssize_t plog_len, plog_cap;
    int plog_active;
    /* placements */
    Py_ssize_t *proc_a;    /* n, -1 = unplaced */
    double *start_a;
    double *finish_a;
    /* one-port per-edge seed memo: (send-row version, source proc,
     * ready, seed); ver < 0 = empty entry */
    long long *seed_ver;
    Py_ssize_t *seed_src;
    double *seed_ready;
    double *seed_t;
    /* scratch */
    PRow *par;
    Py_ssize_t par_cap;
    EvRec *ev;
    Py_ssize_t ev_len, ev_cap;
    unsigned char *touched;  /* num_rows, rollback scratch */
    /* obs counters (drained by the Python wrapper when stats are on) */
    long long c_candidates;
    long long c_prune_maxpf;
    long long c_prune_frontier;
    long long c_prune_abort;
    long long c_seed_hit;
    long long c_seed_miss;
    long long c_commits;
    long long c_rollbacks;
    long long c_rollback_entries;
    /* drain_counters() snapshot, in the order of counter_names[] */
    long long c_snap[9];
} EngineObject;

static void
Engine_dealloc(EngineObject *self)
{
    if (self->rows) {
        for (Py_ssize_t r = 0; r < self->num_rows; r++) {
            PyMem_Free(self->rows[r].s);
            PyMem_Free(self->rows[r].e);
        }
        PyMem_Free(self->rows);
    }
    if (self->tent) {
        for (Py_ssize_t r = 0; r < self->num_rows; r++) {
            PyMem_Free(self->tent[r].s);
            PyMem_Free(self->tent[r].e);
        }
        PyMem_Free(self->tent);
    }
    PyMem_Free(self->last_e);
    PyMem_Free(self->row_ver);
    PyMem_Free(self->log);
    PyMem_Free(self->plog);
    PyMem_Free(self->proc_a);
    PyMem_Free(self->start_a);
    PyMem_Free(self->finish_a);
    PyMem_Free(self->seed_ver);
    PyMem_Free(self->seed_src);
    PyMem_Free(self->seed_ready);
    PyMem_Free(self->seed_t);
    PyMem_Free(self->par);
    PyMem_Free(self->ev);
    PyMem_Free(self->touched);
    Py_XDECREF(self->st);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* allocate the per-row / per-task / per-edge arrays of a blank engine */
static int
engine_alloc(EngineObject *self, StaticsObject *st, int model)
{
    Py_ssize_t p = st->p;
    Py_ssize_t nrows = p;
    self->send0 = self->recv0 = self->port0 = -1;
    switch (model) {
    case MODEL_MACRO:
        break;
    case MODEL_ONE_PORT:
    case MODEL_NO_OVERLAP:
        self->send0 = nrows; nrows += p;
        self->recv0 = nrows; nrows += p;
        break;
    case MODEL_UNI_PORT:
        self->port0 = nrows; nrows += p;
        break;
    default:
        PyErr_Format(PyExc_ValueError, "unknown model code %d", model);
        return -1;
    }
    self->model = model;
    self->num_rows = nrows;
    self->rows = PyMem_Calloc((size_t)nrows, sizeof(Row));
    self->tent = PyMem_Calloc((size_t)nrows, sizeof(TRow));
    self->last_e = PyMem_Calloc((size_t)nrows, sizeof(double));
    self->row_ver = PyMem_Calloc((size_t)nrows, sizeof(long long));
    self->touched = PyMem_Calloc((size_t)nrows, 1);
    Py_ssize_t n = st->n ? st->n : 1;
    self->proc_a = PyMem_Malloc((size_t)n * sizeof(Py_ssize_t));
    self->start_a = PyMem_Calloc((size_t)n, sizeof(double));
    self->finish_a = PyMem_Calloc((size_t)n, sizeof(double));
    Py_ssize_t m = st->m ? st->m : 1;
    self->seed_ver = PyMem_Malloc((size_t)m * sizeof(long long));
    self->seed_src = PyMem_Calloc((size_t)m, sizeof(Py_ssize_t));
    self->seed_ready = PyMem_Calloc((size_t)m, sizeof(double));
    self->seed_t = PyMem_Calloc((size_t)m, sizeof(double));
    if (!self->rows || !self->tent || !self->last_e || !self->row_ver ||
        !self->touched || !self->proc_a || !self->start_a ||
        !self->finish_a || !self->seed_ver || !self->seed_src ||
        !self->seed_ready || !self->seed_t) {
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < st->n; i++)
        self->proc_a[i] = -1;
    for (Py_ssize_t e = 0; e < st->m; e++)
        self->seed_ver[e] = -1;
    self->gen = 1;
    self->commit_count = 0;
    self->mark_depth = 0;
    self->log_len = 0;
    self->plog_len = 0;
    self->plog_active = 0;
    Py_INCREF(st);
    self->st = st;
    return 0;
}

static PyObject *
Engine_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *st_o;
    int model;
    if (!PyArg_ParseTuple(args, "O!i:Engine", &Statics_Type, &st_o, &model))
        return NULL;
    EngineObject *self = (EngineObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    if (engine_alloc(self, (StaticsObject *)st_o, model) < 0) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

/* ------------------------------------------------------------------ */
/* committed / tentative booking primitives                           */
/* ------------------------------------------------------------------ */

static int
log_append(EngineObject *eg, Py_ssize_t r, Py_ssize_t pos)
{
    if (eg->log_len >= eg->log_cap) {
        Py_ssize_t nc = eg->log_cap ? eg->log_cap * 2 : 64;
        UndoRec *nl = PyMem_Realloc(eg->log, (size_t)nc * sizeof(UndoRec));
        if (nl == NULL) { PyErr_NoMemory(); return -1; }
        eg->log = nl;
        eg->log_cap = nc;
    }
    eg->log[eg->log_len].r = r;
    eg->log[eg->log_len].pos = pos;
    eg->log_len++;
    return 0;
}

/* FlatBuilder.book: commit [start, end) on row r with overlap guards */
static int
book_c(EngineObject *eg, Py_ssize_t r, double start, double end)
{
    if (end == start)
        return 0;
    Row *row = &eg->rows[r];
    Py_ssize_t pos = bisect_right_d(row->s, row->len, start);
    if (pos && row->e[pos - 1] > start) {
        if (row->e[pos - 1] > start + guard_tol2(start, row->e[pos - 1])) {
            char buf[160];
            snprintf(buf, sizeof(buf),
                     "row %zd: reservation [%.17g, %.17g) overlaps "
                     "[%.17g, %.17g)", r, start, end,
                     row->s[pos - 1], row->e[pos - 1]);
            PyErr_SetString(TIMELINE_ERR, buf);
            return -1;
        }
    }
    if (pos < row->len && row->s[pos] < end) {
        if (row->s[pos] < end - guard_tol2(end, row->s[pos])) {
            char buf[160];
            snprintf(buf, sizeof(buf),
                     "row %zd: reservation [%.17g, %.17g) overlaps "
                     "[%.17g, %.17g)", r, start, end,
                     row->s[pos], row->e[pos]);
            PyErr_SetString(TIMELINE_ERR, buf);
            return -1;
        }
    }
    if (row_insert(row, pos, start, end) < 0)
        return -1;
    eg->last_e[r] = row->e[row->len - 1];
    eg->row_ver[r] += 1;
    eg->commit_count += 1;
    if (eg->mark_depth > 0 && log_append(eg, r, pos) < 0)
        return -1;
    return 0;
}

/* FlatBuilder.book_tentative (truncates a stale layer first) */
static int
book_tent_c(EngineObject *eg, Py_ssize_t r, double start, double end)
{
    if (end == start)
        return 0;
    TRow *tv = &eg->tent[r];
    if (tv->gen != eg->gen) {
        tv->len = 0;
        tv->gen = eg->gen;
    }
    Py_ssize_t pos = bisect_right_d(tv->s, tv->len, start);
    return trow_insert(tv, pos, start, end);
}

/* FlatBuilder.next_fit_layered: committed + live tentative layer */
static double
next_fit_layered_c(EngineObject *eg, Py_ssize_t r, double ready,
                   double duration)
{
    if (duration == 0.0)
        return ready;
    Row *c = &eg->rows[r];
    TRow *tv = &eg->tent[r];
    const double *ts, *te;
    Py_ssize_t tn;
    if (tv->gen != eg->gen) {
        ts = te = NULL;
        tn = 0;
    } else {
        ts = tv->s;
        te = tv->e;
        tn = tv->len;
    }
    double t = ready;
    for (;;) {
        double t1 = row_next_fit_c(c->s, c->e, c->len, t, duration);
        double t2 = row_next_fit_c(ts, te, tn, t1, duration);
        if (t2 == t1)
            return t1;
        t = t2;
    }
}

/* FlatBuilder.joint_next_fit over a small fixed row set */
static double
joint_next_fit_c(EngineObject *eg, const Py_ssize_t *rows, int nrows,
                 double ready, double duration)
{
    double t = ready;
    for (;;) {
        int moved = 0;
        for (int k = 0; k < nrows; k++) {
            double t2 = next_fit_layered_c(eg, rows[k], t, duration);
            if (t2 != t) {
                t = t2;
                moved = 1;
            }
        }
        if (!moved)
            return t;
    }
}

/* ------------------------------------------------------------------ */
/* parents resolution (SchedulerState._parents)                       */
/* ------------------------------------------------------------------ */

static int
cmp_prow(const void *a, const void *b)
{
    const PRow *x = (const PRow *)a;
    const PRow *y = (const PRow *)b;
    if (x->fin < y->fin) return -1;
    if (x->fin > y->fin) return 1;
    if (x->pi != y->pi) return x->pi < y->pi ? -1 : 1;
    if (x->e != y->e) return x->e < y->e ? -1 : 1;
    return 0;
}

/* Resolve ti's parent rows into eg->par, sorted by (finish, parent).
 * Returns the row count, or -1 with an exception set. */
static Py_ssize_t
resolve_parents(EngineObject *eg, Py_ssize_t ti)
{
    StaticsObject *st = eg->st;
    Py_ssize_t lo = st->pred_ptr[ti], hi = st->pred_ptr[ti + 1];
    Py_ssize_t count = hi - lo;
    if (count > eg->par_cap) {
        Py_ssize_t nc = count < 16 ? 16 : count;
        PRow *np_ = PyMem_Realloc(eg->par, (size_t)nc * sizeof(PRow));
        if (np_ == NULL) { PyErr_NoMemory(); return -1; }
        eg->par = np_;
        eg->par_cap = nc;
    }
    for (Py_ssize_t k = 0; k < count; k++) {
        Py_ssize_t e = st->pred_eix[lo + k];
        Py_ssize_t pi = st->esrc[e];
        Py_ssize_t pp = eg->proc_a[pi];
        if (pp < 0) {
            PyErr_Format(SCHED_ERR,
                         "task #%zd evaluated before its parent #%zd was "
                         "scheduled", ti, pi);
            return -1;
        }
        eg->par[k].fin = eg->finish_a[pi];
        eg->par[k].pi = pi;
        eg->par[k].e = e;
        eg->par[k].pp = pp;
    }
    if (count > 1)
        qsort(eg->par, (size_t)count, sizeof(PRow), cmp_prow);
    return count;
}

/* ------------------------------------------------------------------ */
/* model bookers: trial_est                                           */
/* ------------------------------------------------------------------ */

/* MacroDataflowFlatBooker.trial_est: pure arithmetic, no resources */
static double
macro_trial_est(EngineObject *eg, const PRow *par, Py_ssize_t np_,
                Py_ssize_t proc, int *err)
{
    StaticsObject *st = eg->st;
    int check = !st->all_links_finite;
    double est = 0.0;
    for (Py_ssize_t j = 0; j < np_; j++) {
        double arr;
        if (par[j].pp == proc) {
            arr = par[j].fin;
        } else {
            double cost = st->links[par[j].pp * st->p + proc];
            if (check && !isfinite(cost)) {
                PyErr_Format(PLATFORM_ERR, "no direct link from P%zd to P%zd",
                             par[j].pp, proc);
                *err = 1;
                return 0.0;
            }
            arr = par[j].fin + st->edata[par[j].e] * cost;
        }
        if (arr > est)
            est = arr;
    }
    return est;
}

/* _JointRowsFlatBooker.trial_est (uni-port / no-overlap row sets) */
static int
joint_rows_for(EngineObject *eg, Py_ssize_t q, Py_ssize_t r,
               Py_ssize_t *rows)
{
    if (eg->model == MODEL_UNI_PORT) {
        rows[0] = eg->port0 + q;
        rows[1] = eg->port0 + r;
        return 2;
    }
    /* no-overlap: send/recv ports plus both endpoints' compute rows */
    rows[0] = eg->send0 + q;
    rows[1] = eg->recv0 + r;
    rows[2] = q;
    rows[3] = r;
    return 4;
}

static double
joint_trial_est(EngineObject *eg, const PRow *par, Py_ssize_t np_,
                Py_ssize_t proc, int *err)
{
    StaticsObject *st = eg->st;
    int check = !st->all_links_finite;
    double est = 0.0;
    for (Py_ssize_t j = 0; j < np_; j++) {
        double arr;
        Py_ssize_t pp = par[j].pp;
        if (pp == proc) {
            arr = par[j].fin;
        } else {
            double cost = st->links[pp * st->p + proc];
            if (check && !isfinite(cost)) {
                PyErr_Format(PLATFORM_ERR, "no direct link from P%zd to P%zd",
                             pp, proc);
                *err = 1;
                return 0.0;
            }
            double dur = st->edata[par[j].e] * cost;
            if (dur == 0.0) {
                arr = par[j].fin;
            } else {
                Py_ssize_t rows[4];
                int nrows = joint_rows_for(eg, pp, proc, rows);
                double start = joint_next_fit_c(eg, rows, nrows,
                                                par[j].fin, dur);
                double end = start + dur;
                for (int k = 0; k < nrows; k++) {
                    if (book_tent_c(eg, rows[k], start, end) < 0) {
                        *err = 1;
                        return 0.0;
                    }
                }
                arr = end;
            }
        }
        if (arr > est)
            est = arr;
    }
    return est;
}

/* OnePortFlatBooker.trial_est: 4-layer fixed point with scan cursors
 * and the per-edge send-feasibility seed memo.  A faithful
 * transliteration — see models/one_port.py for the commentary. */
static double
oneport_trial_est(EngineObject *eg, const PRow *par, Py_ssize_t np_,
                  Py_ssize_t proc, double cutoff, double duration, int *err)
{
    StaticsObject *st = eg->st;
    long long gen = eg->gen;
    int check = !st->all_links_finite;
    Py_ssize_t rr = eg->recv0 + proc;
    Row *rrow = &eg->rows[rr];
    TRow *rtv = NULL;  /* recv tentative layer, live after first booking */
    Py_ssize_t last_remote = -1;
    for (Py_ssize_t j = np_ - 1; j >= 0; j--) {
        if (par[j].pp != proc) {
            last_remote = j;
            break;
        }
    }
    double est = 0.0;
    for (Py_ssize_t j = 0; j < np_; j++) {
        double pfinish = par[j].fin;
        Py_ssize_t e = par[j].e;
        Py_ssize_t pproc = par[j].pp;
        if (pproc == proc) {
            if (pfinish > est)
                est = pfinish;
            continue;
        }
        double cost = st->links[pproc * st->p + proc];
        if (check && !isfinite(cost)) {
            PyErr_Format(PLATFORM_ERR, "no direct link from P%zd to P%zd",
                         pproc, proc);
            *err = 1;
            return 0.0;
        }
        double dur = st->edata[e] * cost;
        if (dur == 0.0) {
            if (pfinish > est)
                est = pfinish;
            continue;
        }
        Py_ssize_t rs = eg->send0 + pproc;
        Row *srow = &eg->rows[rs];
        TRow *stv = (eg->tent[rs].gen == gen) ? &eg->tent[rs] : NULL;
        Py_ssize_t si = -1, xi = -1, ri = -1, yi = -1;
        long long ver = eg->row_ver[rs];
        double t;
        if (eg->seed_ver[e] == ver && eg->seed_src[e] == pproc &&
            eg->seed_ready[e] == pfinish) {
            eg->c_seed_hit++;
            t = eg->seed_t[e];
        } else {
            eg->c_seed_miss++;
            t = pfinish;
            if (srow->len && srow->e[srow->len - 1] > t) {
                si = bisect_right_d(srow->s, srow->len, t) - 1;
                if (si >= 0 && srow->e[si] > t)
                    t = srow->e[si];
                si += 1;
                Py_ssize_t n = srow->len;
                double lim = t + dur;
                while (si < n && srow->s[si] < lim) {
                    if (srow->e[si] > t) {
                        t = srow->e[si];
                        lim = t + dur;
                    }
                    si++;
                }
            }
            eg->seed_ver[e] = ver;
            eg->seed_src[e] = pproc;
            eg->seed_ready[e] = pfinish;
            eg->seed_t[e] = t;
        }
        for (;;) {
            int moved = 0;
            /* send committed */
            if (srow->len && srow->e[srow->len - 1] > t) {
                if (si < 0) {
                    si = bisect_right_d(srow->s, srow->len, t) - 1;
                    if (si >= 0 && srow->e[si] > t) {
                        t = srow->e[si];
                        moved = 1;
                    }
                    si += 1;
                }
                Py_ssize_t n = srow->len;
                double lim = t + dur;
                while (si < n && srow->s[si] < lim) {
                    if (srow->e[si] > t) {
                        t = srow->e[si];
                        lim = t + dur;
                        moved = 1;
                    }
                    si++;
                }
            }
            /* send tentative (same-source siblings booked this trial) */
            if (stv && stv->len && stv->e[stv->len - 1] > t) {
                if (xi < 0) {
                    xi = bisect_right_d(stv->s, stv->len, t) - 1;
                    if (xi >= 0 && stv->e[xi] > t) {
                        t = stv->e[xi];
                        moved = 1;
                    }
                    xi += 1;
                }
                Py_ssize_t n = stv->len;
                double lim = t + dur;
                while (xi < n && stv->s[xi] < lim) {
                    if (stv->e[xi] > t) {
                        t = stv->e[xi];
                        lim = t + dur;
                        moved = 1;
                    }
                    xi++;
                }
            }
            /* recv committed */
            if (rrow->len && rrow->e[rrow->len - 1] > t) {
                if (ri < 0) {
                    ri = bisect_right_d(rrow->s, rrow->len, t) - 1;
                    if (ri >= 0 && rrow->e[ri] > t) {
                        t = rrow->e[ri];
                        moved = 1;
                    }
                    ri += 1;
                }
                Py_ssize_t n = rrow->len;
                double lim = t + dur;
                while (ri < n && rrow->s[ri] < lim) {
                    if (rrow->e[ri] > t) {
                        t = rrow->e[ri];
                        lim = t + dur;
                        moved = 1;
                    }
                    ri++;
                }
            }
            /* recv tentative (other messages booked this trial) */
            if (rtv && rtv->len && rtv->e[rtv->len - 1] > t) {
                if (yi < 0) {
                    yi = bisect_right_d(rtv->s, rtv->len, t) - 1;
                    if (yi >= 0 && rtv->e[yi] > t) {
                        t = rtv->e[yi];
                        moved = 1;
                    }
                    yi += 1;
                }
                Py_ssize_t n = rtv->len;
                double lim = t + dur;
                while (yi < n && rtv->s[yi] < lim) {
                    if (rtv->e[yi] > t) {
                        t = rtv->e[yi];
                        lim = t + dur;
                        moved = 1;
                    }
                    yi++;
                }
            }
            if (!moved)
                break;
        }
        double end = t + dur;
        if (j < last_remote) {
            /* book tentatively on both rows (truncating stale layers) */
            if (stv == NULL) {
                stv = &eg->tent[rs];
                stv->len = 0;
                stv->gen = gen;
            }
            Py_ssize_t i = bisect_right_d(stv->s, stv->len, t);
            if (trow_insert(stv, i, t, end) < 0) {
                *err = 1;
                return 0.0;
            }
            if (rtv == NULL) {
                rtv = &eg->tent[rr];
                if (rtv->gen != gen) {
                    rtv->len = 0;
                    rtv->gen = gen;
                }
            }
            i = bisect_right_d(rtv->s, rtv->len, t);
            if (trow_insert(rtv, i, t, end) < 0) {
                *err = 1;
                return 0.0;
            }
        }
        if (end > est) {
            est = end;
            if (est + duration > cutoff)
                return est;  /* partial: candidate provably loses */
        }
    }
    return est;
}

static double
trial_est_dispatch(EngineObject *eg, const PRow *par, Py_ssize_t np_,
                   Py_ssize_t proc, double cutoff, double duration, int *err)
{
    switch (eg->model) {
    case MODEL_ONE_PORT:
        return oneport_trial_est(eg, par, np_, proc, cutoff, duration, err);
    case MODEL_MACRO:
        return macro_trial_est(eg, par, np_, proc, err);
    default:
        return joint_trial_est(eg, par, np_, proc, err);
    }
}

/* ------------------------------------------------------------------ */
/* model bookers: commit_est                                          */
/* ------------------------------------------------------------------ */

static int
ev_append(EngineObject *eg, Py_ssize_t e, Py_ssize_t q, double t, double dur)
{
    if (eg->ev_len >= eg->ev_cap) {
        Py_ssize_t nc = eg->ev_cap ? eg->ev_cap * 2 : 16;
        EvRec *ne = PyMem_Realloc(eg->ev, (size_t)nc * sizeof(EvRec));
        if (ne == NULL) { PyErr_NoMemory(); return -1; }
        eg->ev = ne;
        eg->ev_cap = nc;
    }
    eg->ev[eg->ev_len].e = e;
    eg->ev[eg->ev_len].q = q;
    eg->ev[eg->ev_len].t = t;
    eg->ev[eg->ev_len].dur = dur;
    eg->ev_len++;
    return 0;
}

static double
macro_commit_est(EngineObject *eg, const PRow *par, Py_ssize_t np_,
                 Py_ssize_t proc, int *err)
{
    StaticsObject *st = eg->st;
    int check = !st->all_links_finite;
    double est = 0.0;
    for (Py_ssize_t j = 0; j < np_; j++) {
        double arr;
        if (par[j].pp == proc) {
            arr = par[j].fin;
        } else {
            double cost = st->links[par[j].pp * st->p + proc];
            if (check && !isfinite(cost)) {
                PyErr_Format(PLATFORM_ERR, "no direct link from P%zd to P%zd",
                             par[j].pp, proc);
                *err = 1;
                return 0.0;
            }
            double dur = st->edata[par[j].e] * cost;
            if (ev_append(eg, par[j].e, par[j].pp, par[j].fin, dur) < 0) {
                *err = 1;
                return 0.0;
            }
            arr = par[j].fin + dur;
        }
        if (arr > est)
            est = arr;
    }
    return est;
}

static double
joint_commit_est(EngineObject *eg, const PRow *par, Py_ssize_t np_,
                 Py_ssize_t proc, int *err)
{
    StaticsObject *st = eg->st;
    int check = !st->all_links_finite;
    double est = 0.0;
    for (Py_ssize_t j = 0; j < np_; j++) {
        double arr;
        Py_ssize_t pp = par[j].pp;
        if (pp == proc) {
            arr = par[j].fin;
        } else {
            double cost = st->links[pp * st->p + proc];
            if (check && !isfinite(cost)) {
                PyErr_Format(PLATFORM_ERR, "no direct link from P%zd to P%zd",
                             pp, proc);
                *err = 1;
                return 0.0;
            }
            double dur = st->edata[par[j].e] * cost;
            if (dur == 0.0) {
                if (ev_append(eg, par[j].e, pp, par[j].fin, 0.0) < 0) {
                    *err = 1;
                    return 0.0;
                }
                arr = par[j].fin;
            } else {
                Py_ssize_t rows[4];
                int nrows = joint_rows_for(eg, pp, proc, rows);
                double start = joint_next_fit_c(eg, rows, nrows,
                                                par[j].fin, dur);
                double end = start + dur;
                for (int k = 0; k < nrows; k++) {
                    if (book_c(eg, rows[k], start, end) < 0) {
                        *err = 1;
                        return 0.0;
                    }
                }
                if (ev_append(eg, par[j].e, pp, start, dur) < 0) {
                    *err = 1;
                    return 0.0;
                }
                arr = end;
            }
        }
        if (arr > est)
            est = arr;
    }
    return est;
}

/* OnePortFlatBooker.commit_est: committed layers only, re-bisecting
 * two-layer fixed point (no cursors — mirrors the Python source). */
static double
oneport_commit_est(EngineObject *eg, const PRow *par, Py_ssize_t np_,
                   Py_ssize_t proc, int *err)
{
    StaticsObject *st = eg->st;
    int check = !st->all_links_finite;
    Py_ssize_t rr = eg->recv0 + proc;
    double est = 0.0;
    for (Py_ssize_t j = 0; j < np_; j++) {
        double pfinish = par[j].fin;
        Py_ssize_t e = par[j].e;
        Py_ssize_t pproc = par[j].pp;
        if (pproc == proc) {
            if (pfinish > est)
                est = pfinish;
            continue;
        }
        double cost = st->links[pproc * st->p + proc];
        if (check && !isfinite(cost)) {
            PyErr_Format(PLATFORM_ERR, "no direct link from P%zd to P%zd",
                         pproc, proc);
            *err = 1;
            return 0.0;
        }
        double dur = st->edata[e] * cost;
        if (dur == 0.0) {
            if (ev_append(eg, e, pproc, pfinish, 0.0) < 0) {
                *err = 1;
                return 0.0;
            }
            if (pfinish > est)
                est = pfinish;
            continue;
        }
        Py_ssize_t rs = eg->send0 + pproc;
        Row *srow = &eg->rows[rs];
        Row *rrow = &eg->rows[rr];
        double t = pfinish;
        for (;;) {
            int moved = 0;
            if (srow->len && srow->e[srow->len - 1] > t) {
                Py_ssize_t i = bisect_right_d(srow->s, srow->len, t) - 1;
                if (i >= 0 && srow->e[i] > t) {
                    t = srow->e[i];
                    moved = 1;
                }
                i += 1;
                Py_ssize_t n = srow->len;
                double lim = t + dur;
                while (i < n && srow->s[i] < lim) {
                    if (srow->e[i] > t) {
                        t = srow->e[i];
                        lim = t + dur;
                        moved = 1;
                    }
                    i++;
                }
            }
            if (rrow->len && rrow->e[rrow->len - 1] > t) {
                Py_ssize_t i = bisect_right_d(rrow->s, rrow->len, t) - 1;
                if (i >= 0 && rrow->e[i] > t) {
                    t = rrow->e[i];
                    moved = 1;
                }
                i += 1;
                Py_ssize_t n = rrow->len;
                double lim = t + dur;
                while (i < n && rrow->s[i] < lim) {
                    if (rrow->e[i] > t) {
                        t = rrow->e[i];
                        lim = t + dur;
                        moved = 1;
                    }
                    i++;
                }
            }
            if (!moved)
                break;
        }
        double end = t + dur;
        if (book_c(eg, rs, t, end) < 0 || book_c(eg, rr, t, end) < 0) {
            *err = 1;
            return 0.0;
        }
        if (ev_append(eg, e, pproc, t, dur) < 0) {
            *err = 1;
            return 0.0;
        }
        if (end > est)
            est = end;
    }
    return est;
}

static double
commit_est_dispatch(EngineObject *eg, const PRow *par, Py_ssize_t np_,
                    Py_ssize_t proc, int *err)
{
    switch (eg->model) {
    case MODEL_ONE_PORT:
        return oneport_commit_est(eg, par, np_, proc, err);
    case MODEL_MACRO:
        return macro_commit_est(eg, par, np_, proc, err);
    default:
        return joint_commit_est(eg, par, np_, proc, err);
    }
}

/* ------------------------------------------------------------------ */
/* Engine methods (the Python-visible surface)                        */
/* ------------------------------------------------------------------ */

static int
check_ti(EngineObject *eg, Py_ssize_t ti)
{
    if (ti < 0 || ti >= eg->st->n) {
        PyErr_Format(PyExc_IndexError, "task index %zd out of range", ti);
        return -1;
    }
    return 0;
}

static int
check_proc(EngineObject *eg, Py_ssize_t proc)
{
    if (proc < 0 || proc >= eg->st->p) {
        PyErr_Format(PyExc_IndexError, "processor %zd out of range", proc);
        return -1;
    }
    return 0;
}

/* Parse a procs argument: None = all processors (returns NULL with
 * *count = p); otherwise a malloc'd validated index array. */
static Py_ssize_t *
parse_procs(EngineObject *eg, PyObject *procs_o, Py_ssize_t *count, int *err)
{
    *err = 0;
    if (procs_o == Py_None) {
        *count = eg->st->p;
        return NULL;
    }
    PyObject *fast = PySequence_Fast(procs_o, "procs must be a sequence");
    if (fast == NULL) {
        *err = 1;
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    Py_ssize_t *out = PyMem_Malloc((size_t)(n ? n : 1) * sizeof(Py_ssize_t));
    if (out == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        *err = 1;
        return NULL;
    }
    PyObject **items = PySequence_Fast_ITEMS(fast);
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_ssize_t v = PyNumber_AsSsize_t(items[i], PyExc_OverflowError);
        if ((v == -1 && PyErr_Occurred()) || v < 0 || v >= eg->st->p) {
            if (!PyErr_Occurred())
                PyErr_Format(PyExc_IndexError, "processor %zd out of range", v);
            Py_DECREF(fast);
            PyMem_Free(out);
            *err = 1;
            return NULL;
        }
        out[i] = v;
    }
    Py_DECREF(fast);
    *count = n;
    return out;
}

static PyObject *
events_to_list(EngineObject *eg)
{
    PyObject *lst = PyList_New(eg->ev_len);
    if (lst == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < eg->ev_len; i++) {
        PyObject *t = Py_BuildValue("(nndd)", eg->ev[i].e, eg->ev[i].q,
                                    eg->ev[i].t, eg->ev[i].dur);
        if (t == NULL) {
            Py_DECREF(lst);
            return NULL;
        }
        PyList_SET_ITEM(lst, i, t);
    }
    return lst;
}

/* SchedulerState.best_candidate: min-EFT sweep with maxpf / frontier /
 * in-trial-abort pruning, strict (finish, start, proc) tie-break.
 * Returns (proc, start, finish) or None when no candidate exists. */
static PyObject *
Engine_best_candidate(EngineObject *eg, PyObject *args)
{
    Py_ssize_t ti;
    int use_insertion;
    PyObject *procs_o;
    if (!PyArg_ParseTuple(args, "npO:best_candidate", &ti, &use_insertion,
                          &procs_o))
        return NULL;
    if (check_ti(eg, ti) < 0)
        return NULL;
    Py_ssize_t np_ = resolve_parents(eg, ti);
    if (np_ < 0)
        return NULL;
    int perr = 0;
    Py_ssize_t nprocs;
    Py_ssize_t *procs = parse_procs(eg, procs_o, &nprocs, &perr);
    if (perr)
        return NULL;
    StaticsObject *st = eg->st;
    const double *exec_row = st->exec_ + ti * st->p;
    int prunable = st->all_links_finite;
    const PRow *par = eg->par;
    double maxpf = np_ ? par[np_ - 1].fin : 0.0;
    double inf = Py_HUGE_VAL;
    double bf = inf, bs = inf;
    Py_ssize_t bp = -1;
    for (Py_ssize_t k = 0; k < nprocs; k++) {
        Py_ssize_t proc = procs ? procs[k] : k;
        double duration = exec_row[proc];
        if (prunable && maxpf + duration > bf) {
            eg->c_prune_maxpf++;
            continue;
        }
        Row *crow = &eg->rows[proc];
        double last = crow->len ? crow->e[crow->len - 1] : 0.0;
        if (prunable && !use_insertion && last + duration > bf) {
            eg->c_prune_frontier++;
            continue;
        }
        eg->gen += 1;  /* begin_trial */
        eg->c_candidates++;
        int err = 0;
        double est = trial_est_dispatch(eg, par, np_, proc,
                                        prunable ? bf : inf, duration, &err);
        if (err) {
            PyMem_Free(procs);
            return NULL;
        }
        if (prunable && est + duration > bf) {
            eg->c_prune_abort++;
            continue;
        }
        double start;
        if (use_insertion)
            start = row_next_fit_c(crow->s, crow->e, crow->len, est, duration);
        else
            start = est >= last ? est : last;
        double finish = start + duration;
        if (finish < bf ||
            (finish == bf && (start < bs || (start == bs && proc < bp)))) {
            bf = finish;
            bs = start;
            bp = proc;
        }
    }
    PyMem_Free(procs);
    if (bp < 0)
        Py_RETURN_NONE;
    return Py_BuildValue("(ndd)", bp, bs, bf);
}

/* one candidate: begin_trial + trial_est + compute slot */
static int
eval_one_c(EngineObject *eg, Py_ssize_t ti, Py_ssize_t proc,
           int use_insertion, const PRow *par, Py_ssize_t np_,
           double *start_out, double *finish_out)
{
    eg->gen += 1;  /* begin_trial */
    eg->c_candidates++;
    int err = 0;
    double est = trial_est_dispatch(eg, par, np_, proc, Py_HUGE_VAL, 0.0,
                                    &err);
    if (err)
        return -1;
    double duration = eg->st->exec_[ti * eg->st->p + proc];
    Row *crow = &eg->rows[proc];
    double start;
    if (use_insertion) {
        start = row_next_fit_c(crow->s, crow->e, crow->len, est, duration);
    } else {
        double last = crow->len ? crow->e[crow->len - 1] : 0.0;
        start = est >= last ? est : last;
    }
    *start_out = start;
    *finish_out = start + duration;
    return 0;
}

static PyObject *
Engine_evaluate_all(EngineObject *eg, PyObject *args)
{
    Py_ssize_t ti;
    int use_insertion;
    PyObject *procs_o;
    if (!PyArg_ParseTuple(args, "npO:evaluate_all", &ti, &use_insertion,
                          &procs_o))
        return NULL;
    if (check_ti(eg, ti) < 0)
        return NULL;
    Py_ssize_t np_ = resolve_parents(eg, ti);
    if (np_ < 0)
        return NULL;
    int perr = 0;
    Py_ssize_t nprocs;
    Py_ssize_t *procs = parse_procs(eg, procs_o, &nprocs, &perr);
    if (perr)
        return NULL;
    PyObject *out = PyList_New(nprocs);
    if (out == NULL) {
        PyMem_Free(procs);
        return NULL;
    }
    for (Py_ssize_t k = 0; k < nprocs; k++) {
        Py_ssize_t proc = procs ? procs[k] : k;
        double start, finish;
        if (eval_one_c(eg, ti, proc, use_insertion, eg->par, np_, &start,
                       &finish) < 0) {
            PyMem_Free(procs);
            Py_DECREF(out);
            return NULL;
        }
        PyObject *t = Py_BuildValue("(ndd)", proc, start, finish);
        if (t == NULL) {
            PyMem_Free(procs);
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, k, t);
    }
    PyMem_Free(procs);
    return out;
}

static PyObject *
Engine_evaluate_one(EngineObject *eg, PyObject *args)
{
    Py_ssize_t ti, proc;
    int use_insertion;
    if (!PyArg_ParseTuple(args, "nnp:evaluate_one", &ti, &proc,
                          &use_insertion))
        return NULL;
    if (check_ti(eg, ti) < 0 || check_proc(eg, proc) < 0)
        return NULL;
    Py_ssize_t np_ = resolve_parents(eg, ti);
    if (np_ < 0)
        return NULL;
    double start, finish;
    if (eval_one_c(eg, ti, proc, use_insertion, eg->par, np_, &start,
                   &finish) < 0)
        return NULL;
    return Py_BuildValue("(dd)", start, finish);
}

/* evaluate with explicit (pfinish, pi, e, pproc) rows, order preserved
 * (SchedulerState.evaluate with a hypothetical ``parents`` list) */
static PyObject *
Engine_evaluate_with_parents(EngineObject *eg, PyObject *args)
{
    Py_ssize_t ti, proc;
    int use_insertion;
    PyObject *rows_o;
    if (!PyArg_ParseTuple(args, "nnpO:evaluate_with_parents", &ti, &proc,
                          &use_insertion, &rows_o))
        return NULL;
    if (check_ti(eg, ti) < 0 || check_proc(eg, proc) < 0)
        return NULL;
    PyObject *fast = PySequence_Fast(rows_o, "parents must be a sequence");
    if (fast == NULL)
        return NULL;
    Py_ssize_t count = PySequence_Fast_GET_SIZE(fast);
    if (count > eg->par_cap) {
        Py_ssize_t nc = count < 16 ? 16 : count;
        PRow *np_ = PyMem_Realloc(eg->par, (size_t)nc * sizeof(PRow));
        if (np_ == NULL) {
            Py_DECREF(fast);
            return PyErr_NoMemory();
        }
        eg->par = np_;
        eg->par_cap = nc;
    }
    PyObject **items = PySequence_Fast_ITEMS(fast);
    for (Py_ssize_t k = 0; k < count; k++) {
        double fin;
        Py_ssize_t pi, e, pp;
        if (!PyArg_ParseTuple(items[k], "dnnn", &fin, &pi, &e, &pp)) {
            Py_DECREF(fast);
            return NULL;
        }
        if (e < 0 || e >= eg->st->m || pp < 0 || pp >= eg->st->p) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_IndexError, "parent row out of range");
            return NULL;
        }
        eg->par[k].fin = fin;
        eg->par[k].pi = pi;
        eg->par[k].e = e;
        eg->par[k].pp = pp;
    }
    Py_DECREF(fast);
    double start, finish;
    if (eval_one_c(eg, ti, proc, use_insertion, eg->par, count, &start,
                   &finish) < 0)
        return NULL;
    return Py_BuildValue("(dd)", start, finish);
}

static int
plog_append(EngineObject *eg, Py_ssize_t ti)
{
    if (eg->plog_len >= eg->plog_cap) {
        Py_ssize_t nc = eg->plog_cap ? eg->plog_cap * 2 : 64;
        Py_ssize_t *np_ = PyMem_Realloc(eg->plog,
                                        (size_t)nc * sizeof(Py_ssize_t));
        if (np_ == NULL) { PyErr_NoMemory(); return -1; }
        eg->plog = np_;
        eg->plog_cap = nc;
    }
    eg->plog[eg->plog_len++] = ti;
    return 0;
}

/* _commit_comms + _place, fused: books ports and the compute window,
 * records the placement, and returns the transfer events as a list of
 * (edge_ix, src_proc, start, duration). */
static PyObject *
Engine_commit(EngineObject *eg, PyObject *args)
{
    Py_ssize_t ti, proc;
    double start, finish;
    if (!PyArg_ParseTuple(args, "nndd:commit", &ti, &proc, &start, &finish))
        return NULL;
    if (check_ti(eg, ti) < 0 || check_proc(eg, proc) < 0)
        return NULL;
    Py_ssize_t np_ = resolve_parents(eg, ti);
    if (np_ < 0)
        return NULL;
    eg->gen += 1;  /* stale any tentative data */
    eg->ev_len = 0;
    int err = 0;
    commit_est_dispatch(eg, eg->par, np_, proc, &err);
    if (err)
        return NULL;
    eg->c_commits++;
    if (book_c(eg, proc, start, finish) < 0)
        return NULL;
    eg->proc_a[ti] = proc;
    eg->start_a[ti] = start;
    eg->finish_a[ti] = finish;
    if (eg->plog_active && plog_append(eg, ti) < 0)
        return NULL;
    return events_to_list(eg);
}

/* SchedulerState.schedule_on: evaluate-and-commit on a fixed processor.
 * Returns (start, finish, events). */
static PyObject *
Engine_schedule_on(EngineObject *eg, PyObject *args)
{
    Py_ssize_t ti, proc;
    int use_insertion;
    if (!PyArg_ParseTuple(args, "nnp:schedule_on", &ti, &proc,
                          &use_insertion))
        return NULL;
    if (check_ti(eg, ti) < 0 || check_proc(eg, proc) < 0)
        return NULL;
    Py_ssize_t np_ = resolve_parents(eg, ti);
    if (np_ < 0)
        return NULL;
    eg->gen += 1;
    eg->ev_len = 0;
    int err = 0;
    double est = commit_est_dispatch(eg, eg->par, np_, proc, &err);
    if (err)
        return NULL;
    double duration = eg->st->exec_[ti * eg->st->p + proc];
    Row *crow = &eg->rows[proc];
    double start;
    if (use_insertion) {
        start = row_next_fit_c(crow->s, crow->e, crow->len, est, duration);
    } else {
        double last = crow->len ? crow->e[crow->len - 1] : 0.0;
        start = est >= last ? est : last;
    }
    double finish = start + duration;
    eg->c_commits++;
    if (book_c(eg, proc, start, finish) < 0)
        return NULL;
    eg->proc_a[ti] = proc;
    eg->start_a[ti] = start;
    eg->finish_a[ti] = finish;
    if (eg->plog_active && plog_append(eg, ti) < 0)
        return NULL;
    PyObject *events = events_to_list(eg);
    if (events == NULL)
        return NULL;
    PyObject *res = Py_BuildValue("(ddN)", start, finish, events);
    return res;
}

/* ------------------------------------------------------------------ */
/* journal / copy / introspection                                     */
/* ------------------------------------------------------------------ */

static PyObject *
Engine_mark(EngineObject *eg, PyObject *Py_UNUSED(ignored))
{
    if (eg->mark_depth == 0)
        eg->log_len = 0;  /* builder.mark: log = [] when None */
    eg->mark_depth += 1;
    if (!eg->plog_active) {
        eg->plog_active = 1;
        eg->plog_len = 0;
    }
    return Py_BuildValue("(nn)", eg->log_len, eg->plog_len);
}

/* FlatBuilder.rollback + the placement part of SchedulerState.restore.
 * Returns (entries_undone, [task_ix...]) with tasks in undo order. */
static PyObject *
Engine_rollback(EngineObject *eg, PyObject *args)
{
    Py_ssize_t cursor, pcursor;
    if (!PyArg_ParseTuple(args, "nn:rollback", &cursor, &pcursor))
        return NULL;
    if (eg->mark_depth == 0) {
        PyErr_SetString(TIMELINE_ERR, "rollback without an active mark");
        return NULL;
    }
    if (cursor < 0 || cursor > eg->log_len || pcursor < 0 ||
        pcursor > eg->plog_len) {
        PyErr_SetString(PyExc_ValueError, "bad rollback cursor");
        return NULL;
    }
    Py_ssize_t entries = eg->log_len - cursor;
    eg->c_rollbacks++;
    eg->c_rollback_entries += entries;
    memset(eg->touched, 0, (size_t)eg->num_rows);
    for (Py_ssize_t i = eg->log_len - 1; i >= cursor; i--) {
        Py_ssize_t r = eg->log[i].r;
        Py_ssize_t pos = eg->log[i].pos;
        Row *row = &eg->rows[r];
        memmove(row->s + pos, row->s + pos + 1,
                (size_t)(row->len - pos - 1) * sizeof(double));
        memmove(row->e + pos, row->e + pos + 1,
                (size_t)(row->len - pos - 1) * sizeof(double));
        row->len--;
        eg->touched[r] = 1;
    }
    for (Py_ssize_t r = 0; r < eg->num_rows; r++) {
        if (eg->touched[r]) {
            Row *row = &eg->rows[r];
            eg->last_e[r] = row->len ? row->e[row->len - 1] : 0.0;
            eg->row_ver[r] += 1;
        }
    }
    eg->log_len = cursor;
    eg->mark_depth -= 1;
    eg->gen += 1;
    eg->commit_count += 1;
    PyObject *undone = PyList_New(eg->plog_len - pcursor);
    if (undone == NULL)
        return NULL;
    Py_ssize_t idx = 0;
    for (Py_ssize_t i = eg->plog_len - 1; i >= pcursor; i--) {
        Py_ssize_t ti = eg->plog[i];
        eg->proc_a[ti] = -1;
        PyObject *v = PyLong_FromSsize_t(ti);
        if (v == NULL) {
            Py_DECREF(undone);
            return NULL;
        }
        PyList_SET_ITEM(undone, idx++, v);
    }
    eg->plog_len = pcursor;
    if (eg->mark_depth == 0)
        eg->plog_active = 0;
    return Py_BuildValue("(nN)", entries, undone);
}

/* independent deep copy of committed state (FlatBuilder.copy +
 * booker.rebind semantics: fresh tentative layers, fresh seed memo,
 * no journal, counters zeroed) */
static PyObject *
Engine_copy(EngineObject *eg, PyObject *Py_UNUSED(ignored))
{
    EngineObject *dup =
        (EngineObject *)Py_TYPE(eg)->tp_alloc(Py_TYPE(eg), 0);
    if (dup == NULL)
        return NULL;
    if (engine_alloc(dup, eg->st, eg->model) < 0) {
        Py_DECREF(dup);
        return NULL;
    }
    for (Py_ssize_t r = 0; r < eg->num_rows; r++) {
        Row *src = &eg->rows[r];
        Row *dst = &dup->rows[r];
        if (src->len) {
            dst->s = PyMem_Malloc((size_t)src->len * sizeof(double));
            dst->e = PyMem_Malloc((size_t)src->len * sizeof(double));
            if (dst->s == NULL || dst->e == NULL) {
                Py_DECREF(dup);
                return PyErr_NoMemory();
            }
            memcpy(dst->s, src->s, (size_t)src->len * sizeof(double));
            memcpy(dst->e, src->e, (size_t)src->len * sizeof(double));
            dst->len = dst->cap = src->len;
        }
        dup->last_e[r] = eg->last_e[r];
        dup->row_ver[r] = eg->row_ver[r];
    }
    memcpy(dup->proc_a, eg->proc_a, (size_t)eg->st->n * sizeof(Py_ssize_t));
    memcpy(dup->start_a, eg->start_a, (size_t)eg->st->n * sizeof(double));
    memcpy(dup->finish_a, eg->finish_a, (size_t)eg->st->n * sizeof(double));
    return (PyObject *)dup;
}

static PyObject *
Engine_committed(EngineObject *eg, PyObject *args)
{
    Py_ssize_t r;
    if (!PyArg_ParseTuple(args, "n:committed", &r))
        return NULL;
    if (r < 0 || r >= eg->num_rows) {
        PyErr_Format(PyExc_IndexError, "row %zd out of range", r);
        return NULL;
    }
    Row *row = &eg->rows[r];
    PyObject *out = PyList_New(row->len);
    if (out == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < row->len; i++) {
        PyObject *t = Py_BuildValue("(dd)", row->s[i], row->e[i]);
        if (t == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, t);
    }
    return out;
}

static PyObject *
Engine_row_len(EngineObject *eg, PyObject *args)
{
    Py_ssize_t r;
    if (!PyArg_ParseTuple(args, "n:row_len", &r))
        return NULL;
    if (r < 0 || r >= eg->num_rows) {
        PyErr_Format(PyExc_IndexError, "row %zd out of range", r);
        return NULL;
    }
    return PyLong_FromSsize_t(eg->rows[r].len);
}

static PyObject *
Engine_last_end(EngineObject *eg, PyObject *args)
{
    Py_ssize_t r;
    if (!PyArg_ParseTuple(args, "n:last_end", &r))
        return NULL;
    if (r < 0 || r >= eg->num_rows) {
        PyErr_Format(PyExc_IndexError, "row %zd out of range", r);
        return NULL;
    }
    Row *row = &eg->rows[r];
    return PyFloat_FromDouble(row->len ? row->e[row->len - 1] : 0.0);
}

static PyObject *
Engine_next_fit(EngineObject *eg, PyObject *args)
{
    Py_ssize_t r;
    double ready, duration;
    if (!PyArg_ParseTuple(args, "ndd:next_fit", &r, &ready, &duration))
        return NULL;
    if (r < 0 || r >= eg->num_rows) {
        PyErr_Format(PyExc_IndexError, "row %zd out of range", r);
        return NULL;
    }
    Row *row = &eg->rows[r];
    return PyFloat_FromDouble(
        row_next_fit_c(row->s, row->e, row->len, ready, duration));
}

static PyObject *
Engine_book(EngineObject *eg, PyObject *args)
{
    Py_ssize_t r;
    double start, end;
    if (!PyArg_ParseTuple(args, "ndd:book", &r, &start, &end))
        return NULL;
    if (r < 0 || r >= eg->num_rows) {
        PyErr_Format(PyExc_IndexError, "row %zd out of range", r);
        return NULL;
    }
    if (book_c(eg, r, start, end) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Engine_fingerprint(EngineObject *eg, PyObject *Py_UNUSED(ignored))
{
    PyObject *out = PyTuple_New(eg->num_rows);
    if (out == NULL)
        return NULL;
    for (Py_ssize_t r = 0; r < eg->num_rows; r++) {
        Row *row = &eg->rows[r];
        PyObject *rt = PyTuple_New(row->len);
        if (rt == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        for (Py_ssize_t i = 0; i < row->len; i++) {
            PyObject *iv = Py_BuildValue("(dd)", row->s[i], row->e[i]);
            if (iv == NULL) {
                Py_DECREF(rt);
                Py_DECREF(out);
                return NULL;
            }
            PyTuple_SET_ITEM(rt, i, iv);
        }
        PyTuple_SET_ITEM(out, r, rt);
    }
    return out;
}

static PyObject *
Engine_placement(EngineObject *eg, PyObject *args)
{
    Py_ssize_t ti;
    if (!PyArg_ParseTuple(args, "n:placement", &ti))
        return NULL;
    if (check_ti(eg, ti) < 0)
        return NULL;
    if (eg->proc_a[ti] < 0)
        Py_RETURN_NONE;
    return Py_BuildValue("(ndd)", eg->proc_a[ti], eg->start_a[ti],
                         eg->finish_a[ti]);
}

static PyObject *
Engine_parents(EngineObject *eg, PyObject *args)
{
    Py_ssize_t ti;
    if (!PyArg_ParseTuple(args, "n:parents", &ti))
        return NULL;
    if (check_ti(eg, ti) < 0)
        return NULL;
    Py_ssize_t np_ = resolve_parents(eg, ti);
    if (np_ < 0)
        return NULL;
    PyObject *out = PyList_New(np_);
    if (out == NULL)
        return NULL;
    for (Py_ssize_t k = 0; k < np_; k++) {
        PyObject *t = Py_BuildValue("(dnnn)", eg->par[k].fin, eg->par[k].pi,
                                    eg->par[k].e, eg->par[k].pp);
        if (t == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, k, t);
    }
    return out;
}

/* cumulative obs counters, keyed by catalog metric name; the wrapper
 * drains deltas into the active Stats collector */
static PyObject *
Engine_counters(EngineObject *eg, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue(
        "{s:L,s:L,s:L,s:L,s:L,s:L,s:L,s:L,s:L}",
        "builder.candidates", eg->c_candidates,
        "builder.prune.maxpf", eg->c_prune_maxpf,
        "builder.prune.frontier", eg->c_prune_frontier,
        "builder.prune.abort", eg->c_prune_abort,
        "oneport.seed.hit", eg->c_seed_hit,
        "oneport.seed.miss", eg->c_seed_miss,
        "builder.commits", eg->c_commits,
        "builder.rollbacks", eg->c_rollbacks,
        "builder.rollback_entries", eg->c_rollback_entries);
}

/* catalog names for drain_counters, matching the struct field order */
static const char *const counter_names[9] = {
    "builder.candidates", "builder.prune.maxpf", "builder.prune.frontier",
    "builder.prune.abort", "oneport.seed.hit", "oneport.seed.miss",
    "builder.commits", "builder.rollbacks", "builder.rollback_entries",
};

/* deltas since the last drain, as a dict of only the counters that
 * moved (None when nothing did) — cheap enough to call per commit */
static PyObject *
Engine_drain_counters(EngineObject *eg, PyObject *Py_UNUSED(ignored))
{
    long long cur[9] = {
        eg->c_candidates, eg->c_prune_maxpf, eg->c_prune_frontier,
        eg->c_prune_abort, eg->c_seed_hit, eg->c_seed_miss,
        eg->c_commits, eg->c_rollbacks, eg->c_rollback_entries,
    };
    PyObject *out = NULL;
    for (int i = 0; i < 9; i++) {
        long long d = cur[i] - eg->c_snap[i];
        if (d == 0)
            continue;
        if (out == NULL && (out = PyDict_New()) == NULL)
            return NULL;
        PyObject *v = PyLong_FromLongLong(d);
        if (v == NULL || PyDict_SetItemString(out, counter_names[i], v) < 0) {
            Py_XDECREF(v);
            Py_DECREF(out);
            return NULL;
        }
        Py_DECREF(v);
        eg->c_snap[i] = cur[i];
    }
    if (out == NULL)
        Py_RETURN_NONE;
    return out;
}

static PyMethodDef Engine_methods[] = {
    {"best_candidate", (PyCFunction)Engine_best_candidate, METH_VARARGS, NULL},
    {"evaluate_all", (PyCFunction)Engine_evaluate_all, METH_VARARGS, NULL},
    {"evaluate_one", (PyCFunction)Engine_evaluate_one, METH_VARARGS, NULL},
    {"evaluate_with_parents", (PyCFunction)Engine_evaluate_with_parents,
     METH_VARARGS, NULL},
    {"commit", (PyCFunction)Engine_commit, METH_VARARGS, NULL},
    {"schedule_on", (PyCFunction)Engine_schedule_on, METH_VARARGS, NULL},
    {"mark", (PyCFunction)Engine_mark, METH_NOARGS, NULL},
    {"rollback", (PyCFunction)Engine_rollback, METH_VARARGS, NULL},
    {"copy", (PyCFunction)Engine_copy, METH_NOARGS, NULL},
    {"committed", (PyCFunction)Engine_committed, METH_VARARGS, NULL},
    {"row_len", (PyCFunction)Engine_row_len, METH_VARARGS, NULL},
    {"last_end", (PyCFunction)Engine_last_end, METH_VARARGS, NULL},
    {"next_fit", (PyCFunction)Engine_next_fit, METH_VARARGS, NULL},
    {"book", (PyCFunction)Engine_book, METH_VARARGS, NULL},
    {"fingerprint", (PyCFunction)Engine_fingerprint, METH_NOARGS, NULL},
    {"placement", (PyCFunction)Engine_placement, METH_VARARGS, NULL},
    {"parents", (PyCFunction)Engine_parents, METH_VARARGS, NULL},
    {"counters", (PyCFunction)Engine_counters, METH_NOARGS, NULL},
    {"drain_counters", (PyCFunction)Engine_drain_counters, METH_NOARGS,
     NULL},
    {NULL}
};

static PyMemberDef Engine_members[] = {
    {"gen", T_LONGLONG, offsetof(EngineObject, gen), READONLY, NULL},
    {"commit_count", T_LONGLONG, offsetof(EngineObject, commit_count),
     READONLY, NULL},
    {"num_rows", T_PYSSIZET, offsetof(EngineObject, num_rows), READONLY,
     NULL},
    {"model", T_INT, offsetof(EngineObject, model), READONLY, NULL},
    {NULL}
};

static PyTypeObject Engine_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.kernel._cext.Engine",
    .tp_basicsize = sizeof(EngineObject),
    .tp_dealloc = (destructor)Engine_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Compiled booking engine for one scheduling run.",
    .tp_methods = Engine_methods,
    .tp_members = Engine_members,
    .tp_new = Engine_new,
};

/* ------------------------------------------------------------------ */
/* module                                                             */
/* ------------------------------------------------------------------ */

static PyObject *
cext_set_exceptions(PyObject *Py_UNUSED(mod), PyObject *args)
{
    PyObject *sched, *timeline, *platform;
    if (!PyArg_ParseTuple(args, "OOO:_set_exceptions", &sched, &timeline,
                          &platform))
        return NULL;
    Py_INCREF(sched);
    Py_XSETREF(SchedulingErr, sched);
    Py_INCREF(timeline);
    Py_XSETREF(TimelineErr, timeline);
    Py_INCREF(platform);
    Py_XSETREF(PlatformErr, platform);
    Py_RETURN_NONE;
}

static PyObject *
cext_build_info(PyObject *Py_UNUSED(mod), PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue(
        "{s:s,s:s,s:s}",
        "compiler",
#if defined(__clang_version__)
        "clang " __clang_version__,
#elif defined(__VERSION__)
        "gcc " __VERSION__,
#else
        "unknown",
#endif
        "built", __DATE__ " " __TIME__,
        "python", PY_VERSION);
}

static PyMethodDef cext_methods[] = {
    {"_set_exceptions", cext_set_exceptions, METH_VARARGS,
     "Install the repro exception types used by the engine."},
    {"build_info", cext_build_info, METH_NOARGS,
     "Compiler / build provenance of this extension."},
    {NULL}
};

static struct PyModuleDef cext_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.kernel._cext",
    .m_doc = "Compiled booking-loop engine (see module source).",
    .m_size = -1,
    .m_methods = cext_methods,
};

PyMODINIT_FUNC
PyInit__cext(void)
{
    if (PyType_Ready(&Statics_Type) < 0 || PyType_Ready(&Engine_Type) < 0)
        return NULL;
    PyObject *mod = PyModule_Create(&cext_module);
    if (mod == NULL)
        return NULL;
    Py_INCREF(&Statics_Type);
    if (PyModule_AddObject(mod, "Statics", (PyObject *)&Statics_Type) < 0) {
        Py_DECREF(&Statics_Type);
        Py_DECREF(mod);
        return NULL;
    }
    Py_INCREF(&Engine_Type);
    if (PyModule_AddObject(mod, "Engine", (PyObject *)&Engine_Type) < 0) {
        Py_DECREF(&Engine_Type);
        Py_DECREF(mod);
        return NULL;
    }
    if (PyModule_AddIntConstant(mod, "MODEL_MACRO", MODEL_MACRO) < 0 ||
        PyModule_AddIntConstant(mod, "MODEL_ONE_PORT", MODEL_ONE_PORT) < 0 ||
        PyModule_AddIntConstant(mod, "MODEL_UNI_PORT", MODEL_UNI_PORT) < 0 ||
        PyModule_AddIntConstant(mod, "MODEL_NO_OVERLAP",
                                MODEL_NO_OVERLAP) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
