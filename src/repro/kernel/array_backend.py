"""Numpy implementations of the kernel's hot primitives (the array backend).

Three primitives live here, all bit-identical to their pure-Python
references in :mod:`repro.kernel.builder` / :mod:`repro.kernel.timed`:

* :func:`np_row_next_fit` — :func:`~repro.kernel.builder.row_next_fit`
  over contiguous numpy start/end arrays;
* :class:`GapRows` — gap-indexed row mirrors: per row, a block index of
  maximal free-gap lengths lets ``next_fit`` skip whole blocks that
  cannot fit the requested duration, making gap search sublinear on
  long (5k+ interval) rows;
* :func:`propagate_frontier` — the frontier-batched
  :meth:`~repro.kernel.timed.TimedKernel.propagate_kahn`: each Kahn
  level is processed as one vectorized ``maximum.at`` / in-degree
  decrement instead of a per-node Python loop.

Exactness
---------
The scalar ``next_fit`` scan can only stop (i) immediately at the probe
position, (ii) right after an interval ``k`` whose following gap
``cs[k+1] - t_k`` fits the duration, or (iii) past the last interval:
after scanning interval ``k`` the running time satisfies ``t >= ce[k]``,
so a stop at ``k+1`` implies ``cs[k+1] - ce[k] >= duration``.  The gap
index therefore enumerates *candidate* stop positions from the
(padded, conservative) static gaps ``cs[k+1] - ce[k]`` and verifies
each with the scalar comparison ``cs[k+1] >= t_k + duration`` over the
exact running maximum ``t_k`` — same comparisons over the same
operands, no new arithmetic on the returned value.  The padding
(:data:`GAP_PAD_REL`, a magnitude-relative slack far above one ulp)
only ever *adds* candidates, so a true stop position is never skipped;
see the tolerance audit in ``tests/kernel/test_array_backend.py``.

The frontier propagation relies on unordered float ``max`` being exact:
``np.maximum.at`` accumulates the same running maximum over the same
finish values as the scalar fused max-into-decrement, in a different
order — IEEE ``max`` is associative and commutative, so the meets are
identical floats.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from ..core.exceptions import SchedulingError
from ..obs import current as _obs_current
from .backends import KernelBackend, register_backend
from .builder import NO_DIRTY, row_next_fit

#: Gap-candidate padding, relative to the interval magnitudes: static
#: gaps are one float subtraction away from the scalar scan's exact
#: ``t + duration`` comparisons, so candidates are admitted with this
#: slack (>> one ulp) and verified exactly.  Padding only widens the
#: candidate set — it can cost a wasted verification, never a miss.
GAP_PAD_REL = 1e-12

#: Rows shorter than this use the scalar scan directly: building and
#: probing the index only pays off once rows are long.
GAP_MIN_LEN = 96

#: Intervals per block of the gap index.
GAP_BLOCK = 64

#: Appended intervals tolerated past a mirror's indexed prefix before
#: the index is grown over the tail: the un-indexed tail is walked
#: scalar, so it is kept short.  Appends are the overwhelmingly common
#: booking (EFT extends row frontiers) and never invalidate the prefix.
GAP_TAIL_MAX = 48

#: Candidate admission threshold factor: a gap is a candidate when
#: ``gap + |end| * GAP_PAD_REL >= duration * _GAP_THR`` — algebraically
#: ``gap + (|end| + duration) * GAP_PAD_REL >= duration``, the padded
#: test of the module docstring, with the duration term folded into the
#: threshold so the query needs no array arithmetic.
_GAP_THR = 1.0 - GAP_PAD_REL


def _gap_scan(
    cs, ce, gap_pad, blockmax, ready: float, duration: float, thr: float
):
    """Shared exact scan over a mirrored row (see module docstring).

    ``cs`` / ``ce`` are the row's interval starts/ends as float64
    arrays, ``gap_pad`` the padded static gaps ``cs[1:] - ce[:-1]``,
    ``blockmax`` their per-block maxima, and ``thr`` the candidate
    admission threshold (:data:`_GAP_THR` times the duration).

    Returns ``(found, t)``: ``found`` is True when a window fitting
    before the next mirrored interval was located (``t`` is final),
    False when the scan fell off the mirrored prefix (``t`` is the
    running maximum over every mirrored end — the caller continues on
    whatever lies beyond the mirror).
    """
    n = cs.shape[0]
    # prologue — mirrors row_next_fit: advance out of the interval
    # covering ``ready``, then check for an immediate fit
    t = ready
    i = int(np.searchsorted(cs, t, side="right")) - 1
    if i >= 0:
        e0 = float(ce[i])
        if e0 > t:
            t = e0
    i += 1
    if i >= n:
        return False, t
    if float(cs[i]) >= t + duration:
        return True, t
    # candidate stop positions: k >= i with a (padded) static gap that
    # fits; verified with the exact running maximum t_k
    nb = blockmax.shape[0]
    scan_from = i  # ends in [i, scan_from) are already folded into t
    b = i // GAP_BLOCK
    while b < nb:
        if float(blockmax[b]) < thr:
            b += 1
            continue
        lo = b * GAP_BLOCK
        if lo < i:
            lo = i
        hi = (b + 1) * GAP_BLOCK
        if hi > n - 1:
            hi = n - 1
        for off in np.nonzero(gap_pad[lo:hi] >= thr)[0]:
            k = lo + int(off)
            if k >= scan_from:
                m = float(ce[scan_from : k + 1].max())
                if m > t:
                    t = m
                scan_from = k + 1
            if float(cs[k + 1]) >= t + duration:
                return True, t
        b += 1
    # no mirrored gap fits: fold the remaining ends and hand off
    if scan_from < n:
        m = float(ce[scan_from:].max())
        if m > t:
            t = m
    return False, t


def np_row_next_fit(cs, ce, ready: float, duration: float) -> float:
    """:func:`~repro.kernel.builder.row_next_fit` over numpy arrays.

    Earliest ``t >= ready`` with ``[t, t + duration)`` free, given the
    sorted interval starts/ends ``cs`` / ``ce`` (array-likes).  Returns
    the identical float the scalar scan returns.
    """
    cs = np.ascontiguousarray(cs, dtype=np.float64)
    ce = np.ascontiguousarray(ce, dtype=np.float64)
    if duration == 0.0:
        return ready
    n = cs.shape[0]
    if n == 0 or float(ce[-1]) <= ready:
        return ready
    gap = cs[1:] - ce[:-1]
    gap_pad = gap + np.abs(ce[:-1]) * GAP_PAD_REL
    nb = (gap_pad.shape[0] + GAP_BLOCK - 1) // GAP_BLOCK
    pad_len = nb * GAP_BLOCK
    padded = np.full(pad_len, -np.inf)
    padded[: gap_pad.shape[0]] = gap_pad
    blockmax = padded.reshape(nb, GAP_BLOCK).max(axis=1)
    _found, t = _gap_scan(
        cs, ce, gap_pad, blockmax, ready, duration, duration * _GAP_THR
    )
    # the whole row is mirrored here, so a fall-off is itself final
    return t


class GapRows:
    """Gap-indexed mirrors of a builder's committed rows.

    Each mirrored row caches ``(prefix length, ce ndarray, padded gaps,
    per-block gap maxima)``.  The padded gaps and block maxima are plain
    Python lists — the probe loop reads a handful of scalars, where list
    indexing beats ndarray item access several-fold — while ``ce`` is
    kept as an ndarray for the long running-maximum segment folds.
    Interval starts are read from the builder's own row list: the
    mirror is only consulted below its validity watermark (see below),
    so no copy is needed.

    Validity is tracked by the builder's per-row *dirty watermark*
    (:attr:`~repro.kernel.builder.FlatBuilder.row_dirty`): appends — the
    dominant booking, EFT extends row frontiers — never move it, and a
    mid-row insert at position ``pos`` only invalidates the mirror from
    ``pos`` on.  EFT books mid-row near the frontier, so the indexed
    prefix below the watermark keeps serving deep scans; whatever lies
    at or past the watermark is walked scalar.

    Re-syncing (rebuilding a stale mirror, or growing one over a tail
    that outgrew :data:`GAP_TAIL_MAX`) is *debt-gated*: each row
    accumulates the scalar-walk steps its un-mirrored part cost, and a
    sync is only performed once that debt reaches the row length — i.e.
    once the O(row) sync provably amortizes against scalar work already
    paid.  This bounds total sync cost by total scalar-scan cost, so
    insert-heavy phases (which would otherwise rebuild every query)
    degrade to at most ~2x the plain scalar scan instead of O(rowˆ2).
    Short rows and short remaining scans bypass the mirror entirely
    (:data:`GAP_MIN_LEN`) — the scalar scan wins there.

    Contract: at most one ``GapRows`` consumer per builder (each resets
    the shared watermark when it syncs).  Scheduler states satisfy this
    — snapshots copy the builder and build fresh mirrors.
    """

    __slots__ = ("builder", "_rows", "_debt", "stats")

    def __init__(self, builder) -> None:
        self.builder = builder
        self._rows: dict[int, tuple] = {}
        self._debt: dict[int, int] = {}
        #: Active obs collector, captured once (``None`` = stats off).
        self.stats = _obs_current()

    def _mirror(self, r: int) -> tuple:
        if self.stats is not None:
            self.stats.inc("gap.resync")
        cs = np.array(self.builder.rows_s[r], dtype=np.float64)
        ce = np.array(self.builder.rows_e[r], dtype=np.float64)
        gap_pad = (cs[1:] - ce[:-1]) + np.abs(ce[:-1]) * GAP_PAD_REL
        nb = (gap_pad.shape[0] + GAP_BLOCK - 1) // GAP_BLOCK
        padded = np.full(nb * GAP_BLOCK, -np.inf)
        padded[: gap_pad.shape[0]] = gap_pad
        blockmax = padded.reshape(nb, GAP_BLOCK).max(axis=1)
        ent = (cs.shape[0], ce, gap_pad.tolist(), blockmax.tolist())
        self._rows[r] = ent
        self.builder.row_dirty[r] = NO_DIRTY
        return ent

    def _extend(self, r: int, ent: tuple, n: int) -> tuple:
        """Grow a mirror over a row's appended tail (no full rebuild).

        Valid whenever the watermark is at or past the mirrored prefix:
        the prefix is then untouched, and the tail gaps are recomputed
        from the builder's current rows regardless of how they got
        there.
        """
        if self.stats is not None:
            self.stats.inc("gap.resync")
        nm, ce_np, gap_pad, blockmax = ent
        cs_l = self.builder.rows_s[r]
        ce_l = self.builder.rows_e[r]
        ce_np = np.concatenate(
            (ce_np, np.asarray(ce_l[nm:n], dtype=np.float64))
        )
        for k in range(nm - 1, n - 1):
            e0 = ce_l[k]
            gap_pad.append(
                (cs_l[k + 1] - e0) + (e0 if e0 >= 0.0 else -e0) * GAP_PAD_REL
            )
        ng = n - 1
        first = ((nm - 1) // GAP_BLOCK) * GAP_BLOCK
        del blockmax[first // GAP_BLOCK :]
        for lo in range(first, ng, GAP_BLOCK):
            hi = lo + GAP_BLOCK
            blockmax.append(max(gap_pad[lo : hi if hi < ng else ng]))
        ent = (n, ce_np, gap_pad, blockmax)
        self._rows[r] = ent
        self.builder.row_dirty[r] = NO_DIRTY
        return ent

    def next_fit(self, r: int, ready: float, duration: float) -> float:
        """Earliest committed-layer window on row ``r`` (exact).

        The handoffs are exact by restart invariance: every point the
        scalar prologue or the index advances past is proven
        infeasible, so the least feasible point at or after the running
        value ``t`` is the least feasible point at or after ``ready``.
        """
        b = self.builder
        cs_l = b.rows_s[r]
        ce_l = b.rows_e[r]
        n = len(cs_l)
        stats = self.stats
        if stats is not None:
            stats.inc("gap.searches")
        if duration == 0.0 or n < GAP_MIN_LEN:
            if stats is not None:
                stats.inc("gap.scalar")
            return row_next_fit(cs_l, ce_l, ready, duration)
        t = ready
        if ce_l[-1] <= t:
            return t
        i = bisect_right(cs_l, t) - 1
        if i >= 0 and ce_l[i] > t:
            t = ce_l[i]
        i += 1
        lim = t + duration
        if i >= n or cs_l[i] >= lim:
            return t
        if n - i < GAP_MIN_LEN:
            # short remaining scan: finish scalar, skip the index
            if stats is not None:
                stats.inc("gap.scalar")
            while i < n and cs_l[i] < lim:
                if ce_l[i] > t:
                    t = ce_l[i]
                    lim = t + duration
                i += 1
            return t
        ent = self._rows.get(r)
        j = i
        if ent is not None:
            nm = ent[0]
            dirty = b.row_dirty[r]
            if dirty >= nm:
                # prefix fully valid; sync an outgrown appended tail
                if n - nm > GAP_TAIL_MAX:
                    ent = self._extend(r, ent, n)
                    nm = n
                trusted = nm
            else:
                trusted = dirty
            last = trusted - 1  # gap k sits between intervals k, k+1
            if last - i >= GAP_MIN_LEN:
                if stats is not None:
                    stats.inc("gap.indexed")
                # candidate stop positions k in [i, last): (padded)
                # static gap fits; verified with the exact running max
                ce_np, gap_pad, blockmax = ent[1], ent[2], ent[3]
                thr = duration * _GAP_THR
                nb = len(blockmax)
                scan_from = i  # ends in [i, scan_from) folded into t
                bx = i // GAP_BLOCK
                while bx < nb:
                    k = bx * GAP_BLOCK
                    if k >= last:
                        break
                    if blockmax[bx] < thr:
                        bx += 1
                        continue
                    hi = k + GAP_BLOCK
                    if k < i:
                        k = i
                    if hi > last:
                        hi = last
                    while k < hi:
                        if gap_pad[k] >= thr:
                            if k >= scan_from:
                                if k - scan_from < 32:
                                    m = max(ce_l[scan_from : k + 1])
                                else:
                                    m = float(ce_np[scan_from : k + 1].max())
                                if m > t:
                                    t = m
                                scan_from = k + 1
                            if cs_l[k + 1] >= t + duration:
                                return t
                        k += 1
                    bx += 1
                # no trusted gap fits: fold the trusted ends, hand off
                if scan_from < trusted:
                    if trusted - scan_from < 32:
                        m = max(ce_l[scan_from:trusted])
                    else:
                        m = float(ce_np[scan_from:trusted].max())
                    if m > t:
                        t = m
                j = trusted
                lim = t + duration
        # scalar walk over whatever is not (validly) mirrored; its cost
        # funds the next sync (debt gating, see class docstring)
        steps = j
        while j < n and cs_l[j] < lim:
            if ce_l[j] > t:
                t = ce_l[j]
                lim = t + duration
            j += 1
        steps = j - steps
        if steps:
            debt = self._debt
            d = debt.get(r, 0) + steps
            if d >= n:
                if stats is not None:
                    stats.inc("gap.debt_flush")
                debt[r] = 0
                if ent is not None and b.row_dirty[r] >= ent[0]:
                    self._extend(r, ent, n)
                else:
                    self._mirror(r)
            else:
                debt[r] = d
        return t


# ----------------------------------------------------------------------
# frontier-batched propagation
# ----------------------------------------------------------------------
def _succ_csr(tk):
    """Flat CSR of the one-shot constraint DAG, cached on the kernel.

    Safe to cache: ``from_decisions`` is the only writer of the
    ``active`` / next-pointer arrays, and it builds them exactly once.
    """
    csr = tk._succ_csr
    if csr is not None:
        return csr
    st = tk.statics
    n, m = st.num_tasks, st.num_edges
    next_proc, next_send, next_recv = tk.next_proc, tk.next_send, tk.next_recv
    if next_proc is None:
        raise SchedulingError("propagate requires the one-shot form (from_decisions)")
    active, edst, srows = tk.active, st.edst, st.succ_rows
    N = n + m
    ptr = np.zeros(N + 1, dtype=np.intp)
    flat: list[int] = []
    append = flat.append
    for i in range(n):
        for e in srows[i]:
            append(n + e if active[e] else edst[e])
        nxt = next_proc[i]
        if nxt >= 0:
            append(nxt)
        ptr[i + 1] = len(flat)
    for e in range(m):
        if active[e]:
            append(edst[e])
            nxt = next_send[e]
            if nxt >= 0:
                append(nxt)
            nxt = next_recv[e]
            if nxt >= 0:
                append(nxt)
        ptr[n + e + 1] = len(flat)
    csr = (ptr, np.array(flat, dtype=np.intp), np.array(tk.indeg, dtype=np.int64))
    tk._succ_csr = csr
    return csr


def propagate_frontier(tk, dur=None, out_start=None, out_finish=None) -> float:
    """Frontier-batched :meth:`~repro.kernel.timed.TimedKernel.propagate_kahn`.

    Identical semantics and floats: the same running maximum over the
    same finish values (unordered IEEE ``max`` is exact), the same
    single ``start + dur`` addition, the same cycle check, and the same
    write-only-processed-nodes contract for ``out_start``/``out_finish``
    overrides.
    """
    st = tk.statics
    n = st.num_tasks
    ptr, adj, indeg0 = _succ_csr(tk)
    N = indeg0.shape[0]
    dur_np = np.asarray(tk.dur if dur is None else dur, dtype=np.float64)
    indeg = indeg0.copy()
    est = np.zeros(N)
    frontier = np.array(
        [x for x in st.base_entries if not indeg0[x]], dtype=np.intp
    )
    total = n + tk.num_active
    done = 0
    batches = []
    finishes = []
    while frontier.size:
        f = est[frontier] + dur_np[frontier]
        batches.append(frontier)
        finishes.append(f)
        done += frontier.size
        cnt = ptr[frontier + 1] - ptr[frontier]
        ntot = int(cnt.sum())
        if not ntot:
            break
        # CSR gather of every successor of the frontier
        idx = np.repeat(
            ptr[frontier] - np.concatenate(([0], np.cumsum(cnt)[:-1])), cnt
        ) + np.arange(ntot)
        dsts = adj[idx]
        np.maximum.at(est, dsts, np.repeat(f, cnt))
        np.subtract.at(indeg, dsts, 1)
        frontier = np.unique(dsts[indeg[dsts] == 0])
    if done != total:
        raise SchedulingError(
            "constraint DAG has a cycle: the decision orders are inconsistent"
        )
    start = tk.start if out_start is None else out_start
    finish = tk.finish if out_finish is None else out_finish
    order = np.concatenate(batches) if batches else np.empty(0, dtype=np.intp)
    svals = est[order].tolist()
    fvals = np.concatenate(finishes).tolist() if finishes else []
    for j, node in enumerate(order.tolist()):
        start[node] = svals[j]
        finish[node] = fvals[j]
    ms = max(finish[:n], default=0.0)
    if finish is tk.finish:
        tk.makespan = ms
    return ms


@register_backend("numpy")
class NumpyBackend(KernelBackend):
    """Vectorized kernel primitives; schedules bit-identical to python."""

    def state_class(self):
        from ..heuristics.state_array import ArraySchedulerState

        return ArraySchedulerState

    def propagate(self, tk, dur=None, out_start=None, out_finish=None) -> float:
        return propagate_frontier(tk, dur=dur, out_start=out_start, out_finish=out_finish)
