"""Kernel backend registry: pure-Python vs vectorized implementations.

The flat kernel has two interchangeable implementations of its hot
primitives — the pure-Python reference (:mod:`repro.kernel.builder`,
``SchedulerState``'s scalar sweeps) and the numpy array backend
(:mod:`repro.kernel.array_backend`, ``ArraySchedulerState``).  Both
produce **bit-identical** schedules; they differ only in constant
factors (the array backend wins on large instances, the scalar path on
tiny ones).

Selection follows the models-registry pattern
(:func:`repro.models.base.register_model`):

* :func:`register_backend` adds a :class:`KernelBackend` under a name;
* :func:`available_backends` lists them;
* the active backend is, in order of precedence, the one set with
  :func:`set_backend` / :func:`use_backend`, the ``REPRO_BACKEND``
  environment variable, or the default ``"python"``.

The environment variable is the cross-process channel: the CLI's
``--backend`` flag exports it so campaign worker processes inherit the
choice.
"""

from __future__ import annotations

import os

from ..core.exceptions import ConfigurationError

#: Environment variable naming the default backend for this process
#: (and, because it is inherited, its campaign workers).
BACKEND_ENV = "REPRO_BACKEND"

_DEFAULT = "python"


class KernelBackend:
    """One implementation of the kernel's hot primitives.

    ``state_class()`` returns the ``SchedulerState`` subclass that
    flat-capable models are routed through (``None`` means the
    pure-Python base class), and ``propagate(tk, ...)`` runs one
    earliest-start propagation over a :class:`~repro.kernel.timed.TimedKernel`.
    Classes are resolved lazily so registering a backend never imports
    the heuristics layer at module-load time.
    """

    name = ""

    def state_class(self):
        return None

    def propagate(self, tk, dur=None, out_start=None, out_finish=None) -> float:
        return tk.propagate_kahn(dur=dur, out_start=out_start, out_finish=out_finish)


_REGISTRY: dict[str, KernelBackend] = {}
_ACTIVE: str | None = None  # explicit override; None -> environment/default


def register_backend(name: str):
    """Class decorator adding a backend to the registry under ``name``."""

    def decorate(cls: type[KernelBackend]) -> type[KernelBackend]:
        if name in _REGISTRY:
            raise ConfigurationError(f"duplicate backend name {name!r}")
        cls.name = name
        _REGISTRY[name] = cls()
        return cls

    return decorate


def available_backends() -> list[str]:
    """Registered backend names."""
    return sorted(_REGISTRY)


def current_backend_name() -> str:
    """The active backend's name (override, else environment, else default)."""
    if _ACTIVE is not None:
        return _ACTIVE
    name = os.environ.get(BACKEND_ENV, _DEFAULT)
    return name if name in _REGISTRY else _DEFAULT


def current_backend() -> KernelBackend:
    """The active :class:`KernelBackend` instance."""
    return _REGISTRY[current_backend_name()]


def get_backend(name: str) -> KernelBackend:
    """Resolve a backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; available: {available_backends()}"
        ) from None


def set_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide backend override."""
    global _ACTIVE
    if name is not None:
        get_backend(name)
    _ACTIVE = name


class use_backend:
    """Context manager pinning the active backend (tests, benchmarks)."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._prev: str | None = None

    def __enter__(self) -> None:
        global _ACTIVE
        get_backend(self._name)
        self._prev = _ACTIVE
        _ACTIVE = self._name

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        _ACTIVE = self._prev


@register_backend("python")
class PythonBackend(KernelBackend):
    """The pure-Python reference implementation (the default)."""
