"""Flat, allocation-free *construction* state — the builder layer.

:class:`KernelStatics` froze everything about a scheduling instance
that does not depend on decisions; :class:`FlatBuilder` is the mutable
counterpart for *making* decisions: the resource state a list-scheduling
heuristic grows one commit at a time.

Layout
------
Every exclusive resource — a processor's compute unit, a send port, a
receive port — is one **row**: a pair of parallel sorted lists
``rows_s[r]`` / ``rows_e[r]`` holding the committed busy intervals
``[s, e)``.  Rows ``0 .. p-1`` are the compute rows; communication
models allocate their port rows behind them (:meth:`new_rows`), so the
whole resource state of a run is two ragged float tables indexed by
small ints — no ``Timeline`` objects, no dicts.

Trials by generation stamp
--------------------------
Evaluating a candidate placement books its incoming messages
*tentatively* (paper Section 4.3).  The object implementation allocates
a fresh trial overlay per (task, processor) probe; here a trial is a
**generation**: each row has a tentative layer ``tent_s[r]`` /
``tent_e[r]`` plus a stamp ``tent_gen[r]``, and the builder has a
global counter :attr:`gen`.  A row's tentative layer is live only while
``tent_gen[r] == gen``; bumping :attr:`gen` (:meth:`begin_trial`)
invalidates every tentative interval at once.  Rejecting a candidate is
therefore O(1) and allocation-free — the next trial lazily truncates
whatever stale buffers it touches (:meth:`tent_rows`).

Committed bookings are *re-derived*, not replayed: because a candidate
is always evaluated against the current committed state and committed
before any further mutation (the invariant every list heuristic here
satisfies), re-running the same greedy bookings against the same
committed rows reproduces the same floats exactly.

Undo journal
------------
:meth:`mark` / :meth:`rollback` give O(changed) scratch runs (ILHA's
chunk pre-allocation): while a mark is active every committed mutation
appends one undo record, and rollback replays them in reverse.  With no
mark active the journal is off and commits pay a single ``None`` check.

Gap search
----------
:func:`row_next_fit` mirrors ``Timeline.next_fit`` (earliest ``t >=
ready`` with ``[t, t + duration)`` free, insertion scheduling) and
:func:`joint_next_fit` mirrors ``earliest_joint_fit`` over both layers
of several rows — the one-port primitive.  Both return existing
interval endpoints (or ``ready``) unchanged, so the builder computes
bit-identical times to the object path: same comparisons over the same
operands, no new arithmetic.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence

from ..core.exceptions import TimelineError
from ..core.tolerance import guard_tol
from ..obs import current as _obs_current

#: Shared immutable stand-in for "no tentative intervals on this row".
_EMPTY: tuple = ()

#: ``row_dirty`` sentinel: no un-synced mid-row insert on this row.
NO_DIRTY = 2**63


def row_next_fit(cs: list, ce: list, ready: float, duration: float) -> float:
    """Earliest ``t >= ready`` with ``[t, t + duration)`` free in one layer.

    ``cs`` / ``ce`` are the sorted interval starts/ends of the layer.
    Mirrors ``Timeline.next_fit`` exactly, including the zero-duration
    fast path (zero-length windows conflict with nothing).
    """
    if duration == 0.0:
        return ready
    if not ce or ce[-1] <= ready:
        # frontier fast path: every interval ends at or before ready
        return ready
    t = ready
    i = bisect_right(cs, t) - 1
    if i >= 0 and ce[i] > t:
        t = ce[i]
    i += 1
    n = len(cs)
    lim = t + duration
    while i < n and cs[i] < lim:
        if ce[i] > t:
            t = ce[i]
            lim = t + duration
        i += 1
    return t


def layered_next_fit(
    cs: list, ce: list, ts, te, ready: float, duration: float
) -> float:
    """Earliest window free in a row's committed *and* tentative layer.

    Alternates the two layers to a fixed point, like
    ``TimelineOverlay.next_fit``.  Pass ``_EMPTY`` for ``ts``/``te``
    when the row has no live tentative intervals.
    """
    if duration == 0.0:
        return ready
    t = ready
    while True:
        t1 = row_next_fit(cs, ce, t, duration)
        t2 = row_next_fit(ts, te, t1, duration)
        if t2 == t1:
            return t1
        t = t2


class FlatBuilder:
    """Mutable flat resource state of one scheduling run (see module doc)."""

    __slots__ = (
        "num_procs",
        "rows_s",
        "rows_e",
        "tent_s",
        "tent_e",
        "tent_gen",
        "gen",
        "commit_count",
        "last_e",
        "row_ver",
        "row_dirty",
        "log",
        "_mark_depth",
        "stats",
    )

    def __init__(self, num_procs: int) -> None:
        if num_procs < 1:
            raise TimelineError("FlatBuilder needs at least one processor")
        self.num_procs = num_procs
        #: Committed busy intervals per row; rows 0..p-1 are compute rows.
        self.rows_s: list[list[float]] = [[] for _ in range(num_procs)]
        self.rows_e: list[list[float]] = [[] for _ in range(num_procs)]
        #: Tentative layer, live only while ``tent_gen[r] == gen``.
        self.tent_s: list[list[float]] = [[] for _ in range(num_procs)]
        self.tent_e: list[list[float]] = [[] for _ in range(num_procs)]
        self.tent_gen: list[int] = [0] * num_procs
        self.gen = 1
        #: Bumped on every committed mutation (bookings, rollbacks) —
        #: an epoch for caches that are valid between commits.
        self.commit_count = 0
        #: Per-row frontier ``rows_e[r][-1]`` (0.0 for an empty row),
        #: maintained on commit so frontier tests skip the list probe.
        self.last_e: list[float] = [0.0] * num_procs
        #: Per-row mutation counter — an epoch for per-row mirrors
        #: (e.g. the array backend's gap indexes).
        self.row_ver: list[int] = [0] * num_procs
        #: Per-row *dirty watermark*: the lowest position of any
        #: mid-row insert (or 0 after a rollback) since a mirror last
        #: synced the row (:data:`NO_DIRTY` when clean).  Appends do
        #: not move it — they extend a row without disturbing existing
        #: intervals — and EFT construction books mid-row only near
        #: the frontier, so prefix-indexed mirrors (the array backend's
        #: gap indexes) stay valid below the watermark.  Contract: at
        #: most one mirror consumer per builder resets the watermark.
        self.row_dirty: list[int] = [NO_DIRTY] * num_procs
        #: Undo journal — ``None`` when no mark is active.
        self.log: list[tuple] | None = None
        self._mark_depth = 0
        #: Active obs collector, captured once (``None`` = stats off).
        self.stats = _obs_current()

    # ------------------------------------------------------------------
    # rows
    # ------------------------------------------------------------------
    def new_rows(self, count: int) -> int:
        """Allocate ``count`` empty rows; returns the first row index."""
        base = len(self.rows_s)
        for _ in range(count):
            self.rows_s.append([])
            self.rows_e.append([])
            self.tent_s.append([])
            self.tent_e.append([])
            self.tent_gen.append(0)
            self.last_e.append(0.0)
            self.row_ver.append(0)
            self.row_dirty.append(NO_DIRTY)
        return base

    @property
    def num_rows(self) -> int:
        return len(self.rows_s)

    # ------------------------------------------------------------------
    # trials
    # ------------------------------------------------------------------
    def begin_trial(self) -> None:
        """Invalidate every tentative interval: O(1), no allocation."""
        self.gen += 1

    def tent_rows(self, r: int) -> tuple[list[float], list[float]]:
        """The live tentative layer of row ``r`` (truncating stale data)."""
        ts, te = self.tent_s[r], self.tent_e[r]
        if self.tent_gen[r] != self.gen:
            del ts[:]
            del te[:]
            self.tent_gen[r] = self.gen
        return ts, te

    def tent_view(self, r: int):
        """Tentative layer of ``r`` for *reading*: ``_EMPTY`` when stale."""
        if self.tent_gen[r] != self.gen:
            return _EMPTY, _EMPTY
        return self.tent_s[r], self.tent_e[r]

    def book_tentative(self, r: int, start: float, end: float) -> None:
        """Add a tentative interval (zero-length windows are not stored)."""
        if end == start:
            return
        ts, te = self.tent_rows(r)
        pos = bisect_right(ts, start)
        ts.insert(pos, start)
        te.insert(pos, end)

    # ------------------------------------------------------------------
    # gap search
    # ------------------------------------------------------------------
    def next_fit(self, r: int, ready: float, duration: float) -> float:
        """Earliest committed-layer window (insertion scheduling)."""
        return row_next_fit(self.rows_s[r], self.rows_e[r], ready, duration)

    def next_after_last(self, r: int, ready: float) -> float:
        """Earliest committed-layer start with no insertion."""
        ce = self.rows_e[r]
        last = ce[-1] if ce else 0.0
        return ready if ready >= last else last

    def next_fit_layered(self, r: int, ready: float, duration: float) -> float:
        """Earliest window free in both layers of row ``r``."""
        ts, te = self.tent_view(r)
        return layered_next_fit(self.rows_s[r], self.rows_e[r], ts, te, ready, duration)

    def joint_next_fit(
        self, rows: Sequence[int], ready: float, duration: float
    ) -> float:
        """Earliest window free (both layers) on *all* ``rows`` at once.

        Fixed-point alternation like ``earliest_joint_fit``: each row's
        search only moves ``t`` forward, so the least common feasible
        instant is reached regardless of row order.
        """
        t = ready
        while True:
            moved = False
            for r in rows:
                t2 = self.next_fit_layered(r, t, duration)
                if t2 != t:
                    t = t2
                    moved = True
            if not moved:
                return t

    # ------------------------------------------------------------------
    # committed mutation
    # ------------------------------------------------------------------
    def book(self, r: int, start: float, end: float) -> None:
        """Commit ``[start, end)`` on row ``r``; raises on real overlap.

        Zero-length reservations are not stored (mirroring
        ``Timeline.reserve``).  The overlap guard only pays the
        tolerance computation on a suspected conflict.
        """
        if end == start:
            return
        cs, ce = self.rows_s[r], self.rows_e[r]
        pos = bisect_right(cs, start)
        if pos and ce[pos - 1] > start:
            if ce[pos - 1] > start + guard_tol(start, ce[pos - 1]):
                raise TimelineError(
                    f"row {r}: reservation [{start}, {end}) overlaps "
                    f"[{cs[pos - 1]}, {ce[pos - 1]})"
                )
        if pos < len(cs) and cs[pos] < end:
            if cs[pos] < end - guard_tol(end, cs[pos]):
                raise TimelineError(
                    f"row {r}: reservation [{start}, {end}) overlaps "
                    f"[{cs[pos]}, {ce[pos]})"
                )
        if pos != len(cs) and pos < self.row_dirty[r]:
            self.row_dirty[r] = pos
        cs.insert(pos, start)
        ce.insert(pos, end)
        self.last_e[r] = ce[-1]
        self.row_ver[r] += 1
        self.commit_count += 1
        if self.log is not None:
            self.log.append((r, pos))

    # ------------------------------------------------------------------
    # undo journal
    # ------------------------------------------------------------------
    def mark(self) -> int:
        """Start (or nest) journaling; returns the rollback cursor.

        Marks nest LIFO: every ``mark()`` must be paired with exactly
        one ``rollback`` or ``release_mark``; journaling stops only
        when the outermost mark is resolved (a depth counter, not the
        cursor value, decides — two nested marks can share cursor 0).
        """
        if self.log is None:
            self.log = []
        self._mark_depth += 1
        return len(self.log)

    def rollback(self, cursor: int) -> None:
        """Undo every committed booking made since ``mark()``."""
        log = self.log
        if log is None:
            raise TimelineError("rollback without an active mark")
        stats = self.stats
        if stats is not None:
            stats.inc("builder.rollbacks")
            stats.inc("builder.rollback_entries", len(log) - cursor)
        touched = set()
        for r, pos in reversed(log[cursor:]):
            del self.rows_s[r][pos]
            del self.rows_e[r][pos]
            touched.add(r)
        for r in touched:
            ce = self.rows_e[r]
            self.last_e[r] = ce[-1] if ce else 0.0
            self.row_ver[r] += 1
            self.row_dirty[r] = 0
        del log[cursor:]
        self._mark_depth -= 1
        if self._mark_depth == 0:
            self.log = None
        # tentative layers and between-commit caches may reference
        # pre-rollback state; invalidate both
        self.gen += 1
        self.commit_count += 1

    def release_mark(self, cursor: int) -> None:
        """Drop journal entries since ``cursor`` without undoing them."""
        if self.log is None:
            raise TimelineError("release_mark without an active mark")
        del self.log[cursor:]
        self._mark_depth -= 1
        if self._mark_depth == 0:
            self.log = None

    # ------------------------------------------------------------------
    # copies / introspection
    # ------------------------------------------------------------------
    def copy(self) -> "FlatBuilder":
        """Independent deep copy (tentative state is not carried over)."""
        dup = FlatBuilder.__new__(FlatBuilder)
        dup.num_procs = self.num_procs
        dup.rows_s = [list(row) for row in self.rows_s]
        dup.rows_e = [list(row) for row in self.rows_e]
        dup.tent_s = [[] for _ in self.rows_s]
        dup.tent_e = [[] for _ in self.rows_s]
        dup.tent_gen = [0] * len(self.rows_s)
        dup.gen = 1
        dup.commit_count = 0
        dup.last_e = list(self.last_e)
        dup.row_ver = list(self.row_ver)
        # fresh consumers build fresh mirrors; the copy starts clean
        dup.row_dirty = [NO_DIRTY] * len(self.rows_s)
        dup.log = None
        dup._mark_depth = 0
        dup.stats = self.stats
        return dup

    def committed(self, r: int) -> list[tuple[float, float]]:
        """Committed intervals of row ``r`` as ``(start, end)`` pairs."""
        return list(zip(self.rows_s[r], self.rows_e[r]))

    def fingerprint(self) -> tuple:
        """Hashable snapshot of all committed intervals (test helper)."""
        return tuple(
            tuple(zip(cs, ce)) for cs, ce in zip(self.rows_s, self.rows_e)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        booked = sum(len(cs) for cs in self.rows_s)
        return (
            f"FlatBuilder(rows={len(self.rows_s)}, procs={self.num_procs}, "
            f"intervals={booked}, gen={self.gen})"
        )
