"""The compiled kernel backend (``cext``): registration and fallback.

:mod:`repro.kernel._cext` is a hand-written CPython extension holding
the hot sequential booking loop — the FlatBuilder primitives, the flat
bookers of the four flat models, and the all-processor candidate sweep
— as one C engine over typed arrays (see ``_cextmodule.c``; its header
states the bit-identity contract with the pure-Python reference).

This module is the *optional* half of the bargain: the extension is
compiled opportunistically (``python setup.py build_ext --inplace``, or
transparently by ``pip install`` when a compiler is present) and the
package must work identically without it.  Importing this module never
fails — a missing or broken extension leaves :func:`cext_available`
False, the registered backend falls back to the pure-Python state class
with a single ``repro.kernel`` log warning, and the engine that
actually ran is recorded in ``Schedule.state_impl`` (and surfaced by
``python -m repro info --json`` under ``"backends"``).
"""

from __future__ import annotations

from ..obs import get_logger as _get_logger
from .backends import KernelBackend, register_backend

try:  # pragma: no cover - exercised via the no-compiler simulation test
    from . import _cext
except ImportError as exc:  # extension not built on this interpreter
    _cext = None
    _IMPORT_ERROR: str | None = str(exc)
else:
    _IMPORT_ERROR = None
    # Booking raises the package's own exception types from C.
    from ..core.exceptions import PlatformError, SchedulingError, TimelineError

    _cext._set_exceptions(SchedulingError, TimelineError, PlatformError)

#: One fallback warning per process (mirrors the object-path warn-once
#: in :mod:`repro.heuristics.base`); tests reset it directly.
_WARNED = False

_LOG = _get_logger("kernel")


def cext_available() -> bool:
    """True when the compiled engine imported on this interpreter."""
    return _cext is not None


def cext_import_error() -> str | None:
    """The import failure message when unavailable (else ``None``)."""
    return None if _cext is not None else _IMPORT_ERROR


def cext_build_info() -> dict | None:
    """Build provenance baked into the extension (``None`` if absent)."""
    return _cext.build_info() if _cext is not None else None


def _warn_fallback() -> None:
    global _WARNED
    if _WARNED:
        return
    _WARNED = True
    _LOG.warning(
        "kernel backend 'cext' selected but the compiled extension is not "
        "available (%s): scheduling falls back to the pure-Python state. "
        "Build it with 'python setup.py build_ext --inplace'. The active "
        "implementation is recorded in Schedule.state_impl.",
        _IMPORT_ERROR,
    )


def engine_statics(kernel):
    """The kernel's statics flattened into the C engine's layout.

    Cached on the :class:`~repro.kernel.statics.KernelStatics` itself
    (slot ``_cext``), so every state built over the same (graph,
    platform) pair shares one flattened copy — same lifetime as the
    statics cache.
    """
    st = kernel._cext
    if st is None:
        exec_flat = [c for row in kernel.exec_ for c in row]
        links_flat = [c for row in kernel.link_rows for c in row]
        st = _cext.Statics(
            kernel.num_tasks,
            kernel.num_edges,
            kernel.num_procs,
            exec_flat,
            kernel.edata,
            kernel.esrc,
            kernel.pred_ptr,
            kernel.pred_eix,
            links_flat,
            bool(kernel.all_links_finite),
        )
        kernel._cext = st
    return st


@register_backend("cext")
class CextBackend(KernelBackend):
    """Compiled booking loop; schedules bit-identical to python/numpy.

    ``propagate`` is inherited from the base class: the compiled tier
    covers construction (the booking loop); replay propagation already
    has the numpy frontier path and is not the 1k-task bottleneck.
    """

    def state_class(self):
        if _cext is None:
            _warn_fallback()
            return None
        from ..heuristics.state_cext import CextSchedulerState

        return CextSchedulerState
