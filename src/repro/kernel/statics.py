"""Static flat arrays of one (graph, platform) pair — the kernel's interning layer.

:class:`KernelStatics` freezes everything about a scheduling instance
that does not depend on decisions into contiguous, integer-indexed
structures:

* **task interning** — task ids map to ``0 .. n-1`` in graph insertion
  order (the same order as :meth:`TaskGraph.task_index`), with the
  inverse in :attr:`tasks`;
* **edge interning** — graph edges map to ``0 .. E-1`` in edge insertion
  order, with int endpoints in :attr:`esrc` / :attr:`edst` and volumes
  in :attr:`edata`;
* **CSR adjacency** — :attr:`pred_ptr` / :attr:`pred_eix` (and the
  ``succ_*`` mirror) store, for each task, the *edge indices* of its
  incoming (outgoing) edges contiguously, so one index hop reaches both
  the neighbor task and the edge's data volume;
* **cost tables** — :attr:`exec_` is the ``n x p`` execution-time table
  (``weight[i] * cycle_time[q]``) and :attr:`link_rows` the ``p x p``
  per-item link matrix as plain Python sequences (no per-lookup numpy
  scalar boxing); ``link_rows`` is the platform's own frozen table, so
  a platform cannot be mutated out from under a compiled statics.

Statics are cached per (graph, platform) on the graph itself (see
:func:`compile_statics`) and invalidated on graph mutation, so replay,
the incremental evaluator, and the list heuristics all share one
compilation.
"""

from __future__ import annotations

import math
from collections.abc import Hashable

import numpy as np

from ..core.exceptions import PlatformError
from ..core.platform import Platform
from ..core.taskgraph import TaskGraph

TaskId = Hashable


class KernelStatics:
    """Interned flat view of one (graph, platform) pair (immutable)."""

    __slots__ = (
        "graph",
        "platform",
        "num_tasks",
        "num_edges",
        "num_procs",
        "num_nodes",
        "tasks",
        "tindex",
        "tid_index",
        "weights",
        "edges",
        "eindex",
        "esrc",
        "edst",
        "esrc_np",
        "edst_np",
        "edata",
        "all_links_finite",
        "pred_ptr",
        "pred_eix",
        "succ_ptr",
        "succ_eix",
        "succ_rows",
        "pred_rows",
        "hop0_node",
        "topo_ix",
        "base_indeg",
        "base_entries",
        "exec_",
        "exec_np",
        "_exec_order",
        "link_rows",
        "_cext",
    )

    def __init__(self, graph: TaskGraph, platform: Platform) -> None:
        maps = graph.as_maps()
        self.graph = graph
        self.platform = platform

        # -- task interning (graph insertion order, = maps.index) ------
        self.tasks: list[TaskId] = list(maps.index)
        self.tindex: dict[TaskId, int] = dict(maps.index)
        #: Identity-keyed mirror of :attr:`tindex`.  Decision structures
        #: built from a schedule reference the graph's own task objects,
        #: so hot loops can intern by ``id()`` (int hash) instead of
        #: re-hashing arbitrary task ids; a miss falls back to
        #: :attr:`tindex`.  Keys stay valid because :attr:`tasks` keeps
        #: every object alive for the statics' lifetime.
        self.tid_index: dict[int, int] = {id(v): i for i, v in enumerate(self.tasks)}
        tindex = self.tindex
        n = len(self.tasks)
        self.num_tasks = n
        self.weights: list[float] = [maps.weight[v] for v in self.tasks]

        # -- edge interning (edge insertion order) ----------------------
        self.edges: list[tuple[TaskId, TaskId]] = list(maps.data)
        self.eindex: dict[tuple[TaskId, TaskId], int] = {
            e: i for i, e in enumerate(self.edges)
        }
        self.esrc: list[int] = [tindex[u] for u, _ in self.edges]
        self.edst: list[int] = [tindex[v] for _, v in self.edges]
        self.esrc_np = np.array(self.esrc, dtype=np.intp)
        self.edst_np = np.array(self.edst, dtype=np.intp)
        self.edata: list[float] = [maps.data[e] for e in self.edges]
        m = len(self.edges)
        self.num_edges = m
        #: Constraint-DAG node universe: tasks ``0..n-1`` then one fixed
        #: transfer slot per edge at ``n + e`` (active only while remote).
        self.num_nodes = n + m

        # -- CSR adjacency over edge indices ----------------------------
        indeg = [0] * n
        outdeg = [0] * n
        for e in range(m):
            outdeg[self.esrc[e]] += 1
            indeg[self.edst[e]] += 1
        self.pred_ptr = self._ptr(indeg)
        self.succ_ptr = self._ptr(outdeg)
        pred_fill = list(self.pred_ptr)
        succ_fill = list(self.succ_ptr)
        self.pred_eix = [0] * m
        self.succ_eix = [0] * m
        for e in range(m):
            u, v = self.esrc[e], self.edst[e]
            self.succ_eix[succ_fill[u]] = e
            succ_fill[u] += 1
            self.pred_eix[pred_fill[v]] = e
            pred_fill[v] += 1

        #: Row views of the CSR arrays: ``succ_rows[i]`` / ``pred_rows[i]``
        #: are the edge indices leaving / entering task ``i``.  Built once
        #: so hot loops iterate plain lists with no per-call slicing.
        self.succ_rows: list[list[int]] = [
            self.succ_eix[self.succ_ptr[i] : self.succ_ptr[i + 1]] for i in range(n)
        ]
        self.pred_rows: list[list[int]] = [
            self.pred_eix[self.pred_ptr[i] : self.pred_ptr[i + 1]] for i in range(n)
        ]
        #: Direct-transfer lookup: ``(src, dst, 0)`` -> transfer-slot node
        #: index ``n + e`` (exactly the hop keys the one-port model books).
        self.hop0_node: dict[tuple, int] = {
            (u, v, 0): n + e for e, (u, v) in enumerate(self.edges)
        }

        #: The graph's deterministic topological order, interned.
        self.topo_ix: list[int] = [tindex[v] for v in graph.topological_order()]
        #: Precedence in-degree per task.  Each graph edge contributes
        #: exactly one constraint predecessor to its consumer — the
        #: source task when local, the transfer slot when remote — so
        #: this is the constraint-DAG in-degree before order edges.
        self.base_indeg: list[int] = indeg
        #: Entry tasks (no precedence predecessor): the only candidates
        #: for in-degree zero once order edges are added.
        self.base_entries: list[int] = [i for i in range(n) if not indeg[i]]

        # -- cost tables -------------------------------------------------
        cts = platform.cycle_times
        self.num_procs = platform.num_processors
        self.exec_: list[list[float]] = [
            [w * t for t in cts] for w in self.weights
        ]
        #: ``n x p`` numpy mirror of :attr:`exec_` — the array backend's
        #: all-processor sweeps read whole rows at once.  Same floats:
        #: built from the already-computed products, not recomputed.
        self.exec_np = np.array(self.exec_, dtype=np.float64).reshape(n, len(cts))
        self._exec_order: list[list[int]] | None = None
        self.link_rows: tuple[tuple[float, ...], ...] = platform.link_rows()
        #: True when every link is finite: hot loops skip the per-edge
        #: ``isfinite`` guard that partially connected platforms need.
        self.all_links_finite: bool = platform.is_fully_connected()
        #: Lazily-built flattened mirror for the compiled backend (see
        #: :func:`repro.kernel.cext_backend.engine_statics`).
        self._cext = None

    def exec_order(self) -> list[list[int]]:
        """Per task, the processors in increasing execution-time order.

        Lazily computed and cached (stable argsort: ties break by
        processor index).  The array backend's fused selection walks
        this order so a finish lower bound that only grows with the
        duration can cut the walk short.
        """
        eo = self._exec_order
        if eo is None:
            eo = np.argsort(self.exec_np, axis=1, kind="stable").tolist()
            self._exec_order = eo
        return eo

    @staticmethod
    def _ptr(degrees: list[int]) -> list[int]:
        ptr = [0] * (len(degrees) + 1)
        for i, d in enumerate(degrees):
            ptr[i + 1] = ptr[i] + d
        return ptr

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def intern(self, task: TaskId) -> int:
        """Kernel index of ``task``: identity fast path, equality fallback.

        The ``id()`` lookup is valid because :attr:`tasks` keeps every
        task object alive for the statics' lifetime; callers holding the
        graph's own task objects (schedules, decisions, points) hit it
        without re-hashing arbitrary ids.  Hot loops that intern whole
        rows may inline the same two-step pattern — keep any copy
        faithful to this method.
        """
        i = self.tid_index.get(id(task))
        if i is None:
            i = self.tindex[task]
        return i

    # ------------------------------------------------------------------
    # derived costs
    # ------------------------------------------------------------------
    def comm_dur(self, e: int, src_proc: int, dst_proc: int) -> float:
        """Transfer time of edge ``e`` between two processors.

        Matches :meth:`Platform.comm_time`: zero when co-located, raises
        :class:`PlatformError` when the processors are not directly
        linked (the routed model handles those — outside the kernel).
        """
        if src_proc == dst_proc:
            return 0.0
        cost = self.link_rows[src_proc][dst_proc]
        if not math.isfinite(cost):
            raise PlatformError(f"no direct link from P{src_proc} to P{dst_proc}")
        return self.edata[e] * cost

    def pred_edges(self, ti: int) -> list[int]:
        """Edge indices entering task ``ti``."""
        return self.pred_eix[self.pred_ptr[ti] : self.pred_ptr[ti + 1]]

    def succ_edges(self, ti: int) -> list[int]:
        """Edge indices leaving task ``ti``."""
        return self.succ_eix[self.succ_ptr[ti] : self.succ_ptr[ti + 1]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelStatics(tasks={self.num_tasks}, edges={self.num_edges}, "
            f"procs={self.num_procs})"
        )


def compile_statics(graph: TaskGraph, platform: Platform) -> KernelStatics:
    """The cached :class:`KernelStatics` of ``(graph, platform)``.

    The cache lives on the graph (cleared when the graph mutates) and is
    keyed by platform identity — platforms are immutable, so one entry
    per distinct platform object ever paired with the graph.
    """
    cache = graph._kernel_cache
    if cache is None:
        cache = graph._kernel_cache = {}
    statics = cache.get(platform)
    if statics is None:
        statics = cache[platform] = KernelStatics(graph, platform)
    return statics
