"""Flat timed constraint DAG: the kernel's compile → propagate → patch core.

A :class:`TimedKernel` is the integer-indexed form of the constraint DAG
that :mod:`repro.simulate.replay` describes in prose: node ``i < n`` is
task ``i`` (kernel interning), node ``n + e`` is the *transfer slot* of
graph edge ``e``.  Every edge owns exactly one slot, **active** only
while the edge is remote under the current allocation — so moves that
localize or remote an edge never allocate or free nodes, they flip a
flag.

The three phases:

* **compile** — :meth:`from_decisions` (replay: arbitrary
  :class:`~repro.simulate.replay.ReplayDecisions` with direct transfers)
  or :meth:`from_point` (search: the canonical orders of a
  :class:`~repro.search.point.SearchPoint`) build the flat adjacency
  and duration arrays.  The two builders store complementary forms of
  the same DAG: ``from_decisions`` builds *successor* lists plus
  in-degrees (all a one-shot forward pass needs), while ``from_point``
  builds *predecessor* lists (what incremental patching needs);
* **propagate** — :meth:`propagate_kahn` / :meth:`propagate_order` run
  one forward pass over the int arrays, computing the component-wise
  least start/finish times (identical floats to the object-level
  replay: same ``max`` over the same operands, same single addition);
* **patch** — :meth:`patch` re-propagates only downstream of an
  invalidated node set into generation-stamped overlay arrays (no
  mutation), and :meth:`apply` folds one such overlay back into the
  base state in time proportional to the disturbance.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from math import isfinite

import numpy as np

from ..core.exceptions import PlatformError, SchedulingError
from .statics import KernelStatics


class KernelIneligible(Exception):
    """Raised by :meth:`TimedKernel.from_decisions` when the decision
    set is outside the kernel's domain (multi-hop or unknown-edge
    transfers); the caller falls back to the object-level replay."""


def _check_procs(alloc: list[int], num_procs: int) -> None:
    """Reject out-of-range processor indices with the Platform error.

    One C-speed min/max scan; without it, negative indices would wrap
    silently into the wrong ``exec_`` / ``link_rows`` entries where the
    object-level replay raises :class:`PlatformError`.
    """
    if alloc and (min(alloc) < 0 or max(alloc) >= num_procs):
        bad = next(p for p in alloc if not (0 <= p < num_procs))
        raise PlatformError(f"processor index {bad} out of range [0, {num_procs})")


@dataclass(slots=True)
class KernelPatch:
    """One patch's overlay results, ready for :meth:`TimedKernel.apply`.

    All node references are kernel node indices (``i < n`` tasks,
    ``n + e`` transfer slots).
    """

    #: Nodes re-timed by the patch, in visit (key) order.
    nodes: list[int]
    #: Overlay start/finish per entry of :attr:`nodes`.
    start: list[float]
    finish: list[float]
    #: Replacement predecessor lists (exactly the dirty nodes).
    new_preds: dict[int, list[int]]
    #: Replacement durations for nodes whose cost changed.
    new_dur: dict[int, float]
    #: Transfer slots deactivated by the patch (their edge became local).
    removed: set[int]
    #: Makespan of the patched state.
    makespan: float


class TimedKernel:
    """Flat timed constraint DAG of one decision set (see module docstring)."""

    __slots__ = (
        "statics",
        "alloc",
        "active",
        "num_active",
        "hop_list",
        "hop_procs",
        "dur",
        "preds",
        "succs",
        "indeg",
        "next_proc",
        "next_send",
        "next_recv",
        "start",
        "finish",
        "makespan",
        "_ov_start",
        "_ov_finish",
        "_ov_stamp",
        "_gen",
        "_succ_csr",
    )

    def __init__(self, statics: KernelStatics, with_preds: bool = False) -> None:
        n, m = statics.num_tasks, statics.num_edges
        self.statics = statics
        self.alloc: list[int] = [0] * n
        self.active = bytearray(m)
        self.num_active = 0
        #: Edge index per booked transfer, in decision insertion order
        #: (``from_decisions`` only; parallels ``decisions.hops.items()``).
        self.hop_list: list[int] = []
        #: ``(from_proc, to_proc)`` per entry of :attr:`hop_list` — the
        #: port pair each transfer occupies (online engine hook: a
        #: transfer activity seizes the send port of ``from_proc`` and
        #: the receive port of ``to_proc`` simultaneously).
        self.hop_procs: list[tuple[int, int]] = []
        self.dur: list[float] = [0.0] * (n + m)
        #: Predecessor lists (``from_point`` builds these; the one-shot
        #: ``from_decisions`` path builds :attr:`succs`/:attr:`indeg`).
        self.preds: list[list[int]] | None = (
            [[] for _ in range(n + m)] if with_preds else None
        )
        #: Dense successor lists (evaluator form; see :meth:`build_succs`).
        self.succs: list[list[int]] | None = None
        self.indeg: list[int] | None = None
        #: One-shot form (``from_decisions``): next task on the same
        #: processor per task, next transfer slot on the same send /
        #: receive port per edge (-1 = none); graph successors come from
        #: the statics CSR, so no per-replay adjacency is ever built.
        self.next_proc: list[int] | None = None
        self.next_send: list[int] | None = None
        self.next_recv: list[int] | None = None
        self.start: list[float] = [0.0] * (n + m)
        self.finish: list[float] = [0.0] * (n + m)
        self.makespan = 0.0
        self._ov_start: list[float] | None = None
        self._ov_finish: list[float] | None = None
        self._ov_stamp: list[int] | None = None
        self._gen = 0
        #: Flat successor CSR of the one-shot form, built lazily by the
        #: array backend's frontier propagation (safe to cache: only
        #: ``from_decisions`` writes the one-shot arrays, exactly once).
        self._succ_csr: tuple | None = None

    # ------------------------------------------------------------------
    # compile
    # ------------------------------------------------------------------
    @classmethod
    def from_decisions(cls, statics: KernelStatics, decisions) -> "TimedKernel":
        """Compile a direct-transfer :class:`ReplayDecisions` set.

        Builds the successor/in-degree form (all a one-shot
        :meth:`propagate_kahn` pass needs).  Raises
        :class:`KernelIneligible` on multi-hop or unknown-edge transfers
        (the caller falls back to the object-level replay); everything
        the object-level replay validates beyond that — missing tasks,
        local edges with transfers, remote edges without, inconsistent
        orders — is checked here with identical errors.
        """
        self = cls(statics)
        n, m = statics.num_tasks, statics.num_edges
        tindex = statics.tindex
        decided = decisions.alloc
        try:
            alloc = [decided[v] for v in statics.tasks]
        except KeyError:
            for v in statics.tasks:
                if v not in decided:
                    raise SchedulingError(f"decisions missing task {v!r}") from None
            raise  # pragma: no cover - unreachable
        _check_procs(alloc, statics.num_procs)
        self.alloc = alloc
        dur = self.dur
        dur[:n] = [row[p] for row, p in zip(statics.exec_, alloc)]

        active = self.active
        esrc, edst, edata = statics.esrc, statics.edst, statics.edata
        link_rows = statics.link_rows
        finite_links = statics.all_links_finite
        num_procs = statics.num_procs
        # The successor structure is implicit: graph successors come from
        # the statics CSR (shared, never rebuilt), and each decision
        # order contributes at most one "next" pointer per resource.
        # Task in-degrees start from the precomputed precedence count.
        indeg = statics.base_indeg + [0] * m
        self.indeg = indeg
        next_proc = self.next_proc = [-1] * n
        next_send = self.next_send = [-1] * m
        next_recv = self.next_recv = [-1] * m
        hop_list = self.hop_list
        hget = statics.hop0_node.get
        # identity-keyed shortcut for the port loops below: the order
        # lists reuse the exact key tuples of ``hops`` when extracted
        # from a schedule, so ``id()`` lookups skip tuple re-hashing
        node_by_id: dict[int, int] = {}
        for key, (a, b) in decisions.hops.items():
            node = hget(key)
            if node is None:
                u, v, hop = key
                raise KernelIneligible(f"transfer ({u!r}, {v!r}, {hop})")
            node_by_id[id(key)] = node
            e = node - n
            active[e] = 1
            hop_list.append(e)
            self.hop_procs.append((a, b))
            indeg[node] = 1
            if not (0 <= a < num_procs and 0 <= b < num_procs):
                # match Platform._check_proc (negative list indices would
                # silently wrap into the wrong link row otherwise)
                bad = a if not (0 <= a < num_procs) else b
                raise PlatformError(
                    f"processor index {bad} out of range [0, {num_procs})"
                )
            if a == b:
                dur[node] = 0.0
            elif finite_links:
                dur[node] = edata[e] * link_rows[a][b]
            else:
                cost = link_rows[a][b]
                if not isfinite(cost):
                    raise PlatformError(f"no direct link from P{a} to P{b}")
                dur[node] = edata[e] * cost
        self.num_active = len(hop_list)

        # every edge must be either local, or remote with a booked
        # transfer — one vectorized comparison; the python loop runs
        # only to pinpoint the offending edge for the error message
        al = np.asarray(alloc)
        remote = al[statics.esrc_np] != al[statics.edst_np]
        booked = np.frombuffer(active, dtype=np.uint8).astype(bool)
        if not np.array_equal(remote, booked):
            for e, src, consumer in zip(range(m), esrc, edst):
                if alloc[src] == alloc[consumer]:
                    if active[e]:
                        u, v = statics.edges[e]
                        raise SchedulingError(
                            f"edge {u!r}->{v!r} is local but has transfers"
                        )
                elif not active[e]:
                    u, v = statics.edges[e]
                    raise SchedulingError(f"remote edge {u!r}->{v!r} has no transfer")

        # row-level inline of KernelStatics.intern: identity listcomp
        # first, one equality listcomp for the whole row on any miss
        tid_get = statics.tid_index.get
        for tasks in decisions.proc_order.values():
            row = [tid_get(id(t)) for t in tasks]
            if None in row:
                row = [tindex[t] for t in tasks]
            for a, b in zip(row, row[1:]):
                if next_proc[a] >= 0:
                    # a task ordered on two processors: degenerate input,
                    # outside the one-next-pointer representation
                    raise KernelIneligible(f"task {tasks[0]!r} multiply ordered")
                next_proc[a] = b
                indeg[b] += 1
        nid_get = node_by_id.get
        for orders, nxt in (
            (decisions.send_order, next_send),
            (decisions.recv_order, next_recv),
        ):
            for keys in orders.values():
                nodes = [nid_get(id(k)) for k in keys]
                prev = -1
                for i, node in enumerate(nodes):
                    if node is None:
                        # identity miss (caller-built orders): equality
                        # lookup, then require the transfer to be booked —
                        # mirrors the object-level replay, which KeyErrors
                        # on port entries that are not booked transfers
                        node = hget(keys[i])
                        if node is None or not active[node - n]:
                            raise KeyError(keys[i])
                    elif not active[node - n]:
                        raise KeyError(keys[i])
                    if prev >= 0:
                        if nxt[prev] >= 0:
                            raise KernelIneligible("transfer multiply ordered")
                        nxt[prev] = node
                        indeg[node] += 1
                    prev = node - n
        return self

    @classmethod
    def from_point(cls, statics: KernelStatics, point) -> "TimedKernel":
        """Compile the canonical decision set of a ``SearchPoint``.

        Builds the predecessor form, which incremental patching needs;
        call :meth:`build_succs` before :meth:`patch`.
        """
        self = cls(statics, with_preds=True)
        n = statics.num_tasks
        tindex, eindex = statics.tindex, statics.eindex
        exec_, link_rows = statics.exec_, statics.link_rows
        edata, esrc, edst = statics.edata, statics.esrc, statics.edst
        alloc, dur, preds = self.alloc, self.dur, self.preds
        active = self.active
        finite_links = statics.all_links_finite

        point_alloc = point.alloc
        for i, v in enumerate(statics.tasks):
            alloc[i] = point_alloc[v]
        _check_procs(alloc, statics.num_procs)
        for i, p in enumerate(alloc):
            dur[i] = exec_[i][p]
        for e in range(statics.num_edges):
            a, b = alloc[esrc[e]], alloc[edst[e]]
            if a == b:
                preds[edst[e]].append(esrc[e])
            else:
                active[e] = 1
                cost = link_rows[a][b]
                if not finite_links and not isfinite(cost):
                    raise PlatformError(f"no direct link from P{a} to P{b}")
                dur[n + e] = edata[e] * cost
                preds[n + e].append(esrc[e])
                preds[edst[e]].append(n + e)
        for proc in range(statics.num_procs):
            row = point.proc_list(proc)
            for a, b in zip(row, row[1:]):
                preds[tindex[b]].append(tindex[a])
            for order in (point.send_list(proc), point.recv_list(proc)):
                prev = -1
                for u, v, _hop in order:
                    node = n + eindex[(u, v)]
                    if prev >= 0:
                        preds[node].append(prev)
                    prev = node
        self.num_active = sum(active)
        return self

    def build_succs(self) -> list[list[int]]:
        """Successor lists mirroring :attr:`preds` (built on demand)."""
        succs: list[list[int]] = [[] for _ in range(len(self.preds))]
        for node, plist in enumerate(self.preds):
            for p in plist:
                succs[p].append(node)
        self.succs = succs
        return succs

    # ------------------------------------------------------------------
    # propagate
    # ------------------------------------------------------------------
    def active_nodes(self) -> list[int]:
        """All live node indices: every task, every active transfer slot."""
        n = self.statics.num_tasks
        out = list(range(n))
        out.extend(n + e for e in range(self.statics.num_edges) if self.active[e])
        return out

    def one_shot_successors(self, node: int) -> list[int]:
        """Constraint successors of ``node`` in the one-shot form.

        Online-engine hook: enumerates the same successor set
        :meth:`propagate_kahn` walks — graph successors from the statics
        CSR (task nodes), the destination task (transfer slots), plus
        the next-pointer order edges — without materializing adjacency
        lists for the whole DAG.  Requires :meth:`from_decisions`.
        """
        st = self.statics
        n = st.num_tasks
        out: list[int] = []
        if node < n:
            active, edst = self.active, st.edst
            for e in st.succ_rows[node]:
                out.append(n + e if active[e] else edst[e])
            nxt = self.next_proc[node]
            if nxt >= 0:
                out.append(nxt)
        else:
            e = node - n
            out.append(st.edst[e])
            nxt = self.next_send[e]
            if nxt >= 0:
                out.append(nxt)
            nxt = self.next_recv[e]
            if nxt >= 0:
                out.append(nxt)
        return out

    def propagate_kahn(
        self,
        dur: list[float] | None = None,
        out_start: list[float] | None = None,
        out_finish: list[float] | None = None,
    ) -> float:
        """Full forward pass in Kahn order; raises on cyclic orders.

        Requires the one-shot form (:meth:`from_decisions`): successors
        are enumerated from the statics CSR plus the next-pointer
        arrays, and the max over each node's predecessors is fused into
        the in-degree decrement — ``est`` accumulates the running
        maximum of finished predecessors, which equals the object-level
        replay's ``max`` over the full predecessor list exactly (same
        operands, any order).

        Online-engine hook: ``dur`` substitutes observed durations for
        the compiled estimates, and ``out_start`` / ``out_finish``
        (full-size arrays) receive the resulting times without touching
        the base plan state — passing either leaves :attr:`start`,
        :attr:`finish`, and :attr:`makespan` unchanged.
        """
        st = self.statics
        n = st.num_tasks
        srows, edst = st.succ_rows, st.edst
        active = self.active
        if dur is None:
            dur = self.dur
        start = self.start if out_start is None else out_start
        finish = self.finish if out_finish is None else out_finish
        next_proc, next_send, next_recv = self.next_proc, self.next_send, self.next_recv
        indeg = self.indeg.copy()
        est = [0.0] * (n + st.num_edges)
        ready = [x for x in st.base_entries if not indeg[x]]
        push = ready.append
        total = n + self.num_active
        done = 0
        while ready:
            node = ready.pop()
            s = est[node]
            start[node] = s
            f = s + dur[node]
            finish[node] = f
            done += 1
            if node < n:
                for e in srows[node]:
                    nxt = n + e if active[e] else edst[e]
                    if f > est[nxt]:
                        est[nxt] = f
                    d = indeg[nxt] - 1
                    indeg[nxt] = d
                    if not d:
                        push(nxt)
                nxt = next_proc[node]
                if nxt >= 0:
                    if f > est[nxt]:
                        est[nxt] = f
                    d = indeg[nxt] - 1
                    indeg[nxt] = d
                    if not d:
                        push(nxt)
            else:
                e = node - n
                nxt = edst[e]
                if f > est[nxt]:
                    est[nxt] = f
                d = indeg[nxt] - 1
                indeg[nxt] = d
                if not d:
                    push(nxt)
                nxt = next_send[e]
                if nxt >= 0:
                    if f > est[nxt]:
                        est[nxt] = f
                    d = indeg[nxt] - 1
                    indeg[nxt] = d
                    if not d:
                        push(nxt)
                nxt = next_recv[e]
                if nxt >= 0:
                    if f > est[nxt]:
                        est[nxt] = f
                    d = indeg[nxt] - 1
                    indeg[nxt] = d
                    if not d:
                        push(nxt)
        if done != total:
            raise SchedulingError(
                "constraint DAG has a cycle: the decision orders are inconsistent"
            )
        ms = max(finish[:n], default=0.0)
        if finish is self.finish:
            self.makespan = ms
        return ms

    def propagate_order(self, order: list[int]) -> float:
        """Full forward pass over a pre-sorted topological node order."""
        preds, dur = self.preds, self.dur
        start, finish = self.start, self.finish
        for node in order:
            s = 0.0
            for p in preds[node]:
                f = finish[p]
                if f > s:
                    s = f
            start[node] = s
            finish[node] = s + dur[node]
        return self._scan_makespan()

    def _scan_makespan(self) -> float:
        n = self.statics.num_tasks
        self.makespan = max(self.finish[:n], default=0.0)
        return self.makespan

    # ------------------------------------------------------------------
    # patch
    # ------------------------------------------------------------------
    def patch(
        self,
        dirty: list[int],
        removed: set[int],
        new_preds: dict[int, list[int]],
        new_dur: dict[int, float],
        key_of,
    ) -> KernelPatch:
        """Overlay re-propagation downstream of ``dirty`` (no mutation).

        ``key_of`` maps a node index to an int every constraint edge of
        the *patched* DAG strictly increases, so processing a node after
        everything it depends on is guaranteed.  Requires
        :meth:`build_succs` to have run.
        """
        n = self.statics.num_tasks
        if self._ov_stamp is None:
            size = len(self.preds)
            self._ov_start = [0.0] * size
            self._ov_finish = [0.0] * size
            self._ov_stamp = [0] * size
        self._gen += 1
        gen = self._gen
        ov_start, ov_finish, ov_stamp = self._ov_start, self._ov_finish, self._ov_stamp
        preds, succs, dur = self.preds, self.succs, self.dur
        base_finish, active = self.finish, self.active

        heap = [(key_of(node), node) for node in dirty]
        heapify(heap)
        visited: list[int] = []
        while heap:
            _, node = heappop(heap)
            if ov_stamp[node] == gen:
                continue
            ov_stamp[node] = gen
            visited.append(node)
            plist = new_preds.get(node)
            if plist is None:
                plist = preds[node]
            s = 0.0
            for p in plist:
                f = ov_finish[p] if ov_stamp[p] == gen else base_finish[p]
                if f > s:
                    s = f
            d = new_dur.get(node)
            if d is None:
                d = dur[node]
            f = s + d
            ov_start[node] = s
            ov_finish[node] = f
            if (node >= n and not active[node - n]) or f != base_finish[node]:
                for succ in succs[node]:
                    if succ not in removed and ov_stamp[succ] != gen:
                        heappush(heap, (key_of(succ), succ))

        ms = 0.0
        for i in range(n):
            f = ov_finish[i] if ov_stamp[i] == gen else base_finish[i]
            if f > ms:
                ms = f
        return KernelPatch(
            nodes=visited,
            start=[ov_start[node] for node in visited],
            finish=[ov_finish[node] for node in visited],
            new_preds=new_preds,
            new_dur=new_dur,
            removed=removed,
            makespan=ms,
        )

    def apply(self, patch: KernelPatch) -> float:
        """Fold a patch into the base state; cost ~ size of the change."""
        n = self.statics.num_tasks
        preds, succs, active = self.preds, self.succs, self.active
        for node in patch.removed:
            for p in preds[node]:
                if p not in patch.removed:
                    succs[p].remove(node)
            preds[node] = []
            succs[node] = []
            active[node - n] = 0
        for node, plist in patch.new_preds.items():
            for p in preds[node]:
                if p not in patch.removed:
                    succs[p].remove(node)
            preds[node] = list(plist)
            for p in plist:
                succs[p].append(node)
            if node >= n:
                active[node - n] = 1
        for node, d in patch.new_dur.items():
            self.dur[node] = d
        start, finish = self.start, self.finish
        for i, node in enumerate(patch.nodes):
            start[node] = patch.start[i]
            finish[node] = patch.finish[i]
        self.makespan = patch.makespan
        return self.makespan
