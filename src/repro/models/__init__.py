"""Communication models: macro-dataflow, one-port, variants, routed.

Importing this package registers every model with the registry, so
``make_model(platform, "uni-port")`` works after ``import repro.models``.
"""

from .base import (
    CommState,
    CommTrial,
    CommunicationModel,
    FlatBooker,
    available_models,
    make_model,
    register_model,
)
from .macro_dataflow import MacroDataflowModel, MacroDataflowState
from .one_port import OnePortModel, OnePortState
from .routing import RoutedOnePortModel, RoutedOnePortState, build_routing_table
from .variants import (
    NoOverlapOnePortModel,
    UniPortModel,
    validate_no_overlap,
    validate_uni_port,
)

__all__ = [
    "CommState",
    "CommTrial",
    "CommunicationModel",
    "FlatBooker",
    "MacroDataflowModel",
    "MacroDataflowState",
    "NoOverlapOnePortModel",
    "OnePortModel",
    "OnePortState",
    "RoutedOnePortModel",
    "RoutedOnePortState",
    "UniPortModel",
    "available_models",
    "build_routing_table",
    "make_model",
    "register_model",
    "validate_no_overlap",
    "validate_uni_port",
]
