"""Communication models: macro-dataflow, one-port, routed one-port."""

from .base import CommState, CommTrial, CommunicationModel
from .macro_dataflow import MacroDataflowModel, MacroDataflowState
from .one_port import OnePortModel, OnePortState
from .routing import RoutedOnePortModel, RoutedOnePortState, build_routing_table
from .variants import (
    NoOverlapOnePortModel,
    UniPortModel,
    validate_no_overlap,
    validate_uni_port,
)

__all__ = [
    "CommState",
    "CommTrial",
    "CommunicationModel",
    "MacroDataflowModel",
    "MacroDataflowState",
    "NoOverlapOnePortModel",
    "OnePortModel",
    "OnePortState",
    "RoutedOnePortModel",
    "RoutedOnePortState",
    "UniPortModel",
    "build_routing_table",
    "validate_no_overlap",
    "validate_uni_port",
]
