"""Communication-model interface shared by all scheduling heuristics.

A :class:`CommunicationModel` encapsulates *how communications consume
resources*: the macro-dataflow model consumes none (any number of
messages flow simultaneously), the one-port model serializes messages on
per-processor send/receive ports, and the routed model additionally
forwards messages hop by hop over a sparse topology.

Heuristics never manipulate ports directly.  The protocol is:

1. ``state = model.new_state()`` — fresh resource state for one run;
2. ``trial = state.trial()`` — tentative view for evaluating *one*
   candidate placement;
3. ``trial.edge_arrival(...)`` per incoming edge — books tentative
   resources, returns when the data reaches the candidate processor;
4. either drop the trial (candidate rejected) or
   ``trial.commit(schedule)`` — replay the tentative bookings onto the
   state and append the corresponding :class:`~repro.core.schedule.CommEvent`
   records to the schedule.

This mirrors the paper's Section 4.3: "since we have access to current
communication schedules for all processors, we can assign the new
communications as early as possible, in a greedy fashion" — the *trial*
is how a candidate's communications are placed without disturbing the
committed schedules of the other candidates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable

from ..core.platform import Platform
from ..core.schedule import Schedule

TaskId = Hashable


class CommTrial(ABC):
    """Tentative communication bookings for one candidate placement."""

    @abstractmethod
    def edge_arrival(
        self,
        src_task: TaskId,
        dst_task: TaskId,
        src_proc: int,
        dst_proc: int,
        ready: float,
        data: float,
    ) -> float:
        """Book the transfer of ``data`` items for edge ``src->dst``.

        ``ready`` is the earliest the message may leave (the source
        task's finish time).  Returns the arrival time at ``dst_proc``
        (``ready`` itself when both tasks share a processor).  The
        booking is tentative until :meth:`commit`.
        """

    @abstractmethod
    def commit(self, schedule: Schedule) -> None:
        """Make every tentative booking permanent and record its events."""


class CommState(ABC):
    """Committed communication-resource state for one scheduling run."""

    @abstractmethod
    def trial(self) -> CommTrial:
        """A fresh tentative view over this state."""

    def copy(self) -> "CommState":
        """Deep copy (used by chunk-rescheduling heuristic variants)."""
        raise NotImplementedError


class CommunicationModel(ABC):
    """Factory for per-run communication states; carries the model name."""

    #: Model identifier, matching :mod:`repro.core.validation` constants.
    name: str = ""

    def __init__(self, platform: Platform) -> None:
        self.platform = platform

    @abstractmethod
    def new_state(self) -> CommState:
        """Fresh, empty communication state for a scheduling run."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(p={self.platform.num_processors})"
