"""Communication-model interface shared by all scheduling heuristics.

A :class:`CommunicationModel` encapsulates *how communications consume
resources*: the macro-dataflow model consumes none (any number of
messages flow simultaneously), the one-port model serializes messages on
per-processor send/receive ports, and the routed model additionally
forwards messages hop by hop over a sparse topology.

Heuristics never manipulate ports directly.  Two protocols exist:

**Flat bookers (the construction hot path).**  A model that sets
``supports_flat`` provides :meth:`CommunicationModel.flat_booker`: a
stateless-per-candidate booker bound to rows of a
:class:`~repro.kernel.builder.FlatBuilder`.  ``trial_est`` books a
candidate's incoming messages tentatively (generation-stamped, O(1) to
reject) and ``commit_est`` re-derives and commits them; both take the
task's parents as interned ``(parent_finish, parent_ix, edge_ix,
parent_proc)`` rows.  :class:`~repro.heuristics.base.SchedulerState`
routes every registered heuristic through this path.

**Object trials (the reference path).**  The original per-candidate
mechanism, retained as the cross-check reference and for models without
a flat booker (multi-hop routing):

1. ``state = model.new_state()`` — fresh resource state for one run;
2. ``trial = state.trial()`` — tentative view for evaluating *one*
   candidate placement;
3. ``trial.edge_arrival(...)`` per incoming edge — books tentative
   resources, returns when the data reaches the candidate processor;
4. either drop the trial (candidate rejected) or
   ``trial.commit(schedule)`` — replay the tentative bookings onto the
   state and append the corresponding :class:`~repro.core.schedule.CommEvent`
   records to the schedule.

This mirrors the paper's Section 4.3: "since we have access to current
communication schedules for all processors, we can assign the new
communications as early as possible, in a greedy fashion" — the *trial*
is how a candidate's communications are placed without disturbing the
committed schedules of the other candidates.

The registry
------------
Models register under their spec name with :func:`register_model`;
:func:`make_model` is the single resolution path shared by the
heuristics, the CLI, the campaign engine, and the online policies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable

from ..core.exceptions import ConfigurationError
from ..core.platform import Platform
from ..core.schedule import Schedule

TaskId = Hashable

_INF = float("inf")


class CommTrial(ABC):
    """Tentative communication bookings for one candidate placement."""

    @abstractmethod
    def edge_arrival(
        self,
        src_task: TaskId,
        dst_task: TaskId,
        src_proc: int,
        dst_proc: int,
        ready: float,
        data: float,
    ) -> float:
        """Book the transfer of ``data`` items for edge ``src->dst``.

        ``ready`` is the earliest the message may leave (the source
        task's finish time).  Returns the arrival time at ``dst_proc``
        (``ready`` itself when both tasks share a processor).  The
        booking is tentative until :meth:`commit`.
        """

    @abstractmethod
    def commit(self, schedule: Schedule) -> None:
        """Make every tentative booking permanent and record its events."""


class CommState(ABC):
    """Committed communication-resource state for one scheduling run."""

    @abstractmethod
    def trial(self) -> CommTrial:
        """A fresh tentative view over this state."""

    def copy(self) -> "CommState":
        """Deep copy (used by chunk-rescheduling heuristic variants)."""
        raise NotImplementedError


class FlatBooker(ABC):
    """Flat-path message booking for one model over builder rows.

    ``parents`` rows are ``(parent_finish, parent_ix, edge_ix,
    parent_proc)`` tuples sorted by ``(parent_finish, parent_ix)`` —
    the greedy first-finished-first message order of the EFT engine.
    Local parents (``parent_proc == proc``) contribute their finish
    time directly and book nothing.

    **Array-backend sweep (optional).**  A booker may additionally
    implement the all-processor sweep protocol consumed by
    ``ArraySchedulerState`` (:mod:`repro.heuristics.state_array`):

    * ``sweep_est(parents, sw)`` resolves the candidate's messages
      *once* and fills the caller's sweep buffers ``sw`` — ``sw.est``
      (float64 per processor: exact ESTs where provable, safe lower
      bounds elsewhere), ``sw.status`` (2 = exact and shared, 1 =
      parent-hosting, resolve lazily via ``resolve_dest``, 0 = fall
      back to scalar ``trial_est``) and ``sw.events`` (the resolved
      ``(edge_ix, src_proc, start, duration)`` records valid for every
      status-2 processor).  Returns False when the parent set is not
      sweepable (e.g. heterogeneous link rows) — the caller then uses
      the scalar path.
    * ``resolve_dest(proc)`` exactly resolves a status-1 processor from
      the last ``sweep_est`` call; returns ``(est, events)`` or ``None``
      when exactness cannot be proven (caller falls back to scalar).
    * ``commit_resolved(events, proc)`` commits previously resolved
      events — the same bookings ``commit_est`` would re-derive.
    * ``sweep_select(parents, exec_row, order_row, gap_fit, insertion,
      procs)`` (optional on top of the sweep) fuses the sweep and the
      minimum-EFT selection into one pass — ``order_row`` lists the
      processors in increasing execution time (cached on the statics)
      so a growing finish lower bound can cut the walk short —
      returning ``(proc, start, finish, events_or_None)`` or ``None``
      to bail; the array state prefers it over the split ``sweep_est``
      protocol when present.

    All sweep results must be bit-identical to ``trial_est`` /
    ``commit_est``; the cross-backend fuzz suite asserts this.
    """

    __slots__ = ()

    #: ``None`` marks a booker without the sweep protocol; the array
    #: backend then routes every probe through scalar ``trial_est``.
    sweep_est = None

    #: ``None`` marks a booker without the fused sweep-and-select fast
    #: path (the array backend then uses ``sweep_est`` if present).
    sweep_select = None

    @abstractmethod
    def trial_est(self, parents, proc: int, cutoff: float = _INF, duration: float = 0.0) -> float:
        """Earliest data-ready time of a candidate on ``proc``.

        Books every remote parent's message *tentatively* into the
        builder's current trial generation; the caller starts the trial
        (``builder.begin_trial()``) and discards it for free.

        ``cutoff``/``duration`` enable exact early abort: the running
        ``est`` only grows, so once ``est + duration > cutoff`` the
        candidate's finish provably exceeds ``cutoff`` (float addition
        is monotone) and the booker may return the partial ``est``.
        Callers must re-test the same inequality before using the
        result as a real candidate.  Implementations may ignore the
        hint — it only skips work, never changes a kept candidate.
        """

    @abstractmethod
    def commit_est(self, parents, proc: int, out: list) -> float:
        """Commit the same greedy bookings against the committed rows.

        Appends one ``(edge_ix, src_proc, start, duration)`` record per
        remote parent to ``out`` (in booking order) for the caller to
        turn into schedule events.  Valid only when the committed rows
        are unchanged since the candidate was evaluated — the invariant
        every list heuristic satisfies.
        """

    @abstractmethod
    def rebind(self, builder) -> "FlatBooker":
        """The same booker (same row indices) over a copied builder."""


class CommunicationModel(ABC):
    """Factory for per-run communication states; carries the model name."""

    #: Model identifier, matching :mod:`repro.core.validation` constants.
    name: str = ""
    #: Registry spec name (set by :func:`register_model`).
    registry_name: str = ""
    #: Whether :meth:`flat_booker` is available (flat construction path).
    supports_flat: bool = False

    def __init__(self, platform: Platform) -> None:
        self.platform = platform

    @abstractmethod
    def new_state(self) -> CommState:
        """Fresh, empty communication state for a scheduling run."""

    def flat_booker(self, builder, statics) -> FlatBooker:
        """A :class:`FlatBooker` over ``builder`` rows (flat-path models)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no flat booker; use the object path"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(p={self.platform.num_processors})"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[CommunicationModel]] = {}


def register_model(name: str):
    """Class decorator adding a model to the registry under ``name``."""

    def decorate(cls: type[CommunicationModel]) -> type[CommunicationModel]:
        if name in _REGISTRY:
            raise ConfigurationError(f"duplicate model name {name!r}")
        cls.registry_name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def available_models() -> list[str]:
    """Registered model spec names."""
    return sorted(_REGISTRY)


def make_model(platform: Platform, model: str | CommunicationModel) -> CommunicationModel:
    """Resolve a registered model name (or pass an instance through).

    The single resolution path shared by heuristics, the CLI, the
    campaign engine, and the online policies.
    """
    if isinstance(model, CommunicationModel):
        return model
    try:
        cls = _REGISTRY[model]
    except KeyError:
        raise ConfigurationError(
            f"unknown communication model {model!r}; "
            f"available: {available_models()}"
        ) from None
    return cls(platform)
