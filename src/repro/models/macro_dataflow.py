"""The classical macro-dataflow model: contention-free communications.

Section 2.1 of the paper: a message of ``data`` items from processor
``q`` to ``r`` takes ``data * link(q, r)`` time, may start the instant
the source task completes, and consumes no shared resource — a processor
can send or receive arbitrarily many messages simultaneously.  This is
the model every classical heuristic (HEFT, CPOP, GDL, BIL, PCT...)
assumes; the paper argues it is unrealistic and uses it as the baseline.

Events are still recorded (one per remote edge) so that communication
counts and a Gantt view remain available, and so that a macro-dataflow
schedule can be *checked* against the one-port rules — which it will
generally violate, as the paper's Figure 1 example shows.

The flat booker is pure arithmetic (no resource rows); the trial class
is the retained object-path reference.
"""

from __future__ import annotations

import math
from collections.abc import Hashable

from ..core.exceptions import PlatformError
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.validation import MACRO_DATAFLOW
from .base import (
    CommState,
    CommTrial,
    CommunicationModel,
    FlatBooker,
    register_model,
)

_INF = float("inf")

TaskId = Hashable


class MacroDataflowFlatBooker(FlatBooker):
    """Contention-free bookings: ``arrival = ready + data * link``."""

    __slots__ = ("edata", "links", "check_links", "num_procs", "_hrow", "_prep", "_pprocs")

    def __init__(self, builder, statics) -> None:
        self.edata = statics.edata
        self.links = statics.link_rows
        self.check_links = not statics.all_links_finite
        p = statics.num_procs
        self.num_procs = p
        # uniform off-diagonal link value per source row (None = hetero);
        # see OnePortFlatBooker._init_sweep for the rationale
        hrow: list[float | None] = []
        for q in range(p):
            row = self.links[q]
            vals = {row[r] for r in range(p) if r != q}
            hrow.append(vals.pop() if len(vals) == 1 else (0.0 if not vals else None))
        self._hrow = hrow
        self._prep: list[tuple] = []
        self._pprocs: set[int] = set()

    def rebind(self, builder) -> "MacroDataflowFlatBooker":
        return self  # no rows: nothing is bound to a builder

    def _cost(self, q: int, r: int) -> float:
        cost = self.links[q][r]
        if self.check_links and not math.isfinite(cost):
            raise PlatformError(f"no direct link from P{q} to P{r}")
        return cost

    def trial_est(self, parents, proc: int, cutoff: float = _INF, duration: float = 0.0) -> float:
        edata = self.edata
        est = 0.0
        for pfinish, _pi, e, pproc in parents:
            if pproc == proc:
                arr = pfinish
            else:
                arr = pfinish + edata[e] * self._cost(pproc, proc)
            if arr > est:
                est = arr
        return est

    def commit_est(self, parents, proc: int, out: list) -> float:
        edata = self.edata
        est = 0.0
        for pfinish, _pi, e, pproc in parents:
            if pproc == proc:
                arr = pfinish
            else:
                dur = edata[e] * self._cost(pproc, proc)
                out.append((e, pproc, pfinish, dur))
                arr = pfinish + dur
            if arr > est:
                est = arr
        return est

    # ------------------------------------------------------------------
    # array-backend sweep (see FlatBooker docstring): with no shared
    # resources the per-processor EST is pure arithmetic, so every
    # non-parent processor shares one value and one event list exactly.
    # ------------------------------------------------------------------
    def sweep_est(self, parents, sw) -> bool:
        if self.check_links:
            return False
        hrow = self._hrow
        edata = self.edata
        prep = self._prep
        del prep[:]
        pprocs = self._pprocs
        pprocs.clear()
        events: list[tuple] = []
        est = 0.0
        for pfinish, _pi, e, q in parents:
            u = hrow[q]
            if u is None:
                return False
            dur = edata[e] * u
            prep.append((pfinish, e, q, dur))
            pprocs.add(q)
            events.append((e, q, pfinish, dur))
            arr = pfinish + dur
            if arr > est:
                est = arr
        est_l = sw.est
        status = sw.status
        for r in range(self.num_procs):
            if r in pprocs:
                status[r] = 1
                m = 0.0
                for pfinish, _e, q, dur in prep:
                    arr = pfinish if q == r else pfinish + dur
                    if arr > m:
                        m = arr
                est_l[r] = m  # exact, hence also a valid lower bound
            else:
                status[r] = 2
                est_l[r] = est
        sw.events = events
        return True

    def resolve_dest(self, proc: int):
        """Exact EST + events for a parent-hosting destination."""
        est = 0.0
        events: list[tuple] = []
        for pfinish, e, q, dur in self._prep:
            if q == proc:
                arr = pfinish
            else:
                events.append((e, q, pfinish, dur))
                arr = pfinish + dur
            if arr > est:
                est = arr
        return est, events

    def commit_resolved(self, events, proc: int) -> None:
        return  # contention-free: nothing is booked


class MacroDataflowTrial(CommTrial):
    """Trial bookings under macro-dataflow: pure arithmetic, no resources."""

    __slots__ = ("_platform", "_pending")

    def __init__(self, platform: Platform) -> None:
        self._platform = platform
        self._pending: list[tuple] = []

    def edge_arrival(
        self,
        src_task: TaskId,
        dst_task: TaskId,
        src_proc: int,
        dst_proc: int,
        ready: float,
        data: float,
    ) -> float:
        if src_proc == dst_proc:
            return ready
        duration = self._platform.comm_time(data, src_proc, dst_proc)
        self._pending.append(
            (src_task, dst_task, src_proc, dst_proc, ready, duration, data)
        )
        return ready + duration

    def commit(self, schedule: Schedule) -> None:
        for src_task, dst_task, q, r, start, duration, data in self._pending:
            schedule.record_comm(src_task, dst_task, q, r, start, duration, data)
        self._pending.clear()


class MacroDataflowState(CommState):
    """No shared communication state: every trial is independent."""

    __slots__ = ("_platform",)

    def __init__(self, platform: Platform) -> None:
        self._platform = platform

    def trial(self) -> MacroDataflowTrial:
        return MacroDataflowTrial(self._platform)

    def copy(self) -> "MacroDataflowState":
        return MacroDataflowState(self._platform)


@register_model("macro-dataflow")
class MacroDataflowModel(CommunicationModel):
    """Factory for macro-dataflow communication states."""

    name = MACRO_DATAFLOW
    supports_flat = True

    def new_state(self) -> MacroDataflowState:
        return MacroDataflowState(self.platform)

    def flat_booker(self, builder, statics) -> MacroDataflowFlatBooker:
        return MacroDataflowFlatBooker(builder, statics)
