"""The classical macro-dataflow model: contention-free communications.

Section 2.1 of the paper: a message of ``data`` items from processor
``q`` to ``r`` takes ``data * link(q, r)`` time, may start the instant
the source task completes, and consumes no shared resource — a processor
can send or receive arbitrarily many messages simultaneously.  This is
the model every classical heuristic (HEFT, CPOP, GDL, BIL, PCT...)
assumes; the paper argues it is unrealistic and uses it as the baseline.

Events are still recorded (one per remote edge) so that communication
counts and a Gantt view remain available, and so that a macro-dataflow
schedule can be *checked* against the one-port rules — which it will
generally violate, as the paper's Figure 1 example shows.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.validation import MACRO_DATAFLOW
from .base import CommState, CommTrial, CommunicationModel

TaskId = Hashable


class MacroDataflowTrial(CommTrial):
    """Trial bookings under macro-dataflow: pure arithmetic, no resources."""

    __slots__ = ("_platform", "_pending")

    def __init__(self, platform: Platform) -> None:
        self._platform = platform
        self._pending: list[tuple] = []

    def edge_arrival(
        self,
        src_task: TaskId,
        dst_task: TaskId,
        src_proc: int,
        dst_proc: int,
        ready: float,
        data: float,
    ) -> float:
        if src_proc == dst_proc:
            return ready
        duration = self._platform.comm_time(data, src_proc, dst_proc)
        self._pending.append(
            (src_task, dst_task, src_proc, dst_proc, ready, duration, data)
        )
        return ready + duration

    def commit(self, schedule: Schedule) -> None:
        for src_task, dst_task, q, r, start, duration, data in self._pending:
            schedule.record_comm(src_task, dst_task, q, r, start, duration, data)
        self._pending.clear()


class MacroDataflowState(CommState):
    """No shared communication state: every trial is independent."""

    __slots__ = ("_platform",)

    def __init__(self, platform: Platform) -> None:
        self._platform = platform

    def trial(self) -> MacroDataflowTrial:
        return MacroDataflowTrial(self._platform)

    def copy(self) -> "MacroDataflowState":
        return MacroDataflowState(self._platform)


class MacroDataflowModel(CommunicationModel):
    """Factory for macro-dataflow communication states."""

    name = MACRO_DATAFLOW

    def new_state(self) -> MacroDataflowState:
        return MacroDataflowState(self.platform)
