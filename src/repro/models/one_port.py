"""The bi-directional one-port model (the paper's contribution, §2.3).

At any instant a processor sends to at most one processor and receives
from at most one processor; sending and receiving may overlap each other
and overlap computation.  Messages between disjoint sender/receiver
pairs proceed in parallel — the model of a switched network (Myrinet-
style permutation switches) or a multiplexed bus.

A transfer ``q -> r`` of ``data`` items books the window
``[start, start + data * link(q, r))`` on *both* ``q``'s send port and
``r``'s receive port, where ``start`` is the earliest instant at or
after the source task's completion at which that window is free on both
ports — the greedy "as early as possible" rule of Section 4.3.

Two implementations of that rule live here: :class:`OnePortFlatBooker`
books flat :class:`~repro.kernel.builder.FlatBuilder` rows (the
construction hot path) and :class:`OnePortTrial` books
:class:`~repro.core.ports.PortSet` overlays (the retained object
reference).  Both compute bit-identical windows.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections.abc import Hashable

from ..core.exceptions import PlatformError
from ..core.platform import Platform
from ..core.ports import PortSet, PortSetOverlay
from ..core.schedule import Schedule
from ..core.validation import ONE_PORT
from .base import (
    CommState,
    CommTrial,
    CommunicationModel,
    FlatBooker,
    register_model,
)

_INF = float("inf")

TaskId = Hashable


class OnePortFlatBooker(FlatBooker):
    """Greedy one-port bookings over flat send/recv rows."""

    __slots__ = (
        "builder",
        "send0",
        "recv0",
        "edata",
        "links",
        "check_links",
        "seed_cache",
        "seed_epoch",
    )

    def __init__(self, builder, statics) -> None:
        p = statics.num_procs
        self.builder = builder
        self.send0 = builder.new_rows(p)
        self.recv0 = builder.new_rows(p)
        self.edata = statics.edata
        self.links = statics.link_rows
        self.check_links = not statics.all_links_finite
        #: Per-sweep memo of each edge's earliest *send-committed*
        #: feasible start: identical for every candidate processor (the
        #: send row and ready time do not depend on the destination), it
        #: lower-bounds the joint window, so later trials in the same
        #: sweep may start their search there.  Keyed by (edge, source
        #: proc, duration, ready); cleared whenever the committed state
        #: changes.
        self.seed_cache: dict = {}
        self.seed_epoch = -1

    def rebind(self, builder) -> "OnePortFlatBooker":
        dup = object.__new__(OnePortFlatBooker)
        dup.builder = builder
        dup.send0 = self.send0
        dup.recv0 = self.recv0
        dup.edata = self.edata
        dup.links = self.links
        dup.check_links = self.check_links
        dup.seed_cache = {}
        dup.seed_epoch = -1
        return dup

    # The booking loops below are hand-inlined: one transfer costs a
    # handful of bisects and list inserts, with no helper calls.  Each
    # layer block advances ``t`` to the least feasible instant >= t for
    # that interval list; sweeping the (up to four) layers until none
    # moves reaches the unique least instant free on all of them — the
    # same value ``earliest_joint_fit`` computes on the object path.

    def trial_est(
        self, parents, proc: int, cutoff: float = _INF, duration: float = 0.0
    ) -> float:
        b = self.builder
        gen = b.gen
        rows_s, rows_e = b.rows_s, b.rows_e
        tent_s, tent_e, tgen = b.tent_s, b.tent_e, b.tent_gen
        send0 = self.send0
        edata, links = self.edata, self.links
        check = self.check_links
        seeds = self.seed_cache
        if self.seed_epoch != b.commit_count:
            seeds.clear()
            self.seed_epoch = b.commit_count
        rr = self.recv0 + proc
        rcs, rce = rows_s[rr], rows_e[rr]
        rts = rte = None  # recv tentative layer, live after first booking
        # tentative bookings are only ever read by *later* remote
        # parents of this same candidate: everything at or after the
        # last remote parent books nothing (single-remote-parent
        # candidates — the common case — never touch tentative state)
        last_remote = -1
        for j in range(len(parents) - 1, -1, -1):
            if parents[j][3] != proc:
                last_remote = j
                break
        est = 0.0
        for j, (pfinish, _pi, e, pproc) in enumerate(parents):
            if pproc == proc:
                if pfinish > est:
                    est = pfinish
                continue
            cost = links[pproc][proc]
            if check and not math.isfinite(cost):
                raise PlatformError(f"no direct link from P{pproc} to P{proc}")
            dur = edata[e] * cost
            if dur == 0.0:
                if pfinish > est:
                    est = pfinish
                continue
            rs = send0 + pproc
            scs, sce = rows_s[rs], rows_e[rs]
            if tgen[rs] == gen:
                sts, ste = tent_s[rs], tent_e[rs]
            else:
                sts = ste = None
            # Fixed-point sweeps carry a scan cursor per layer: ``t``
            # only grows, and every interval behind a cursor has been
            # proven to end at or before the current ``t``, so a
            # re-sweep resumes scanning instead of re-bisecting.
            si = xi = ri = yi = -1
            key = (e, pproc, dur, pfinish)
            t = seeds.get(key, -1.0)
            if t < pfinish:
                # first trial of this (edge, source row, window, ready)
                # since the last commit: find the least send-committed
                # feasible start once — it is destination-independent
                # and lower-bounds the joint window, so the other
                # candidate processors' searches may begin there
                # instead of rescanning from pfinish (the source proc
                # and ready time are part of the key, so hypothetical
                # parent rows can never poison it)
                t = pfinish
                if sce and sce[-1] > t:
                    si = bisect_right(scs, t) - 1
                    if si >= 0 and sce[si] > t:
                        t = sce[si]
                    si += 1
                    n = len(scs)
                    lim = t + dur
                    while si < n and scs[si] < lim:
                        if sce[si] > t:
                            t = sce[si]
                            lim = t + dur
                        si += 1
                seeds[key] = t
            while True:
                moved = False
                # send committed ("frontier" fast path: a layer whose
                # last end is <= t cannot block any window at or after t)
                if sce and sce[-1] > t:
                    if si < 0:
                        si = bisect_right(scs, t) - 1
                        if si >= 0 and sce[si] > t:
                            t = sce[si]
                            moved = True
                        si += 1
                    n = len(scs)
                    lim = t + dur
                    while si < n and scs[si] < lim:
                        if sce[si] > t:
                            t = sce[si]
                            lim = t + dur
                            moved = True
                        si += 1
                # send tentative (same-source siblings booked this trial)
                if sts and ste[-1] > t:
                    if xi < 0:
                        xi = bisect_right(sts, t) - 1
                        if xi >= 0 and ste[xi] > t:
                            t = ste[xi]
                            moved = True
                        xi += 1
                    n = len(sts)
                    lim = t + dur
                    while xi < n and sts[xi] < lim:
                        if ste[xi] > t:
                            t = ste[xi]
                            lim = t + dur
                            moved = True
                        xi += 1
                # recv committed
                if rce and rce[-1] > t:
                    if ri < 0:
                        ri = bisect_right(rcs, t) - 1
                        if ri >= 0 and rce[ri] > t:
                            t = rce[ri]
                            moved = True
                        ri += 1
                    n = len(rcs)
                    lim = t + dur
                    while ri < n and rcs[ri] < lim:
                        if rce[ri] > t:
                            t = rce[ri]
                            lim = t + dur
                            moved = True
                        ri += 1
                # recv tentative (other messages booked this trial)
                if rts and rte[-1] > t:
                    if yi < 0:
                        yi = bisect_right(rts, t) - 1
                        if yi >= 0 and rte[yi] > t:
                            t = rte[yi]
                            moved = True
                        yi += 1
                    n = len(rts)
                    lim = t + dur
                    while yi < n and rts[yi] < lim:
                        if rte[yi] > t:
                            t = rte[yi]
                            lim = t + dur
                            moved = True
                        yi += 1
                if not moved:
                    break
            end = t + dur
            if j < last_remote:
                # book tentatively on both rows (truncating stale layers)
                if sts is None:
                    sts, ste = tent_s[rs], tent_e[rs]
                    del sts[:]
                    del ste[:]
                    tgen[rs] = gen
                i = bisect_right(sts, t)
                sts.insert(i, t)
                ste.insert(i, end)
                if rts is None:
                    rts, rte = tent_s[rr], tent_e[rr]
                    if tgen[rr] != gen:
                        del rts[:]
                        del rte[:]
                        tgen[rr] = gen
                i = bisect_right(rts, t)
                rts.insert(i, t)
                rte.insert(i, end)
            if end > est:
                est = end
                if est + duration > cutoff:
                    return est  # partial: candidate provably loses
        return est

    def commit_est(self, parents, proc: int, out: list) -> float:
        b = self.builder
        rows_s, rows_e = b.rows_s, b.rows_e
        send0 = self.send0
        edata, links = self.edata, self.links
        check = self.check_links
        book = b.book
        rr = self.recv0 + proc
        rcs, rce = rows_s[rr], rows_e[rr]
        est = 0.0
        for pfinish, _pi, e, pproc in parents:
            if pproc == proc:
                if pfinish > est:
                    est = pfinish
                continue
            cost = links[pproc][proc]
            if check and not math.isfinite(cost):
                raise PlatformError(f"no direct link from P{pproc} to P{proc}")
            dur = edata[e] * cost
            if dur == 0.0:
                out.append((e, pproc, pfinish, 0.0))
                if pfinish > est:
                    est = pfinish
                continue
            rs = send0 + pproc
            scs, sce = rows_s[rs], rows_e[rs]
            # committed layers only: the caller began a fresh trial
            # generation, so no tentative interval is live
            t = pfinish
            while True:
                moved = False
                if sce and sce[-1] > t:
                    i = bisect_right(scs, t) - 1
                    if i >= 0 and sce[i] > t:
                        t = sce[i]
                        moved = True
                    i += 1
                    n = len(scs)
                    lim = t + dur
                    while i < n and scs[i] < lim:
                        if sce[i] > t:
                            t = sce[i]
                            lim = t + dur
                            moved = True
                        i += 1
                if rce and rce[-1] > t:
                    i = bisect_right(rcs, t) - 1
                    if i >= 0 and rce[i] > t:
                        t = rce[i]
                        moved = True
                    i += 1
                    n = len(rcs)
                    lim = t + dur
                    while i < n and rcs[i] < lim:
                        if rce[i] > t:
                            t = rce[i]
                            lim = t + dur
                            moved = True
                        i += 1
                if not moved:
                    break
            end = t + dur
            book(rs, t, end)
            book(rr, t, end)
            out.append((e, pproc, t, dur))
            if end > est:
                est = end
        return est


class OnePortTrial(CommTrial):
    """Tentative port bookings over a committed :class:`PortSet`."""

    __slots__ = ("_platform", "_overlay", "_pending")

    def __init__(self, platform: Platform, ports: PortSet) -> None:
        self._platform = platform
        self._overlay = PortSetOverlay(ports)
        self._pending: list[tuple] = []

    def edge_arrival(
        self,
        src_task: TaskId,
        dst_task: TaskId,
        src_proc: int,
        dst_proc: int,
        ready: float,
        data: float,
    ) -> float:
        if src_proc == dst_proc:
            return ready
        duration = self._platform.comm_time(data, src_proc, dst_proc)
        start = self._overlay.earliest_transfer(src_proc, dst_proc, ready, duration)
        self._overlay.reserve_transfer(
            src_proc, dst_proc, start, duration, tag=(src_task, dst_task)
        )
        self._pending.append(
            (src_task, dst_task, src_proc, dst_proc, start, duration, data)
        )
        return start + duration

    def commit(self, schedule: Schedule) -> None:
        self._overlay.commit()
        for src_task, dst_task, q, r, start, duration, data in self._pending:
            schedule.record_comm(src_task, dst_task, q, r, start, duration, data)
        self._pending.clear()


class OnePortState(CommState):
    """Committed send/receive port timelines for one scheduling run."""

    __slots__ = ("_platform", "ports")

    def __init__(self, platform: Platform, ports: PortSet | None = None) -> None:
        self._platform = platform
        self.ports = ports if ports is not None else PortSet(platform.num_processors)

    def trial(self) -> OnePortTrial:
        return OnePortTrial(self._platform, self.ports)

    def copy(self) -> "OnePortState":
        return OnePortState(self._platform, self.ports.copy())


@register_model("one-port")
class OnePortModel(CommunicationModel):
    """Factory for bi-directional one-port communication states."""

    name = ONE_PORT
    supports_flat = True

    def new_state(self) -> OnePortState:
        return OnePortState(self.platform)

    def flat_booker(self, builder, statics) -> OnePortFlatBooker:
        return OnePortFlatBooker(builder, statics)
