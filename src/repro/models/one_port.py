"""The bi-directional one-port model (the paper's contribution, §2.3).

At any instant a processor sends to at most one processor and receives
from at most one processor; sending and receiving may overlap each other
and overlap computation.  Messages between disjoint sender/receiver
pairs proceed in parallel — the model of a switched network (Myrinet-
style permutation switches) or a multiplexed bus.

A transfer ``q -> r`` of ``data`` items books the window
``[start, start + data * link(q, r))`` on *both* ``q``'s send port and
``r``'s receive port, where ``start`` is the earliest instant at or
after the source task's completion at which that window is free on both
ports — the greedy "as early as possible" rule of Section 4.3.

Two implementations of that rule live here: :class:`OnePortFlatBooker`
books flat :class:`~repro.kernel.builder.FlatBuilder` rows (the
construction hot path) and :class:`OnePortTrial` books
:class:`~repro.core.ports.PortSet` overlays (the retained object
reference).  Both compute bit-identical windows.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections.abc import Hashable

from ..core.exceptions import PlatformError
from ..core.platform import Platform
from ..core.ports import PortSet, PortSetOverlay
from ..kernel.builder import row_next_fit
from ..core.schedule import Schedule
from ..obs import current as _obs_current
from ..core.validation import ONE_PORT
from .base import (
    CommState,
    CommTrial,
    CommunicationModel,
    FlatBooker,
    register_model,
)

_INF = float("inf")

TaskId = Hashable


class OnePortFlatBooker(FlatBooker):
    """Greedy one-port bookings over flat send/recv rows."""

    __slots__ = (
        "builder",
        "send0",
        "recv0",
        "num_procs",
        "edata",
        "links",
        "check_links",
        "seed_cache",
        "stats",
        "_hrow",
        "_prep",
        "_pprocs",
        "_Ts",
        "_Te",
        "_zl",
        "_lbmsg",
    )

    def __init__(self, builder, statics) -> None:
        p = statics.num_procs
        self.builder = builder
        self.send0 = builder.new_rows(p)
        self.recv0 = builder.new_rows(p)
        self.num_procs = p
        self.edata = statics.edata
        self.links = statics.link_rows
        self.check_links = not statics.all_links_finite
        #: Memo of each edge's earliest *send-committed* feasible
        #: start: identical for every candidate processor (the send row
        #: and ready time do not depend on the destination), it
        #: lower-bounds the joint window, so later trials may start
        #: their search there.  Keyed by edge index with value
        #: ``(send-row version, source proc, ready, seed)`` — an entry
        #: is live while its send row is unchanged *and* the source
        #: placement (proc, finish) still matches, so seeds survive
        #: commits that touch other rows but can never leak across a
        #: re-placement (chunk rollbacks re-place parents).
        self.seed_cache: dict = {}
        #: Active obs collector, captured once (``None`` = stats off).
        self.stats = _obs_current()
        self._init_sweep()

    def _init_sweep(self) -> None:
        #: Uniform off-diagonal link value per source row, or None for a
        #: heterogeneous row: when a source sends at one cost to every
        #: other processor, its message duration — and therefore its
        #: send-row resolution — is destination-independent, which is
        #: what lets ``sweep_est`` share one resolution across
        #: processors.
        links = self.links
        p = self.num_procs
        hrow: list[float | None] = []
        for q in range(p):
            row = links[q]
            vals = {row[r] for r in range(p) if r != q}
            hrow.append(vals.pop() if len(vals) == 1 else (0.0 if not vals else None))
        self._hrow = hrow
        # scratch reused across sweeps (one candidate at a time)
        self._prep: list[tuple] = []
        self._pprocs: set[int] = set()
        self._Ts: list[float] = []
        self._Te: list[float] = []
        self._zl = 0.0
        self._lbmsg = 0.0

    def rebind(self, builder) -> "OnePortFlatBooker":
        dup = object.__new__(OnePortFlatBooker)
        dup.builder = builder
        dup.send0 = self.send0
        dup.recv0 = self.recv0
        dup.num_procs = self.num_procs
        dup.edata = self.edata
        dup.links = self.links
        dup.check_links = self.check_links
        dup.seed_cache = {}
        dup.stats = self.stats
        dup._init_sweep()
        return dup

    # The booking loops below are hand-inlined: one transfer costs a
    # handful of bisects and list inserts, with no helper calls.  Each
    # layer block advances ``t`` to the least feasible instant >= t for
    # that interval list; sweeping the (up to four) layers until none
    # moves reaches the unique least instant free on all of them — the
    # same value ``earliest_joint_fit`` computes on the object path.

    def trial_est(
        self, parents, proc: int, cutoff: float = _INF, duration: float = 0.0
    ) -> float:
        b = self.builder
        gen = b.gen
        rows_s, rows_e = b.rows_s, b.rows_e
        tent_s, tent_e, tgen = b.tent_s, b.tent_e, b.tent_gen
        send0 = self.send0
        edata, links = self.edata, self.links
        check = self.check_links
        seeds = self.seed_cache
        row_ver = b.row_ver
        rr = self.recv0 + proc
        rcs, rce = rows_s[rr], rows_e[rr]
        rts = rte = None  # recv tentative layer, live after first booking
        # tentative bookings are only ever read by *later* remote
        # parents of this same candidate: everything at or after the
        # last remote parent books nothing (single-remote-parent
        # candidates — the common case — never touch tentative state)
        last_remote = -1
        for j in range(len(parents) - 1, -1, -1):
            if parents[j][3] != proc:
                last_remote = j
                break
        est = 0.0
        for j, (pfinish, _pi, e, pproc) in enumerate(parents):
            if pproc == proc:
                if pfinish > est:
                    est = pfinish
                continue
            cost = links[pproc][proc]
            if check and not math.isfinite(cost):
                raise PlatformError(f"no direct link from P{pproc} to P{proc}")
            dur = edata[e] * cost
            if dur == 0.0:
                if pfinish > est:
                    est = pfinish
                continue
            rs = send0 + pproc
            scs, sce = rows_s[rs], rows_e[rs]
            if tgen[rs] == gen:
                sts, ste = tent_s[rs], tent_e[rs]
            else:
                sts = ste = None
            # Fixed-point sweeps carry a scan cursor per layer: ``t``
            # only grows, and every interval behind a cursor has been
            # proven to end at or before the current ``t``, so a
            # re-sweep resumes scanning instead of re-bisecting.
            si = xi = ri = yi = -1
            ver = row_ver[rs]
            ent = seeds.get(e)
            if (
                ent is not None
                and ent[0] == ver
                and ent[1] == pproc
                and ent[2] == pfinish
            ):
                if self.stats is not None:
                    self.stats.inc("oneport.seed.hit")
                t = ent[3]
            else:
                if self.stats is not None:
                    self.stats.inc("oneport.seed.miss")
                # first trial of this (edge, source row, window, ready)
                # since the send row last changed: find the least
                # send-committed feasible start once — it is
                # destination-independent and lower-bounds the joint
                # window, so the other candidate processors' searches
                # may begin there instead of rescanning from pfinish
                # (the source proc and ready time are validated on
                # lookup, so a re-placed parent can never poison it)
                t = pfinish
                if sce and sce[-1] > t:
                    si = bisect_right(scs, t) - 1
                    if si >= 0 and sce[si] > t:
                        t = sce[si]
                    si += 1
                    n = len(scs)
                    lim = t + dur
                    while si < n and scs[si] < lim:
                        if sce[si] > t:
                            t = sce[si]
                            lim = t + dur
                        si += 1
                seeds[e] = (ver, pproc, pfinish, t)
            while True:
                moved = False
                # send committed ("frontier" fast path: a layer whose
                # last end is <= t cannot block any window at or after t)
                if sce and sce[-1] > t:
                    if si < 0:
                        si = bisect_right(scs, t) - 1
                        if si >= 0 and sce[si] > t:
                            t = sce[si]
                            moved = True
                        si += 1
                    n = len(scs)
                    lim = t + dur
                    while si < n and scs[si] < lim:
                        if sce[si] > t:
                            t = sce[si]
                            lim = t + dur
                            moved = True
                        si += 1
                # send tentative (same-source siblings booked this trial)
                if sts and ste[-1] > t:
                    if xi < 0:
                        xi = bisect_right(sts, t) - 1
                        if xi >= 0 and ste[xi] > t:
                            t = ste[xi]
                            moved = True
                        xi += 1
                    n = len(sts)
                    lim = t + dur
                    while xi < n and sts[xi] < lim:
                        if ste[xi] > t:
                            t = ste[xi]
                            lim = t + dur
                            moved = True
                        xi += 1
                # recv committed
                if rce and rce[-1] > t:
                    if ri < 0:
                        ri = bisect_right(rcs, t) - 1
                        if ri >= 0 and rce[ri] > t:
                            t = rce[ri]
                            moved = True
                        ri += 1
                    n = len(rcs)
                    lim = t + dur
                    while ri < n and rcs[ri] < lim:
                        if rce[ri] > t:
                            t = rce[ri]
                            lim = t + dur
                            moved = True
                        ri += 1
                # recv tentative (other messages booked this trial)
                if rts and rte[-1] > t:
                    if yi < 0:
                        yi = bisect_right(rts, t) - 1
                        if yi >= 0 and rte[yi] > t:
                            t = rte[yi]
                            moved = True
                        yi += 1
                    n = len(rts)
                    lim = t + dur
                    while yi < n and rts[yi] < lim:
                        if rte[yi] > t:
                            t = rte[yi]
                            lim = t + dur
                            moved = True
                        yi += 1
                if not moved:
                    break
            end = t + dur
            if j < last_remote:
                # book tentatively on both rows (truncating stale layers)
                if sts is None:
                    sts, ste = tent_s[rs], tent_e[rs]
                    del sts[:]
                    del ste[:]
                    tgen[rs] = gen
                i = bisect_right(sts, t)
                sts.insert(i, t)
                ste.insert(i, end)
                if rts is None:
                    rts, rte = tent_s[rr], tent_e[rr]
                    if tgen[rr] != gen:
                        del rts[:]
                        del rte[:]
                        tgen[rr] = gen
                i = bisect_right(rts, t)
                rts.insert(i, t)
                rte.insert(i, end)
            if end > est:
                est = end
                if est + duration > cutoff:
                    return est  # partial: candidate provably loses
        return est

    def commit_est(self, parents, proc: int, out: list) -> float:
        b = self.builder
        rows_s, rows_e = b.rows_s, b.rows_e
        send0 = self.send0
        edata, links = self.edata, self.links
        check = self.check_links
        book = b.book
        rr = self.recv0 + proc
        rcs, rce = rows_s[rr], rows_e[rr]
        est = 0.0
        for pfinish, _pi, e, pproc in parents:
            if pproc == proc:
                if pfinish > est:
                    est = pfinish
                continue
            cost = links[pproc][proc]
            if check and not math.isfinite(cost):
                raise PlatformError(f"no direct link from P{pproc} to P{proc}")
            dur = edata[e] * cost
            if dur == 0.0:
                out.append((e, pproc, pfinish, 0.0))
                if pfinish > est:
                    est = pfinish
                continue
            rs = send0 + pproc
            scs, sce = rows_s[rs], rows_e[rs]
            # committed layers only: the caller began a fresh trial
            # generation, so no tentative interval is live
            t = pfinish
            while True:
                moved = False
                if sce and sce[-1] > t:
                    i = bisect_right(scs, t) - 1
                    if i >= 0 and sce[i] > t:
                        t = sce[i]
                        moved = True
                    i += 1
                    n = len(scs)
                    lim = t + dur
                    while i < n and scs[i] < lim:
                        if sce[i] > t:
                            t = sce[i]
                            lim = t + dur
                            moved = True
                        i += 1
                if rce and rce[-1] > t:
                    i = bisect_right(rcs, t) - 1
                    if i >= 0 and rce[i] > t:
                        t = rce[i]
                        moved = True
                    i += 1
                    n = len(rcs)
                    lim = t + dur
                    while i < n and rcs[i] < lim:
                        if rce[i] > t:
                            t = rce[i]
                            lim = t + dur
                            moved = True
                        i += 1
                if not moved:
                    break
            end = t + dur
            book(rs, t, end)
            book(rr, t, end)
            out.append((e, pproc, t, dur))
            if end > est:
                est = end
        return est

    # ------------------------------------------------------------------
    # array-backend sweep (see FlatBooker docstring)
    #
    # Correctness rests on two facts about trial_est's fixed point:
    #
    # 1. *Three layers suffice.*  Within one candidate trial the
    #    send-tentative windows of a source are a subset of the
    #    recv-tentative windows (every earlier message books both), so
    #    the feasible set of message j is "send-committed row of its
    #    source ∧ recv-committed row of the destination ∧ all earlier
    #    windows of this trial (T)".  Both fixed points compute the
    #    unique least feasible instant >= the seed, so they agree.
    #
    # 2. *The recv row drops out below the window frontier.*  Let t* be
    #    the least feasible instant of message j ignoring the recv
    #    committed row, and wmin the minimum resolved window start over
    #    the whole trial.  If the recv row's last end is <= wmin <= t*,
    #    then [t*, t* + dur) is recv-free and every instant infeasible
    #    without the recv row stays infeasible with it — the constrained
    #    least instant is exactly t*.  A destination whose recv frontier
    #    is at or below wmin (and which hosts no parent, so its message
    #    set is the shared one) therefore has the *identical* ESTs — one
    #    recv-free resolution serves them all.
    #
    # Uniform off-diagonal link rows (_hrow) make message durations
    # destination-independent, which is what makes the shared resolution
    # well-defined; a heterogeneous parent row bails to the scalar path.
    # ------------------------------------------------------------------
    def sweep_est(self, parents, sw) -> bool:
        if self.check_links:
            return False
        b = self.builder
        seeds = self.seed_cache
        row_ver = b.row_ver
        hrow = self._hrow
        edata = self.edata
        rows_s, rows_e = b.rows_s, b.rows_e
        send0 = self.send0
        prep = self._prep
        del prep[:]
        pprocs = self._pprocs
        pprocs.clear()
        zl = 0.0  # max finish over zero-duration messages
        lbm = 0.0  # max (seed + dur) over real messages
        for pfinish, _pi, e, q in parents:
            u = hrow[q]
            if u is None:
                return False
            pprocs.add(q)
            dur = edata[e] * u
            if dur == 0.0:
                prep.append((pfinish, e, q, 0.0, pfinish))
                if pfinish > zl:
                    zl = pfinish
            else:
                rs = send0 + q
                ver = row_ver[rs]
                ent = seeds.get(e)
                if (
                    ent is not None
                    and ent[0] == ver
                    and ent[1] == q
                    and ent[2] == pfinish
                ):
                    if self.stats is not None:
                        self.stats.inc("oneport.seed.hit")
                    seed = ent[3]
                else:
                    if self.stats is not None:
                        self.stats.inc("oneport.seed.miss")
                    seed = row_next_fit(rows_s[rs], rows_e[rs], pfinish, dur)
                    seeds[e] = (ver, q, pfinish, seed)
                prep.append((pfinish, e, q, dur, seed))
                end = seed + dur
                if end > lbm:
                    lbm = end
        self._zl = zl
        self._lbmsg = lbm
        est_gen, events, wmin = self._resolve(-1)
        est_l = sw.est
        status = sw.status
        last_e = b.last_e
        recv0 = self.recv0
        lbg = lbm if lbm > zl else zl
        for r in range(self.num_procs):
            if r in pprocs:
                status[r] = 1
                m = zl
                for pfinish, _e, q, dur, seed in prep:
                    if q == r:
                        if pfinish > m:
                            m = pfinish
                    elif dur != 0.0:
                        end = seed + dur
                        if end > m:
                            m = end
                est_l[r] = m
            elif last_e[recv0 + r] <= wmin:
                status[r] = 2
                est_l[r] = est_gen
            else:
                status[r] = 0
                est_l[r] = lbg
        sw.events = events
        return True

    def sweep_select(
        self, parents, exec_row, order_row, gap_fit, insertion, procs=None
    ):
        """Fused sweep + selection: the minimum-EFT processor in one pass.

        The array state's hot path.  Resolves the candidate's messages
        once (exactly as ``sweep_est`` would), evaluates the parent
        hosts exactly (their ESTs are placement-specific), then walks
        the remaining processors in increasing execution time
        (``order_row``, cached on the statics) under the incumbent
        cutoff: a shared EST plus a growing duration is a finish lower
        bound that only increases along the walk, so the first
        processor whose *generic* lower bound exceeds the incumbent
        finish prunes all that follow.  ``trial_est`` is the fallback
        only when exactness cannot be proven — the same tiers the
        split protocol takes, without the per-processor bound array
        and sort.  ``gap_fit`` finds the compute slot
        (``GapRows.next_fit`` bound method).

        Returns ``(proc, start, finish, events)`` — ``events`` is the
        resolved window list when the winner's EST came from an exact
        resolution (commit can book it directly), else ``None`` — or
        ``None`` to bail to the scalar path (heterogeneous link row).
        The cutoffs are strict and the tie-break total, so the winner is
        the same ``(finish, start, proc)`` lexicographic minimum every
        other path computes, independent of evaluation order.
        """
        if self.check_links:
            return None
        b = self.builder
        seeds = self.seed_cache
        row_ver = b.row_ver
        hrow = self._hrow
        edata = self.edata
        rows_s, rows_e = b.rows_s, b.rows_e
        send0 = self.send0
        prep = self._prep
        del prep[:]
        hosts = self._pprocs
        hosts.clear()
        zl = 0.0  # max finish over zero-duration messages
        lbm = 0.0  # max (seed + dur) over real messages
        for pfinish, _pi, e, q in parents:
            u = hrow[q]
            if u is None:
                return None
            hosts.add(q)
            dur = edata[e] * u
            if dur == 0.0:
                prep.append((pfinish, e, q, 0.0, pfinish))
                if pfinish > zl:
                    zl = pfinish
            else:
                rs = send0 + q
                ver = row_ver[rs]
                ent = seeds.get(e)
                if (
                    ent is not None
                    and ent[0] == ver
                    and ent[1] == q
                    and ent[2] == pfinish
                ):
                    if self.stats is not None:
                        self.stats.inc("oneport.seed.hit")
                    seed = ent[3]
                else:
                    if self.stats is not None:
                        self.stats.inc("oneport.seed.miss")
                    # the gap index serves send rows too (bit-identical
                    # to row_next_fit), so deep seed scans stay cheap
                    seed = gap_fit(rs, pfinish, dur)
                    seeds[e] = (ver, q, pfinish, seed)
                prep.append((pfinish, e, q, dur, seed))
                end = seed + dur
                if end > lbm:
                    lbm = end
        est_gen, events, wmin = self._resolve(-1)
        last_e = b.last_e
        recv0 = self.recv0
        lbg = lbm if lbm > zl else zl
        trial_est = self.trial_est
        resolve = self._resolve
        stats = self.stats
        bf = bs = _INF
        bp = None
        bev = None
        if procs is not None and not isinstance(procs, (set, frozenset)):
            procs = set(procs)
        # parent hosts first: their ESTs skip their own messages, so no
        # shared bound applies — and they seed the cutoff for the walk.
        # Each host's EST is bounded below by its local parents' finishes
        # and the other parents' seeds (seeds are destination-independent
        # under uniform links), so hosts are walked in bound order with
        # the same strict prune as everything else.
        if len(hosts) > 1:
            hb = []
            for q in hosts:
                m = zl
                for pfinish, _e, r2, dur, seed in prep:
                    if r2 == q:
                        if pfinish > m:
                            m = pfinish
                    elif dur != 0.0:
                        end = seed + dur
                        if end > m:
                            m = end
                hb.append((m + exec_row[q], q))
            hb.sort()
        else:
            hb = [(0.0, q) for q in hosts]
        for mlb, proc in hb:
            if procs is not None and proc not in procs:
                continue
            if mlb > bf:
                break  # hosts are in bound order
            duration = exec_row[proc]
            ev = None
            est = -1.0
            if stats is not None:
                stats.inc("builder.candidates")
            e2, ev2, w2 = resolve(proc)
            if last_e[recv0 + proc] <= w2:
                est = e2
                ev = ev2
            if est < 0.0:
                b.gen += 1  # begin_trial
                est = trial_est(parents, proc, bf, duration)
                if est + duration > bf:
                    if stats is not None:
                        stats.inc("builder.prune.abort")
                    continue  # provably worse (possibly aborted)
            ce = rows_e[proc]
            if insertion:
                if not ce or ce[-1] <= est:
                    start = est
                else:
                    start = gap_fit(proc, est, duration)
            else:
                last = ce[-1] if ce else 0.0
                start = est if est >= last else last
            finish = start + duration
            if finish < bf or (
                finish == bf and (start < bs or (start == bs and proc < bp))
            ):
                bf, bs, bp, bev = finish, start, proc, ev
        for i, proc in enumerate(order_row):
            if proc in hosts or (procs is not None and proc not in procs):
                continue
            duration = exec_row[proc]
            if lbg + duration > bf:
                if stats is not None:
                    stats.inc(
                        "builder.prune.maxpf",
                        sum(
                            1
                            for r2 in order_row[i:]
                            if r2 not in hosts
                            and (procs is None or r2 in procs)
                        ),
                    )
                break  # durations only grow from here on
            ev = None
            if last_e[recv0 + proc] <= wmin:
                if est_gen + duration > bf:
                    if stats is not None:
                        stats.inc("builder.prune.maxpf")
                    continue  # exact EST known: provably worse
                if stats is not None:
                    stats.inc("builder.candidates")
                est = est_gen
                ev = events
            else:
                b.gen += 1  # begin_trial
                if stats is not None:
                    stats.inc("builder.candidates")
                est = trial_est(parents, proc, bf, duration)
                if est + duration > bf:
                    if stats is not None:
                        stats.inc("builder.prune.abort")
                    continue  # provably worse (possibly aborted)
            ce = rows_e[proc]
            if insertion:
                if not ce or ce[-1] <= est:
                    start = est
                else:
                    start = gap_fit(proc, est, duration)
            else:
                last = ce[-1] if ce else 0.0
                start = est if est >= last else last
            finish = start + duration
            if finish < bf or (
                finish == bf and (start < bs or (start == bs and proc < bp))
            ):
                bf, bs, bp, bev = finish, start, proc, ev
        return bp, bs, bf, bev

    def resolve_dest(self, proc: int):
        """Exact EST + events for a parent-hosting destination, if provable."""
        est, events, wmin = self._resolve(proc)
        if self.builder.last_e[self.recv0 + proc] <= wmin:
            return est, events
        return None

    def _resolve(self, skip: int):
        """Greedy recv-free resolution of the prepared messages.

        Messages from source ``skip`` are treated as local (their finish
        feeds the EST directly); each remaining real message runs the
        same send-committed ∧ earlier-windows fixed point as trial_est.
        Returns ``(est, events, wmin)`` with ``wmin`` the minimum window
        start (inf when no real message) — the caller's exactness bound.
        """
        prep = self._prep
        b = self.builder
        rows_s, rows_e = b.rows_s, b.rows_e
        send0 = self.send0
        # nothing after the last real message ever reads trial windows
        last_real = -1
        for i in range(len(prep) - 1, -1, -1):
            row = prep[i]
            if row[3] != 0.0 and row[2] != skip:
                last_real = i
                break
        if last_real < 0:
            # no real message: every arrival is its parent's finish
            est = 0.0
            events = []
            for pfinish, e, q, _dur, _seed in prep:
                if q != skip:
                    events.append((e, q, pfinish, 0.0))
                if pfinish > est:
                    est = pfinish
            return est, events, _INF
        T_s, T_e = self._Ts, self._Te
        del T_s[:]
        del T_e[:]
        events: list[tuple] = []
        est = 0.0
        wmin = _INF
        for j, (pfinish, e, q, dur, seed) in enumerate(prep):
            if q == skip:
                if pfinish > est:
                    est = pfinish
                continue
            if dur == 0.0:
                events.append((e, q, pfinish, 0.0))
                if pfinish > est:
                    est = pfinish
                continue
            t = seed
            if not T_s:
                # the seed *is* the send-committed fixed point (cache
                # entries are version-checked), and with no earlier
                # trial windows there is nothing else to sweep
                end = t + dur
                events.append((e, q, t, dur))
                if t < wmin:
                    wmin = t
                if j < last_real:
                    T_s.append(t)
                    T_e.append(end)
                if end > est:
                    est = end
                continue
            scs, sce = rows_s[send0 + q], rows_e[send0 + q]
            si = -1
            while True:
                moved = False
                if sce and sce[-1] > t:
                    if si < 0:
                        si = bisect_right(scs, t) - 1
                        if si >= 0 and sce[si] > t:
                            t = sce[si]
                            moved = True
                        si += 1
                    n = len(scs)
                    lim = t + dur
                    while si < n and scs[si] < lim:
                        if sce[si] > t:
                            t = sce[si]
                            lim = t + dur
                            moved = True
                        si += 1
                if T_e and T_e[-1] > t:
                    yi = bisect_right(T_s, t) - 1
                    if yi >= 0 and T_e[yi] > t:
                        t = T_e[yi]
                        moved = True
                    yi += 1
                    n = len(T_s)
                    lim = t + dur
                    while yi < n and T_s[yi] < lim:
                        if T_e[yi] > t:
                            t = T_e[yi]
                            lim = t + dur
                            moved = True
                        yi += 1
                if not moved:
                    break
            end = t + dur
            events.append((e, q, t, dur))
            if t < wmin:
                wmin = t
            if j < last_real:
                i = bisect_right(T_s, t)
                T_s.insert(i, t)
                T_e.insert(i, end)
            if end > est:
                est = end
        return est, events, wmin

    def commit_resolved(self, events, proc: int) -> None:
        """Commit previously resolved events (same bookings as commit_est).

        Valid under the commit contract: the committed rows are
        unchanged since the resolution, and committing the windows in
        order reproduces exactly the constraint set each window was
        resolved against (earlier windows land on the recv row — below
        the exactness frontier — and on their own send rows).
        """
        b = self.builder
        book = b.book
        send0 = self.send0
        rr = self.recv0 + proc
        for _e, q, t, dur in events:
            if dur != 0.0:
                end = t + dur
                book(send0 + q, t, end)
                book(rr, t, end)


class OnePortTrial(CommTrial):
    """Tentative port bookings over a committed :class:`PortSet`."""

    __slots__ = ("_platform", "_overlay", "_pending")

    def __init__(self, platform: Platform, ports: PortSet) -> None:
        self._platform = platform
        self._overlay = PortSetOverlay(ports)
        self._pending: list[tuple] = []

    def edge_arrival(
        self,
        src_task: TaskId,
        dst_task: TaskId,
        src_proc: int,
        dst_proc: int,
        ready: float,
        data: float,
    ) -> float:
        if src_proc == dst_proc:
            return ready
        duration = self._platform.comm_time(data, src_proc, dst_proc)
        start = self._overlay.earliest_transfer(src_proc, dst_proc, ready, duration)
        self._overlay.reserve_transfer(
            src_proc, dst_proc, start, duration, tag=(src_task, dst_task)
        )
        self._pending.append(
            (src_task, dst_task, src_proc, dst_proc, start, duration, data)
        )
        return start + duration

    def commit(self, schedule: Schedule) -> None:
        self._overlay.commit()
        for src_task, dst_task, q, r, start, duration, data in self._pending:
            schedule.record_comm(src_task, dst_task, q, r, start, duration, data)
        self._pending.clear()


class OnePortState(CommState):
    """Committed send/receive port timelines for one scheduling run."""

    __slots__ = ("_platform", "ports")

    def __init__(self, platform: Platform, ports: PortSet | None = None) -> None:
        self._platform = platform
        self.ports = ports if ports is not None else PortSet(platform.num_processors)

    def trial(self) -> OnePortTrial:
        return OnePortTrial(self._platform, self.ports)

    def copy(self) -> "OnePortState":
        return OnePortState(self._platform, self.ports.copy())


@register_model("one-port")
class OnePortModel(CommunicationModel):
    """Factory for bi-directional one-port communication states."""

    name = ONE_PORT
    supports_flat = True

    def new_state(self) -> OnePortState:
        return OnePortState(self.platform)

    def flat_booker(self, builder, statics) -> OnePortFlatBooker:
        return OnePortFlatBooker(builder, statics)
