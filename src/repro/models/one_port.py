"""The bi-directional one-port model (the paper's contribution, §2.3).

At any instant a processor sends to at most one processor and receives
from at most one processor; sending and receiving may overlap each other
and overlap computation.  Messages between disjoint sender/receiver
pairs proceed in parallel — the model of a switched network (Myrinet-
style permutation switches) or a multiplexed bus.

A transfer ``q -> r`` of ``data`` items books the window
``[start, start + data * link(q, r))`` on *both* ``q``'s send port and
``r``'s receive port, where ``start`` is the earliest instant at or
after the source task's completion at which that window is free on both
ports — the greedy "as early as possible" rule of Section 4.3.
"""

from __future__ import annotations

from collections.abc import Hashable

from ..core.platform import Platform
from ..core.ports import PortSet, PortSetOverlay
from ..core.schedule import Schedule
from ..core.validation import ONE_PORT
from .base import CommState, CommTrial, CommunicationModel

TaskId = Hashable


class OnePortTrial(CommTrial):
    """Tentative port bookings over a committed :class:`PortSet`."""

    __slots__ = ("_platform", "_overlay", "_pending")

    def __init__(self, platform: Platform, ports: PortSet) -> None:
        self._platform = platform
        self._overlay = PortSetOverlay(ports)
        self._pending: list[tuple] = []

    def edge_arrival(
        self,
        src_task: TaskId,
        dst_task: TaskId,
        src_proc: int,
        dst_proc: int,
        ready: float,
        data: float,
    ) -> float:
        if src_proc == dst_proc:
            return ready
        duration = self._platform.comm_time(data, src_proc, dst_proc)
        start = self._overlay.earliest_transfer(src_proc, dst_proc, ready, duration)
        self._overlay.reserve_transfer(
            src_proc, dst_proc, start, duration, tag=(src_task, dst_task)
        )
        self._pending.append(
            (src_task, dst_task, src_proc, dst_proc, start, duration, data)
        )
        return start + duration

    def commit(self, schedule: Schedule) -> None:
        self._overlay.commit()
        for src_task, dst_task, q, r, start, duration, data in self._pending:
            schedule.record_comm(src_task, dst_task, q, r, start, duration, data)
        self._pending.clear()


class OnePortState(CommState):
    """Committed send/receive port timelines for one scheduling run."""

    __slots__ = ("_platform", "ports")

    def __init__(self, platform: Platform, ports: PortSet | None = None) -> None:
        self._platform = platform
        self.ports = ports if ports is not None else PortSet(platform.num_processors)

    def trial(self) -> OnePortTrial:
        return OnePortTrial(self._platform, self.ports)

    def copy(self) -> "OnePortState":
        return OnePortState(self._platform, self.ports.copy())


class OnePortModel(CommunicationModel):
    """Factory for bi-directional one-port communication states."""

    name = ONE_PORT

    def new_state(self) -> OnePortState:
        return OnePortState(self.platform)
