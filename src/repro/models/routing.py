"""One-port scheduling over sparse topologies with static routing.

Section 4.3 of the paper notes that the model "can easily be extended to
the case where the interconnection network is such that messages must be
routed between some processor pairs: if there is no direct link from P2
to P1, we redo the previous step for all intermediate messages between
adjacent processors."  This module implements exactly that extension:

* the platform's link matrix may contain ``inf`` for missing links;
* a static routing table is precomputed (shortest paths by link cost,
  ties broken deterministically), matching the fully static routing of
  the related work by Sinnen & Sousa;
* a logical transfer becomes a chain of store-and-forward hops, each
  individually subject to the one-port rule on its own endpoints, and
  each hop leaving no earlier than the previous hop's arrival.

Intermediate processors relay with their ports only — relaying does not
occupy their compute timeline (communication/computation overlap).
"""

from __future__ import annotations

import math
from collections.abc import Hashable

import networkx as nx

from ..core.exceptions import PlatformError
from ..core.platform import Platform
from ..core.ports import PortSet, PortSetOverlay
from ..core.schedule import Schedule
from ..core.validation import ONE_PORT
from .base import CommState, CommTrial, CommunicationModel, register_model

TaskId = Hashable


def build_routing_table(platform: Platform) -> dict[tuple[int, int], list[int]]:
    """Static routes between every ordered processor pair.

    Each route is the node sequence ``[src, ..., dst]`` of a minimum
    total-link-cost path (hop count breaks ties, then lexicographic node
    order, so routes are deterministic).  Raises
    :class:`~repro.core.exceptions.PlatformError` if some pair is
    unreachable.
    """
    g = nx.DiGraph()
    g.add_nodes_from(platform.processors)
    for q in platform.processors:
        for r in platform.processors:
            if q != r and math.isfinite(platform.link_matrix[q, r]):
                g.add_edge(q, r, cost=float(platform.link_matrix[q, r]))

    table: dict[tuple[int, int], list[int]] = {}
    for src in platform.processors:
        # Dijkstra with deterministic tie-breaking on (cost, hops, path).
        paths: dict[int, tuple[float, int, list[int]]] = {src: (0.0, 0, [src])}
        frontier = [(0.0, 0, [src], src)]
        import heapq

        while frontier:
            cost, hops, path, node = heapq.heappop(frontier)
            if paths.get(node, (math.inf,))[0] < cost:
                continue
            for nxt in sorted(g.successors(node)):
                ncost = cost + g.edges[node, nxt]["cost"]
                cand = (ncost, hops + 1, path + [nxt])
                if nxt not in paths or cand < paths[nxt]:
                    paths[nxt] = cand
                    heapq.heappush(frontier, (*cand, nxt))
        for dst in platform.processors:
            if dst == src:
                table[(src, dst)] = [src]
            elif dst in paths:
                table[(src, dst)] = paths[dst][2]
            else:
                raise PlatformError(f"no route from P{src} to P{dst}")
    return table


class RoutedOnePortTrial(CommTrial):
    """Tentative multi-hop bookings over a committed :class:`PortSet`."""

    __slots__ = ("_platform", "_routes", "_overlay", "_pending")

    def __init__(
        self,
        platform: Platform,
        routes: dict[tuple[int, int], list[int]],
        ports: PortSet,
    ) -> None:
        self._platform = platform
        self._routes = routes
        self._overlay = PortSetOverlay(ports)
        self._pending: list[tuple] = []

    def edge_arrival(
        self,
        src_task: TaskId,
        dst_task: TaskId,
        src_proc: int,
        dst_proc: int,
        ready: float,
        data: float,
    ) -> float:
        if src_proc == dst_proc:
            return ready
        route = self._routes[(src_proc, dst_proc)]
        t = ready
        for hop, (a, b) in enumerate(zip(route, route[1:])):
            duration = self._platform.comm_time(data, a, b)
            start = self._overlay.earliest_transfer(a, b, t, duration)
            self._overlay.reserve_transfer(a, b, start, duration, tag=(src_task, dst_task, hop))
            self._pending.append((src_task, dst_task, a, b, start, duration, data, hop))
            t = start + duration
        return t

    def commit(self, schedule: Schedule) -> None:
        self._overlay.commit()
        for src_task, dst_task, a, b, start, duration, data, hop in self._pending:
            schedule.record_comm(src_task, dst_task, a, b, start, duration, data, hop)
        self._pending.clear()


class RoutedOnePortState(CommState):
    __slots__ = ("_platform", "_routes", "ports")

    def __init__(
        self,
        platform: Platform,
        routes: dict[tuple[int, int], list[int]],
        ports: PortSet | None = None,
    ) -> None:
        self._platform = platform
        self._routes = routes
        self.ports = ports if ports is not None else PortSet(platform.num_processors)

    def trial(self) -> RoutedOnePortTrial:
        return RoutedOnePortTrial(self._platform, self._routes, self.ports)

    def copy(self) -> "RoutedOnePortState":
        return RoutedOnePortState(self._platform, self._routes, self.ports.copy())


@register_model("routed")
class RoutedOnePortModel(CommunicationModel):
    """One-port model over an arbitrary (connected) topology.

    Multi-hop chains have no flat booker (``supports_flat`` stays
    False), so heuristics run this model through the retained object
    path — mirroring how :func:`repro.simulate.replay` falls back for
    multi-hop decision sets.
    """

    name = ONE_PORT

    def __init__(self, platform: Platform) -> None:
        super().__init__(platform)
        self.routes = build_routing_table(platform)

    def new_state(self) -> RoutedOnePortState:
        return RoutedOnePortState(self.platform, self.routes)
