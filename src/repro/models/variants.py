"""The Section 2.3 model variants the paper names but does not evaluate.

"Several variants could be considered: no communication/computation
overlap, uni-directional communications, or even a combination of both
restrictions.  But the bi-directional one-port model seems closer to the
actual capabilities of modern processors."

Implemented here so the claim can be *measured* (see
``benchmarks/bench_ablation_models.py``):

* :class:`UniPortModel` — uni-directional one-port: each processor has a
  single port used for both sending and receiving, so it cannot send and
  receive simultaneously.  A transfer books the same window on the
  sender's port and the receiver's port.
* :class:`NoOverlapOnePortModel` — bi-directional ports, but no
  communication/computation overlap: a transfer also occupies both
  endpoint processors' *compute* timelines (the CPU drives the
  transfer), so computation stalls during sends and receives.

Both strictly restrict the bi-directional one-port model, so makespans
can only grow; the benchmark quantifies by how much on the paper's
testbeds.

Validation: both variants emit ordinary one-port schedules (every
one-port rule still holds), plus extra structure checked by
:func:`validate_uni_port` / :func:`validate_no_overlap`.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Sequence

from ..core.exceptions import PlatformError, ValidationError
from ..core.schedule import Schedule
from ..core.timeline import Timeline, TimelineOverlay, earliest_joint_fit
from ..core.tolerance import time_tol
from ..core.validation import ONE_PORT, validate_schedule
from .base import (
    CommState,
    CommTrial,
    CommunicationModel,
    FlatBooker,
    register_model,
)

_INF = float("inf")

TaskId = Hashable


class _JointRowsFlatBooker(FlatBooker):
    """Shared flat booking: one joint window over a per-edge row set.

    Subclasses define :meth:`_rows` — the builder rows a transfer
    ``q -> r`` must occupy simultaneously.  The booking itself is the
    same greedy rule as one-port: the earliest window at or after the
    source finish free on *all* rows at once, booked on each.
    """

    __slots__ = ("builder", "edata", "links", "check_links")

    def __init__(self, builder, statics) -> None:
        self.builder = builder
        self.edata = statics.edata
        self.links = statics.link_rows
        self.check_links = not statics.all_links_finite

    def rebind(self, builder):
        # explicit field-by-field copy (subclasses append their row
        # bases via _rebind_extra): any future mutable builder-derived
        # state must be reset here, not silently shared
        dup = object.__new__(type(self))
        dup.builder = builder
        dup.edata = self.edata
        dup.links = self.links
        dup.check_links = self.check_links
        self._rebind_extra(dup)
        return dup

    def _rebind_extra(self, dup) -> None:
        raise NotImplementedError

    def _rows(self, q: int, r: int) -> tuple[int, ...]:
        raise NotImplementedError

    def _cost(self, q: int, r: int) -> float:
        cost = self.links[q][r]
        if self.check_links and not math.isfinite(cost):
            raise PlatformError(f"no direct link from P{q} to P{r}")
        return cost

    def trial_est(self, parents, proc: int, cutoff: float = _INF, duration: float = 0.0) -> float:
        b = self.builder
        edata = self.edata
        est = 0.0
        for pfinish, _pi, e, pproc in parents:
            if pproc == proc:
                arr = pfinish
            else:
                dur = edata[e] * self._cost(pproc, proc)
                if dur == 0.0:
                    arr = pfinish
                else:
                    rows = self._rows(pproc, proc)
                    start = b.joint_next_fit(rows, pfinish, dur)
                    end = start + dur
                    for r in rows:
                        b.book_tentative(r, start, end)
                    arr = end
            if arr > est:
                est = arr
        return est

    def commit_est(self, parents, proc: int, out: list) -> float:
        b = self.builder
        edata = self.edata
        est = 0.0
        for pfinish, _pi, e, pproc in parents:
            if pproc == proc:
                arr = pfinish
            else:
                dur = edata[e] * self._cost(pproc, proc)
                if dur == 0.0:
                    out.append((e, pproc, pfinish, 0.0))
                    arr = pfinish
                else:
                    rows = self._rows(pproc, proc)
                    start = b.joint_next_fit(rows, pfinish, dur)
                    end = start + dur
                    for r in rows:
                        b.book(r, start, end)
                    out.append((e, pproc, start, dur))
                    arr = end
            if arr > est:
                est = arr
        return est


class UniPortFlatBooker(_JointRowsFlatBooker):
    """One shared send+receive port row per processor."""

    __slots__ = ("port0",)

    def __init__(self, builder, statics) -> None:
        super().__init__(builder, statics)
        self.port0 = builder.new_rows(statics.num_procs)

    def _rebind_extra(self, dup) -> None:
        dup.port0 = self.port0

    def _rows(self, q: int, r: int) -> tuple[int, int]:
        return (self.port0 + q, self.port0 + r)


class NoOverlapFlatBooker(_JointRowsFlatBooker):
    """Send/recv ports plus both endpoints' compute rows (CPU-driven IO).

    The compute rows are the builder's own rows ``0 .. p-1`` — the same
    rows task executions occupy — so a transfer excludes computation on
    its endpoints exactly as the object path's bound compute timelines.
    """

    __slots__ = ("send0", "recv0")

    def __init__(self, builder, statics) -> None:
        super().__init__(builder, statics)
        self.send0 = builder.new_rows(statics.num_procs)
        self.recv0 = builder.new_rows(statics.num_procs)

    def _rebind_extra(self, dup) -> None:
        dup.send0 = self.send0
        dup.recv0 = self.recv0

    def _rows(self, q: int, r: int) -> tuple[int, int, int, int]:
        return (self.send0 + q, self.recv0 + r, q, r)


class _SinglePortSet:
    """One shared send+receive port timeline per processor."""

    __slots__ = ("port",)

    def __init__(self, num_processors: int) -> None:
        self.port = [Timeline() for _ in range(num_processors)]

    def copy(self) -> "_SinglePortSet":
        dup = _SinglePortSet(len(self.port))
        dup.port = [t.copy() for t in self.port]
        return dup


class UniPortTrial(CommTrial):
    __slots__ = ("_platform", "_ports", "_overlays", "_pending")

    def __init__(self, platform, ports: _SinglePortSet) -> None:
        self._platform = platform
        self._ports = ports
        self._overlays: dict[int, TimelineOverlay] = {}
        self._pending: list[tuple] = []

    def _view(self, proc: int) -> TimelineOverlay:
        view = self._overlays.get(proc)
        if view is None:
            view = self._overlays[proc] = TimelineOverlay(self._ports.port[proc])
        return view

    def edge_arrival(self, src_task, dst_task, src_proc, dst_proc, ready, data):
        if src_proc == dst_proc:
            return ready
        duration = self._platform.comm_time(data, src_proc, dst_proc)
        views = [self._view(src_proc), self._view(dst_proc)]
        start = earliest_joint_fit(views, ready, duration)
        tag = (src_task, dst_task)
        for view in views:
            view.reserve(start, start + duration, tag)
        self._pending.append((src_task, dst_task, src_proc, dst_proc, start, duration, data))
        return start + duration

    def commit(self, schedule: Schedule) -> None:
        for view in self._overlays.values():
            view.commit()
        self._overlays.clear()
        for src_task, dst_task, q, r, start, duration, data in self._pending:
            schedule.record_comm(src_task, dst_task, q, r, start, duration, data)
        self._pending.clear()


class UniPortState(CommState):
    __slots__ = ("_platform", "ports")

    def __init__(self, platform, ports: _SinglePortSet | None = None) -> None:
        self._platform = platform
        self.ports = ports if ports is not None else _SinglePortSet(platform.num_processors)

    def trial(self) -> UniPortTrial:
        return UniPortTrial(self._platform, self.ports)

    def copy(self) -> "UniPortState":
        return UniPortState(self._platform, self.ports.copy())


@register_model("uni-port")
class UniPortModel(CommunicationModel):
    """Uni-directional one-port: one shared port per processor."""

    name = ONE_PORT  # schedules satisfy (and exceed) the one-port rules
    supports_flat = True

    def new_state(self) -> UniPortState:
        return UniPortState(self.platform)

    def flat_booker(self, builder, statics) -> UniPortFlatBooker:
        return UniPortFlatBooker(builder, statics)


class NoOverlapTrial(CommTrial):
    """Bi-directional ports + compute stalls during transfers.

    The compute timelines are the scheduler's own (bound through
    :meth:`NoOverlapOnePortModel.bind_compute`), overlaid tentatively
    like the ports, so a transfer excludes computation on both endpoint
    processors for its duration.
    """

    __slots__ = ("_platform", "_state", "_overlays", "_pending")

    def __init__(self, platform, state: "NoOverlapState") -> None:
        self._platform = platform
        self._state = state
        self._overlays: dict[tuple[str, int], TimelineOverlay] = {}
        self._pending: list[tuple] = []

    def _view(self, kind: str, proc: int) -> TimelineOverlay:
        key = (kind, proc)
        view = self._overlays.get(key)
        if view is None:
            if kind == "send":
                base = self._state.send[proc]
            elif kind == "recv":
                base = self._state.recv[proc]
            else:
                base = self._state.compute[proc]
            view = self._overlays[key] = TimelineOverlay(base)
        return view

    def edge_arrival(self, src_task, dst_task, src_proc, dst_proc, ready, data):
        if src_proc == dst_proc:
            return ready
        duration = self._platform.comm_time(data, src_proc, dst_proc)
        views = [
            self._view("send", src_proc),
            self._view("recv", dst_proc),
            self._view("compute", src_proc),
            self._view("compute", dst_proc),
        ]
        start = earliest_joint_fit(views, ready, duration)
        tag = (src_task, dst_task)
        for view in views:
            view.reserve(start, start + duration, tag)
        self._pending.append((src_task, dst_task, src_proc, dst_proc, start, duration, data))
        return start + duration

    def commit(self, schedule: Schedule) -> None:
        for view in self._overlays.values():
            view.commit()
        self._overlays.clear()
        for src_task, dst_task, q, r, start, duration, data in self._pending:
            schedule.record_comm(src_task, dst_task, q, r, start, duration, data)
        self._pending.clear()


class NoOverlapState(CommState):
    __slots__ = ("_platform", "send", "recv", "compute")

    def __init__(self, platform, compute: Sequence[Timeline]) -> None:
        self._platform = platform
        self.send = [Timeline() for _ in platform.processors]
        self.recv = [Timeline() for _ in platform.processors]
        self.compute = list(compute)

    def trial(self) -> NoOverlapTrial:
        return NoOverlapTrial(self._platform, self)

    def copy(self) -> "NoOverlapState":
        # compute timelines are owned by the scheduler state, which
        # copies them itself on snapshot; here we share references and
        # copy only the ports.  Chunk-rescheduling variants therefore
        # rebuild the state from the snapshot's compute timelines.
        dup = NoOverlapState.__new__(NoOverlapState)
        dup._platform = self._platform
        dup.send = [t.copy() for t in self.send]
        dup.recv = [t.copy() for t in self.recv]
        dup.compute = self.compute
        return dup


@register_model("no-overlap")
class NoOverlapOnePortModel(CommunicationModel):
    """One-port without communication/computation overlap.

    On the object path the scheduler's compute timelines must be bound
    before trials are created;
    :class:`~repro.heuristics.state_object.ObjectSchedulerState` does
    this automatically when the model exposes ``wants_compute``.  The
    flat path needs no binding — the booker occupies the builder's own
    compute rows.
    """

    name = ONE_PORT
    wants_compute = True
    supports_flat = True

    def flat_booker(self, builder, statics) -> NoOverlapFlatBooker:
        return NoOverlapFlatBooker(builder, statics)

    def __init__(self, platform) -> None:
        super().__init__(platform)
        self._compute: Sequence[Timeline] | None = None

    def bind_compute(self, compute: Sequence[Timeline]) -> None:
        self._compute = compute

    def new_state(self) -> NoOverlapState:
        if self._compute is None:
            raise ValidationError(
                "NoOverlapOnePortModel needs bind_compute(...) before use"
            )
        return NoOverlapState(self.platform, self._compute)


def validate_uni_port(schedule: Schedule) -> None:
    """One-port rules plus: per processor, *all* port events disjoint."""
    validate_schedule(schedule, model=ONE_PORT)
    by_proc: dict[int, list] = {}
    for e in schedule.comm_events:
        by_proc.setdefault(e.src_proc, []).append(e)
        by_proc.setdefault(e.dst_proc, []).append(e)
    for proc, events in by_proc.items():
        events.sort(key=lambda e: (e.start, e.finish))
        for a, b in zip(events, events[1:]):
            if a.finish > b.start + time_tol(a.finish, b.start):
                raise ValidationError(
                    f"uni-port violation on P{proc}: {a} overlaps {b}"
                )


def validate_no_overlap(schedule: Schedule) -> None:
    """One-port rules plus: no transfer overlaps computation on its
    endpoint processors."""
    validate_schedule(schedule, model=ONE_PORT)
    for e in schedule.comm_events:
        for proc in (e.src_proc, e.dst_proc):
            for p in schedule.tasks_on(proc):
                if (
                    e.start < p.finish - time_tol(e.start, p.finish)
                    and p.start < e.finish - time_tol(p.start, e.finish)
                ):
                    raise ValidationError(
                        f"no-overlap violation on P{proc}: transfer "
                        f"{e.src_task!r}->{e.dst_task!r} [{e.start}, {e.finish}) "
                        f"overlaps task {p.task!r} [{p.start}, {p.finish})"
                    )
