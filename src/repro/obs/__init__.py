"""Observability: process-local metrics, phase spans, and trace export.

The stack schedules hundreds of thousands of candidate probes per
second; ``repro.obs`` makes those hot paths visible without slowing
them down.  A :class:`~repro.obs.registry.Stats` collector gathers
counters, timers, gauges, and wall-clock phase spans; the active
collector is scoped through a :mod:`contextvars` variable so nested
runs (a campaign cell inside a campaign, a search inside a bench) do
not bleed into each other.  When no collector is active every
instrumented object holds ``None`` in its stats slot, so hot loops pay
roughly one attribute load plus an ``is not None`` check.

Usage::

    from repro import obs

    with obs.collect() as stats:
        scheduler.run(graph, platform, "one-port")
    print(stats.table())

:mod:`repro.obs.trace` exports Chrome ``trace_event`` JSON (openable
at https://ui.perfetto.dev) in four views: any :class:`Schedule` as
processor/port tracks, an online-engine run as an activity/transfer
timeline with utilization counters, the wall-clock phase spans the
collector recorded around scheduler construction, and a whole
distributed campaign reconstructed from its event journal.

:mod:`repro.obs.journal` is the durable half: an append-only JSONL
event journal the campaign parent and every spool worker write into
(atomic ``O_APPEND`` records, torn tails healed), consumed by
:func:`~repro.obs.trace.campaign_trace`, the metrics exporters in
:mod:`repro.obs.export` (``repro obs export`` — Prometheus text or
JSON), and the live ``repro campaign status --spool-dir --watch``
dashboard.

Metrics-naming convention
-------------------------
Metric names are dotted ``layer.noun[.reason]`` paths, lowercase, with
the unit implied by the layer's catalog entry (see
:data:`repro.obs.registry.CATALOG`):

* ``builder.*``  — flat-kernel construction (counts per run),
  e.g. ``builder.prune.maxpf`` / ``builder.prune.frontier`` /
  ``builder.prune.abort`` for the three EFT prune reasons.
* ``oneport.*``  — one-port booker internals (seed-memo hits/misses).
* ``gap.*``      — numpy gap-index behaviour (block hits, scalar
  fallbacks, resyncs, debt-gate flushes).
* ``search.*``   — local-search moves (previewed / committed /
  sideways / kicked) and patched-node totals.
* ``online.*``   — engine events by type, replans, port waits.
* ``campaign.*`` — per-cell wall time, cache hits, worker occupancy.
* ``phase.*``    — wall-clock timers around construction phases
  (statics build, ranking, candidate sweeps, booking, propagation).

Counters are monotonically increasing integers, timers accumulate
``(calls, seconds)``, gauges record last-written floats.  New metrics
must be registered in :data:`~repro.obs.registry.CATALOG` so
``repro info --json`` and the README catalog stay discoverable.
"""

from .export import journal_summary, prometheus_text
from .journal import (
    JOURNAL_FILENAME,
    JOURNAL_SCHEMA_VERSION,
    Journal,
    journal_path,
    read_journal,
)
from .log import ENV_VAR as LOG_ENV_VAR
from .log import configure_logging, get_logger
from .registry import (
    CATALOG,
    Stats,
    collect,
    current,
    enabled,
    metric_names,
    span,
    stage_detail,
    stage_detail_scope,
)
from .trace import (
    campaign_trace,
    online_trace,
    phase_events,
    schedule_trace,
    validate_trace,
    write_trace,
)

__all__ = [
    "CATALOG",
    "JOURNAL_FILENAME",
    "JOURNAL_SCHEMA_VERSION",
    "Journal",
    "LOG_ENV_VAR",
    "Stats",
    "campaign_trace",
    "collect",
    "configure_logging",
    "current",
    "enabled",
    "get_logger",
    "journal_path",
    "journal_summary",
    "metric_names",
    "online_trace",
    "phase_events",
    "prometheus_text",
    "read_journal",
    "schedule_trace",
    "span",
    "stage_detail",
    "stage_detail_scope",
    "validate_trace",
    "write_trace",
]
