"""Metrics export: journal folding and Prometheus text exposition.

Two consumers of the measurement layer live here:

* :func:`journal_summary` folds a campaign journal
  (:mod:`repro.obs.journal`) into one merged
  :class:`~repro.obs.registry.Stats` payload plus campaign progress —
  preferring the authoritative ``campaign_end`` payload, then the last
  rolling ``snapshot``, then reconstructing from per-cell ``completed``
  payloads (a crashed parent still exports what its workers measured).
* :func:`prometheus_text` renders a stats payload in the Prometheus
  text exposition format (``repro_`` prefix, dots to underscores,
  counters as ``_total``, timers as ``_seconds_total`` +
  ``_calls_total``, ``HELP``/``TYPE`` lines from the
  :data:`~repro.obs.registry.CATALOG`), which is what the future
  serving tier scrapes.

The CLI front end is ``repro obs export``.
"""

from __future__ import annotations

import re

from .journal import read_journal
from .registry import CATALOG, Stats

#: Prefix of every exported Prometheus metric.
PROM_PREFIX = "repro_"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return PROM_PREFIX + _NAME_RE.sub("_", name)


def _prom_value(value) -> str:
    return repr(float(value)) if isinstance(value, float) else str(value)


def prometheus_text(stats: Stats | dict) -> str:
    """Render a collector (or its payload dict) as Prometheus text.

    Counters become ``repro_<name>_total``, timers become
    ``repro_<name>_seconds_total`` + ``repro_<name>_calls_total``,
    gauges keep their name; every metric gets ``# HELP`` / ``# TYPE``
    lines from the catalog.  Spans are a trace concern and are not
    exported.
    """
    if isinstance(stats, dict):
        merged = Stats()
        merged.merge(stats)
        stats = merged
    lines: list[str] = []

    def emit(metric: str, kind: str, desc: str, value) -> None:
        lines.append(f"# HELP {metric} {desc}")
        lines.append(f"# TYPE {metric} {kind}")
        lines.append(f"{metric} {_prom_value(value)}")

    for name in sorted(stats.counters):
        _, desc = CATALOG.get(name, ("count", ""))
        emit(_prom_name(name) + "_total", "counter", desc or name,
             stats.counters[name])
    for name in sorted(stats.timers):
        calls, seconds = stats.timers[name]
        _, desc = CATALOG.get(name, ("seconds", ""))
        base = _prom_name(name)
        emit(base + "_seconds_total", "counter", desc or name, float(seconds))
        emit(base + "_calls_total", "counter", f"calls of {name}", int(calls))
    for name in sorted(stats.gauges):
        _, desc = CATALOG.get(name, ("gauge", ""))
        emit(_prom_name(name), "gauge", desc or name, stats.gauges[name])
    return "\n".join(lines) + "\n" if lines else ""


def journal_summary(records: list[dict] | str) -> dict:
    """Fold journal records into merged stats + campaign progress.

    Accepts a record list (from :func:`~repro.obs.journal.read_journal`)
    or a journal/spool path.  Cell-progress sets are reconstructed from
    the lifecycle events; the merged stats payload additionally carries
    the ``journal.*`` progress gauges so a Prometheus export of a
    half-finished campaign publishes live utilization.
    """
    if not isinstance(records, list):
        records = read_journal(records)
    lifecycle: dict[str, int] = {}
    workers: set[str] = set()
    queued: set[str] = set()
    running: set[str] = set()
    done: set[str] = set()
    failed: set[str] = set()
    cell_payloads: list[dict] = []
    end_payload = snap_payload = None
    name = None
    state = "idle"
    first = last = None
    for rec in records:
        ev = rec.get("ev")
        if not isinstance(ev, str):
            continue
        lifecycle[ev] = lifecycle.get(ev, 0) + 1
        wall = rec.get("wall")
        if isinstance(wall, (int, float)):
            first = wall if first is None else min(first, wall)
            last = wall if last is None else max(last, wall)
        key = rec.get("key")
        worker = rec.get("worker")
        if ev == "campaign_start":
            name = rec.get("name", name)
            state = "running"
        elif ev == "campaign_end":
            state = "finished"
            if isinstance(rec.get("stats"), dict):
                end_payload = rec["stats"]
        elif ev == "snapshot":
            if isinstance(rec.get("stats"), dict):
                snap_payload = rec["stats"]
        elif ev == "published":
            queued.add(key)
        elif ev == "claimed":
            workers.add(worker)
            queued.discard(key)
            running.add(key)
        elif ev == "completed":
            workers.add(worker)
            queued.discard(key)
            running.discard(key)
            done.add(key)
            if "error" in rec:
                failed.add(key)
            if isinstance(rec.get("stats"), dict):
                cell_payloads.append(rec["stats"])
        elif ev in ("settled", "cached"):
            queued.discard(key)
            running.discard(key)
            done.add(key)
        elif ev == "expired":
            running.discard(key)
            queued.add(key)
        elif ev in ("heartbeat", "worker_start", "worker_exit"):
            workers.add(worker)
    stats = Stats()
    if end_payload is not None:
        stats.merge(end_payload)
    elif snap_payload is not None:
        stats.merge(snap_payload)
    else:
        for payload in cell_payloads:
            stats.merge(payload)
    workers.discard(None)
    workers.discard("parent")
    stats.gauge("journal.cells.queued", len(queued))
    stats.gauge("journal.cells.running", len(running))
    stats.gauge("journal.cells.done", len(done))
    stats.gauge("journal.cells.failed", len(failed))
    stats.gauge("journal.workers", len(workers))
    return {
        "campaign": name,
        "state": state,
        "records": sum(lifecycle.values()),
        "lifecycle": dict(sorted(lifecycle.items())),
        "workers": sorted(workers),
        "cells": {
            "queued": len(queued),
            "running": len(running),
            "done": len(done),
            "failed": len(failed),
        },
        "first_wall": first,
        "last_wall": last,
        "elapsed_s": (last - first) if first is not None and last is not None else 0.0,
        "stats": stats.payload(),
    }
