"""Durable append-only event journal for distributed campaigns.

A journal is a JSONL file every participant of a campaign — the parent
and each spool worker, on any host sharing the directory — appends
structured events to.  Durability follows the result cache's
discipline: each record is one atomic ``O_APPEND`` ``os.write`` (so
concurrent writers interleave whole lines, never bytes), a crash mid-
write leaves at most one torn tail line which readers skip, and a
writer that opens a file with a torn tail heals it by prefixing its
first record with a newline.

Every record is self-identifying::

    {"v": 1, "ev": "claimed", "worker": "host-123", "host": "host",
     "pid": 123, "wall": 1699.5, "mono": 88.2, ...event fields...}

``wall`` is ``time.time()`` (comparable across processes on one host,
approximately across NTP-synced hosts); ``mono`` is ``time.monotonic()``
(durations within one process only).  Event vocabulary (see
:mod:`repro.campaign`): ``published`` / ``claimed`` / ``heartbeat`` /
``completed`` (spool cell lifecycle), ``expired`` / ``retried``
(parent-side lease recovery), ``worker_start`` / ``worker_exit``,
``campaign_start`` / ``cached`` / ``settled`` / ``snapshot`` /
``campaign_end`` (runner lifecycle).

The journal is **decision-neutral**: nothing reads it on the scheduling
path, so schedules and cache keys are bit-identical with it on or off
(enforced by test).  Consumers live in :mod:`repro.obs.export`
(metrics), :func:`repro.obs.trace.campaign_trace` (Perfetto timeline),
and :mod:`repro.campaign.dashboard` (``campaign status --watch``).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path

from .registry import current as _current

JOURNAL_SCHEMA_VERSION = 1

#: Journal filename inside a spool directory.
JOURNAL_FILENAME = "journal.jsonl"

#: Default ``worker`` identity for records written by the campaign
#: parent (executors, triage, runner) rather than a spool worker.
PARENT = "parent"


def _hostname() -> str:
    return "".join(
        ch if ch.isalnum() or ch in "._-" else "-" for ch in socket.gethostname()
    )


class Journal:
    """Append-only event writer over one JSONL file.

    Opens lazily on the first :meth:`emit` (constructing a journal for
    a spool that never runs costs nothing), keeps an unbuffered
    ``O_APPEND`` descriptor, and is safe to share across threads (the
    worker's heartbeat thread and its main loop write concurrently).
    """

    def __init__(self, path: str | Path, worker: str = PARENT) -> None:
        self.path = Path(path)
        self.worker = worker
        self._fd: int | None = None
        self._needs_newline = False
        self._lock = threading.Lock()

    def _open(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                with self.path.open("rb") as fh:
                    fh.seek(0, os.SEEK_END)
                    if fh.tell() > 0:
                        fh.seek(-1, os.SEEK_END)
                        # heal a torn tail left by a crashed writer
                        self._needs_newline = fh.read(1) != b"\n"
            except OSError:
                pass
            self._fd = os.open(
                self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
            )
        return self._fd

    def emit(self, event: str, **fields) -> dict:
        """Append one event record; returns the record written.

        Identity stamps (``worker``/``host``/``pid``/``wall``/``mono``)
        are filled in automatically; explicit keyword fields override
        them (spool methods pass the claiming worker's id).
        """
        record = {
            "v": JOURNAL_SCHEMA_VERSION,
            "ev": event,
            "worker": self.worker,
            "host": _hostname(),
            "pid": os.getpid(),
            "wall": time.time(),
            "mono": time.monotonic(),
        }
        record.update(fields)
        data = (json.dumps(record, sort_keys=True, default=str) + "\n").encode()
        with self._lock:
            fd = self._open()
            if self._needs_newline:
                data = b"\n" + data
                self._needs_newline = False
            os.write(fd, data)
        stats = _current()
        if stats is not None:
            stats.inc("journal.events")
        return record

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> Journal:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Journal({str(self.path)!r}, worker={self.worker!r})"


def journal_path(root: str | Path) -> Path:
    """The journal file of a spool directory (or a file path as-is)."""
    root = Path(root)
    return root / JOURNAL_FILENAME if root.is_dir() else root


def read_journal(path: str | Path) -> list[dict]:
    """Parse every complete record of a journal file (or spool dir).

    Torn tails and malformed lines — crashed writers — are skipped,
    mirroring the result cache's reader.  A missing file reads as an
    empty journal.
    """
    path = journal_path(path)
    try:
        raw = path.read_bytes()
    except OSError:
        return []
    records: list[dict] = []
    for line in raw.split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn write from a crashed writer
        if isinstance(record, dict) and isinstance(record.get("ev"), str):
            records.append(record)
    return records
