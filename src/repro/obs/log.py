"""``repro``-namespaced logging with the ``REPRO_LOG`` env knob.

All library diagnostics (object-path fallback warnings, perf notes)
flow through loggers under the ``"repro"`` root so embedding services
can capture, filter, or silence them with the standard :mod:`logging`
machinery instead of :mod:`warnings` filters.

By default the ``repro`` logger carries a :class:`logging.NullHandler`
and propagates, so applications that configure the root logger see the
records and bare CLI runs stay quiet below ``WARNING``.  Setting the
``REPRO_LOG`` environment variable to a level name (``DEBUG``,
``INFO``, ``WARNING``, ``ERROR``) or number attaches a stderr handler
at that level::

    REPRO_LOG=INFO repro schedule --testbed lu --size 20
"""

from __future__ import annotations

import logging
import os

#: Environment variable selecting the stderr log level.
ENV_VAR = "REPRO_LOG"

_ROOT = logging.getLogger("repro")
_ROOT.addHandler(logging.NullHandler())

_configured = False


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (e.g. ``repro.heuristics``)."""
    return _ROOT.getChild(name) if name else _ROOT


def configure_logging(level: str | int | None = None) -> logging.Logger:
    """Attach a stderr handler per ``REPRO_LOG`` (or an explicit level).

    Idempotent: the handler is installed at most once per process; a
    later call with a different level re-levels the existing handler.
    With neither argument nor env var set this is a no-op and the
    namespace keeps its quiet ``NullHandler`` default.
    """
    global _configured
    if level is None:
        level = os.environ.get(ENV_VAR)
    if level is None or level == "":
        return _ROOT
    if isinstance(level, str):
        try:
            level = int(level)
        except ValueError:
            resolved = logging.getLevelName(level.upper())
            if not isinstance(resolved, int):
                raise ValueError(
                    f"{ENV_VAR}={level!r} is not a logging level name"
                ) from None
            level = resolved
    handler = next(
        (h for h in _ROOT.handlers if getattr(h, "_repro_stderr", False)), None
    )
    if handler is None:
        handler = logging.StreamHandler()
        handler._repro_stderr = True
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        _ROOT.addHandler(handler)
    handler.setLevel(level)
    _ROOT.setLevel(min(level, _ROOT.level or level))
    _configured = True
    return _ROOT
