"""Contextvar-scoped metrics collector: counters, timers, gauges, spans.

The collector is deliberately dumb — plain dicts, no locks, no
sampling — because it is process-local: each worker of a campaign pool
collects into its own :class:`Stats` and ships the
:meth:`~Stats.payload` back to the parent, which :meth:`~Stats.merge`\\ s
them.  Scoping goes through one :class:`~contextvars.ContextVar`;
instrumented objects capture :func:`current` **once at construction**
into a slot, so a disabled run costs one attribute load plus an
``is not None`` test per would-be event.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar

#: Registered metric names -> ``(unit, description)``.  Everything the
#: instrumented layers may emit; surfaced by ``repro info --json`` and
#: the README catalog.  Timers additionally appear in
#: ``Stats.timers`` as ``(calls, seconds)`` pairs.
CATALOG: dict[str, tuple[str, str]] = {
    # flat-kernel construction (kernel/builder.py + heuristics/*)
    "builder.candidates": ("count", "(task, processor) EFT probes evaluated"),
    "builder.prune.maxpf": (
        "count", "candidates skipped by the max-parent-finish + duration bound"),
    "builder.prune.frontier": (
        "count", "non-insertion candidates skipped by the frontier bound"),
    "builder.prune.abort": (
        "count", "trial bookings abandoned once est + duration beat the bound"),
    "builder.commits": ("count", "placements committed into the flat builder"),
    "builder.rollbacks": ("count", "journal rollbacks (trial/search undo)"),
    "builder.rollback_entries": ("count", "booking entries undone by rollbacks"),
    # one-port booker (models/one_port.py)
    "oneport.seed.hit": ("count", "send-feasibility seed-memo hits"),
    "oneport.seed.miss": ("count", "send-feasibility seed-memo misses"),
    # numpy gap index (kernel/array_backend.py)
    "gap.searches": ("count", "gap queries answered by the indexed rows"),
    "gap.scalar": ("count", "queries served by the scalar short-row bypass"),
    "gap.indexed": ("count", "queries served by the block-max gap index"),
    "gap.resync": ("count", "dirty-watermark row resyncs (mirror or extend)"),
    "gap.debt_flush": ("count", "debt-gate trips forcing a deferred resync"),
    # local search (search/)
    "search.previews": ("count", "moves previewed through the incremental evaluator"),
    "search.commits": ("count", "previewed moves committed"),
    "search.sideways": ("count", "equal-makespan moves accepted"),
    "search.kicks": ("count", "perturbation kicks applied"),
    "search.rounds": ("count", "improvement rounds executed"),
    "search.patched_nodes": ("count", "kernel nodes re-timed by move patches"),
    # online engine (online/engine.py)
    "online.events.arrival": ("count", "job-arrival events processed"),
    "online.events.finish": ("count", "activity-finish events processed"),
    "online.events.tick": ("count", "policy tick events processed"),
    "online.activities": ("count", "activities dispatched to resources"),
    "online.replans": ("count", "plans rebuilt on a non-empty system"),
    "online.port_waits": ("count", "activities that waited on a busy resource"),
    "online.port_wait_time": ("model-time", "total released-to-start wait"),
    "online.utilization": ("gauge", "mean compute utilization over the horizon"),
    # campaign runner (campaign/runner.py)
    "campaign.cells": ("count", "unique cells in the expanded campaign"),
    "campaign.cache_hits": ("count", "cells served from the result cache"),
    "campaign.executed": ("count", "cells freshly executed"),
    "campaign.workers": ("gauge", "worker-pool size used for the run"),
    "campaign.occupancy": (
        "gauge", "sum of cell runtimes / (workers x wall time)"),
    # spool executor (campaign/executors.py + campaign/spool.py)
    "campaign.retries": ("count", "cells re-queued after a lease expiry"),
    "campaign.leases_expired": (
        "count", "worker leases that expired without a completion"),
    "campaign.spool_poll": (
        "count", "parent poll sweeps over the spool's done/ shards"),
    "campaign.snapshots": ("count", "rolling metrics snapshots recorded"),
    # durable event journal (obs/journal.py) and its derived progress
    # gauges (obs/export.py folds a journal into these for export)
    "journal.events": ("count", "records appended to the event journal"),
    "journal.cells.queued": ("gauge", "published cells awaiting a claim"),
    "journal.cells.running": ("gauge", "cells currently claimed by a worker"),
    "journal.cells.done": ("gauge", "cells completed, settled, or cached"),
    "journal.cells.failed": ("gauge", "cells that completed with an error"),
    "journal.workers": ("gauge", "distinct workers seen in the journal"),
    # per-stage booking-loop timers (bench_sched --stages): only
    # recorded while :func:`stage_detail_scope` is active, so routine
    # stats-on runs never pay per-candidate clock reads
    "stage.sweep": ("seconds", "all-processor candidate sweep per task"),
    "stage.seed": ("seconds", "message booking / seed resolution (trial_est)"),
    "stage.gap": ("seconds", "compute-slot gap search"),
    "stage.commit": ("seconds", "commit re-derivation + placement booking"),
    "stage.journal": ("seconds", "undo-journal rollbacks"),
    # wall-clock phase timers (also recorded as spans for the trace)
    "phase.statics": ("seconds", "static cost compilation (ranks, frontiers)"),
    "phase.rank": ("seconds", "priority/rank computation"),
    "phase.construct": ("seconds", "candidate sweeps + booking main loop"),
    "phase.search.load": ("seconds", "incremental-evaluator kernel load"),
    "phase.search.run": ("seconds", "iterated local search main loop"),
    "phase.online.run": ("seconds", "online-engine event loop"),
    "phase.campaign.run": ("seconds", "campaign execution wall time"),
    "phase.cell": ("seconds", "per-cell scheduler wall time"),
}


def metric_names() -> list[str]:
    """Sorted names of every registered metric."""
    return sorted(CATALOG)


#: Per-stage booking-loop timers are opt-in: timing every candidate's
#: gap search / seed resolution costs two clock reads per probe, far
#: too much for routine stats-on runs (the bench's stats-overhead
#: guard).  ``bench_sched --stages`` flips this for its timed region.
_STAGE_DETAIL = False


def stage_detail() -> bool:
    """Whether the ``stage.*`` booking-loop timers are active."""
    return _STAGE_DETAIL


@contextmanager
def stage_detail_scope():
    """Enable the ``stage.*`` timers for the dynamic extent of the block."""
    global _STAGE_DETAIL
    prev = _STAGE_DETAIL
    _STAGE_DETAIL = True
    try:
        yield
    finally:
        _STAGE_DETAIL = prev


class Stats:
    """One collection scope's counters, timers, gauges, and spans.

    ``counters`` map name -> int, ``timers`` map name -> ``[calls,
    seconds]``, ``gauges`` map name -> float, and ``spans`` hold
    ``(name, start_s, dur_s)`` tuples relative to the collector's
    creation (wall clock), ready for the Chrome-trace phase view.
    """

    __slots__ = ("counters", "timers", "gauges", "spans", "_epoch")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, list[float]] = {}
        self.gauges: dict[str, float] = {}
        self.spans: list[tuple[str, float, float]] = []
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def add(self, name: str, value: float) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        ent = self.timers.get(name)
        if ent is None:
            self.timers[name] = [calls, seconds]
        else:
            ent[0] += calls
            ent[1] += seconds

    @contextmanager
    def span(self, name: str):
        """Time a phase: records both a timer entry and a trace span."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            t1 = time.perf_counter()
            self.spans.append((name, t0 - self._epoch, t1 - t0))
            self.add_time(name, t1 - t0)

    # ------------------------------------------------------------------
    # aggregation / export
    # ------------------------------------------------------------------
    def payload(self) -> dict:
        """JSON-able snapshot (the cross-process wire format)."""
        return {
            "counters": dict(self.counters),
            "timers": {k: list(v) for k, v in self.timers.items()},
            "gauges": dict(self.gauges),
            "spans": [list(s) for s in self.spans],
        }

    def merge(self, payload: dict | Stats) -> None:
        """Fold another collector's payload into this one.

        Counters and timers add; gauges keep the incoming value (last
        writer wins); spans append (each process's spans are relative
        to its own epoch — counts and totals stay meaningful, absolute
        alignment across processes does not).
        """
        if isinstance(payload, Stats):
            payload = payload.payload()
        for name, n in payload.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, (calls, seconds) in payload.get("timers", {}).items():
            self.add_time(name, seconds, calls)
        self.gauges.update(payload.get("gauges", {}))
        for name, start, dur in payload.get("spans", []):
            self.spans.append((name, start, dur))

    def table(self) -> str:
        """Human-readable stats table (the ``--profile`` output)."""
        lines = []
        if self.counters:
            lines.append("counters")
            width = max(len(k) for k in self.counters)
            for name in sorted(self.counters):
                unit = CATALOG.get(name, ("count", ""))[0]
                value = self.counters[name]
                shown = f"{value:,}" if isinstance(value, int) else f"{value:g}"
                lines.append(f"  {name:<{width}}  {shown:>14} {unit}")
        if self.timers:
            lines.append("timers")
            width = max(len(k) for k in self.timers)
            for name in sorted(self.timers):
                calls, seconds = self.timers[name]
                lines.append(
                    f"  {name:<{width}}  {seconds * 1e3:>12.3f} ms"
                    f"  ({int(calls)} calls)"
                )
        if self.gauges:
            lines.append("gauges")
            width = max(len(k) for k in self.gauges)
            for name in sorted(self.gauges):
                lines.append(f"  {name:<{width}}  {self.gauges[name]:>14g}")
        if self.spans:
            totals: dict[str, list[float]] = {}
            for name, _, dur in self.spans:
                ent = totals.setdefault(name, [0, 0.0])
                ent[0] += 1
                ent[1] += dur
            lines.append("spans")
            width = max(len(k) for k in totals)
            for name in sorted(totals):
                count, seconds = totals[name]
                lines.append(
                    f"  {name:<{width}}  {seconds * 1e3:>12.3f} ms"
                    f"  ({int(count)} span(s))"
                )
        return "\n".join(lines) if lines else "(no metrics collected)"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stats(counters={len(self.counters)}, timers={len(self.timers)},"
            f" gauges={len(self.gauges)}, spans={len(self.spans)})"
        )


#: The active collector for this context; ``None`` disables collection.
_ACTIVE: ContextVar[Stats | None] = ContextVar("repro_obs_stats", default=None)


def current() -> Stats | None:
    """The active collector, or ``None`` when collection is off.

    Hot objects should call this **once at construction** and keep the
    result in a slot — that makes the disabled path one attribute load
    plus an ``is not None`` test per event site.
    """
    return _ACTIVE.get()


def enabled() -> bool:
    """Whether a collector is active in this context."""
    return _ACTIVE.get() is not None


@contextmanager
def collect(stats: Stats | None = None):
    """Activate a collector for the dynamic extent of the block.

    Nested ``collect()`` blocks shadow the outer collector completely
    (no bleed-through); pass an existing :class:`Stats` to accumulate
    several blocks into one scope.
    """
    if stats is None:
        stats = Stats()
    token = _ACTIVE.set(stats)
    try:
        yield stats
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name: str):
    """Module-level phase span: no-op when collection is disabled.

    Use at coarse phase boundaries only (statics build, search load,
    engine run) — per-candidate paths should use slot-cached counters.
    """
    stats = _ACTIVE.get()
    if stats is None:
        yield None
    else:
        with stats.span(name):
            yield stats
