"""Chrome ``trace_event`` JSON export (Perfetto-loadable).

Four views share one file format (``{"traceEvents": [...]}`` with
``"X"`` complete events, ``"C"`` counters, ``"i"`` instants, and
``"M"`` process/thread-name metadata):

* :func:`schedule_trace` — a static :class:`~repro.core.schedule.Schedule`
  as processor compute tracks plus per-port send/recv tracks.
* :func:`online_trace` — an online-engine run: executed activities and
  transfers on their resources, queue-depth / running counters, and
  instant markers for arrivals and replans.
* :func:`phase_events` — wall-clock phase spans a
  :class:`~repro.obs.registry.Stats` collector recorded during
  construction.
* :func:`campaign_trace` — a distributed campaign reconstructed from
  its event journal (:mod:`repro.obs.journal`): one track per worker,
  cells as spans, lease expiries/retries as instants, queue-depth
  counters.

Model time is unitless in the paper; traces emit **1 model time unit =
1 µs** so Perfetto's microsecond axis reads directly in model units.
Phase spans are real wall-clock microseconds on their own process
track.  Open traces at https://ui.perfetto.dev (or
``chrome://tracing``) via "Open trace file".
"""

from __future__ import annotations

import json
from pathlib import Path

from .registry import Stats

#: Process ids for the views (Perfetto groups tracks by pid).
PID_PHASES = 1
PID_COMPUTE = 2
PID_PORTS = 3
PID_ENGINE = 4
PID_CAMPAIGN = 5

#: Model-time unit -> trace microseconds.
TIME_SCALE = 1.0


def _meta(name: str, pid: int, tid: int | None = None) -> dict:
    ev = {
        "name": "process_name" if tid is None else "thread_name",
        "ph": "M",
        "pid": pid,
        "args": {"name": name},
    }
    if tid is not None:
        ev["tid"] = tid
        ev["name"] = "thread_name"
    return ev


def _complete(name, pid, tid, ts, dur, args=None) -> dict:
    ev = {
        "name": str(name),
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": ts * TIME_SCALE,
        "dur": max(dur, 0.0) * TIME_SCALE,
    }
    if args:
        ev["args"] = args
    return ev


def _counter(name, pid, ts, values: dict) -> dict:
    return {
        "name": name,
        "ph": "C",
        "pid": pid,
        "tid": 0,
        "ts": ts * TIME_SCALE,
        "args": values,
    }


def _instant(name, pid, tid, ts, args=None) -> dict:
    ev = {
        "name": str(name),
        "ph": "i",
        "pid": pid,
        "tid": tid,
        "ts": ts * TIME_SCALE,
        "s": "t",
    }
    if args:
        ev["args"] = args
    return ev


# ----------------------------------------------------------------------
# view 3: wall-clock phase spans
# ----------------------------------------------------------------------
def phase_events(stats: Stats | None) -> list[dict]:
    """Trace events for the collector's recorded phase spans (seconds)."""
    if stats is None or not stats.spans:
        return []
    events = [
        _meta("repro phases (wall clock)", PID_PHASES),
        _meta("phases", PID_PHASES, 0),
    ]
    for name, start_s, dur_s in stats.spans:
        events.append(_complete(name, PID_PHASES, 0, start_s * 1e6, dur_s * 1e6))
    return events


# ----------------------------------------------------------------------
# view 1: static schedule
# ----------------------------------------------------------------------
def schedule_trace(schedule, stats: Stats | None = None) -> dict:
    """Render ``schedule`` as compute + port tracks (model time)."""
    events: list[dict] = [_meta("processors", PID_COMPUTE)]
    procs = list(schedule.platform.processors)
    for proc in procs:
        events.append(_meta(f"P{proc} compute", PID_COMPUTE, proc))
        for p in schedule.tasks_on(proc):
            events.append(
                _complete(
                    p.task, PID_COMPUTE, proc, p.start, p.duration,
                    {"task": str(p.task), "proc": proc},
                )
            )
    if schedule.comm_events:
        events.append(_meta("ports", PID_PORTS))
        used: set[int] = set()
        for e in sorted(schedule.comm_events, key=lambda e: (e.start, e.finish)):
            send_tid, recv_tid = 2 * e.src_proc, 2 * e.dst_proc + 1
            for tid, proc, kind in (
                (send_tid, e.src_proc, "send"),
                (recv_tid, e.dst_proc, "recv"),
            ):
                if tid not in used:
                    used.add(tid)
                    events.append(_meta(f"P{proc} {kind}", PID_PORTS, tid))
                events.append(
                    _complete(
                        f"{e.src_task}->{e.dst_task}", PID_PORTS, tid,
                        e.start, e.duration,
                        {
                            "data": e.data,
                            "hop": e.hop,
                            "route": f"P{e.src_proc}->P{e.dst_proc}",
                        },
                    )
                )
    events.extend(phase_events(stats))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "view": "schedule",
            "heuristic": schedule.heuristic,
            "model": schedule.model,
            "state_impl": schedule.state_impl,
            "makespan": schedule.makespan(),
        },
    }


# ----------------------------------------------------------------------
# view 2: online-engine run
# ----------------------------------------------------------------------
def online_trace(result, stats: Stats | None = None) -> dict:
    """Render an :class:`~repro.online.metrics.OnlineResult` timeline.

    Compute tracks come from executed placements, port tracks from
    transfers; the engine's ``event_log`` (when kept) contributes
    instant markers for arrivals and replans plus ``queue depth`` and
    ``running`` counters.
    """
    events: list[dict] = [_meta("processors", PID_COMPUTE)]
    num_procs = result.platform.num_processors
    for proc in range(num_procs):
        events.append(_meta(f"P{proc} compute", PID_COMPUTE, proc))
    for job, rows in sorted(result.placements.items()):
        for task, proc, start, finish in rows:
            events.append(
                _complete(
                    f"j{job}:{task}", PID_COMPUTE, proc, start, finish - start,
                    {"job": job, "task": str(task)},
                )
            )
    if result.transfers:
        events.append(_meta("ports", PID_PORTS))
        used: set[int] = set()
        for job, src, dst, fp, tp, start, finish, data in result.transfers:
            for tid, proc, kind in ((2 * fp, fp, "send"), (2 * tp + 1, tp, "recv")):
                if tid not in used:
                    used.add(tid)
                    events.append(_meta(f"P{proc} {kind}", PID_PORTS, tid))
                events.append(
                    _complete(
                        f"j{job}:{src}->{dst}", PID_PORTS, tid, start,
                        finish - start, {"job": job, "data": data},
                    )
                )
    if result.event_log:
        events.append(_meta("engine", PID_ENGINE))
        events.append(_meta("events", PID_ENGINE, 0))
        queued = 0
        running = 0
        for entry in result.event_log:
            now, kind = entry[0], entry[1]
            if kind == "arrival":
                events.append(
                    _instant(f"arrival j{entry[2]}", PID_ENGINE, 0, now,
                             {"job": entry[2], "name": entry[3]})
                )
            elif kind == "replan":
                events.append(
                    _instant("replan", PID_ENGINE, 0, now, {"job": entry[2]})
                )
            elif kind == "release":
                queued += 1
                events.append(_counter("queue depth", PID_ENGINE, now,
                                       {"released": queued}))
            elif kind == "start":
                if queued > 0:
                    queued -= 1
                    events.append(_counter("queue depth", PID_ENGINE, now,
                                           {"released": queued}))
                running += 1
                events.append(_counter("running", PID_ENGINE, now,
                                       {"activities": running}))
            elif kind == "finish":
                running -= 1
                events.append(_counter("running", PID_ENGINE, now,
                                       {"activities": running}))
    events.extend(phase_events(stats))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "view": "online",
            "policy": result.policy.get("name", "?"),
            "jobs": len(result.jobs),
            "horizon": result.horizon,
            "utilization": result.utilization,
            "events": result.events,
        },
    }


# ----------------------------------------------------------------------
# view 4: campaign journal
# ----------------------------------------------------------------------
def campaign_trace(records: list[dict]) -> dict:
    """Render a campaign journal as a Perfetto timeline (wall clock).

    Tracks: ``tid 0`` is the parent (campaign start/end, lease-expiry
    and retry instants), then one track per distinct worker with each
    executed cell as a span from its ``claimed`` to its ``completed``
    record.  A claim that expired instead of completing renders as a
    ``(lost)`` span on the dead worker's track.  The ``cells`` counter
    carries queued/running/done depths.  Time is microseconds since the
    earliest record, so host clocks must be roughly aligned (same host
    or NTP) for cross-worker ordering to read correctly.

    ``records`` come from :func:`repro.obs.journal.read_journal`; the
    result validates with :func:`validate_trace` (worker loops execute
    cells sequentially, so tracks never overlap).
    """
    records = [r for r in records if isinstance(r.get("wall"), (int, float))]
    if not records:
        raise ValueError("campaign_trace needs a non-empty journal")
    records.sort(key=lambda r: r["wall"])
    t0 = records[0]["wall"]

    def us(rec: dict) -> float:
        return (rec["wall"] - t0) * 1e6

    events: list[dict] = [
        _meta("campaign (wall clock)", PID_CAMPAIGN),
        _meta("parent", PID_CAMPAIGN, 0),
    ]
    worker_events = {
        "claimed", "completed", "heartbeat", "worker_start", "worker_exit",
    }
    workers = sorted({
        r["worker"] for r in records
        if r.get("ev") in worker_events and isinstance(r.get("worker"), str)
    })
    tid_of = {w: i + 1 for i, w in enumerate(workers)}
    for w, tid in tid_of.items():
        events.append(_meta(f"worker {w}", PID_CAMPAIGN, tid))

    open_claims: dict[tuple, dict] = {}
    queued = running = done = failed = 0
    name = None

    def depth(rec: dict) -> None:
        events.append(_counter("cells", PID_CAMPAIGN, us(rec), {
            "queued": queued, "running": running, "done": done,
        }))

    for rec in records:
        ev = rec.get("ev")
        worker = rec.get("worker")
        key = rec.get("key")
        if ev == "campaign_start":
            name = rec.get("name", name)
            events.append(_instant("campaign start", PID_CAMPAIGN, 0, us(rec), {
                k: rec[k]
                for k in ("name", "cells", "cached", "pending", "executor")
                if k in rec
            }))
        elif ev == "campaign_end":
            events.append(_instant("campaign end", PID_CAMPAIGN, 0, us(rec), {
                "cells": rec.get("cells"), "elapsed_s": rec.get("elapsed_s"),
            }))
        elif ev == "published":
            queued += 1
            depth(rec)
        elif ev == "claimed":
            open_claims[(worker, key)] = rec
            queued = max(queued - 1, 0)
            running += 1
            depth(rec)
        elif ev == "completed":
            claim = open_claims.pop((worker, key), None)
            start = us(claim) if claim is not None else us(rec)
            ok = "error" not in rec
            args = {"key": key, "attempt": rec.get("attempt"), "ok": ok}
            if not ok:
                args["error"] = rec["error"]
                failed += 1
            label = rec.get("label") or str(key or "?")[:12]
            events.append(_complete(
                label, PID_CAMPAIGN, tid_of.get(worker, 0),
                start, us(rec) - start, args,
            ))
            running = max(running - 1, 0)
            done += 1
            depth(rec)
        elif ev == "settled":
            done += 1
            depth(rec)
        elif ev == "expired":
            lease_worker = rec.get("lease_worker")
            claim = open_claims.pop((lease_worker, key), None)
            if claim is not None and lease_worker in tid_of:
                events.append(_complete(
                    f"{str(key or '?')[:12]} (lost)", PID_CAMPAIGN,
                    tid_of[lease_worker], us(claim), us(rec) - us(claim),
                    {"key": key, "crashed": True},
                ))
            events.append(_instant("lease expired", PID_CAMPAIGN, 0, us(rec), {
                "key": key, "worker": lease_worker,
            }))
            running = max(running - 1, 0)
            queued += 1
            depth(rec)
        elif ev == "retried":
            events.append(_instant("retry", PID_CAMPAIGN, 0, us(rec), {
                "key": key, "attempt": rec.get("attempt"),
            }))
        elif ev == "worker_start":
            events.append(
                _instant("worker start", PID_CAMPAIGN, tid_of.get(worker, 0),
                         us(rec))
            )
        elif ev == "worker_exit":
            events.append(_instant(
                "worker exit", PID_CAMPAIGN, tid_of.get(worker, 0), us(rec),
                {"executed": rec.get("executed"), "errors": rec.get("errors")},
            ))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "view": "campaign",
            "campaign": name,
            "workers": workers,
            "records": len(records),
            "cells_done": done,
            "cells_failed": failed,
        },
    }


# ----------------------------------------------------------------------
# validation + IO
# ----------------------------------------------------------------------
def validate_trace(trace: dict, overlap_eps: float = 1e-6) -> dict:
    """Check the schema and per-track non-overlap; raise on violation.

    Every event must carry ``ph`` and ``pid``; ``"X"`` events must have
    numeric ``tid``/``ts``/``dur`` with ``dur >= 0`` and, per
    ``(pid, tid)`` resource track, must not overlap (resources are
    exclusive in every supported model).  The wall-clock phases track
    (``PID_PHASES``) is exempt from the overlap rule: phase spans nest.
    Returns summary counts.
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    tracks: dict[tuple, list[tuple[float, float, str]]] = {}
    counts: dict[str, int] = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None or "pid" not in ev:
            raise ValueError(f"event {i} missing ph/pid: {ev!r}")
        counts[ph] = counts.get(ph, 0) + 1
        if ph != "X":
            continue
        for field in ("tid", "ts", "dur"):
            if not isinstance(ev.get(field), (int, float)):
                raise ValueError(f"event {i} ({ev.get('name')!r}) missing {field}")
        if ev["dur"] < 0:
            raise ValueError(f"event {i} ({ev.get('name')!r}) has dur < 0")
        if ev["pid"] == PID_PHASES:
            continue
        tracks.setdefault((ev["pid"], ev["tid"]), []).append(
            (ev["ts"], ev["ts"] + ev["dur"], str(ev.get("name")))
        )
    for (pid, tid), spans in tracks.items():
        spans.sort()
        for (s0, e0, n0), (s1, e1, n1) in zip(spans, spans[1:]):
            if s1 < e0 - overlap_eps:
                raise ValueError(
                    f"track pid={pid} tid={tid}: {n0!r} [{s0}, {e0}) overlaps "
                    f"{n1!r} [{s1}, {e1})"
                )
    return {
        "events": len(events),
        "tracks": len(tracks),
        "by_phase": counts,
    }


def write_trace(trace: dict, path) -> Path:
    """Write ``trace`` as JSON (atomic enough for CLI use)."""
    path = Path(path)
    path.write_text(json.dumps(trace, indent=1, default=str) + "\n")
    return path
