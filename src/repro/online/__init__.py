"""Online scheduling: event-driven dynamic workloads on the one-port platform.

Everything in the rest of the repository is offline — one DAG, known
costs, schedule once, replay.  This package opens the *online* regime
(the setting of SELFISHMIGRATE and the scalable power-heterogeneous
schedulers): jobs arrive over time via seeded arrival processes, actual
durations deviate from estimates via pluggable noise models, and
registered rescheduling policies react — all over the same flat kernel
the offline paths use, so simulation runs at flat-array speed.

Quick start::

    from repro.experiments import paper_platform
    from repro.online import make_workload, simulate_online

    wl = make_workload("lu", 10, count=8, arrival="poisson:rate=0.002", seed=0)
    result = simulate_online(wl, paper_platform(),
                             policy="periodic:period=1000",
                             noise="lognormal:sigma=0.3", seed=0)
    print(result.aggregate()["mean_stretch"])
"""

from .engine import Activity, JobState, OnlineEngine, simulate_online
from .harness import run_online_cell
from .metrics import JobMetrics, OnlineResult, check_execution, format_jobs
from .noise import (
    ExactNoise,
    LognormalNoise,
    NoiseModel,
    StragglerNoise,
    available_noise_models,
    make_noise,
)
from .policies import (
    PeriodicPolicy,
    Policy,
    ReactivePolicy,
    ReadyDispatchPolicy,
    StaticPolicy,
    available_policies,
    make_policy,
)
from .workload import (
    Job,
    Workload,
    available_arrivals,
    make_arrivals,
    make_workload,
)

__all__ = [
    "Activity",
    "ExactNoise",
    "Job",
    "JobMetrics",
    "JobState",
    "LognormalNoise",
    "NoiseModel",
    "OnlineEngine",
    "OnlineResult",
    "PeriodicPolicy",
    "Policy",
    "ReactivePolicy",
    "ReadyDispatchPolicy",
    "StaticPolicy",
    "StragglerNoise",
    "Workload",
    "available_arrivals",
    "available_noise_models",
    "available_policies",
    "check_execution",
    "format_jobs",
    "make_arrivals",
    "make_noise",
    "make_policy",
    "make_workload",
    "run_online_cell",
    "simulate_online",
]
