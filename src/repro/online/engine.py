"""Event-driven online simulator over the shared one-port platform.

The engine executes a :class:`~repro.online.workload.Workload` — jobs
arriving over time — against one platform whose resources are shared by
every in-flight job: one compute timeline per processor plus one send
and one receive port each (the paper's one-port rule, applied across
jobs).  A :class:`~repro.online.policies.Policy` decides *what* runs
where (placement, orders, reactions); the engine decides *when*, by
discrete-event simulation:

* every unit of work is an :class:`Activity` — a task execution holding
  one compute resource, or a transfer holding a send port and a receive
  port simultaneously;
* an activity is **released** when its last constraint predecessor
  finishes (precedence edges, plus whatever order edges its policy's
  plan imposes), and **starts** when all its resources are free —
  contention across jobs is arbitrated first-released-first-served with
  a deterministic tie-break;
* actual durations come from the noise model, drawn per activity from a
  seed-derived RNG, so a run is a pure function of (workload, policy,
  noise, seed) — event logs and metrics are bit-reproducible.

Exactness: with zero noise, a single job arriving at ``t = 0``, and an
open-loop plan, the event-driven start times equal the flat kernel's
least-solution propagation *bit for bit* — every start is the float
``max`` over the same predecessor finishes, every finish the same
single addition (the cross-check suite asserts this against
:func:`repro.simulate.replay` for every registered heuristic).
"""

from __future__ import annotations

import random
import time
from heapq import heappop, heappush

from ..core.exceptions import ConfigurationError, SchedulingError
from ..core.platform import Platform
from ..kernel import TimedKernel, compile_statics
from ..kernel.backends import current_backend
from ..obs import current as _obs_current
from .metrics import JobMetrics, OnlineResult
from .noise import NoiseModel, make_noise
from .workload import Job, Workload

#: Activity states.
BLOCKED, RELEASED, RUNNING, DONE, CANCELLED = range(5)

#: Event kinds (heap order within a timestamp: insertion sequence).
_EV_ARRIVAL, _EV_FINISH, _EV_TICK = range(3)

TASK, COMM = "task", "comm"


class Activity:
    """One unit of simulated work (task execution or transfer)."""

    __slots__ = (
        "job",
        "kind",
        "node",
        "label",
        "seq",
        "est",
        "dur",
        "resources",
        "procs",
        "data",
        "npred",
        "succs",
        "state",
        "release",
        "start",
        "finish",
        "planned",
    )

    def __init__(self, job: int, kind: str, node: int, label, est: float,
                 resources: tuple[int, ...], seq: int) -> None:
        self.job = job
        self.kind = kind
        #: Graph-stable node id: task intern index ``i``, or ``n + e``
        #: for the transfer of edge ``e`` — the noise RNG key and the
        #: plan-kernel index, invariant across replans.
        self.node = node
        self.label = label
        self.seq = seq
        self.est = est
        self.dur = est
        self.resources = resources
        #: ``(proc,)`` for tasks, ``(from_proc, to_proc)`` for transfers.
        self.procs: tuple[int, ...] = ()
        self.data = 0.0
        self.npred = 0
        self.succs: list[Activity] = []
        self.state = BLOCKED
        self.release = 0.0
        self.start = 0.0
        self.finish = 0.0
        #: Planned absolute finish time under the job's current plan
        #: (``None`` for plan-less activities, e.g. ready-dispatch).
        self.planned: float | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Activity({self.kind}, {self.label!r}, job={self.job}, state={self.state})"


class _Resource:
    """One exclusive resource: a compute slot or a directional port."""

    __slots__ = ("rid", "busy", "queue")

    def __init__(self, rid: int) -> None:
        self.rid = rid
        self.busy: Activity | None = None
        self.queue: list[Activity] = []


class JobState:
    """Engine-side state of one submitted job."""

    __slots__ = (
        "job",
        "statics",
        "arrived",
        "done_tasks",
        "first_start",
        "completion",
        "task_acts",
        "in_comms",
        "kernel",
        "plan_offset",
        "planned_ms",
        "reschedules",
        "comms_done",
        "comm_time",
        "data",
    )

    def __init__(self, job: Job, statics) -> None:
        self.job = job
        self.statics = statics
        self.arrived = False
        self.done_tasks = 0
        self.first_start: float | None = None
        self.completion: float | None = None
        #: Current activity per task id (replans swap entries).
        self.task_acts: dict = {}
        #: Incoming transfer activities per destination task id.
        self.in_comms: dict = {}
        #: The job's current plan kernel (``None`` for plan-less policies).
        self.kernel: TimedKernel | None = None
        #: Absolute time the current plan's clock starts at.
        self.plan_offset = 0.0
        self.planned_ms = 0.0
        self.reschedules = 0
        self.comms_done = 0
        self.comm_time = 0.0
        #: Policy-private scratch space.
        self.data: dict = {}

    @property
    def complete(self) -> bool:
        return self.completion is not None


class OnlineEngine:
    """One configured simulator: platform + policy + noise + seed."""

    def __init__(
        self,
        platform: Platform,
        policy,
        noise: str | dict | NoiseModel = "exact",
        seed: int = 0,
        log_events: bool = True,
    ) -> None:
        from .policies import Policy, make_policy

        self.platform = platform
        self.policy: Policy = (
            policy if isinstance(policy, Policy) else make_policy(policy)
        )
        self.noise = make_noise(noise)
        self.seed = seed
        self.log_events = log_events
        num = platform.num_processors
        #: Resource ids: compute ``p``, send port ``P + p``, receive
        #: port ``2P + p``.
        self._send0 = num
        self._recv0 = 2 * num
        # per-run state (reset by run())
        self.now = 0.0
        self.resources: list[_Resource] = []
        self.jobs: list[JobState] = []
        self.active_jobs = 0
        self.events = 0
        self.event_log: list[tuple] = []
        self._heap: list[tuple] = []
        self._eseq = 0
        self._aseq = 0
        self._touched: set[int] = set()
        self._all_acts: list[Activity] = []
        self._busy_compute = 0.0
        #: Active obs collector (refreshed per run; ``None`` = stats off).
        self._stats = _obs_current()

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------
    def compute_rid(self, proc: int) -> int:
        return proc

    def send_rid(self, proc: int) -> int:
        return self._send0 + proc

    def recv_rid(self, proc: int) -> int:
        return self._recv0 + proc

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def run(self, workload: Workload) -> OnlineResult:
        """Simulate the whole workload; returns the aggregated result."""
        self.now = 0.0
        self.resources = [_Resource(r) for r in range(3 * self.platform.num_processors)]
        self.jobs = []
        self.active_jobs = 0
        self.events = 0
        self.event_log = []
        self._heap = []
        self._eseq = 0
        self._aseq = 0
        self._touched = set()
        self._all_acts = []
        self._busy_compute = 0.0
        stats = self._stats = _obs_current()
        self.policy.bind(self)

        for job in workload:
            jstate = JobState(job, compile_statics(job.graph, self.platform))
            self.jobs.append(jstate)
            self._push(job.arrival, _EV_ARRIVAL, jstate)

        wall0 = time.perf_counter()
        heap = self._heap
        while heap:
            t, _seq, kind, payload = heappop(heap)
            self.now = t
            self.events += 1
            if kind == _EV_FINISH:
                if stats is not None:
                    stats.inc("online.events.finish")
                if payload.state == RUNNING:
                    self._finish(payload)
            elif kind == _EV_ARRIVAL:
                if stats is not None:
                    stats.inc("online.events.arrival")
                self._arrive(payload)
            else:
                if stats is not None:
                    stats.inc("online.events.tick")
                self.policy.on_tick()
            if self._touched:
                self._dispatch()
        wall_s = time.perf_counter() - wall0
        if stats is not None:
            stats.add_time("phase.online.run", wall_s)

        incomplete = [j.job.index for j in self.jobs if not j.complete]
        if incomplete:
            raise SchedulingError(
                f"simulation drained with incomplete job(s) {incomplete[:5]}: "
                f"the policy lost activities"
            )
        return self._result(workload, wall_s)

    def _push(self, t: float, kind: int, payload) -> None:
        self._eseq += 1
        heappush(self._heap, (t, self._eseq, kind, payload))

    def push_tick(self, delay: float) -> None:
        """Policy hook: request an ``on_tick`` callback after ``delay``."""
        if delay <= 0:
            raise ConfigurationError(f"tick delay must be > 0, got {delay}")
        self._push(self.now + delay, _EV_TICK, None)

    def _arrive(self, jstate: JobState) -> None:
        jstate.arrived = True
        if self.log_events:
            self.event_log.append((self.now, "arrival", jstate.job.index, jstate.job.name))
        if jstate.job.graph.num_tasks == 0:
            jstate.completion = self.now
            return
        self.active_jobs += 1
        self.policy.on_arrival(jstate)

    def _finish(self, act: Activity) -> None:
        now = self.now
        act.state = DONE
        jstate = self.jobs[act.job]
        if self.log_events:
            self.event_log.append((now, "finish", act.job, act.kind, act.label))
        for rid in act.resources:
            self.resources[rid].busy = None
            self._touched.add(rid)
        for succ in act.succs:
            if succ.state == BLOCKED:
                succ.npred -= 1
                if not succ.npred:
                    self._release(succ)
        if act.kind == TASK:
            jstate.done_tasks += 1
            if jstate.done_tasks == jstate.job.graph.num_tasks:
                jstate.completion = now
                self.active_jobs -= 1
        else:
            jstate.comms_done += 1
            jstate.comm_time += act.dur
        self.policy.on_activity_finish(jstate, act)

    def _release(self, act: Activity) -> None:
        act.state = RELEASED
        act.release = self.now
        if self.log_events:
            self.event_log.append((self.now, "release", act.job, act.kind, act.label))
        for rid in act.resources:
            self.resources[rid].queue.append(act)
            self._touched.add(rid)

    def _dispatch(self) -> None:
        """Start every startable released activity, deterministically.

        Scans the touched resources in id order; per free resource the
        earliest-released (then lowest-sequence) waiting activity whose
        *other* resources are also free starts now.  Starting only
        consumes capacity, so one pass per touched resource suffices.
        """
        resources = self.resources
        for rid in sorted(self._touched):
            res = resources[rid]
            while res.busy is None and res.queue:
                best = None
                keep = []
                for act in res.queue:
                    if act.state != RELEASED:
                        continue  # started elsewhere or cancelled: drop
                    keep.append(act)
                    for r in act.resources:
                        if resources[r].busy is not None:
                            break
                    else:
                        if best is None or (act.release, act.seq) < (best.release, best.seq):
                            best = act
                if best is None:
                    res.queue = keep
                    break
                keep.remove(best)
                res.queue = keep
                self._start(best)
        self._touched.clear()

    def _start(self, act: Activity) -> None:
        now = self.now
        act.state = RUNNING
        act.start = now
        stats = self._stats
        if stats is not None:
            stats.inc("online.activities")
            if now > act.release:
                # the activity sat released while a resource was busy
                stats.inc("online.port_waits")
                stats.add("online.port_wait_time", now - act.release)
        est = act.est
        if self.noise.exact:
            dur = est
        else:
            rng = random.Random(f"noise:{self.seed}:{act.job}:{act.node}")
            dur = self.noise.draw(est, rng)
        act.dur = dur
        act.finish = now + dur
        for rid in act.resources:
            self.resources[rid].busy = act
        if act.kind == TASK:
            self._busy_compute += dur
            jstate = self.jobs[act.job]
            if jstate.first_start is None:
                jstate.first_start = now
        if self.log_events:
            self.event_log.append((now, "start", act.job, act.kind, act.label))
        self._push(act.finish, _EV_FINISH, act)

    # ------------------------------------------------------------------
    # activity construction (policy-facing)
    # ------------------------------------------------------------------
    def new_activity(
        self,
        jstate: JobState,
        kind: str,
        node: int,
        label,
        est: float,
        resources: tuple[int, ...],
    ) -> Activity:
        """Create a blocked activity; caller wires preds/succs, then
        calls :meth:`activate` once ``npred`` is final."""
        self._aseq += 1
        act = Activity(jstate.job.index, kind, node, label, est, resources, self._aseq)
        self._all_acts.append(act)
        return act

    def activate(self, act: Activity) -> None:
        """Release ``act`` now if it has no unfinished predecessors."""
        if act.state == BLOCKED and not act.npred:
            self._release(act)

    def build_plan_activities(
        self, jstate: JobState, kern: TimedKernel
    ) -> dict[int, Activity]:
        """Activities for every task and booked transfer of a compiled
        kernel, keyed by kernel node index.

        Shared by :meth:`install_plan` (full-graph kernel) and the
        replanning policies (sub-plan kernels over the remaining
        subgraph): durations, in-degrees, and successor wiring come
        straight from the kernel; activity ``node`` ids are translated
        to the job's *full-graph* interning when the kernel covers a
        subgraph, so noise draws and drift bookkeeping stay stable
        across replans.  Registers the new activities in
        ``jstate.task_acts`` / ``jstate.in_comms`` (resetting the
        ``in_comms`` entry of every task the kernel covers); the caller
        adds boundary predecessors and then activates.
        """
        statics = kern.statics
        full = jstate.statics
        is_full = statics is full
        if not is_full:
            # a sub-plan kernel means the policy replanned mid-flight
            if self._stats is not None:
                self._stats.inc("online.replans")
            if self.log_events:
                self.event_log.append((self.now, "replan", jstate.job.index))
        n = statics.num_tasks
        offset = self.now
        acts: dict[int, Activity] = {}
        for i in range(n):
            task = statics.tasks[i]
            act = self.new_activity(
                jstate,
                TASK,
                i if is_full else full.tindex[task],
                task,
                kern.dur[i],
                (kern.alloc[i],),
            )
            act.procs = (kern.alloc[i],)
            act.npred = kern.indeg[i]
            act.planned = offset + kern.finish[i]
            acts[i] = act
            jstate.task_acts[task] = act
            jstate.in_comms[task] = []
        for e, (a, b) in zip(kern.hop_list, kern.hop_procs):
            node = n + e
            u, v = statics.edges[e]
            act = self.new_activity(
                jstate,
                COMM,
                node if is_full else full.num_tasks + full.eindex[(u, v)],
                f"{u}->{v}",
                kern.dur[node],
                (self.send_rid(a), self.recv_rid(b)),
            )
            act.procs = (a, b)
            act.data = statics.edata[e]
            act.npred = kern.indeg[node]
            act.planned = offset + kern.finish[node]
            acts[node] = act
            jstate.in_comms[v].append(act)
        for node, act in acts.items():
            act.succs = [acts[s] for s in kern.one_shot_successors(node)]
        return acts

    def install_plan(self, jstate: JobState, schedule) -> None:
        """Compile a full-graph schedule into activities (open loop).

        The schedule's decisions (allocation + processor / port orders)
        become the constraint DAG of the flat kernel; every task and
        every booked transfer becomes one activity whose predecessors
        are exactly the kernel's constraint predecessors.  Planned
        times (the kernel's least solution, offset to now) are stamped
        for drift detection.
        """
        from ..simulate import extract_decisions

        kern = TimedKernel.from_decisions(jstate.statics, extract_decisions(schedule))
        current_backend().propagate(kern)
        jstate.kernel = kern
        jstate.plan_offset = self.now
        jstate.planned_ms = kern.makespan
        acts = self.build_plan_activities(jstate, kern)
        for act in acts.values():
            self.activate(act)

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------
    def _result(self, workload: Workload, wall_s: float) -> OnlineResult:
        from ..core.bounds import makespan_lower_bound

        lb_memo: dict[int, float] = {}
        job_rows = []
        placements: dict[int, list] = {}
        for jstate in self.jobs:
            job = jstate.job
            lb = lb_memo.get(id(job.graph))
            if lb is None:
                lb = lb_memo[id(job.graph)] = makespan_lower_bound(
                    job.graph, self.platform
                )
            completion = jstate.completion if jstate.completion is not None else job.arrival
            first = jstate.first_start if jstate.first_start is not None else job.arrival
            flow = completion - job.arrival
            job_rows.append(
                JobMetrics(
                    index=job.index,
                    name=job.name,
                    tasks=job.graph.num_tasks,
                    weight=job.weight,
                    arrival=job.arrival,
                    first_start=first,
                    completion=completion,
                    flow=flow,
                    makespan=completion - first,
                    stretch=flow / lb if lb > 0 else float("inf"),
                    weighted_flow=job.weight * flow,
                    lower_bound=lb,
                    planned_makespan=jstate.planned_ms,
                    reschedules=jstate.reschedules,
                    comms=jstate.comms_done,
                    comm_time=jstate.comm_time,
                )
            )
            placements[job.index] = [
                (task, act.procs[0], act.start, act.finish)
                for task, act in sorted(
                    jstate.task_acts.items(), key=lambda kv: kv[1].seq
                )
            ]
        transfers = []
        for act in self._all_acts:
            if act.kind != COMM or act.state != DONE:
                continue
            statics = self.jobs[act.job].statics
            u, v = statics.edges[act.node - statics.num_tasks]
            transfers.append(
                (act.job, u, v, act.procs[0], act.procs[1],
                 act.start, act.finish, act.data)
            )
        arrivals = [j.job.arrival for j in self.jobs]
        completions = [j.completion for j in self.jobs if j.completion is not None]
        horizon_start = min(arrivals) if arrivals else 0.0
        horizon_end = max(completions) if completions else horizon_start
        horizon = horizon_end - horizon_start
        num_procs = self.platform.num_processors
        utilization = (
            self._busy_compute / (num_procs * horizon) if horizon > 0 else 1.0
        )
        if self._stats is not None:
            self._stats.gauge("online.utilization", utilization)
        return OnlineResult(
            policy=self.policy.payload(),
            noise=self.noise.payload(),
            seed=self.seed,
            workload=workload,
            platform=self.platform,
            jobs=job_rows,
            placements=placements,
            transfers=transfers,
            horizon_start=horizon_start,
            horizon_end=horizon_end,
            utilization=utilization,
            events=self.events,
            wall_s=wall_s,
            event_log=self.event_log,
        )


def simulate_online(
    workload: Workload,
    platform: Platform,
    policy="static",
    noise: str | dict | NoiseModel = "exact",
    seed: int = 0,
    log_events: bool = True,
) -> OnlineResult:
    """One-call convenience: build the engine and run ``workload``."""
    return OnlineEngine(
        platform, policy, noise=noise, seed=seed, log_events=log_events
    ).run(workload)
