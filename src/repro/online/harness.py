"""Campaign bridge: one online-simulation cell -> one CellResult row.

The campaign engine's ``online`` axis turns a (testbed, size, platform,
heuristic) cell into a dynamic-workload simulation instead of a single
offline schedule.  This module maps the :class:`OnlineResult` onto the
offline :class:`~repro.experiments.harness.CellResult` vocabulary so
online cells flow through the existing cache, aggregation, and export
machinery unchanged:

* ``makespan`` — the batch horizon (first arrival to last completion);
* ``speedup`` — total sequential work over the horizon (the stream
  analogue of the paper's ratio: how many fastest-processor-seconds of
  work the platform retired per wall second);
* ``lower_bound`` — ``max_j (arrival_j + LB_j)``, a valid bound on the
  last completion;
* the online-only numbers (flow, stretch, events/s, ...) ride in
  ``CellResult.extra``.
"""

from __future__ import annotations

import time

from ..core.platform import Platform
from ..core.taskgraph import TaskGraph
from .engine import OnlineEngine
from .metrics import OnlineResult
from .workload import Job, Workload, make_arrivals


def build_workload_from_payload(
    graph: TaskGraph, online: dict, name: str = "job"
) -> Workload:
    """The job stream of one online cell: ``jobs`` instances of the
    cell's graph released by the cell's arrival process."""
    count = int(online.get("jobs", 8))
    seed = int(online.get("seed", 0))
    arrival = online.get("arrival", "poisson")
    times = make_arrivals(arrival, count, seed=seed)
    return Workload(
        [Job(j, f"{name}#{j}", graph, t) for j, t in enumerate(times)]
    )


def run_online_cell(
    task: dict, graph: TaskGraph, platform: Platform
) -> dict:
    """Execute one campaign cell's online simulation; returns the
    JSON-able ``CellResult`` row (the worker-side analogue of
    :func:`repro.experiments.harness.run_cell`)."""
    from ..experiments.harness import CellResult
    from .policies import make_policy

    online = task["online"]
    heuristic = task["heuristic"]
    spec = online.get("policy", "static")
    name = spec["name"] if isinstance(spec, dict) else spec.partition(":")[0]
    overrides = {}
    if name != "ready-dispatch":
        # the campaign's heuristic axis is the policy's planner
        overrides = {
            "heuristic": heuristic["name"],
            "heuristic_kwargs": heuristic["kwargs"],
            "model": task["model"],
        }
    policy = make_policy(spec, **overrides)
    workload = build_workload_from_payload(
        graph, online, name=f"{task['graph']['testbed']}-{task['graph']['size']}"
    )
    engine = OnlineEngine(
        platform,
        policy,
        noise=online.get("noise", "exact"),
        seed=int(online.get("seed", 0)),
        log_events=False,
    )
    t0 = time.perf_counter()
    result = engine.run(workload)
    runtime = time.perf_counter() - t0
    if task.get("validate", True):
        from .metrics import check_execution

        check_execution(result)
    agg = result.aggregate()
    sequential = sum(
        platform.sequential_time(j.graph.total_weight()) for j in workload
    )
    horizon = result.horizon
    cell = CellResult(
        figure=task["campaign"],
        testbed=task["graph"]["testbed"],
        size=task["graph"]["size"],
        num_tasks=agg["tasks"],
        heuristic=task["label"],
        model=task["model"],
        makespan=horizon,
        speedup=sequential / horizon if horizon > 0 else float("inf"),
        num_comms=agg["total_comms"],
        total_comm_time=agg["total_comm_time"],
        utilization=result.utilization,
        lower_bound=max(
            (j.arrival + m.lower_bound for j, m in zip(workload, result.jobs)),
            default=0.0,
        ) - result.horizon_start,
        runtime_s=runtime,
        extra={
            "online": True,
            "policy": agg["policy"],
            "noise": agg["noise"],
            "jobs": agg["jobs"],
            "events": agg["events"],
            "events_per_s": round(result.events_per_s, 1),
            "mean_flow": agg["mean_flow"],
            "max_flow": agg["max_flow"],
            "mean_stretch": agg["mean_stretch"],
            "max_stretch": agg["max_stretch"],
            "weighted_flow": agg["weighted_flow"],
            "reschedules": agg["reschedules"],
        },
    )
    return cell.as_dict()


def online_result_summary(result: OnlineResult) -> dict:
    """Flat JSON-able summary (CLI ``--json`` payload)."""
    agg = result.aggregate()
    return {
        "policy": result.policy,
        "noise": result.noise,
        "seed": result.seed,
        "aggregate": agg,
        "events_per_s": round(result.events_per_s, 1),
        "jobs": [
            {
                "index": j.index,
                "name": j.name,
                "tasks": j.tasks,
                "weight": j.weight,
                "arrival": j.arrival,
                "first_start": j.first_start,
                "completion": j.completion,
                "flow": j.flow,
                "makespan": j.makespan,
                "stretch": j.stretch,
                "weighted_flow": j.weighted_flow,
                "lower_bound": j.lower_bound,
                "planned_makespan": j.planned_makespan,
                "reschedules": j.reschedules,
                "comms": j.comms,
                "comm_time": j.comm_time,
            }
            for j in result.jobs
        ],
    }
