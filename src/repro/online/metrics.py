"""Online-scheduling metrics: per-job flow/stretch, platform aggregates.

The metric vocabulary follows the online-scheduling literature (flow
time, stretch, weighted flow — the objectives of SELFISHMIGRATE-style
analyses) rather than the single-DAG makespan the offline harness
reports:

* **flow time** ``F_j = C_j - r_j`` — completion minus release;
* **stretch** ``F_j / LB_j`` — flow relative to the job's offline
  makespan *lower bound* on this platform (a policy-independent
  denominator, so stretches are comparable across policies);
* **weighted flow** ``w_j * F_j``;
* **job makespan** ``C_j`` minus the job's first activity start — time
  the job spent in service, excluding queueing delay before it touched
  the platform.

:func:`check_execution` is the online analogue of the offline schedule
validator: it re-checks resource exclusivity (compute, send port,
receive port — across *all* jobs), precedence, and release-time
causality from the raw executed activities, independent of the engine's
bookkeeping.  Durations are whatever the noise model drew, so the
offline duration check does not apply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import fmean

from ..core.exceptions import ValidationError
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.tolerance import guard_tol


@dataclass(frozen=True)
class JobMetrics:
    """Final metrics of one job."""

    index: int
    name: str
    tasks: int
    weight: float
    arrival: float
    first_start: float
    completion: float
    flow: float
    makespan: float
    stretch: float
    weighted_flow: float
    lower_bound: float
    planned_makespan: float
    reschedules: int
    comms: int
    comm_time: float


@dataclass
class OnlineResult:
    """Everything one engine run produced."""

    policy: dict
    noise: dict
    seed: int
    workload: object
    platform: Platform
    jobs: list[JobMetrics]
    #: Per job index: executed ``(task, proc, start, finish)`` rows.
    placements: dict[int, list]
    #: Executed transfers: ``(job, src, dst, from_proc, to_proc, start,
    #: finish, data)``.
    transfers: list[tuple]
    horizon_start: float
    horizon_end: float
    utilization: float
    events: int
    wall_s: float
    event_log: list[tuple] = field(default_factory=list)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> float:
        return self.horizon_end - self.horizon_start

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else float("inf")

    def aggregate(self) -> dict:
        """Headline numbers of the whole run as a plain dict."""
        jobs = self.jobs
        flows = [j.flow for j in jobs]
        stretches = [j.stretch for j in jobs]
        return {
            "policy": self.policy.get("name", "?"),
            "noise": self.noise.get("name", "?"),
            "jobs": len(jobs),
            "tasks": sum(j.tasks for j in jobs),
            "events": self.events,
            "horizon": self.horizon,
            "batch_makespan": self.horizon,
            "utilization": self.utilization,
            "mean_flow": fmean(flows) if flows else 0.0,
            "max_flow": max(flows, default=0.0),
            "mean_stretch": fmean(stretches) if stretches else 0.0,
            "max_stretch": max(stretches, default=0.0),
            "weighted_flow": sum(j.weighted_flow for j in jobs),
            "total_comms": sum(j.comms for j in jobs),
            "total_comm_time": sum(j.comm_time for j in jobs),
            "reschedules": sum(j.reschedules for j in jobs),
        }

    # ------------------------------------------------------------------
    # per-job schedules
    # ------------------------------------------------------------------
    def schedule_of(self, index: int) -> Schedule:
        """The executed (actual-time) schedule of one job."""
        jobs = {j.index: j for j in self.workload}
        job = jobs[index]
        out = Schedule(
            job.graph,
            self.platform,
            model="one-port",
            heuristic=f"online({self.policy.get('name', '?')})",
        )
        for task, proc, start, finish in self.placements[index]:
            out.place(task, proc, start, finish)
        for jix, src, dst, a, b, start, finish, data in self.transfers:
            if jix == index:
                out.record_comm(src, dst, a, b, start, finish - start, data)
        return out

    def schedules(self) -> list[Schedule]:
        return [self.schedule_of(j.index) for j in self.jobs]


def check_execution(result: OnlineResult) -> None:
    """Independent validity check of an executed online run.

    Re-derives, from the raw placement/transfer rows alone:

    * every job's every task executed exactly once, at or after arrival;
    * compute exclusivity per processor across all jobs;
    * one-port exclusivity per send port and per receive port across
      all jobs;
    * precedence: a transfer starts no earlier than its source task
      finishes, a task starts no earlier than each incoming transfer
      finishes (and no earlier than co-located parents finish).

    Raises :class:`~repro.core.exceptions.ValidationError` on the first
    violation.  Overlap comparisons use the internal guard tolerance —
    the engine chains exact floats, so only ULP-level slack is allowed.
    """
    arrivals = {j.index: j.arrival for j in result.jobs}
    graphs = {j.index: j.graph for j in result.workload}

    by_proc: dict[int, list] = {}
    #: ``(job, task) -> (proc, start, finish)`` of the executed task.
    times: dict[tuple, tuple[int, float, float]] = {}
    for jix, rows in result.placements.items():
        graph = graphs[jix]
        seen = set()
        for task, proc, start, finish in rows:
            if task in seen:
                raise ValidationError(f"job {jix}: task {task!r} executed twice")
            seen.add(task)
            if start < arrivals[jix] - guard_tol(start, arrivals[jix]):
                raise ValidationError(
                    f"job {jix}: task {task!r} starts at {start} before "
                    f"its arrival at {arrivals[jix]}"
                )
            by_proc.setdefault(proc, []).append((start, finish, jix, task))
            times[(jix, task)] = (proc, start, finish)
        missing = [v for v in graph.tasks() if v not in seen]
        if missing:
            raise ValidationError(
                f"job {jix}: {len(missing)} task(s) never executed, "
                f"e.g. {missing[:5]!r}"
            )
    for proc, rows in by_proc.items():
        rows.sort(key=lambda r: (r[0], r[1]))
        for a, b in zip(rows, rows[1:]):
            if a[1] > b[0] + guard_tol(a[1], b[0]):
                raise ValidationError(
                    f"P{proc}: task {a[3]!r} (job {a[2]}) [{a[0]}, {a[1]}) "
                    f"overlaps {b[3]!r} (job {b[2]}) [{b[0]}, {b[1]})"
                )

    send: dict[int, list] = {}
    recv: dict[int, list] = {}
    arrival_via: dict[tuple, float] = {}
    for jix, src, dst, a, b, start, finish, _data in result.transfers:
        sproc, _sstart, sfinish = times[(jix, src)]
        if sproc != a:
            raise ValidationError(
                f"job {jix}: transfer {src!r}->{dst!r} leaves P{a} but "
                f"{src!r} ran on P{sproc}"
            )
        if start < sfinish - guard_tol(start, sfinish):
            raise ValidationError(
                f"job {jix}: transfer {src!r}->{dst!r} starts at {start} "
                f"before {src!r} finishes at {sfinish}"
            )
        send.setdefault(a, []).append((start, finish, jix, src, dst))
        recv.setdefault(b, []).append((start, finish, jix, src, dst))
        arrival_via[(jix, src, dst)] = finish
    for direction, groups in (("send", send), ("receive", recv)):
        for proc, rows in groups.items():
            rows.sort(key=lambda r: (r[0], r[1]))
            for a, b in zip(rows, rows[1:]):
                if a[1] > b[0] + guard_tol(a[1], b[0]):
                    raise ValidationError(
                        f"one-port violation on P{proc} ({direction}): "
                        f"{a[3]!r}->{a[4]!r} (job {a[2]}) [{a[0]}, {a[1]}) "
                        f"overlaps {b[3]!r}->{b[4]!r} (job {b[2]}) "
                        f"[{b[0]}, {b[1]})"
                    )

    for jix, graph in graphs.items():
        for u, v in graph.edges():
            pu, _su, fu = times[(jix, u)]
            pv, start_v, _fv = times[(jix, v)]
            arr = arrival_via.get((jix, u, v))
            if arr is None:
                if pu != pv:
                    raise ValidationError(
                        f"job {jix}: remote edge {u!r}->{v!r} "
                        f"(P{pu} -> P{pv}) executed without a transfer"
                    )
                arr = fu
            if start_v < arr - guard_tol(start_v, arr):
                raise ValidationError(
                    f"job {jix}: task {v!r} starts at {start_v} before its "
                    f"data from {u!r} arrives at {arr}"
                )


def format_jobs(result: OnlineResult) -> str:
    """Human-readable per-job table plus the aggregate line."""
    lines = [
        f"{'job':>4} {'tasks':>6} {'arrival':>10} {'complete':>10} "
        f"{'flow':>10} {'stretch':>8} {'resch':>6} {'comms':>6}"
    ]
    for j in result.jobs:
        lines.append(
            f"{j.index:>4} {j.tasks:>6} {j.arrival:>10.1f} {j.completion:>10.1f} "
            f"{j.flow:>10.1f} {j.stretch:>8.2f} {j.reschedules:>6} {j.comms:>6}"
        )
    agg = result.aggregate()
    lines.append(
        f"\n{agg['jobs']} job(s), {agg['tasks']} tasks, {agg['events']} events "
        f"in horizon {agg['horizon']:.1f} (utilization {agg['utilization']:.0%})"
    )
    lines.append(
        f"mean flow {agg['mean_flow']:.1f}  max flow {agg['max_flow']:.1f}  "
        f"mean stretch {agg['mean_stretch']:.2f}  "
        f"weighted flow {agg['weighted_flow']:.1f}"
    )
    return "\n".join(lines)
