"""Execution-time noise models: how actual durations deviate from estimates.

The schedulers plan with the platform's cost model (``w * t`` exec
times, ``data * link`` transfer times); the online engine executes with
*actual* durations drawn from a noise model.  Policies never see a draw
before the activity finishes — the simulation is non-clairvoyant.

Determinism: the engine derives one :class:`random.Random` per activity
from ``(engine seed, job index, activity identity)``, so an activity's
actual duration is a pure function of the workload content and the
seed — independent of event interleaving, the policy in charge, or how
many campaign workers share the sweep.

Built-in models
---------------
``exact``
    Actual == estimate (the zero-noise regime the static cross-check
    tests rely on; the engine skips RNG construction entirely).
``lognormal``
    Mean-preserving multiplicative jitter: estimate times
    ``Lognormal(-sigma^2/2, sigma)`` (mean 1.0).
``straggler``
    Lognormal jitter plus a rare slowdown: with probability ``prob``
    the activity takes ``factor`` times longer (the fat tail of shared
    clusters).
"""

from __future__ import annotations

import random
from collections.abc import Callable

from ..core.exceptions import ConfigurationError
from .workload import resolve_spec


class NoiseModel:
    """Base: draw an actual duration from an estimate."""

    name: str = ""
    #: True when draws never need an RNG (the engine skips seeding).
    exact: bool = False

    def draw(self, estimate: float, rng: random.Random) -> float:
        raise NotImplementedError

    def payload(self) -> dict:
        """JSON-able content identity (hashed into campaign cell keys)."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ExactNoise(NoiseModel):
    name = "exact"
    exact = True

    def draw(self, estimate: float, rng: random.Random) -> float:
        return estimate


class LognormalNoise(NoiseModel):
    name = "lognormal"

    def __init__(self, sigma: float = 0.2) -> None:
        if sigma < 0:
            raise ConfigurationError(f"lognormal noise needs sigma >= 0, got {sigma}")
        self.sigma = sigma
        # E[lognormvariate(mu, sigma)] = exp(mu + sigma^2/2) = 1.0
        self._mu = -0.5 * sigma * sigma

    def draw(self, estimate: float, rng: random.Random) -> float:
        if self.sigma == 0.0 or estimate == 0.0:
            return estimate
        return estimate * rng.lognormvariate(self._mu, self.sigma)

    def payload(self) -> dict:
        return {"name": self.name, "sigma": self.sigma}


class StragglerNoise(NoiseModel):
    name = "straggler"

    def __init__(
        self, prob: float = 0.02, factor: float = 5.0, sigma: float = 0.1
    ) -> None:
        if not 0.0 <= prob <= 1.0:
            raise ConfigurationError(f"straggler prob must be in [0, 1], got {prob}")
        if factor < 1.0:
            raise ConfigurationError(f"straggler factor must be >= 1, got {factor}")
        self.prob = prob
        self.factor = factor
        self.jitter = LognormalNoise(sigma)

    def draw(self, estimate: float, rng: random.Random) -> float:
        actual = self.jitter.draw(estimate, rng)
        if self.prob and rng.random() < self.prob:
            actual *= self.factor
        return actual

    def payload(self) -> dict:
        return {
            "name": self.name,
            "prob": self.prob,
            "factor": self.factor,
            "sigma": self.jitter.sigma,
        }


_NOISES: dict[str, Callable[..., NoiseModel]] = {
    "exact": ExactNoise,
    "lognormal": LognormalNoise,
    "straggler": StragglerNoise,
}

#: Primary parameter bound by the ``name:value`` positional shorthand.
_NOISE_PRIMARY = {"lognormal": "sigma", "straggler": "prob"}


def available_noise_models() -> list[str]:
    return sorted(_NOISES)


def make_noise(spec: str | dict | NoiseModel) -> NoiseModel:
    """Build a noise model from ``"lognormal:sigma=0.3"`` / dict / instance."""
    if isinstance(spec, NoiseModel):
        return spec
    name, params = resolve_spec(
        spec,
        key="name",
        primaries=_NOISE_PRIMARY,
        available=available_noise_models(),
        what="noise model",
    )
    try:
        return _NOISES[name](**params)
    except TypeError as exc:
        raise ConfigurationError(f"bad noise spec {spec!r}: {exc}") from None
