"""Rescheduling policies: how a job stream is placed and reacted to.

A :class:`Policy` is the decision-making half of the online simulator
(the engine owns time and resources).  Policies are registered by name,
mirroring the heuristics registry, and are constructed from compact
specs (``"periodic:period=500"``) by :func:`make_policy`.

Built-in policies
-----------------
``static``
    Schedule each job at arrival with a registered heuristic, then
    execute the plan open loop — drift is absorbed, never corrected.
``periodic``
    Static planning plus a clairvoyance-free repair loop: every
    ``period`` time units, every in-flight job's not-yet-started tasks
    are re-planned with the same heuristic from the current state.
``reactive``
    Static planning plus drift-triggered repair: after each activity
    whose observed finish deviates from the plan, the job's completion
    is re-predicted through the flat kernel with observed durations
    (``propagate_kahn(dur=...)``), and the job is re-planned when the
    prediction drifts more than ``threshold`` (relative to the planned
    makespan).
``ready-dispatch``
    No plan at all: each task is dispatched when its last parent
    finishes, to the processor minimizing its estimated finish time
    under one-port-aware port/compute availability estimates — the
    non-clairvoyant online baseline.

Replanning never moves work the platform is already committed to: a
task is *pinned* once it has started or any of its input transfers has
started (shipped data is never re-shipped); everything else may move.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.exceptions import ConfigurationError
from ..core.taskgraph import TaskGraph
from ..heuristics import get_scheduler
from ..kernel import TimedKernel, compile_statics
from ..kernel.backends import current_backend
from ..models import available_models
from .engine import (
    BLOCKED,
    CANCELLED,
    COMM,
    DONE,
    RELEASED,
    RUNNING,
    TASK,
    JobState,
    OnlineEngine,
)
from .workload import resolve_spec


class Policy:
    """Base policy: engine callbacks plus content identity."""

    name: str = ""

    def __init__(self) -> None:
        self.engine: OnlineEngine | None = None

    def bind(self, engine: OnlineEngine) -> None:
        """Attach to one engine run and reset per-run state."""
        self.engine = engine

    def on_arrival(self, jstate: JobState) -> None:
        raise NotImplementedError

    def on_activity_finish(self, jstate: JobState, act) -> None:
        pass

    def on_tick(self) -> None:
        pass

    def payload(self) -> dict:
        """JSON-able content identity (hashed into campaign cell keys)."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class PlanningPolicy(Policy):
    """Shared base of the plan-carrying policies: heuristic + model.

    Planning and re-planning run the heuristic through the flat builder
    ``SchedulerState`` (every registered heuristic does), so policy
    wake-ups pay the flat construction cost, not the object path's.
    """

    def __init__(
        self,
        heuristic: str = "heft",
        heuristic_kwargs: dict | None = None,
        model="one-port",
    ) -> None:
        super().__init__()
        self.heuristic = heuristic
        self.heuristic_kwargs = dict(heuristic_kwargs or {})
        self.model = model
        # fail on a bad heuristic or model name here, not mid-simulation
        self.scheduler = get_scheduler(heuristic, **self.heuristic_kwargs)
        if isinstance(model, str) and model not in available_models():
            raise ConfigurationError(
                f"unknown communication model {model!r}; "
                f"available: {available_models()}"
            )
        self._plan_cache: dict[int, tuple] = {}

    def bind(self, engine: OnlineEngine) -> None:
        super().bind(engine)
        self._plan_cache = {}

    def plan(self, graph):
        """The heuristic's schedule for ``graph``, memoized per graph.

        Workloads typically release many instances of one graph object;
        the plan is a pure function of (graph, platform, model), so one
        heuristic run serves the whole stream.  The cache entry pins the
        graph so an ``id()`` can never be recycled mid-run.
        """
        hit = self._plan_cache.get(id(graph))
        if hit is None:
            schedule = self.scheduler.run(graph, self.engine.platform, self.model)
            self._plan_cache[id(graph)] = (graph, schedule)
            return schedule
        return hit[1]

    def on_arrival(self, jstate: JobState) -> None:
        self.engine.install_plan(jstate, self.plan(jstate.job.graph))

    def payload(self) -> dict:
        model = self.model if isinstance(self.model, str) else type(self.model).__name__
        return {
            "name": self.name,
            "heuristic": {"name": self.heuristic, "kwargs": self.heuristic_kwargs},
            "model": model,
        }


class StaticPolicy(PlanningPolicy):
    """Plan at arrival, execute open loop."""

    name = "static"


# ----------------------------------------------------------------------
# replanning machinery (shared by periodic and reactive)
# ----------------------------------------------------------------------
def movable_tasks(jstate: JobState) -> list:
    """Tasks whose placement may still change, in topological order.

    A task is movable when (a) it has not started, (b) none of its
    input transfers has started or finished (shipped or in-flight data
    pins a task to its destination), and (c) every graph parent is
    either *finished* or itself movable.  Condition (c) closes
    movability transitively: a precedence path between two movable
    tasks then lies wholly inside the movable set, so the remaining
    subgraph the heuristic re-plans contains every precedence
    constraint among them — without it, the sub-plan's processor/port
    orders could contradict a dependency routed through a pinned
    in-flight task and deadlock the execution.
    """
    statics = jstate.statics
    task_acts = jstate.task_acts
    in_comms = jstate.in_comms
    esrc = statics.esrc
    movable: set[int] = set()
    out = []
    for ti in statics.topo_ix:
        task = statics.tasks[ti]
        act = task_acts[task]
        if act.state not in (BLOCKED, RELEASED):
            continue
        if any(c.state in (RUNNING, DONE) for c in in_comms.get(task, ())):
            continue
        if any(
            e_src not in movable and task_acts[statics.tasks[e_src]].state != DONE
            for e_src in (esrc[e] for e in statics.pred_rows[ti])
        ):
            continue
        movable.add(ti)
        out.append(task)
    return out


def replan_job(engine: OnlineEngine, jstate: JobState, scheduler, model) -> bool:
    """Re-plan a job's movable tasks with ``scheduler`` from current state.

    Cancels every not-yet-started activity of the movable set (task
    executions, their input transfers, and transfers they source), runs
    the heuristic on the *remaining subgraph*, and installs the new
    sub-plan: new activities wired with the sub-plan's order edges plus
    boundary dependencies from pinned parents (a transfer activity when
    the data must cross processors, a plain precedence edge otherwise).
    Returns False when nothing can move.
    """
    movable = set(movable_tasks(jstate))
    if not movable:
        return False
    graph = jstate.job.graph
    statics = jstate.statics
    now = engine.now

    # -- cancel the movable closure ------------------------------------
    cancelled = []
    for task in movable:
        act = jstate.task_acts[task]
        act.state = CANCELLED
        cancelled.append(act)
        for c in jstate.in_comms.get(task, ()):
            if c.state in (BLOCKED, RELEASED):
                c.state = CANCELLED
                cancelled.append(c)
    # transfers sourced by a movable task feed pinned consumers; they
    # cannot have started (their source has not finished) and their
    # endpoints are stale once the source moves
    for task, comms in jstate.in_comms.items():
        if task in movable:
            continue
        for c in comms:
            if c.state in (BLOCKED, RELEASED):
                e = c.node - statics.num_tasks
                if statics.tasks[statics.esrc[e]] in movable:
                    c.state = CANCELLED
                    cancelled.append(c)
    # surviving blocked activities that waited on a cancelled one lose
    # that predecessor (the new plan re-adds boundary edges explicitly)
    released_now = []
    for act in cancelled:
        for succ in act.succs:
            if succ.state == BLOCKED:
                succ.npred -= 1
                if not succ.npred:
                    released_now.append(succ)

    # -- re-plan the remaining subgraph --------------------------------
    sub = TaskGraph(name=f"{graph.name}@t{now:g}")
    order = [v for v in statics.tasks if v in movable]
    for v in order:
        sub.add_task(v, graph.weight(v))
    for u, v in graph.edges():
        if u in movable and v in movable:
            sub.add_dependency(u, v, graph.data(u, v))
    schedule = scheduler.run(sub, engine.platform, model)

    from ..simulate import extract_decisions

    sub_statics = compile_statics(sub, engine.platform)
    kern = TimedKernel.from_decisions(sub_statics, extract_decisions(schedule))
    current_backend().propagate(kern)
    jstate.kernel = kern
    jstate.plan_offset = now
    jstate.planned_ms = kern.makespan
    jstate.reschedules += 1
    acts = engine.build_plan_activities(jstate, kern)

    # -- boundary dependencies from pinned parents ---------------------
    platform = engine.platform
    for v in order:
        v_act = jstate.task_acts[v]
        ti = sub_statics.tindex[v]
        for u in graph.predecessors(v):
            if u in movable:
                continue  # handled by the sub-plan
            u_act = jstate.task_acts[u]
            p_u = u_act.procs[0]
            p_v = kern.alloc[ti]
            if p_u == p_v:
                if u_act.state != DONE:
                    u_act.succs.append(v_act)
                    v_act.npred += 1
                continue
            data = graph.data(u, v)
            c = engine.new_activity(
                jstate,
                COMM,
                statics.num_tasks + statics.eindex[(u, v)],
                f"{u}->{v}",
                platform.comm_time(data, p_u, p_v),
                (engine.send_rid(p_u), engine.recv_rid(p_v)),
            )
            c.procs = (p_u, p_v)
            c.data = data
            c.succs = [v_act]
            v_act.npred += 1
            jstate.in_comms[v].append(c)
            if u_act.state == DONE:
                engine.activate(c)
            else:
                u_act.succs.append(c)
                c.npred = 1

    # -- boundary dependencies toward pinned consumers -----------------
    # a movable task may feed a task that is pinned (e.g. its other
    # input transfer already started); the cancelled transfer between
    # them must be re-established from the source's new placement
    for u in order:
        u_act = jstate.task_acts[u]
        p_u = u_act.procs[0]
        for v in graph.successors(u):
            if v in movable:
                continue
            v_act = jstate.task_acts[v]
            p_v = v_act.procs[0]
            if p_u == p_v:
                u_act.succs.append(v_act)
                v_act.npred += 1
                continue
            data = graph.data(u, v)
            c = engine.new_activity(
                jstate,
                COMM,
                statics.num_tasks + statics.eindex[(u, v)],
                f"{u}->{v}",
                platform.comm_time(data, p_u, p_v),
                (engine.send_rid(p_u), engine.recv_rid(p_v)),
            )
            c.procs = (p_u, p_v)
            c.data = data
            c.npred = 1
            c.succs = [v_act]
            v_act.npred += 1
            u_act.succs.append(c)
            jstate.in_comms[v].append(c)

    for act in acts.values():
        engine.activate(act)
    for act in released_now:
        if act.state == BLOCKED and not act.npred:
            engine.activate(act)
    return True


class PeriodicPolicy(PlanningPolicy):
    """Re-plan every in-flight job every ``period`` time units."""

    name = "periodic"

    def __init__(self, period: float = 500.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if period <= 0:
            raise ConfigurationError(f"periodic policy needs period > 0, got {period}")
        self.period = period
        self._armed = False

    def bind(self, engine: OnlineEngine) -> None:
        super().bind(engine)
        self._armed = False

    def on_arrival(self, jstate: JobState) -> None:
        super().on_arrival(jstate)
        if not self._armed:
            self._armed = True
            self.engine.push_tick(self.period)

    def on_tick(self) -> None:
        if not self.engine.active_jobs:
            self._armed = False
            return
        for jstate in self.engine.jobs:
            if jstate.arrived and not jstate.complete:
                replan_job(self.engine, jstate, self.scheduler, self.model)
        self.engine.push_tick(self.period)

    def payload(self) -> dict:
        return {**super().payload(), "period": self.period}


class ReactivePolicy(PlanningPolicy):
    """Re-plan a job when its re-predicted completion drifts too far.

    After each finished activity whose observed duration deviates from
    the estimate, the job's completion is re-predicted by one flat
    kernel pass with observed durations substituted for the finished
    nodes (the ``propagate_kahn(dur=...)`` hook); a relative drift
    beyond ``threshold`` triggers a re-plan of the movable tasks.
    """

    name = "reactive"

    def __init__(self, threshold: float = 0.1, **kwargs) -> None:
        super().__init__(**kwargs)
        if threshold <= 0:
            raise ConfigurationError(
                f"reactive policy needs threshold > 0, got {threshold}"
            )
        self.threshold = threshold

    def on_arrival(self, jstate: JobState) -> None:
        super().on_arrival(jstate)
        jstate.data["observed"] = dict()

    def on_activity_finish(self, jstate: JobState, act) -> None:
        if jstate.complete or act.planned is None:
            return
        kern = jstate.kernel
        observed = jstate.data.setdefault("observed", {})
        # node ids are graph-stable; map into the *current* plan kernel
        observed[act.node] = act.dur
        if act.dur == act.est:
            return
        n_full = jstate.statics.num_tasks
        statics = kern.statics
        dur = list(kern.dur)
        if statics is jstate.statics:
            for node, d in observed.items():
                dur[node] = d
        else:
            # sub-plan kernel: translate full-graph node ids
            n_sub = statics.num_tasks
            tindex, eindex = statics.tindex, statics.eindex
            full = jstate.statics
            for node, d in observed.items():
                if node < n_full:
                    i = tindex.get(full.tasks[node])
                    if i is not None:
                        dur[i] = d
                else:
                    e = eindex.get(full.edges[node - n_full])
                    if e is not None:
                        dur[n_sub + e] = d
        size = len(dur)
        predicted = current_backend().propagate(
            kern, dur=dur, out_start=[0.0] * size, out_finish=[0.0] * size
        )
        drift = abs(predicted - jstate.planned_ms)
        if drift > self.threshold * max(jstate.planned_ms, 1.0):
            replan_job(self.engine, jstate, self.scheduler, self.model)

    def payload(self) -> dict:
        return {**super().payload(), "threshold": self.threshold}


class ReadyDispatchPolicy(Policy):
    """Online min-EFT over ready tasks: no plan, no clairvoyance.

    Each task is dispatched the moment its last parent finishes, to the
    processor minimizing its estimated finish time given the policy's
    running availability estimates of every compute resource and port
    (one transfer at a time per port — one-port aware).  Transfers for
    remote parents are booked first-finished-first, mirroring the
    offline EFT engine's greedy message order.
    """

    name = "ready-dispatch"

    def __init__(self) -> None:
        super().__init__()
        self._proc_est: list[float] = []
        self._send_est: list[float] = []
        self._recv_est: list[float] = []

    def bind(self, engine: OnlineEngine) -> None:
        super().bind(engine)
        num = engine.platform.num_processors
        self._proc_est = [0.0] * num
        self._send_est = [0.0] * num
        self._recv_est = [0.0] * num

    def on_arrival(self, jstate: JobState) -> None:
        graph = jstate.job.graph
        jstate.data["indeg"] = {v: graph.in_degree(v) for v in graph.tasks()}
        jstate.in_comms = {}
        for v in graph.tasks():
            if not jstate.data["indeg"][v]:
                self._dispatch(jstate, v)

    def on_activity_finish(self, jstate: JobState, act) -> None:
        if act.kind != TASK:
            return
        indeg = jstate.data["indeg"]
        for child in jstate.job.graph.successors(act.label):
            indeg[child] -= 1
            if not indeg[child]:
                self._dispatch(jstate, child)

    def _dispatch(self, jstate: JobState, task) -> None:
        engine = self.engine
        statics = jstate.statics
        now = engine.now
        ti = statics.tindex[task]
        exec_row = statics.exec_[ti]
        link_rows = statics.link_rows
        # parents are all DONE (that is what made the task ready)
        parents = []
        for e in statics.pred_rows[ti]:
            p_act = jstate.task_acts[statics.tasks[statics.esrc[e]]]
            parents.append((p_act.finish, e, p_act))
        parents.sort(key=lambda it: (it[0], it[1]))

        best = None
        for p in range(engine.platform.num_processors):
            send = self._send_est
            recv_p = max(self._recv_est[p], now)
            arrival = now
            booked = []
            send_over: dict[int, float] = {}
            for pfinish, e, p_act in parents:
                pp = p_act.procs[0]
                if pp == p:
                    arr = pfinish
                else:
                    s = max(send_over.get(pp, send[pp]), recv_p, pfinish, now)
                    f = s + statics.edata[e] * link_rows[pp][p]
                    send_over[pp] = f
                    recv_p = f
                    booked.append((e, p_act, s, f))
                    arr = f
                if arr > arrival:
                    arrival = arr
            start = max(self._proc_est[p], arrival)
            finish = start + exec_row[p]
            key = (finish, start, p)
            if best is None or key < best[0]:
                best = (key, p, booked, send_over, recv_p)

        key, p, booked, send_over, recv_est = best
        act = engine.new_activity(jstate, TASK, ti, task, exec_row[p], (p,))
        act.procs = (p,)
        jstate.task_acts[task] = act
        comms = jstate.in_comms.setdefault(task, [])
        for e, p_act, _s, _f in booked:
            pp = p_act.procs[0]
            c = engine.new_activity(
                jstate,
                COMM,
                statics.num_tasks + e,
                f"{p_act.label}->{task}",
                statics.edata[e] * link_rows[pp][p],
                (engine.send_rid(pp), engine.recv_rid(p)),
            )
            c.procs = (pp, p)
            c.data = statics.edata[e]
            c.succs = [act]
            act.npred += 1
            comms.append(c)
            engine.activate(c)
        # commit the availability estimates of the winning candidate
        for pp, f in send_over.items():
            self._send_est[pp] = f
        self._recv_est[p] = max(self._recv_est[p], recv_est)
        self._proc_est[p] = key[1] + exec_row[p]
        act.planned = None
        engine.activate(act)


_POLICIES: dict[str, Callable[..., Policy]] = {
    "static": StaticPolicy,
    "periodic": PeriodicPolicy,
    "reactive": ReactivePolicy,
    "ready-dispatch": ReadyDispatchPolicy,
}

#: Primary parameter bound by the ``name:value`` positional shorthand.
_POLICY_PRIMARY = {"periodic": "period", "reactive": "threshold"}


def available_policies() -> list[str]:
    return sorted(_POLICIES)


def make_policy(spec: str | dict | Policy, **overrides) -> Policy:
    """Build a policy from ``"periodic:period=500"`` / dict / instance.

    ``overrides`` (e.g. the campaign's heuristic axis) take precedence
    over same-named parameters in the spec.
    """
    if isinstance(spec, Policy):
        if overrides:
            raise ConfigurationError(
                "cannot apply overrides to an already-built policy instance"
            )
        return spec
    name, params = resolve_spec(
        spec,
        key="name",
        primaries=_POLICY_PRIMARY,
        available=available_policies(),
        what="policy",
    )
    params.update(overrides)
    try:
        return _POLICIES[name](**params)
    except TypeError as exc:
        raise ConfigurationError(f"bad policy spec {spec!r}: {exc}") from None
