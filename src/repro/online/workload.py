"""Dynamic workloads: jobs, and the seeded arrival processes that emit them.

A :class:`Job` is one instance of a task graph submitted to the platform
at a release time; a :class:`Workload` is the finite, sorted stream of
jobs one online simulation processes.  Arrival processes are registered
by name — mirroring the heuristic/testbed registries — and are fully
determined by their parameters and a seed, so a workload is content:
two engines fed the same spec build bit-identical job streams.

Built-in arrival processes
--------------------------
``poisson``
    Exponential inter-arrival gaps at ``rate`` jobs per time unit
    (the classic memoryless stream of queueing models).
``burst``
    Jobs arrive in bursts of ``size`` simultaneous submissions every
    ``gap`` time units — the adversarial load pattern for port
    contention.
``trace``
    An explicit list of arrival ``times`` (recycled if shorter than the
    requested job count, offset by the trace span per cycle).
"""

from __future__ import annotations

import ast
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..core.exceptions import ConfigurationError
from ..core.taskgraph import TaskGraph
from ..graphs import generator_params, make_testbed
from ..graphs.base import PAPER_COMM_RATIO

ArrivalFn = Callable[..., list[float]]

_ARRIVALS: dict[str, ArrivalFn] = {}


def register_arrival(name: str) -> Callable[[ArrivalFn], ArrivalFn]:
    """Decorator registering an arrival process under ``name``.

    The wrapped function receives ``(count, rng, **params)`` and returns
    ``count`` non-negative release times (any order; callers sort).
    """

    def wrap(fn: ArrivalFn) -> ArrivalFn:
        if name in _ARRIVALS:
            raise ConfigurationError(f"duplicate arrival process {name!r}")
        _ARRIVALS[name] = fn
        return fn

    return wrap


def available_arrivals() -> list[str]:
    return sorted(_ARRIVALS)


@register_arrival("poisson")
def poisson_arrivals(count: int, rng: random.Random, rate: float = 0.01) -> list[float]:
    if rate <= 0:
        raise ConfigurationError(f"poisson arrivals need rate > 0, got {rate}")
    t = 0.0
    out = []
    for _ in range(count):
        t += rng.expovariate(rate)
        out.append(t)
    return out


@register_arrival("burst")
def burst_arrivals(
    count: int, rng: random.Random, size: int = 4, gap: float = 100.0
) -> list[float]:
    if size < 1:
        raise ConfigurationError(f"burst arrivals need size >= 1, got {size}")
    if gap < 0:
        raise ConfigurationError(f"burst arrivals need gap >= 0, got {gap}")
    return [gap * (j // size) for j in range(count)]


@register_arrival("trace")
def trace_arrivals(
    count: int, rng: random.Random, times: Sequence[float] = (0.0,)
) -> list[float]:
    if not times:
        raise ConfigurationError("trace arrivals need a non-empty times list")
    times = sorted(float(t) for t in times)
    if times[0] < 0:
        raise ConfigurationError(f"trace arrivals must be >= 0, got {times[0]}")
    span = max(times[-1] - times[0], 1.0)
    # recycle the trace for counts beyond its length, shifting each
    # cycle past the previous one so release times stay non-decreasing
    return [times[j % len(times)] + span * (j // len(times)) for j in range(count)]


def parse_spec(text: str) -> tuple[str, dict]:
    """Parse ``name`` or ``name:key=val,key=val`` into (name, params).

    Shared grammar of the online registries (arrivals, noise models,
    policies) and the CLI's heuristic syntax: values go through
    :func:`ast.literal_eval`, and a lone ``name:value`` shorthand binds
    the registry's primary parameter (e.g. ``poisson:0.02``).
    """
    name, _, rest = text.partition(":")
    params: dict = {}
    if rest:
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            if not sep:
                params.setdefault("_positional", []).append(_literal(key))
                continue
            params[key] = _literal(value)
    return name, params


def _literal(text: str):
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def resolve_spec(
    spec: str | dict,
    *,
    key: str,
    primaries: dict[str, str],
    available: list[str],
    what: str,
    list_primary: str | None = None,
) -> tuple[str, dict]:
    """Shared spec resolution of the online registries: ``(name, params)``.

    Handles both forms every registry accepts — a string
    (``"lognormal:sigma=0.3"``, with ``name:value`` binding the
    registry's primary parameter from ``primaries``) and a dict keyed
    by ``key`` (``"name"`` or ``"kind"``).  ``list_primary`` names the
    one registry entry whose positional shorthand collects *all* bare
    values (``trace:0,5,10``).  Unknown names raise with the available
    set in the message.
    """
    if isinstance(spec, dict):
        params = dict(spec)
        try:
            name = params.pop(key)
        except KeyError:
            raise ConfigurationError(
                f"{what} spec dict needs a {key!r} key, got {spec!r}"
            ) from None
    else:
        name, params = parse_spec(spec)
    positional = params.pop("_positional", None)
    if positional:
        primary = primaries.get(name)
        if (
            primary is None
            or (name != list_primary and len(positional) > 1)
            or primary in params
        ):
            raise ConfigurationError(f"bad {what} spec {spec!r}")
        params[primary] = positional if name == list_primary else positional[0]
    if name not in available:
        raise ConfigurationError(
            f"unknown {what} {name!r}; available: {sorted(available)}"
        )
    return name, params


#: Primary parameter bound by the ``name:value`` positional shorthand.
_ARRIVAL_PRIMARY = {"poisson": "rate", "burst": "size", "trace": "times"}


def make_arrivals(spec: str | dict, count: int, seed: int = 0) -> list[float]:
    """Release times of ``count`` jobs under an arrival spec.

    ``spec`` is a registry name with optional parameters (string form
    ``"poisson:rate=0.02"`` or dict form ``{"kind": "poisson",
    "rate": 0.02}``).  Times are sorted and non-negative; randomized
    processes draw from ``random.Random(seed)`` only.
    """
    name, params = resolve_spec(
        spec,
        key="kind",
        primaries=_ARRIVAL_PRIMARY,
        available=available_arrivals(),
        what="arrival process",
        list_primary="trace",
    )
    fn = _ARRIVALS[name]
    if count < 0:
        raise ConfigurationError(f"job count must be >= 0, got {count}")
    try:
        times = fn(count, random.Random(f"arrivals:{name}:{seed}"), **params)
    except TypeError as exc:
        raise ConfigurationError(f"bad arrival spec {spec!r}: {exc}") from None
    times = sorted(times)
    if times and times[0] < 0:
        raise ConfigurationError(f"arrival process {name!r} produced a negative time")
    return times


@dataclass(frozen=True)
class Job:
    """One submitted task-graph instance."""

    index: int
    name: str
    graph: TaskGraph
    arrival: float
    weight: float = 1.0


@dataclass
class Workload:
    """A finite stream of jobs, sorted by arrival time."""

    jobs: list[Job] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.jobs.sort(key=lambda j: (j.arrival, j.index))

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    @property
    def total_tasks(self) -> int:
        return sum(j.graph.num_tasks for j in self.jobs)


def make_workload(
    testbed: str,
    size: int,
    count: int,
    arrival: str | dict = "poisson",
    seed: int = 0,
    comm_ratio: float = PAPER_COMM_RATIO,
    vary_graphs: bool = False,
    weights: Sequence[float] | None = None,
    graph_params: dict | None = None,
) -> Workload:
    """A workload of ``count`` instances of one registered testbed.

    All jobs share a single graph object by default, so the kernel
    statics of the (graph, platform) pair compile once for the whole
    stream; ``vary_graphs=True`` derives a distinct generator seed per
    job for the seeded testbed families instead.  ``weights`` cycles
    over the job stream (for weighted flow time); default all 1.0.
    """
    params = dict(graph_params or {})
    seeded = "seed" in generator_params(testbed)
    if seeded:
        params.setdefault("seed", seed)
    elif vary_graphs:
        raise ConfigurationError(
            f"testbed {testbed!r} is deterministic; vary_graphs has no effect"
        )
    times = make_arrivals(arrival, count, seed=seed)
    jobs = []
    shared = None if vary_graphs else make_testbed(
        testbed, size, comm_ratio=comm_ratio, **params
    )
    for j, t in enumerate(times):
        if shared is None:
            params["seed"] = seed * 1_000_003 + j
            graph = make_testbed(testbed, size, comm_ratio=comm_ratio, **params)
        else:
            graph = shared
        weight = float(weights[j % len(weights)]) if weights else 1.0
        jobs.append(Job(j, f"{testbed}-{size}#{j}", graph, t, weight))
    return Workload(jobs)
