"""Iterated local search over schedule decisions.

This package adds an *optimization layer* on top of the one-port
heuristics: instead of building schedules, it improves the **decisions**
of an existing schedule — the allocation plus the processor/send/receive
orders — and re-times each variant with the replay recurrence of
:mod:`repro.simulate.replay`.

Representation
--------------
A decision set is represented by a :class:`~repro.search.point.SearchPoint`
``(alloc, sequence)``: an allocation plus one global topological order
of all tasks.  Every resource order is derived from the sequence
(processor orders by restriction, port orders by consumer-first
``(pos(dst), pos(src))`` keys), which makes every point feasible by
construction — no move can create a circular resource order, so the
search never wastes budget on infeasible neighbors.

Move taxonomy
-------------
``MoveTask(task, proc)``
    Reallocate one task to another processor.
``SwapTasks(a, b)``
    Exchange the processors of two tasks.
``AdjacentExchange(kind, proc, index)``
    Swap two adjacent entries of a processor (``kind="proc"``), send
    (``"send"``), or receive (``"recv"``) order — realized as the
    minimal feasible reposition of a task in the global sequence.
``Reposition(task, before)``
    The underlying sequence primitive (move a task earlier), exposed
    for custom neighborhoods.

Incremental-evaluation contract
-------------------------------
Each move reports the constraint-DAG nodes it *invalidates* — nodes
whose duration or predecessor list changes, plus transfers removed
because their edge became local
(:meth:`~repro.search.neighborhood.Move.invalidates`).  The
:class:`~repro.search.evaluate.IncrementalEvaluator` caches the timed
constraint DAG of the current point — compiled to the flat integer
arrays of :mod:`repro.kernel` — and, per move, recomputes predecessor
lists for exactly the invalidated nodes and re-propagates start/finish
times only downstream of nodes whose finish changed.  The
previewed makespan must equal the makespan of a full
:func:`~repro.simulate.replay.replay` of the new decision set — same
constraints, same least fixed point, same float operations — and the
test suite cross-checks this equality on every accepted move.

Entry points
------------
:class:`~repro.search.ils.IteratedLocalSearch` (registry name ``ils``)
wraps any registered heuristic (``ils(heft)``, ``ils(ilha)``) and is
driven from the CLI (``python -m repro search``) or from campaign grids
via ``CampaignSpec.improve``.
"""

from .evaluate import IncrementalEvaluator, MovePreview
from .ils import IteratedLocalSearch
from .neighborhood import (
    AdjacentExchange,
    Move,
    MoveTask,
    Reposition,
    SwapTasks,
    invalidated,
    propose,
)
from .point import SearchPoint, comm_node, task_node

__all__ = [
    "AdjacentExchange",
    "IncrementalEvaluator",
    "IteratedLocalSearch",
    "Move",
    "MovePreview",
    "MoveTask",
    "Reposition",
    "SearchPoint",
    "SwapTasks",
    "comm_node",
    "invalidated",
    "propose",
    "task_node",
]
