"""Incremental replay evaluation of schedule decisions, on the flat kernel.

:class:`IncrementalEvaluator` holds the timed constraint DAG of one
decision point — compiled to the integer-indexed arrays of
:mod:`repro.kernel` (task ``i`` is node ``i``, the transfer slot of
graph edge ``e`` is node ``n + e``) — and answers "what would this move
do to the makespan?" without rebuilding it.
:meth:`~IncrementalEvaluator.preview` takes the move's invalidation set
(:func:`repro.search.neighborhood.invalidated`), recomputes predecessor
lists for exactly those nodes, and asks the kernel to re-propagate
start/finish times only *downstream* of nodes whose finish actually
changed, in global key order (see :meth:`SearchPoint.key`, flattened to
a single int per node), collecting results in generation-stamped
overlays that leave the base state untouched.
:meth:`~IncrementalEvaluator.commit` folds a preview's overlay into the
base state in time proportional to the disturbance, not the graph.

Contract: for every point and every move, ``preview(move).makespan``
equals the makespan of ``replay(graph, platform, new_point.to_decisions())``
exactly — both compute the component-wise least solution of the same
constraints with the same float operations.  :meth:`cross_check`
asserts this equivalence and the test suite exercises it on every
accepted move of seeded searches.

For debugging and white-box tests, :attr:`~IncrementalEvaluator._preds`,
:attr:`~IncrementalEvaluator._start`, and
:attr:`~IncrementalEvaluator._finish` expose the kernel state as the
object-level ``("task", v)`` / ``("comm", u, v, 0)`` dictionaries the
pre-kernel implementation stored directly (rebuilt on each access — do
not use them in hot paths).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from math import isfinite

from ..core.exceptions import PlatformError, SchedulingError
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..kernel import KernelPatch, TimedKernel, compile_statics
from ..obs import current as _obs_current
from ..simulate.replay import replay
from .neighborhood import Move, invalidated
from .point import Node, SearchPoint, comm_node, task_node

TaskId = Hashable

#: Tolerance used only by :meth:`IncrementalEvaluator.cross_check`; the
#: incremental and full passes are expected to agree bit-for-bit.
CHECK_TOL = 1e-9


@dataclass(slots=True)
class MovePreview:
    """Everything one evaluated move produced, ready to commit.

    ``patch`` holds the kernel overlay (node indices, re-timed
    start/finish, replacement predecessor lists and durations);
    ``new_lists`` the rebuilt object-level resource orders keyed by
    ``(kind, proc)``.
    """

    move: Move
    point: SearchPoint
    makespan: float
    patch: KernelPatch
    new_lists: dict[tuple, list]


class IncrementalEvaluator:
    """Cached flat constraint DAG of one decision point (see module docstring)."""

    def __init__(self, graph: TaskGraph, platform: Platform) -> None:
        self.graph = graph
        self.platform = platform
        self._maps = graph.as_maps()
        self._statics = compile_statics(graph, platform)
        self._point: SearchPoint | None = None
        self._kern: TimedKernel | None = None
        self._lists: dict[tuple, list] = {}
        self._pos: list[int] | None = None
        self._makespan = 0.0
        # active obs collector, captured once (None = stats off)
        self._stats = _obs_current()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def point(self) -> SearchPoint:
        if self._point is None:
            raise SchedulingError("evaluator has no point loaded")
        return self._point

    @property
    def makespan(self) -> float:
        return self._makespan

    def load(self, point: SearchPoint) -> float:
        """Full build of the timed constraint DAG at ``point``."""
        if self._stats is None:
            return self._load(point)
        with self._stats.span("phase.search.load"):
            return self._load(point)

    def _load(self, point: SearchPoint) -> float:
        st = self._statics
        self._point = point
        self._lists = {
            (kind, p): point.resource_list(kind, p)
            for kind in ("proc", "send", "recv")
            for p in self.platform.processors
        }
        kern = TimedKernel.from_point(st, point)
        kern.build_succs()
        self._kern = kern
        self._pos = pos = self._pos_array(point)
        order = sorted(kern.active_nodes(), key=self._key_of(pos))
        self._makespan = kern.propagate_order(order)
        return self._makespan

    # ------------------------------------------------------------------
    # interning helpers
    # ------------------------------------------------------------------
    def _pos_array(self, point: SearchPoint) -> list[int]:
        """Sequence positions as an int array indexed by task index."""
        st = self._statics
        intern = st.intern
        pos = [0] * st.num_tasks
        for i, t in enumerate(point.sequence):
            pos[intern(t)] = i
        return pos

    def _key_of(self, pos: list[int]):
        """Flat int version of :meth:`SearchPoint.key` over node indices.

        Maps the lexicographic ``(pos(consumer), kind, pos(source))``
        triple to ``(2 * pos + kind) * n + pos(source)``; every
        constraint edge strictly increases it.
        """
        st = self._statics
        n, esrc, edst = st.num_tasks, st.esrc, st.edst

        def key(node: int) -> int:
            if node < n:
                return (pos[node] * 2 + 1) * n
            e = node - n
            return pos[edst[e]] * 2 * n + pos[esrc[e]]

        return key

    def _node_index(self, node: Node) -> int:
        st = self._statics
        if node[0] == "task":
            return st.tindex[node[1]]
        return st.num_tasks + st.eindex[(node[1], node[2])]

    def _node_tuple(self, ix: int) -> Node:
        st = self._statics
        if ix < st.num_tasks:
            return task_node(st.tasks[ix])
        u, v = st.edges[ix - st.num_tasks]
        return comm_node(u, v)

    # ------------------------------------------------------------------
    # incremental evaluation
    # ------------------------------------------------------------------
    def _preds_of(
        self, node: Node, ix: int, point: SearchPoint, lists: dict[tuple, list]
    ) -> list[int]:
        """Predecessor node indices of ``node`` at ``point``, using the
        patched resource lists where provided and the cached base lists
        elsewhere."""
        st = self._statics
        base = self._lists

        def order(kind: str, proc: int) -> list:
            key = (kind, proc)
            return lists[key] if key in lists else base[key]

        n, tasks, esrc = st.num_tasks, st.tasks, st.esrc
        alloc = point.alloc
        if node[0] == "task":
            v = node[1]
            av = alloc[v]
            out = [
                esrc[e] if alloc[tasks[esrc[e]]] == av else n + e
                for e in st.pred_rows[ix]
            ]
            row = order("proc", av)
            i = row.index(v)
            if i > 0:
                out.append(st.tindex[row[i - 1]])
            return out
        _, u, v, _ = node
        e = ix - n
        out = [esrc[e]]
        eindex = st.eindex
        for kind, proc in (("send", alloc[u]), ("recv", alloc[v])):
            row = order(kind, proc)
            i = row.index((u, v, 0))
            if i > 0:
                prev = row[i - 1]
                out.append(n + eindex[(prev[0], prev[1])])
        return out

    def _duration_of(self, node: Node, ix: int, point: SearchPoint) -> float:
        st = self._statics
        if node[0] == "task":
            return st.exec_[ix][point.alloc[node[1]]]
        _, u, v, _ = node
        a, b = point.alloc[u], point.alloc[v]
        if a == b:
            return 0.0
        cost = st.link_rows[a][b]
        if not st.all_links_finite and not isfinite(cost):
            raise PlatformError(f"no direct link from P{a} to P{b}")
        return st.edata[ix - st.num_tasks] * cost

    def preview(self, move: Move) -> MovePreview:
        """Evaluate ``move`` without touching the base state."""
        old = self.point
        new = move.apply(old)
        dirty, removed, new_lists = invalidated(
            old, new, move.touched(old), old_lists=lambda k, p: self._lists[(k, p)]
        )
        nix = self._node_index
        removed_ix = {nix(nd) for nd in removed}
        new_preds: dict[int, list[int]] = {}
        new_dur: dict[int, float] = {}
        dirty_ix = []
        for nd in dirty:
            ix = nix(nd)
            dirty_ix.append(ix)
            new_preds[ix] = self._preds_of(nd, ix, new, new_lists)
            new_dur[ix] = self._duration_of(nd, ix, new)
        pos = self._pos if new.sequence is old.sequence else self._pos_array(new)
        patch = self._kern.patch(
            dirty_ix, removed_ix, new_preds, new_dur, self._key_of(pos)
        )
        if self._stats is not None:
            self._stats.inc("search.previews")
            self._stats.inc("search.patched_nodes", len(patch.nodes))
        return MovePreview(move, new, patch.makespan, patch, new_lists)

    def commit(self, preview: MovePreview) -> float:
        """Fold a preview into the base state; cost ~ size of the change."""
        if self._stats is not None:
            self._stats.inc("search.commits")
        kern = self._kern
        st = self._statics
        kern.apply(preview.patch)
        new = preview.point
        n = st.num_tasks
        alloc = new.alloc
        tasks = st.tasks
        for ix in preview.patch.new_dur:
            if ix < n:
                kern.alloc[ix] = alloc[tasks[ix]]
        if new.sequence is not self.point.sequence:
            self._pos = self._pos_array(new)
        self._lists.update(preview.new_lists)
        self._point = new
        self._makespan = preview.makespan
        return self._makespan

    def critical_path_tasks(self) -> list[TaskId]:
        """Tasks on one scheduled critical chain, latest-finishing first.

        Walks tight predecessors (the activity whose finish released the
        node) back from the makespan-defining task; deterministic, so
        seeded searches can bias moves toward the chain reproducibly.
        """
        kern = self._kern
        if kern is None:
            return []
        st = self._statics
        fin = kern.finish
        n = st.num_tasks
        if n == 0:
            return []
        node = max(range(n), key=fin.__getitem__)
        preds = kern.preds
        out: list[TaskId] = []
        while node is not None:
            if node < n:
                out.append(st.tasks[node])
            tight = None
            for p in preds[node]:
                if tight is None or fin[p] > fin[tight]:
                    tight = p
            node = tight
        return out

    # ------------------------------------------------------------------
    # object-level views (debugging / white-box tests; rebuilt per access)
    # ------------------------------------------------------------------
    def _live_nodes(self):
        kern = self._kern
        st = self._statics
        n = st.num_tasks
        yield from range(n)
        active = kern.active
        for e in range(st.num_edges):
            if active[e]:
                yield n + e

    @property
    def _preds(self) -> dict[Node, list[Node]]:
        nt = self._node_tuple
        preds = self._kern.preds
        return {nt(ix): [nt(p) for p in preds[ix]] for ix in self._live_nodes()}

    @property
    def _start(self) -> dict[Node, float]:
        start = self._kern.start
        nt = self._node_tuple
        return {nt(ix): start[ix] for ix in self._live_nodes()}

    @property
    def _finish(self) -> dict[Node, float]:
        finish = self._kern.finish
        nt = self._node_tuple
        return {nt(ix): finish[ix] for ix in self._live_nodes()}

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------
    def schedule(self, heuristic: str = "search") -> Schedule:
        """Full replay of the current point into a real :class:`Schedule`."""
        return replay(
            self.graph,
            self.platform,
            self.point.to_decisions(self.platform.processors),
            heuristic=heuristic,
        )

    def cross_check(self) -> Schedule:
        """Assert the incremental state agrees with a full :func:`replay`."""
        sched = self.schedule()
        kern = self._kern
        st = self._statics
        for ix, v in enumerate(st.tasks):
            if abs(sched.start_of(v) - kern.start[ix]) > CHECK_TOL:
                raise SchedulingError(
                    f"incremental drift on task {v!r}: "
                    f"{kern.start[ix]} != replay {sched.start_of(v)}"
                )
        if abs(sched.makespan() - self._makespan) > CHECK_TOL:
            raise SchedulingError(
                f"incremental makespan {self._makespan} != replay {sched.makespan()}"
            )
        return sched
