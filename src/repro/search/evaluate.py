"""Incremental replay evaluation of schedule decisions.

:class:`IncrementalEvaluator` holds the timed constraint DAG of one
decision point — the same DAG :func:`repro.simulate.replay` builds from
scratch — and answers "what would this move do to the makespan?"
without rebuilding it.  :meth:`~IncrementalEvaluator.preview` takes the
move's invalidation set (:func:`repro.search.neighborhood.invalidated`),
recomputes predecessor lists for exactly those nodes, and re-propagates
start/finish times only *downstream* of nodes whose finish actually
changed, in global key order (see :meth:`SearchPoint.key`), collecting
results in overlays that leave the base state untouched.
:meth:`~IncrementalEvaluator.commit` folds a preview's overlays into the
base state in time proportional to the disturbance, not the graph.

Contract: for every point and every move, ``preview(move).makespan``
equals the makespan of ``replay(graph, platform, new_point.to_decisions())``
exactly — both compute the component-wise least solution of the same
constraints with the same float operations.  :meth:`cross_check`
asserts this equivalence and the test suite exercises it on every
accepted move of seeded searches.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable
from dataclasses import dataclass, field

from ..core.exceptions import SchedulingError
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..simulate.replay import replay
from .neighborhood import Move, invalidated
from .point import Node, SearchPoint, comm_node, task_node

TaskId = Hashable

#: Tolerance used only by :meth:`IncrementalEvaluator.cross_check`; the
#: incremental and full passes are expected to agree bit-for-bit.
CHECK_TOL = 1e-9


@dataclass
class MovePreview:
    """Everything one evaluated move produced, ready to commit."""

    move: Move
    point: SearchPoint
    makespan: float
    dirty: set[Node]
    removed: set[Node]
    new_lists: dict[tuple, list]
    new_preds: dict[Node, list[Node]]
    start: dict[Node, float] = field(default_factory=dict)
    finish: dict[Node, float] = field(default_factory=dict)
    duration: dict[Node, float] = field(default_factory=dict)


class IncrementalEvaluator:
    """Cached constraint DAG of one decision point (see module docstring)."""

    def __init__(self, graph: TaskGraph, platform: Platform) -> None:
        self.graph = graph
        self.platform = platform
        self._maps = graph.as_maps()
        self._point: SearchPoint | None = None
        self._lists: dict[tuple, list] = {}
        self._duration: dict[Node, float] = {}
        self._preds: dict[Node, list[Node]] = {}
        self._succs: dict[Node, list[Node]] = {}
        self._start: dict[Node, float] = {}
        self._finish: dict[Node, float] = {}
        self._makespan = 0.0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def point(self) -> SearchPoint:
        if self._point is None:
            raise SchedulingError("evaluator has no point loaded")
        return self._point

    @property
    def makespan(self) -> float:
        return self._makespan

    def load(self, point: SearchPoint) -> float:
        """Full build of the timed constraint DAG at ``point``."""
        self._point = point
        self._lists = {
            (kind, p): point.resource_list(kind, p)
            for kind in ("proc", "send", "recv")
            for p in self.platform.processors
        }
        maps, platform, alloc = self._maps, self.platform, point.alloc
        duration: dict[Node, float] = {}
        preds: dict[Node, list[Node]] = {}
        for v in maps.weight:
            duration[task_node(v)] = platform.exec_time(maps.weight[v], alloc[v])
            preds[task_node(v)] = []
        for (u, v), data in maps.data.items():
            if alloc[u] == alloc[v]:
                preds[task_node(v)].append(task_node(u))
            else:
                node = comm_node(u, v)
                duration[node] = platform.comm_time(data, alloc[u], alloc[v])
                preds[node] = [task_node(u)]
                preds[task_node(v)].append(node)
        for (kind, _), order in self._lists.items():
            wrap = task_node if kind == "proc" else lambda e: ("comm", *e)
            for a, b in zip(order, order[1:]):
                preds[wrap(b)].append(wrap(a))
        succs: dict[Node, list[Node]] = {n: [] for n in preds}
        for node, plist in preds.items():
            for p in plist:
                succs[p].append(node)
        # one pass in global key order (acyclic by construction)
        start: dict[Node, float] = {}
        finish: dict[Node, float] = {}
        for node in sorted(preds, key=point.key):
            s = max((finish[p] for p in preds[node]), default=0.0)
            start[node] = s
            finish[node] = s + duration[node]
        self._duration, self._preds, self._succs = duration, preds, succs
        self._start, self._finish = start, finish
        self._makespan = max(
            (finish[task_node(v)] for v in maps.weight), default=0.0
        )
        return self._makespan

    # ------------------------------------------------------------------
    # incremental evaluation
    # ------------------------------------------------------------------
    def _preds_of(
        self, node: Node, point: SearchPoint, lists: dict[tuple, list]
    ) -> list[Node]:
        """Predecessor list of ``node`` at ``point``, using the patched
        resource lists where provided and the cached base lists elsewhere."""

        def order(kind: str, proc: int) -> list:
            key = (kind, proc)
            return lists[key] if key in lists else self._lists[key]

        if node[0] == "task":
            v = node[1]
            out: list[Node] = [
                task_node(u) if not point.is_remote(u, v) else comm_node(u, v)
                for u in self._maps.preds[v]
            ]
            row = order("proc", point.alloc[v])
            i = row.index(v)
            if i > 0:
                out.append(task_node(row[i - 1]))
            return out
        _, u, v, _ = node
        out = [task_node(u)]
        for kind, proc in (("send", point.alloc[u]), ("recv", point.alloc[v])):
            row = order(kind, proc)
            i = row.index((u, v, 0))
            if i > 0:
                out.append(("comm", *row[i - 1]))
        return out

    def _node_duration(self, node: Node, point: SearchPoint) -> float:
        if node[0] == "task":
            return self.platform.exec_time(self._maps.weight[node[1]], point.alloc[node[1]])
        _, u, v, _ = node
        return self.platform.comm_time(
            self._maps.data[(u, v)], point.alloc[u], point.alloc[v]
        )

    def preview(self, move: Move) -> MovePreview:
        """Evaluate ``move`` without touching the base state."""
        old = self.point
        new = move.apply(old)
        dirty, removed, new_lists = invalidated(
            old, new, move.touched(old), old_lists=lambda k, p: self._lists[(k, p)]
        )
        new_preds = {n: self._preds_of(n, new, new_lists) for n in dirty}
        pv = MovePreview(move, new, 0.0, dirty, removed, new_lists, new_preds)

        key = new.key
        heap = [(key(n), n) for n in dirty]
        heapq.heapify(heap)
        base_finish = self._finish
        overlay_start, overlay_finish, overlay_dur = pv.start, pv.finish, pv.duration
        visited: set[Node] = set()
        while heap:
            _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            plist = new_preds[node] if node in new_preds else self._preds[node]
            s = 0.0
            for p in plist:
                f = overlay_finish[p] if p in overlay_finish else base_finish[p]
                if f > s:
                    s = f
            d = self._node_duration(node, new)
            f = s + d
            overlay_start[node], overlay_finish[node] = s, f
            overlay_dur[node] = d
            if node not in base_finish or f != base_finish[node]:
                for succ in self._succs.get(node, ()):
                    if succ not in removed and succ not in visited:
                        heapq.heappush(heap, (key(succ), succ))
        ms = 0.0
        for v in self._maps.weight:
            node = task_node(v)
            f = overlay_finish[node] if node in overlay_finish else base_finish[node]
            if f > ms:
                ms = f
        pv.makespan = ms
        return pv

    def commit(self, preview: MovePreview) -> float:
        """Fold a preview into the base state; cost ~ size of the change."""
        for node in preview.removed:
            for p in self._preds.pop(node):
                if p not in preview.removed:
                    self._succs[p].remove(node)
            self._succs.pop(node, None)
            del self._duration[node], self._start[node], self._finish[node]
        for node, plist in preview.new_preds.items():
            for p in self._preds.get(node, ()):
                if p not in preview.removed:
                    self._succs[p].remove(node)
            self._preds[node] = list(plist)
            self._succs.setdefault(node, [])
            for p in plist:
                self._succs.setdefault(p, []).append(node)
        self._lists.update(preview.new_lists)
        self._duration.update(preview.duration)
        self._start.update(preview.start)
        self._finish.update(preview.finish)
        self._point = preview.point
        self._makespan = preview.makespan
        return self._makespan

    def critical_path_tasks(self) -> list[TaskId]:
        """Tasks on one scheduled critical chain, latest-finishing first.

        Walks tight predecessors (the activity whose finish released the
        node) back from the makespan-defining task; deterministic, so
        seeded searches can bias moves toward the chain reproducibly.
        """
        if not self._finish:
            return []
        node = None
        for v in self._maps.weight:
            cand = task_node(v)
            if node is None or self._finish[cand] > self._finish[node]:
                node = cand
        out: list[TaskId] = []
        while node is not None:
            if node[0] == "task":
                out.append(node[1])
            tight = None
            for p in self._preds[node]:
                if tight is None or self._finish[p] > self._finish[tight]:
                    tight = p
            node = tight
        return out

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------
    def schedule(self, heuristic: str = "search") -> Schedule:
        """Full replay of the current point into a real :class:`Schedule`."""
        return replay(
            self.graph,
            self.platform,
            self.point.to_decisions(self.platform.processors),
            heuristic=heuristic,
        )

    def cross_check(self) -> Schedule:
        """Assert the incremental state agrees with a full :func:`replay`."""
        sched = self.schedule()
        for v in self._maps.weight:
            node = task_node(v)
            if abs(sched.start_of(v) - self._start[node]) > CHECK_TOL:
                raise SchedulingError(
                    f"incremental drift on task {v!r}: "
                    f"{self._start[node]} != replay {sched.start_of(v)}"
                )
        if abs(sched.makespan() - self._makespan) > CHECK_TOL:
            raise SchedulingError(
                f"incremental makespan {self._makespan} != replay {sched.makespan()}"
            )
        return sched
