"""Iterated local search over schedule decisions (registry name ``ils``).

The :class:`IteratedLocalSearch` scheduler wraps any registered base
heuristic: it runs the base once, tightens its schedule with the
order-preserving replay, and then improves the *decisions* — allocation
and resource orders — with a seeded, fully deterministic iterated local
search in the style of Levine et al. (arXiv:1312.6246):

1. **first-improvement descent** — draw moves from the mixed
   neighborhood (:func:`repro.search.neighborhood.propose`), biased
   toward tasks on the scheduled critical chain, preview each on the
   incremental evaluator, and commit the first strict improvement;
   equal-makespan moves are accepted with probability ``sideways`` to
   drift across the wide plateaus of discrete makespans; a descent ends
   after ``patience`` consecutive non-improving draws;
2. **acceptance** — a descent that beats the incumbent becomes the new
   home base, otherwise the search restarts from the incumbent;
3. **random disruption** — ``kick`` random moves are committed
   unconditionally before the next descent, to escape the local
   optimum's basin.

The search is budgeted by move *evaluations* (``budget``) and
optionally by wall clock (``time_limit_s`` — off by default; enabling
it trades the determinism guarantee for predictable latency).  The
returned schedule is never worse than the tightened base schedule, so
``ils(h)`` dominates ``h`` by construction on every input.
"""

from __future__ import annotations

import random
import time

from ..core.exceptions import ConfigurationError
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.taskgraph import TaskGraph
from ..heuristics.base import Scheduler, get_scheduler, make_model, register_scheduler
from ..models.base import CommunicationModel
from ..models.one_port import OnePortModel
from ..obs import current as _obs_current
from ..simulate.replay import extract_decisions, replay, replay_schedule
from .evaluate import IncrementalEvaluator
from .neighborhood import MoveTask, propose
from .point import SearchPoint

#: Strict-improvement threshold: protects against accepting float noise.
EPS = 1e-9


@register_scheduler
class IteratedLocalSearch(Scheduler):
    """``ils(base)`` — improvement wrapper around any registered heuristic.

    Parameters
    ----------
    base, base_kwargs:
        Registry name and constructor kwargs of the wrapped heuristic
        (``ils(heft)``, ``ils(ilha, {"b": 4})``, ...).
    budget:
        Maximum number of move evaluations (previews); ``0`` returns the
        tightened base schedule untouched.
    seed:
        Seed of the search's private RNG; equal seeds give identical
        schedules on every run and under any campaign worker count.
    kick:
        Number of random moves committed unconditionally between
        descents (the random disruption).
    patience:
        Consecutive non-improving draws that end a descent; defaults to
        ``max(64, 2 * num_tasks)``.
    critical_bias:
        Probability of drawing a reallocation of a critical-chain task
        instead of a uniform move (the makespan can only drop by
        re-timing the chain that defines it).
    sideways:
        Probability of accepting an equal-makespan move during descent.
    time_limit_s:
        Optional wall-clock cap; when set, results may vary across
        machines (the evaluation budget stays the only *deterministic*
        stop).
    paranoia:
        Cross-check the incremental evaluator against a full replay
        after every accepted move (testing/debugging aid).

    The final schedule carries a ``search_stats`` dict attribute with
    the base/tightened/final makespans and search counters.
    """

    name = "ils"

    def __init__(
        self,
        base: str = "heft",
        base_kwargs: dict | None = None,
        budget: int = 4000,
        seed: int = 0,
        kick: int = 4,
        patience: int | None = None,
        critical_bias: float = 0.5,
        sideways: float = 0.3,
        time_limit_s: float | None = None,
        paranoia: bool = False,
    ) -> None:
        if base == self.name:
            raise ConfigurationError("ils cannot wrap itself")
        if budget < 0:
            raise ConfigurationError(f"budget must be >= 0, got {budget}")
        if kick < 0:
            raise ConfigurationError(f"kick must be >= 0, got {kick}")
        if patience is not None and patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        for prob, what in ((critical_bias, "critical_bias"), (sideways, "sideways")):
            if not (0.0 <= prob <= 1.0):
                raise ConfigurationError(f"{what} must be in [0, 1], got {prob}")
        self.base = base
        self.base_kwargs = dict(base_kwargs or {})
        self.budget = budget
        self.seed = seed
        self.kick = kick
        self.patience = patience
        self.critical_bias = critical_bias
        self.sideways = sideways
        self.time_limit_s = time_limit_s
        self.paranoia = paranoia

    @staticmethod
    def base_label(base: str, base_kwargs: dict | None = None) -> str:
        """Rendered description of a wrapped base: ``ilha(b=4)``."""
        if base_kwargs:
            args = ",".join(f"{k}={v}" for k, v in sorted(base_kwargs.items()))
            return f"{base}({args})"
        return base

    @classmethod
    def format_label(cls, base: str, base_kwargs: dict | None = None, **params) -> str:
        """The one ``ils`` label format every surface shares.

        ``base`` may be a registry name or an already-rendered series
        label; extra ``params`` (budget, seed, ...) append after a
        semicolon: ``ils(ilha(b=4);budget=200,seed=0)``.
        """
        desc = cls.base_label(base, base_kwargs)
        if params:
            tag = ",".join(f"{k}={params[k]}" for k in sorted(params))
            return f"ils({desc};{tag})"
        return f"ils({desc})"

    @property
    def label(self) -> str:
        return self.format_label(self.base, self.base_kwargs)

    def _draw(self, evaluator, critical, platform, rng):
        """One move draw: critical-chain reallocation or uniform mix."""
        if (
            critical
            and platform.num_processors > 1
            and rng.random() < self.critical_bias
        ):
            task = critical[rng.randrange(len(critical))]
            proc = rng.randrange(platform.num_processors - 1)
            if proc >= evaluator.point.alloc[task]:
                proc += 1
            return MoveTask(task, proc)
        return propose(evaluator.point, platform, rng)

    def run(
        self,
        graph: TaskGraph,
        platform: Platform,
        model: str | CommunicationModel = "one-port",
    ) -> Schedule:
        model_obj = make_model(platform, model)
        if type(model_obj) is not OnePortModel:
            raise ConfigurationError(
                "ils improves one-port schedules via replay; it requires the "
                f"plain one-port model, not {type(model_obj).__name__}"
            )
        if not platform.is_fully_connected():
            raise ConfigurationError("ils requires a fully connected platform")

        base_sched = get_scheduler(self.base, **self.base_kwargs).run(
            graph, platform, model_obj
        )
        tight = replay_schedule(base_sched)
        floor = tight.makespan()

        evaluator = IncrementalEvaluator(graph, platform)
        best_point = SearchPoint.from_schedule(tight)
        best_ms = evaluator.load(best_point)
        critical = evaluator.critical_path_tasks()
        rng = random.Random(self.seed)
        patience = self.patience or max(64, 2 * graph.num_tasks)
        deadline = None if self.time_limit_s is None else time.monotonic() + self.time_limit_s
        evals = accepted = kicks = rounds = sideways_taken = 0
        search_t0 = time.perf_counter()

        def out_of_time() -> bool:
            return deadline is not None and time.monotonic() > deadline

        while evals < self.budget and not out_of_time():
            rounds += 1
            evals_before = evals
            stall = 0
            while stall < patience and evals < self.budget and not out_of_time():
                move = self._draw(evaluator, critical, platform, rng)
                if move is None:
                    stall += 1
                    continue
                pv = evaluator.preview(move)
                evals += 1
                improving = pv.makespan < evaluator.makespan - EPS
                drifting = (
                    not improving
                    and pv.makespan < evaluator.makespan + EPS
                    and rng.random() < self.sideways
                )
                if improving or drifting:
                    evaluator.commit(pv)
                    critical = evaluator.critical_path_tasks()
                    accepted += 1
                    if drifting:
                        sideways_taken += 1
                    if self.paranoia:
                        evaluator.cross_check()
                stall = 0 if improving else stall + 1
            if evaluator.makespan < best_ms - EPS:
                best_ms, best_point = evaluator.makespan, evaluator.point
            if evals >= self.budget or out_of_time():
                break
            # random disruption, always from the incumbent
            if evaluator.point is not best_point:
                evaluator.load(best_point)
            for _ in range(self.kick):
                if evals >= self.budget:
                    break
                move = propose(evaluator.point, platform, rng)
                if move is None:
                    break
                evaluator.commit(evaluator.preview(move))
                evals += 1
                kicks += 1
            critical = evaluator.critical_path_tasks()
            if evals == evals_before:
                break  # no move is applicable (e.g. one processor, chain graph)

        if evaluator.makespan < best_ms - EPS:
            best_ms, best_point = evaluator.makespan, evaluator.point

        if best_ms < floor - EPS:
            if evaluator.point is not best_point:
                evaluator.load(best_point)
            out = evaluator.schedule(heuristic=self.label)
        else:
            out = replay(graph, platform, extract_decisions(tight), heuristic=self.label)
        stats = _obs_current()
        if stats is not None:
            stats.inc("search.sideways", sideways_taken)
            stats.inc("search.kicks", kicks)
            stats.inc("search.rounds", rounds)
            stats.add_time("phase.search.run", time.perf_counter() - search_t0)
        out.search_stats = {  # dynamic attribute; see class docstring
            "base": self.base_label(self.base, self.base_kwargs),
            "base_makespan": base_sched.makespan(),
            "tightened_makespan": floor,
            "final_makespan": out.makespan(),
            "evals": evals,
            "accepted": accepted,
            "sideways": sideways_taken,
            "kicks": kicks,
            "rounds": rounds,
            "budget": self.budget,
            "seed": self.seed,
            "improvement_pct": (
                0.0
                if base_sched.makespan() == 0
                else (1.0 - out.makespan() / base_sched.makespan()) * 100.0
            ),
        }
        return out
